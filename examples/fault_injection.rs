//! Seeded fault injection across the stack (docs/SCENARIOS.md, "Failure
//! & variability axes"): the fault axis as a programmatic grid
//! dimension, from timed link faults in the packet engine through
//! message-level stragglers to job failure/restart in the dynamic
//! cluster.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! Part 1 runs one 16-rank MoE all-to-all under every fault regime on
//! the 4:1-oversubscribed AI fabric and compares each faulted cell with
//! its fault-free sibling. Part 2 replays a job burst through the
//! cluster engine with a 60% failure probability and shows restarts,
//! re-queueing, and the exact turnaround accounting. Part 3 runs the
//! distributional regimes — Gilbert–Elliott Markov flapping, a
//! correlated whole-rack failure, and a churn-trace replay — and checks
//! the realized-fault telemetry identities against the generated
//! schedules. Part 4 runs per-packet stochastic link models (random
//! loss and latency jitter) and checks the retransmission-accounting
//! conservation identities: every retransmission is attributed to
//! exactly one trigger, and the unique goodput is invariant between a
//! clean and a lossy run of the same workload.

use atlahs_bench::cluster::{
    run_grid, ArrivalSpec, ClusterFaultSpec, ClusterGrid, ClusterReport, QueueDiscipline,
};
use atlahs_bench::scenario::{
    cell_seed, BackendFamily, FaultSpec, PlacementSpec, ScenarioGrid, TopologySpec, WorkloadSpec,
};
use atlahs_bench::sweep::{execute, SweepReport};
use atlahs_htsim::topology::Topology;
use atlahs_htsim::CcAlgo;

fn main() {
    // ---- Part 1: one workload, every fault regime -----------------------
    //
    // The group spans both ToRs, so the all-to-all crosses the thin core
    // uplinks the link faults target; the per-rank compute gives the
    // straggler calc costs to inflate.
    let grid = ScenarioGrid {
        topologies: vec![TopologySpec::AiFatTree { nodes: 16, oversub: 4 }],
        workloads: vec![WorkloadSpec::MoeAllToAll {
            ranks: 16,
            group: 16,
            bytes: 64 << 10,
            layers: 1,
            compute_ns: 20_000,
        }],
        ccs: vec![CcAlgo::Mprdma],
        placements: vec![PlacementSpec::Packed],
        backends: vec![BackendFamily::Htsim, BackendFamily::Lgs],
        faults: vec![
            FaultSpec::None,
            // Two core links down from 5 µs to 60 µs: blackholed packets
            // are recovered by retransmission once the links return.
            FaultSpec::LinkFlap { links: 2, down_ns: 5_000, up_ns: 60_000 },
            // Two core links at quarter bandwidth and 3x latency for the
            // first 200 µs: congestion control adapts to the slower wire.
            FaultSpec::Degrade { links: 2, bw_pct: 25, lat_pct: 300, from_ns: 0, to_ns: 200_000 },
            // Half the ranks straggle at 3x compute cost (message level).
            FaultSpec::Straggler { prob_pct: 50, factor_pct: 300, spread_pct: 0, shape: 1 },
        ],
        seed: 1,
        collect_flows: false,
    };
    let cells = grid.expand();
    let report = SweepReport { seed: grid.seed, results: execute(&cells, 0), branch: None };

    // Pair every faulted cell with its fault-free sibling (same key minus
    // the fault suffix) and show what the fault cost.
    println!("# fault regimes vs the clean baseline\n");
    let clean_makespan = |fault_key: &str| {
        let base = fault_key.rsplit_once('/').expect("faulted keys have a suffix").0;
        report.results.iter().find(|r| r.key == base).expect("clean sibling ran").makespan
    };
    for r in report.results.iter().filter(|r| r.key.matches('/').count() == 4) {
        let clean = clean_makespan(&r.key);
        let drops = r.net.map(|n| n.fault_drops).unwrap_or(0);
        println!(
            "{:75} {:8.1} µs  (+{:5.1}% vs clean, {} packets blackholed)",
            r.key,
            r.makespan as f64 / 1e3,
            100.0 * (r.makespan as f64 / clean as f64 - 1.0),
            drops
        );
        assert!(
            r.makespan != clean || drops > 0,
            "{}: the fault regime left no observable trace",
            r.key
        );
    }

    // ---- Part 2: job failures in the dynamic cluster --------------------
    //
    // A burst of ring jobs on the same fabric; each run attempt fails
    // with 60% probability halfway through, up to two failed attempts
    // per job. Failed attempts hold their nodes, then release them and
    // re-queue — so restarts show up in wait, turnaround, and queue depth.
    let cluster = ClusterGrid {
        topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        catalog: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 256 << 10, laps: 1 },
            WorkloadSpec::Ring { ranks: 4, bytes: 128 << 10, laps: 1 },
        ],
        arrivals: vec![ArrivalSpec::Trace { times_ns: vec![0, 0, 0, 0, 50_000, 50_000] }],
        queues: vec![QueueDiscipline::Fifo],
        placements: vec![PlacementSpec::Packed],
        ccs: vec![CcAlgo::Mprdma],
        backends: vec![BackendFamily::Lgs],
        faults: vec![
            ClusterFaultSpec::None,
            ClusterFaultSpec::JobFail { pct: 60, at_pct: 50, retries: 2 },
        ],
        seed: 7,
    };
    let (cluster_cells, dropped) = cluster.expand_counted();
    assert!(dropped.is_empty(), "catalog fits the fabric");
    let cluster_report = ClusterReport { seed: cluster.seed, results: run_grid(&cluster_cells, 0) };

    println!("\n# job failures in the dynamic cluster\n");
    for r in &cluster_report.results {
        let restarts: u32 = r.jobs.iter().map(|j| j.restarts).sum();
        let lost_ns: u64 = r.jobs.iter().map(|j| j.failed_ns).sum();
        println!(
            "{:60} makespan {:8.1} µs  restarts {}  node-time lost {:6.1} µs",
            r.key,
            r.makespan_ns as f64 / 1e3,
            restarts,
            lost_ns as f64 / 1e3
        );
        for j in &r.jobs {
            // The turnaround identity holds exactly, failed or not.
            assert_eq!(j.start_ns, j.arrival_ns + j.wait_ns + j.failed_ns);
            assert_eq!(j.completion_ns, j.wait_ns + j.failed_ns + j.duration_ns);
        }
        if r.key.ends_with("/jobfail:60:50:2") {
            assert!(restarts > 0, "{}: a 60% failure rate must trigger restarts", r.key);
        } else {
            assert_eq!(restarts, 0, "{}: fault-free cells never restart", r.key);
        }
    }

    // ---- Part 3: distributional fault models ----------------------------
    //
    // The `atlahs_core::faultgen` regimes *generate* the primitive port
    // windows: Markov flapping unrolls a Gilbert–Elliott process per
    // port, rackfail downs a whole edge failure domain, and churn
    // replays a down/up trace. Every faulted cell carries realized-fault
    // telemetry, and the identity `downtime_ns == Σ window durations`
    // holds exactly against the regenerated schedule.
    let dist = ScenarioGrid {
        topologies: vec![TopologySpec::AiFatTree { nodes: 16, oversub: 4 }],
        workloads: vec![WorkloadSpec::MoeAllToAll {
            ranks: 16,
            group: 16,
            bytes: 64 << 10,
            layers: 1,
            compute_ns: 20_000,
        }],
        ccs: vec![CcAlgo::Mprdma],
        placements: vec![PlacementSpec::Packed],
        backends: vec![BackendFamily::Htsim],
        faults: vec![
            FaultSpec::None,
            // Exp(30 µs) up / Exp(10 µs) down sojourns on two core
            // links, unrolled over the first 300 µs.
            FaultSpec::Markov { links: 2, up_ns: 30_000, down_ns: 10_000, horizon_ns: 300_000 },
            // One whole rack (ToR + every port touching it) down from
            // 20 µs to 140 µs.
            FaultSpec::RackFail { racks: 1, from_ns: 20_000, to_ns: 140_000 },
            // Replayed churn: rack 0 bounces early, rack 1 fails later.
            FaultSpec::parse("churn:0;0;d,60000;0;u,100000;1;d,180000;1;u").unwrap(),
        ],
        seed: 1,
        collect_flows: false,
    };
    let dist_cells = dist.expand();
    let dist_report =
        SweepReport { seed: dist.seed, results: execute(&dist_cells, 0), branch: None };
    let topo = Topology::build(TopologySpec::AiFatTree { nodes: 16, oversub: 4 }.config());
    let clean = dist_report
        .results
        .iter()
        .find(|r| r.key.matches('/').count() == 3)
        .expect("the fault-free sibling ran");

    println!("\n# distributional fault models\n");
    for (cell, r) in dist_cells.iter().zip(&dist_report.results) {
        assert_eq!(cell.key(), r.key, "execute preserves cell order");
        if cell.fault == FaultSpec::None {
            assert!(r.fault.is_none(), "fault-free cells carry no telemetry");
            continue;
        }
        let tel = r.fault.expect("distributional cells report realized-fault telemetry");
        let schedule = cell.fault.port_faults(&topo, cell_seed(cell.seed, &cell.fault.label()));
        assert_eq!(tel.windows, schedule.len() as u64, "{}: window count", r.key);
        assert_eq!(
            tel.downtime_ns,
            schedule.iter().map(|f| f.end_ns - f.start_ns).sum::<u64>(),
            "{}: downtime is exactly the sum of the generated windows",
            r.key
        );
        assert_ne!(r.makespan, clean.makespan, "{}: the fault must bite", r.key);
        println!(
            "{:95} {:8.1} µs  ({} windows, {:7.1} µs port-downtime, {} packets blackholed)",
            r.key,
            r.makespan as f64 / 1e3,
            tel.windows,
            tel.downtime_ns as f64 / 1e3,
            r.net.map(|n| n.fault_drops).unwrap_or(0)
        );
    }

    // ---- Part 4: per-packet stochastic link models ----------------------
    //
    // Unlike the scheduled windows above, `loss:`/`jitter:` perturb
    // *every* packet independently through counter-based draw streams
    // (docs/SCENARIOS.md, "Per-packet stochastic links"). The engine's
    // retransmission accounting satisfies two exact identities:
    //
    //   retransmissions  == rtx_timeout + rtx_fault_drop   (attribution)
    //   payload_bytes - retransmitted_bytes == clean payload  (goodput)
    //
    // — every retransmitted copy is charged to exactly one trigger, and
    // random loss never changes *what* is delivered, only how many
    // wasted copies it takes to deliver it.
    let stoch = ScenarioGrid {
        topologies: vec![TopologySpec::AiFatTree { nodes: 16, oversub: 4 }],
        workloads: vec![WorkloadSpec::MoeAllToAll {
            ranks: 16,
            group: 16,
            bytes: 64 << 10,
            layers: 1,
            compute_ns: 20_000,
        }],
        ccs: vec![CcAlgo::Mprdma],
        placements: vec![PlacementSpec::Packed],
        backends: vec![BackendFamily::Htsim],
        faults: vec![
            FaultSpec::None,
            // 5% random loss on every link.
            FaultSpec::parse("loss:50000").unwrap(),
            // 8% loss confined to the oversubscribed core uplinks.
            FaultSpec::parse("loss:80000:core").unwrap(),
            // Exp(2 µs) latency jitter: delays and reorders, never drops.
            FaultSpec::parse("jitter:exp:2000").unwrap(),
        ],
        seed: 1,
        collect_flows: false,
    };
    let stoch_cells = stoch.expand();
    let stoch_report =
        SweepReport { seed: stoch.seed, results: execute(&stoch_cells, 0), branch: None };
    let clean_net = stoch_report
        .results
        .iter()
        .find(|r| r.key.matches('/').count() == 3)
        .and_then(|r| r.net)
        .expect("the clean sibling ran on htsim");
    assert_eq!(clean_net.stochastic_draws, 0, "clean cells never touch the draw streams");

    println!("\n# per-packet stochastic link models\n");
    for (cell, r) in stoch_cells.iter().zip(&stoch_report.results) {
        let net = r.net.expect("htsim cells report net stats");
        // Attribution: the two split counters reassemble the total, for
        // clean and stochastic cells alike.
        assert_eq!(
            net.retransmissions,
            net.rtx_timeout + net.rtx_fault_drop,
            "{}: every retransmission has exactly one attributed trigger",
            r.key
        );
        if cell.fault == FaultSpec::None {
            continue;
        }
        // Conservation: loss inflates payload_bytes (wasted copies) but
        // the unique goodput equals the clean run's bytes exactly.
        assert_eq!(
            net.payload_bytes - net.retransmitted_bytes,
            clean_net.payload_bytes - clean_net.retransmitted_bytes,
            "{}: unique goodput is invariant under stochastic loss",
            r.key
        );
        assert!(net.stochastic_draws > 0, "{}: the model must be armed", r.key);
        if r.key.contains("/loss:") {
            assert!(net.stochastic_drops > 0, "{}: sustained loss must bite", r.key);
            assert!(net.goodput_ppm() < 1_000_000, "{}: wasted copies cost goodput", r.key);
        } else {
            assert_eq!(net.stochastic_drops, 0, "{}: jitter never drops", r.key);
            assert!(net.jittered > 0, "{}: jitter must perturb timestamps", r.key);
        }
        println!(
            "{:85} {:8.1} µs  ({} drops, {} jittered, goodput {:4.1}%, {} RTOs/kflow)",
            r.key,
            r.makespan as f64 / 1e3,
            net.stochastic_drops,
            net.jittered,
            net.goodput_ppm() as f64 / 1e4,
            net.rtx_storm_per_kflow()
        );
    }
}
