//! Dynamic multi-tenant cluster simulation (docs/SCENARIOS.md): a seeded
//! Poisson job stream over a shared oversubscribed fabric, with online
//! allocation, queueing with backfill, and per-job wait / completion /
//! interference-slowdown metrics — the library face of `atlahs cluster`.
//!
//! ```text
//! cargo run --release --example cluster_dynamics
//! ```
//!
//! The grid sweeps arrival rate × placement on the packet-level backend:
//! as the offered load rises, queueing delays grow; random placement
//! scatters ring jobs across the 4:1-oversubscribed core, so co-scheduled
//! batches show interference slowdown packed placement avoids.

use atlahs_bench::cluster::{run_grid, ArrivalSpec, ClusterGrid, ClusterReport, QueueDiscipline};
use atlahs_bench::scenario::{BackendFamily, PlacementSpec, TopologySpec, WorkloadSpec};
use atlahs_htsim::CcAlgo;

fn main() {
    let grid = ClusterGrid {
        // 16 nodes, two ToRs, 4:1 oversubscribed core.
        topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        // The catalog arrivals draw from: a communication-heavy ring,
        // a narrower incast, and a small ring. The narrow entries matter:
        // when a wide job releases its nodes, several queued narrow jobs
        // backfill *at the same instant* and run as one co-scheduled
        // batch — that is where interference slowdown appears.
        catalog: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 512 << 10, laps: 1 },
            WorkloadSpec::Incast { ranks: 5, bytes: 256 << 10, repeat: 1 },
            WorkloadSpec::Ring { ranks: 3, bytes: 256 << 10, laps: 2 },
        ],
        // Three regimes: an idle trickle (singleton batches, no waits),
        // a saturating Poisson stream (queueing dominates), and an
        // all-at-once burst — the burst is admitted in co-scheduled
        // batches, which is where interference slowdown appears.
        arrivals: vec![
            ArrivalSpec::Poisson { jobs: 12, mean_gap_ns: 400_000 },
            ArrivalSpec::Poisson { jobs: 16, mean_gap_ns: 8_000 },
            ArrivalSpec::Trace { times_ns: vec![0; 6] },
        ],
        queues: vec![QueueDiscipline::Fifo],
        placements: vec![PlacementSpec::Packed, PlacementSpec::Random],
        ccs: vec![CcAlgo::Mprdma],
        backends: vec![BackendFamily::Htsim],
        faults: vec![],
        seed: 7,
    };

    let (cells, dropped) = grid.expand_counted();
    assert!(dropped.is_empty(), "catalog fits the fabric");
    let results = run_grid(&cells, 0);
    let report = ClusterReport { seed: grid.seed, results };

    println!("# dynamic cluster: arrival rate x placement on a 4:1 fabric\n");
    report.summary_table().print();

    // Queueing: the saturated stream must wait more than the idle one.
    let mean_wait = |key_part: &str| {
        report
            .results
            .iter()
            .filter(|r| r.key.contains(key_part))
            .map(|r| r.mean_wait_ns())
            .sum::<f64>()
            / 2.0
    };
    let idle = mean_wait("poisson:12:400000");
    let busy = mean_wait("poisson:16:8000");
    println!("\nmean wait, low load: {:.1} µs   high load: {:.1} µs", idle / 1e3, busy / 1e3);
    assert!(busy >= idle, "a 10x offered-load increase cannot shrink queueing");

    // Interference: across the grid, co-scheduled batches must never
    // beat their solo baselines, and the slowdown metric is exactly 1.0
    // for every singleton batch.
    for r in &report.results {
        for j in &r.jobs {
            assert!(j.slowdown >= 0.999, "{}: job {} sped up when co-scheduled", r.key, j.id);
            let batch_size = r.jobs.iter().filter(|k| k.batch == j.batch).count();
            if batch_size == 1 {
                assert_eq!(j.duration_ns, j.solo_ns);
            }
        }
    }
    // The burst cells must contain genuinely co-scheduled batches.
    for r in report.results.iter().filter(|r| r.key.contains("trace:")) {
        let multi = r
            .jobs
            .iter()
            .filter(|j| r.jobs.iter().any(|k| k.id != j.id && k.batch == j.batch))
            .count();
        assert!(multi >= 2, "{}: the burst should co-schedule jobs", r.key);
    }
    let max_slow = report.results.iter().map(|r| r.max_slowdown()).fold(0.0, f64::max);
    println!("max interference slowdown across the grid: {max_slow:.3}x");
}
