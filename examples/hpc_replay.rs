//! HPC trace replay (paper §3.1.1): trace an MPI application with the
//! liballprof-style tracer, round-trip the trace through its on-disk
//! format, lower it to GOAL with different collective algorithm choices,
//! and compare their predicted runtimes — the Schedgen flexibility the
//! paper highlights.
//!
//! ```text
//! cargo run --release --example hpc_replay
//! ```

use atlahs::core::Simulation;
use atlahs::lgs::{LgsBackend, LogGopsParams};
use atlahs::schedgen::mpi2goal::{self, AllreduceAlgo, MpiToGoalConfig};
use atlahs::tracers::mpi::{hpcg, HpcAppConfig, MpiTrace, Scaling};

fn main() {
    // ---- trace HPCG at 64 ranks ------------------------------------------
    let cfg = HpcAppConfig {
        ranks: 64,
        iterations: 5,
        scaling: Scaling::Weak,
        compute_ns: 300_000,
        halo_bytes: 32 * 1024,
        noise: 0.02,
        seed: 11,
    };
    let trace = hpcg(&cfg);
    println!("traced HPCG: {} ranks, {} MPI records", trace.num_ranks(), trace.num_records());

    // ---- the on-disk liballprof format round-trips -----------------------
    let text = trace.to_text();
    let reloaded = MpiTrace::parse(&text).expect("own trace format parses");
    assert_eq!(trace.num_records(), reloaded.num_records());
    println!("trace file: {:.1} KiB on disk", text.len() as f64 / 1024.0);

    // ---- Schedgen: swap the allreduce algorithm at conversion time --------
    let params = LogGopsParams::hpc_testbed();
    for (algo, label) in [
        (AllreduceAlgo::Ring, "ring          "),
        (AllreduceAlgo::RecursiveDoubling, "rec. doubling "),
        (AllreduceAlgo::Rabenseifner, "rabenseifner  "),
        (AllreduceAlgo::Auto, "auto (cutoff) "),
    ] {
        let conv = MpiToGoalConfig { allreduce: algo, ..Default::default() };
        let goal = mpi2goal::convert(&reloaded, &conv).expect("converts");
        let mut backend = LgsBackend::new(params);
        let rep = Simulation::new(&goal).run(&mut backend).expect("completes");
        let st = atlahs::goal::ScheduleStats::of(&goal);
        println!(
            "allreduce = {label}: {:8} tasks, {:6.1} MiB wire, predicted {:.3} ms",
            goal.total_tasks(),
            st.bytes_sent as f64 / (1 << 20) as f64,
            rep.makespan as f64 / 1e6
        );
    }
    println!("\n(collective substitution happens in Schedgen, not in the application)");
}
