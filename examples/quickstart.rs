//! Quickstart: the paper's Fig. 3 GOAL schedule, three ways.
//!
//! 1. Build the schedule programmatically with [`GoalBuilder`].
//! 2. Round-trip it through the textual GOAL format.
//! 3. Simulate it on the LogGOPSim backend and print the timeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use atlahs::core::Simulation;
use atlahs::goal::{text, GoalBuilder};
use atlahs::lgs::{LgsBackend, LogGopsParams};

fn main() {
    // ---- 1. Fig. 3: rank 0 computes on two streams, then sends ----------
    //
    // rank 0 {
    //     l1: calc 100
    //     l2: calc 200 cpu 0
    //     l3: calc 200 cpu 1
    //     l4: send 10b to 1
    //     l2 requires l1
    //     l3 requires l1
    //     l4 requires l2
    //     l4 requires l3
    // }
    let mut b = GoalBuilder::new(2);
    let l1 = b.calc(0, 100);
    let l2 = b.calc_on(0, 200, 0);
    let l3 = b.calc_on(0, 200, 1);
    let l4 = b.send(0, 1, 10, 0);
    b.requires(0, l2, l1);
    b.requires(0, l3, l1);
    b.requires(0, l4, l2);
    b.requires(0, l4, l3);
    b.recv(1, 0, 10, 0);
    let goal = b.build().expect("Fig. 3 schedule is well-formed");

    // ---- 2. The same schedule as text ------------------------------------
    let text_form = text::to_text(&goal);
    println!("GOAL text format:\n{text_form}");
    let reparsed = text::parse(&text_form).expect("own output must parse");
    assert_eq!(text::to_text(&reparsed), text_form, "text round-trip is stable");

    // ---- 3. Simulate on LogGOPSim ----------------------------------------
    // l2 and l3 run on different compute streams, so they overlap: the
    // send issues at t = 100 + 200, not 100 + 200 + 200.
    let params = LogGopsParams { l: 1_000, o: 50, g: 10, big_g: 0.1, big_o: 0.0, s: 0 };
    let mut backend = LgsBackend::new(params);
    let report = Simulation::new(&goal).run(&mut backend).expect("completes");

    println!("simulated on LogGOPS {params:?}");
    println!("  rank 0 finished at {} ns", report.rank_finish[0]);
    println!("  rank 1 finished at {} ns", report.rank_finish[1]);
    println!("  makespan: {} ns over {} tasks", report.makespan, report.completed);

    // The overlap is observable: with both calcs on one stream the send
    // could not start before 500 ns.
    assert_eq!(report.rank_finish[0], 100 + 200 + 50, "send CPU phase ends at 350");
    assert!(report.makespan < 2_000);
    println!("\nstream overlap verified: the send issued at 300 ns, not 500 ns");
}
