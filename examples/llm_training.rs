//! End-to-end AI pipeline: trace an LLM training job, lower it through
//! the four-stage NCCL→GOAL pipeline, and predict its iteration time on
//! both ATLAHS backends — including a "what-if" GPU-to-node regrouping
//! (paper §3.1.2 Stage 4).
//!
//! ```text
//! cargo run --release --example llm_training
//! ```

use atlahs::core::Simulation;
use atlahs::goal::ScheduleStats;
use atlahs::htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs::htsim::topology::{LinkParams, TopologyConfig};
use atlahs::htsim::CcAlgo;
use atlahs::lgs::{LgsBackend, LogGopsParams};
use atlahs::schedgen::nccl2goal::{self, NcclToGoalConfig};
use atlahs::tracers::nccl::{presets, trace_llm};

fn main() {
    // ---- Stage 1: profile the application (nsys-style tracer) -----------
    let mut cfg = presets::llama7b_dp16(0.002);
    cfg.iterations = 1;
    let report = trace_llm(&cfg);
    println!(
        "traced {}: {} GPUs on {} nodes, {} kernel records, {} communicators",
        cfg.name,
        report.num_gpus(),
        report.num_nodes(),
        report.num_records(),
        report.comms.len()
    );

    // ---- Stages 2–4: lower to a node-level GOAL schedule ----------------
    let goal =
        nccl2goal::convert(&report, &NcclToGoalConfig::default()).expect("trace lowers to GOAL");
    let stats = ScheduleStats::of(&goal);
    println!(
        "GOAL: {} node ranks, {} tasks ({} sends, {:.1} MiB on the wire)",
        goal.num_ranks(),
        goal.total_tasks(),
        stats.sends,
        stats.bytes_sent as f64 / (1 << 20) as f64
    );

    // ---- Predict with the message-level backend (fast) ------------------
    let mut lgs = LgsBackend::new(LogGopsParams::ai_alps());
    let rep_lgs = Simulation::new(&goal).run(&mut lgs).expect("completes");
    println!("ATLAHS LGS   : {:.3} ms/iteration", rep_lgs.makespan as f64 / 1e6);

    // ---- Predict with the packet-level backend (accurate) ---------------
    let link = LinkParams { gbps: 200.0, latency_ns: 500 };
    let topo = TopologyConfig::FatTree2L {
        hosts: goal.num_ranks(),
        hosts_per_tor: 2,
        uplinks_per_tor: 2,
        edge: link,
        core: link,
    };
    let mut htsim = HtsimBackend::new(HtsimConfig::new(topo, CcAlgo::Mprdma));
    let rep_ht = Simulation::new(&goal).run(&mut htsim).expect("completes");
    let net = htsim.net_stats();
    println!(
        "ATLAHS htsim : {:.3} ms/iteration ({} packets, {} ECN marks, {} drops)",
        rep_ht.makespan as f64 / 1e6,
        net.packets_sent,
        net.ecn_marks,
        net.drops
    );

    // ---- What-if: restructure the same trace onto 8 nodes of 2 GPUs -----
    let what_if = NcclToGoalConfig { gpus_per_node: Some(2), ..NcclToGoalConfig::default() };
    let goal8 = nccl2goal::convert(&report, &what_if).expect("regrouping works");
    let mut lgs = LgsBackend::new(LogGopsParams::ai_alps());
    let rep8 = Simulation::new(&goal8).run(&mut lgs).expect("completes");
    let s8 = ScheduleStats::of(&goal8);
    println!(
        "what-if 2 GPUs/node: {} ranks, {:.1} MiB on the wire, {:.3} ms/iteration",
        goal8.num_ranks(),
        s8.bytes_sent as f64 / (1 << 20) as f64,
        rep8.makespan as f64 / 1e6
    );
    assert!(
        s8.bytes_sent >= stats.bytes_sent,
        "fewer GPUs per node => more traffic must cross the fabric"
    );
}
