//! Multi-job and multi-tenant composition (paper §3.2, Fig. 13): place an
//! AI job and an HPC job on a shared oversubscribed cluster, compare
//! packed vs random vs round-robin allocation, then co-locate two tenants
//! on the *same* nodes and observe the contention.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use atlahs::core::{allocate, PlacementStrategy, Simulation};
use atlahs::goal::merge::{compose, PlacedJob};
use atlahs::goal::{GoalBuilder, GoalSchedule};
use atlahs::htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs::htsim::topology::{LinkParams, TopologyConfig};
use atlahs::htsim::CcAlgo;
use atlahs::schedgen::nccl2goal::{self, NcclToGoalConfig};
use atlahs::tracers::nccl::{presets, trace_llm};

/// A compute-heavy ring job standing in for an HPC application.
fn ring_job(ranks: usize, bytes: u64, rounds: u32) -> GoalSchedule {
    let mut b = GoalBuilder::new(ranks);
    let mut prev: Vec<Option<_>> = vec![None; ranks];
    for round in 0..rounds {
        for r in 0..ranks as u32 {
            let dst = (r + 1) % ranks as u32;
            let src = (r + ranks as u32 - 1) % ranks as u32;
            let c = b.calc(r, 200_000);
            let s = b.send(r, dst, bytes, round);
            let v = b.recv(r, src, bytes, round);
            b.requires(r, s, c);
            b.requires(r, v, c);
            if let Some((ps, pv)) = prev[r as usize] {
                b.requires(r, c, ps);
                b.requires(r, c, pv);
            }
            prev[r as usize] = Some((s, v));
        }
    }
    b.build().expect("ring job builds")
}

fn run(goal: &GoalSchedule, cluster: usize) -> Vec<u64> {
    let link = LinkParams { gbps: 200.0, latency_ns: 500 };
    let topo = TopologyConfig::FatTree2L {
        hosts: cluster,
        hosts_per_tor: 4,
        uplinks_per_tor: 1, // 4:1 oversubscribed core
        edge: link,
        core: link,
    };
    let mut backend = HtsimBackend::new(HtsimConfig::new(topo, CcAlgo::Mprdma));
    Simulation::new(goal).run(&mut backend).expect("completes").rank_finish
}

fn main() {
    // Job A: Llama 7B on 4 nodes. Job B: an 8-rank ring job.
    let mut cfg = presets::llama7b_dp16(0.001);
    cfg.iterations = 1;
    let report = trace_llm(&cfg);
    let llama = nccl2goal::convert(&report, &NcclToGoalConfig::default()).unwrap();
    let hpc = ring_job(8, 1 << 20, 4);
    let cluster = 16usize;

    println!("cluster: {cluster} nodes, 4:1 oversubscribed fat tree");
    println!(
        "job A: Llama 7B ({} nodes)   job B: ring job ({} nodes)\n",
        llama.num_ranks(),
        hpc.num_ranks()
    );

    // ---- multi-job: three allocation strategies -------------------------
    for (strategy, label) in [
        (PlacementStrategy::Packed, "packed    "),
        (PlacementStrategy::Random { seed: 3 }, "random    "),
        (PlacementStrategy::RoundRobin, "roundrobin"),
    ] {
        let placement =
            allocate(strategy, cluster, &[llama.num_ranks(), hpc.num_ranks()]).expect("fits");
        let merged = compose(
            &[
                PlacedJob::new(&llama, placement[0].clone()),
                PlacedJob::new(&hpc, placement[1].clone()),
            ],
            cluster,
        )
        .expect("composes");
        let finish = run(&merged, cluster);
        let app_time =
            |nodes: &[u32]| nodes.iter().map(|&n| finish[n as usize]).max().unwrap() as f64 / 1e6;
        println!(
            "{label}: Llama {:7.3} ms   ring job {:7.3} ms",
            app_time(&placement[0]),
            app_time(&placement[1])
        );
    }

    // ---- multi-tenant: both tenants share the same 8 nodes --------------
    let solo = run(&atlahs::goal::merge::place(&hpc, (0..8).collect(), cluster).unwrap(), cluster);
    let tenants = compose(
        &[PlacedJob::new(&hpc, (0..8).collect()), PlacedJob::new(&hpc, (0..8).collect())],
        cluster,
    )
    .expect("tenants compose");
    let shared = run(&tenants, cluster);
    let solo_t = solo.iter().max().unwrap();
    let shared_t = shared.iter().max().unwrap();
    println!(
        "\nmulti-tenant (2x ring job on the same nodes): solo {:.3} ms -> shared {:.3} ms ({:+.0}%)",
        *solo_t as f64 / 1e6,
        *shared_t as f64 / 1e6,
        (*shared_t as f64 / *solo_t as f64 - 1.0) * 100.0
    );
    assert!(shared_t >= solo_t, "sharing nodes cannot speed a tenant up");
}
