//! Programmatic scenario sweep: build a [`ScenarioGrid`] in code, run it
//! across all cores, and post-process the results — the library face of
//! `atlahs sweep` (docs/SCENARIOS.md).
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```
//!
//! The grid crosses the three new application-shaped synthetic workloads
//! (MoE all-to-all, pipeline-parallel LLM, storage incast) with a fully
//! provisioned and a 4:1 oversubscribed fabric, on the packet-level and
//! message-level backends, and prints where the packet-level model
//! diverges from LGS's topology-blind prediction.

use atlahs_bench::scenario::{
    BackendFamily, BackendSpec, PlacementSpec, ScenarioGrid, TopologySpec, WorkloadSpec,
};
use atlahs_bench::sweep::{execute, SweepReport};
use atlahs_htsim::CcAlgo;

fn main() {
    let grid = ScenarioGrid {
        topologies: vec![
            TopologySpec::AiFatTree { nodes: 16, oversub: 1 },
            TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        ],
        workloads: vec![
            WorkloadSpec::MoeAllToAll {
                ranks: 16,
                group: 8,
                bytes: 256 << 10,
                layers: 2,
                compute_ns: 10_000,
            },
            WorkloadSpec::PipelineLlm {
                stages: 8,
                microbatches: 4,
                bytes: 256 << 10,
                compute_ns: 20_000,
            },
            WorkloadSpec::StorageIncast { clients: 4, servers: 12, bytes: 128 << 10, reads: 2 },
        ],
        ccs: vec![CcAlgo::Mprdma],
        placements: vec![PlacementSpec::Packed],
        backends: vec![BackendFamily::Htsim, BackendFamily::Lgs],
        faults: vec![],
        seed: 1,
        collect_flows: true,
    };

    let cells = grid.expand();
    println!("expanded {} cells; running on all cores...\n", cells.len());
    let report = SweepReport { seed: grid.seed, results: execute(&cells, 0), branch: None };
    report.summary_table().print();

    // Pair each htsim cell with its LGS sibling and report the divergence
    // the message-level model cannot see (congestion, oversubscription).
    println!("\npacket-level vs message-level (makespan ratio):");
    for (cell, result) in cells.iter().zip(&report.results) {
        if !matches!(cell.backend, BackendSpec::Htsim { .. }) {
            continue;
        }
        let lgs = cells.iter().zip(&report.results).find(|(c, _)| {
            c.backend == BackendSpec::Lgs
                && c.topology == cell.topology
                && c.workload == cell.workload
        });
        if let Some((_, lgs)) = lgs {
            println!("  {:<55} {:>5.2}x", result.key, result.makespan as f64 / lgs.makespan as f64);
        }
    }
}
