//! Distributed storage on Direct Drive: generate a Financial-like block
//! I/O trace, lower it onto the CCS/BSS service graph, and measure how
//! congestion control changes request completion under an oversubscribed
//! core (the paper's Fig. 11 case study, §6.1).
//!
//! ```text
//! cargo run --release --example storage_directdrive
//! ```

use atlahs::core::Simulation;
use atlahs::directdrive::{trace_to_goal, DirectDriveLayout, ServiceParams};
use atlahs::goal::GoalBuilder;
use atlahs::htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs::htsim::topology::{LinkParams, TopologyConfig};
use atlahs::htsim::CcAlgo;
use atlahs::tracers::storage::{financial_like, OltpConfig};

fn main() {
    // ---- the workload: 1000 skewed, write-heavy OLTP operations ---------
    let trace = financial_like(&OltpConfig { operations: 1_000, seed: 7, ..Default::default() });
    println!("SPC trace: {} ops, {:.0}% writes", trace.len(), trace.write_fraction() * 100.0);

    // ---- the storage cluster: 8 clients, 2 CCS, 12 BSS ------------------
    let layout = DirectDriveLayout::standard(8, 2, 12);
    let params = ServiceParams::default();
    let mut b = GoalBuilder::new(layout.total_ranks());
    let completions = trace_to_goal(&trace, &layout, &params, &mut b);
    let goal = b.build().expect("storage GOAL builds");
    println!(
        "Direct Drive GOAL: {} ranks, {} tasks, {} tracked requests",
        goal.num_ranks(),
        goal.total_tasks(),
        completions.len()
    );

    // ---- run on an 8:1 oversubscribed fat tree, MPRDMA vs NDP -----------
    let link = LinkParams { gbps: 100.0, latency_ns: 500 };
    let hosts = layout.total_ranks().div_ceil(8) * 8;
    let topo = TopologyConfig::FatTree2L {
        hosts,
        hosts_per_tor: 8,
        uplinks_per_tor: 1, // 8:1 oversubscription
        edge: link,
        core: link,
    };

    for cc in [CcAlgo::Mprdma, CcAlgo::Ndp] {
        let mut cfg = HtsimConfig::new(topo.clone(), cc);
        cfg.collect_flows = true;
        let mut backend = HtsimBackend::new(cfg);
        let rep = Simulation::new(&goal).run(&mut backend).expect("completes");

        let mut mct: Vec<u64> = backend.flow_records().iter().map(|f| f.duration()).collect();
        mct.sort_unstable();
        let mean = mct.iter().map(|&d| d as f64).sum::<f64>() / mct.len() as f64;
        let p99 = mct[(mct.len() * 99 / 100).min(mct.len() - 1)];
        println!(
            "{cc:8}: drained in {:.2} ms | MCT mean {:.1} µs p99 {:.1} µs max {:.1} µs | trims/drops {}",
            rep.makespan as f64 / 1e6,
            mean / 1e3,
            p99 as f64 / 1e3,
            *mct.last().unwrap() as f64 / 1e3,
            backend.net_stats().drops + backend.net_stats().trims,
        );
    }
    println!("\n(receiver-driven NDP suffers when congestion sits in the oversubscribed core)");
}
