#!/usr/bin/env bash
# CI gate for the ATLAHS workspace. Run from the repo root.
#
# Stages:
#   1. cargo fmt --check          — formatting (config in rustfmt.toml)
#   2. cargo clippy -D warnings   — lints, all targets, no allowlist
#   3. cargo build --release      — the tier-1 build
#   4. cargo test -q              — unit + integration + doc tests (tier-1)
#   5. cargo doc --no-deps        — rustdoc must build warning-free
#
# The build is fully offline: external deps are vendored shims under
# crates/shims/ (see README.md).

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test -q --workspace

step "cargo doc (no warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

printf '\nCI gate passed.\n'
