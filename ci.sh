#!/usr/bin/env bash
# CI gate for the ATLAHS workspace. Run from the repo root.
#
# Stages:
#   1. cargo fmt --check          — formatting (config in rustfmt.toml)
#   2. cargo clippy -D warnings   — lints, all targets, no allowlist
#   3. cargo build --release      — the tier-1 build
#   4. cargo test -q              — unit + integration + doc tests (tier-1)
#   5. cargo doc --no-deps        — rustdoc must build warning-free
#   6. bench smoke                — criterion suites (shim) run + the
#      BENCH_engine.json / BENCH_lgs.json emitters produce parseable
#      output (docs/PERFORMANCE.md describes the tracked perf trajectory;
#      the checked-in reports are parse-validated by the
#      atlahs_bench::json unit tests in stage 4)
#   7. large-trace LGS fingerprint — the ~1M-op pipeline_parallel golden
#      (release-scale, so it runs here rather than in the debug suite)
#   8. sweep smoke                — `atlahs sweep --smoke` runs the fixed
#      24-cell CI grid on 2 threads and must reproduce the checked-in
#      tests/goldens/sweep_smoke.json byte for byte (docs/SCENARIOS.md)
#   9. fault smoke                — `atlahs sweep --fault-smoke` runs the
#      fixed 45-cell fault-injection grid (link flaps, degraded links,
#      stragglers, plus the distributional markov / rackfail / churn /
#      Weibull-straggler regimes) on 2 threads and must reproduce
#      tests/goldens/fault_smoke.json byte for byte (docs/SCENARIOS.md,
#      "Failure & variability axes")
#  10. cluster smoke              — `atlahs cluster --smoke` runs the fixed
#      24-cell dynamic-cluster grid on 2 threads and must reproduce
#      tests/goldens/cluster_smoke.json byte for byte (docs/SCENARIOS.md)
#  11. cluster fault smoke        — `atlahs cluster --fault-smoke` runs the
#      3-cell job-failure grid (clean / Bernoulli jobfail / MTBF) and must
#      reproduce tests/goldens/cluster_fault_smoke.json byte for byte
#  12. branch smoke               — `atlahs sweep --branch-smoke` runs the
#      fixed 24-cell branch-and-continue grid (8 shared prefixes simulated
#      once each, snapshot via the backend Snapshot contract, per-cell
#      fault overrides applied at the 60 µs branch point) and must
#      reproduce tests/goldens/branch_smoke.json byte for byte — including
#      the "prefix_runs": 8 work counter proving the prefix was not
#      re-simulated per cell (docs/SCENARIOS.md, "Branch-and-continue")
#  13. stochastic smoke           — `atlahs sweep --stochastic-smoke` runs
#      the fixed 75-cell per-packet stochastic grid (the 45 fault-smoke
#      cells byte-frozen inside, plus 30 loss/jitter cells drawing from
#      counter-based per-port streams) and must reproduce
#      tests/goldens/stochastic_smoke.json byte for byte
#      (docs/SCENARIOS.md, "Per-packet stochastic links")
#  14. determinism audit          — `atlahs lint` statically enforces the
#      bit-identity contract (docs/DETERMINISM.md): no floats,
#      default-hashed maps, hash-order iteration, wall clocks, ambient
#      randomness, or unsafe in result-affecting crates; det-lint allow
#      annotations must be well-formed and live; the golden corpus must
#      parse as JSON with no orphans and no dangling ci.sh references
#
# The build is fully offline: external deps are vendored shims under
# crates/shims/ (see README.md).

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test -q --workspace

step "cargo doc (no warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

step "bench smoke (criterion shim + BENCH_engine.json emission)"
cargo bench -p atlahs_bench --bench engine
smoke_json="target/BENCH_engine_smoke.json"
cargo run --release -p atlahs_bench --bin bench_engine -- \
    --quick --out "$smoke_json" > /dev/null
for key in '"scenarios"' '"fig11_oversub_mprdma"' '"events_per_sec"'; do
    grep -q "$key" "$smoke_json" \
        || { echo "bench smoke: $key missing from $smoke_json" >&2; exit 1; }
done

step "bench smoke (lgs criterion suite + BENCH_lgs.json emission)"
cargo bench -p atlahs_bench --bench lgs
lgs_smoke_json="target/BENCH_lgs_smoke.json"
cargo run --release -p atlahs_bench --bin bench_lgs -- \
    --quick --out "$lgs_smoke_json" > /dev/null
for key in '"scenarios"' '"pipeline_1m"' '"tasks_per_sec"' '"bytes_per_task"'; do
    grep -q "$key" "$lgs_smoke_json" \
        || { echo "lgs bench smoke: $key missing from $lgs_smoke_json" >&2; exit 1; }
done

step "large-trace LGS fingerprint (~1M-op pipeline_parallel golden)"
ATLAHS_LARGE_GOLDENS=1 cargo test -q --release --test determinism_golden \
    lgs_pipeline_parallel_1m

step "sweep smoke (atlahs sweep --smoke vs golden report)"
sweep_json="target/sweep_smoke.json"
cargo run --release -p atlahs_bench --bin atlahs -- \
    sweep --smoke --threads 2 --quiet --out "$sweep_json"
diff -u tests/goldens/sweep_smoke.json "$sweep_json" \
    || { echo "sweep smoke: report drifted from tests/goldens/sweep_smoke.json" >&2; exit 1; }

step "fault smoke (atlahs sweep --fault-smoke vs golden report)"
fault_json="target/fault_smoke.json"
cargo run --release -p atlahs_bench --bin atlahs -- \
    sweep --fault-smoke --threads 2 --quiet --out "$fault_json"
diff -u tests/goldens/fault_smoke.json "$fault_json" \
    || { echo "fault smoke: report drifted from tests/goldens/fault_smoke.json" >&2; exit 1; }

step "cluster smoke (atlahs cluster --smoke vs golden report)"
cluster_json="target/cluster_smoke.json"
cargo run --release -p atlahs_bench --bin atlahs -- \
    cluster --smoke --threads 2 --quiet --out "$cluster_json"
diff -u tests/goldens/cluster_smoke.json "$cluster_json" \
    || { echo "cluster smoke: report drifted from tests/goldens/cluster_smoke.json" >&2; exit 1; }

step "cluster fault smoke (atlahs cluster --fault-smoke vs golden report)"
cluster_fault_json="target/cluster_fault_smoke.json"
cargo run --release -p atlahs_bench --bin atlahs -- \
    cluster --fault-smoke --threads 2 --quiet --out "$cluster_fault_json"
diff -u tests/goldens/cluster_fault_smoke.json "$cluster_fault_json" \
    || { echo "cluster fault smoke: report drifted from tests/goldens/cluster_fault_smoke.json" >&2; exit 1; }

step "branch smoke (atlahs sweep --branch-smoke vs golden report)"
branch_json="target/branch_smoke.json"
cargo run --release -p atlahs_bench --bin atlahs -- \
    sweep --branch-smoke --threads 2 --quiet --out "$branch_json"
diff -u tests/goldens/branch_smoke.json "$branch_json" \
    || { echo "branch smoke: report drifted from tests/goldens/branch_smoke.json" >&2; exit 1; }

step "stochastic smoke (atlahs sweep --stochastic-smoke vs golden report)"
stochastic_json="target/stochastic_smoke.json"
cargo run --release -p atlahs_bench --bin atlahs -- \
    sweep --stochastic-smoke --threads 2 --quiet --out "$stochastic_json"
diff -u tests/goldens/stochastic_smoke.json "$stochastic_json" \
    || { echo "stochastic smoke: report drifted from tests/goldens/stochastic_smoke.json" >&2; exit 1; }

step "determinism audit (atlahs lint, docs/DETERMINISM.md)"
cargo run --release -p atlahs_bench --bin atlahs -- lint

printf '\nCI gate passed.\n'
