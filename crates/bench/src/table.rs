//! Aligned text tables for harness output.

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity must match header");
        self.rows.push(row);
        self
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with every column padded to its widest cell. The first
    /// column is left-aligned (labels); the rest right-aligned (numbers).
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                if i == 0 {
                    out.push_str(c);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(c);
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// RFC 4180 CSV field escaping: fields containing a comma, double
/// quote, or line break are wrapped in double quotes with embedded
/// quotes doubled; anything else passes through byte-identical, so
/// existing report outputs keep their exact historical form. Needed
/// because cell keys are not comma-free — churn fault labels embed the
/// inline event grammar (e.g. `churn:0;r0;d,5;r0;u`), which would
/// otherwise shear the row into extra columns.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\r', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// `12_345_678` ns → `"12.35 ms"` style human time.
pub fn fmt_ns(ns: u64) -> String {
    let f = ns as f64;
    if f >= 1e9 {
        format!("{:.3} s", f / 1e9)
    } else if f >= 1e6 {
        format!("{:.2} ms", f / 1e6)
    } else if f >= 1e3 {
        format!("{:.2} µs", f / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bytes → human size (KiB/MiB/GiB).
pub fn fmt_bytes(b: u64) -> String {
    let f = b as f64;
    if f >= (1 << 30) as f64 {
        format!("{:.2} GiB", f / (1u64 << 30) as f64)
    } else if f >= (1 << 20) as f64 {
        format!("{:.2} MiB", f / (1u64 << 20) as f64)
    } else if f >= (1 << 10) as f64 {
        format!("{:.2} KiB", f / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Signed prediction error of `predicted` against `measured`, in percent
/// (negative = underprediction), the paper's red annotations.
pub fn pct_err(measured: u64, predicted: u64) -> f64 {
    if measured == 0 {
        return 0.0;
    }
    (predicted as f64 - measured as f64) / measured as f64 * 100.0
}

/// `"+4.2%"` / `"-1.3%"` formatting of a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["app", "time"]);
        t.row(["x", "1"]);
        t.row(["longer", "12345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[3].ends_with("12345"));
        // Numeric column right-aligned: "1" under the end of "12345".
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn human_time() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000), "2.00 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210 s");
    }

    #[test]
    fn human_bytes() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(5 << 20), "5.00 MiB");
        assert_eq!(fmt_bytes(3 << 30), "3.00 GiB");
    }

    #[test]
    fn csv_field_escapes_per_rfc4180() {
        // Simple fields pass through byte-identical — existing CSV
        // outputs must not change shape.
        assert_eq!(
            csv_field("ai-fattree:16:4/ring:8:131072:1/packed/lgs"),
            "ai-fattree:16:4/ring:8:131072:1/packed/lgs"
        );
        assert_eq!(csv_field(""), "");
        // Commas (churn labels), quotes, and line breaks get quoted with
        // embedded quotes doubled.
        assert_eq!(csv_field("churn:0;r0;d,5;r0;u"), "\"churn:0;r0;d,5;r0;u\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_field("a\nb"), "\"a\nb\"");
        assert_eq!(csv_field("a\rb"), "\"a\rb\"");
    }

    #[test]
    fn errors_signed() {
        assert!((pct_err(100, 104) - 4.0).abs() < 1e-9);
        assert!((pct_err(100, 97) + 3.0).abs() < 1e-9);
        assert_eq!(fmt_pct(4.0), "+4.0%");
        assert_eq!(fmt_pct(-1.25), "-1.2%");
    }
}
