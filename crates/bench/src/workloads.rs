//! The paper's workload suites at configurable scale, shared by every
//! harness binary.
//!
//! Scale semantics: `scale` multiplies model/problem *sizes* (parameter
//! bytes, halo bytes, compute time), never the rank/GPU counts — the
//! paper's topologies and parallelization layouts are preserved exactly,
//! so congestion structure (who shares which link) is authentic while
//! packet-level simulation stays tractable.

use atlahs_goal::GoalSchedule;
use atlahs_htsim::topology::{LinkParams, TopologyConfig};
use atlahs_schedgen::{mpi2goal, nccl2goal};
use atlahs_tracers::mpi::{self, HpcAppConfig, MpiTrace, Scaling};
use atlahs_tracers::nccl::{presets, trace_llm, LlmConfig, NsysReport};
use atlahs_tracers::storage::{financial_like, OltpConfig, SpcTrace};

// ---------------------------------------------------------------- AI ----

/// One AI validation case (a Fig. 8 column).
#[derive(Debug, Clone)]
pub struct AiCase {
    /// Model name, e.g. `Llama 7B`.
    pub name: String,
    /// `16 GPUs 4 Nodes` style summary.
    pub geometry: String,
    /// `TP1 PP1 DP16` style parallelization summary.
    pub parallelism: String,
    pub cfg: LlmConfig,
}

impl AiCase {
    fn from_cfg(cfg: LlmConfig) -> AiCase {
        AiCase {
            name: cfg.name.clone(),
            geometry: format!("{} GPUs {} Nodes", cfg.gpus(), cfg.nodes()),
            parallelism: format!(
                "TP{} PP{} DP{}{}",
                cfg.tp,
                cfg.pp,
                cfg.dp,
                if cfg.ep > 1 { format!(" EP{}", cfg.ep) } else { String::new() }
            ),
            cfg,
        }
    }
}

/// The six Fig. 8 training configurations.
///
/// `quick` caps the batch at two microbatches per pipeline and runs one
/// iteration — the per-iteration communication *structure* (rings,
/// pipelines, expert alltoalls, bucketed DP allreduce) is unchanged.
pub fn ai_suite(scale: f64, quick: bool, seed: u64) -> Vec<AiCase> {
    let mut cfgs = vec![
        presets::llama7b_dp16(scale),
        presets::llama7b_dp128(scale),
        presets::llama70b(scale),
        presets::mistral8x7b(scale),
        presets::moe8x13b(scale),
        presets::moe8x70b(scale),
    ];
    for c in &mut cfgs {
        c.seed = seed;
        if quick {
            c.iterations = 1;
            c.batch = c.batch.min(2 * c.dp);
        }
    }
    cfgs.into_iter().map(AiCase::from_cfg).collect()
}

/// Trace an LLM config and lower it to a node-level GOAL schedule.
pub fn ai_goal(cfg: &LlmConfig) -> (NsysReport, GoalSchedule) {
    let report = trace_llm(cfg);
    let goal = nccl2goal::convert(&report, &nccl2goal::NcclToGoalConfig::default())
        .expect("LLM trace must lower to GOAL");
    (report, goal)
}

/// The Alps-class AI fabric: fully provisioned two-level fat tree,
/// 200 Gb/s links (25 GB/s per direction, the paper's Slingshot rate).
pub fn ai_topology(nodes: usize) -> TopologyConfig {
    ai_topology_oversubscribed(nodes, 1)
}

/// Same fabric with `ratio:1` ToR→core oversubscription (Figs. 12/13).
pub fn ai_topology_oversubscribed(nodes: usize, ratio: usize) -> TopologyConfig {
    // 8 hosts per ToR keeps multiple ToRs in play from 16 nodes up.
    let hosts_per_tor = if nodes <= 8 { nodes.max(2) } else { 8 };
    let link = LinkParams { gbps: 200.0, latency_ns: 500 };
    TopologyConfig::FatTree2L {
        hosts: nodes,
        hosts_per_tor,
        uplinks_per_tor: (hosts_per_tor / ratio).max(1),
        edge: link,
        core: link,
    }
}

// --------------------------------------------------------------- HPC ----

/// Identifier of one HPC application skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpcApp {
    CloverLeaf,
    Hpcg,
    Lulesh,
    Lammps,
    Icon,
    OpenMx,
}

impl HpcApp {
    pub fn name(self) -> &'static str {
        match self {
            HpcApp::CloverLeaf => "CloverLeaf",
            HpcApp::Hpcg => "HPCG",
            HpcApp::Lulesh => "LULESH",
            HpcApp::Lammps => "LAMMPS",
            HpcApp::Icon => "ICON",
            HpcApp::OpenMx => "OpenMX",
        }
    }

    pub fn trace(self, cfg: &HpcAppConfig) -> MpiTrace {
        match self {
            HpcApp::CloverLeaf => mpi::cloverleaf(cfg),
            HpcApp::Hpcg => mpi::hpcg(cfg),
            HpcApp::Lulesh => mpi::lulesh(cfg),
            HpcApp::Lammps => mpi::lammps(cfg),
            HpcApp::Icon => mpi::icon(cfg),
            HpcApp::OpenMx => mpi::openmx(cfg),
        }
    }
}

/// One Fig. 10 column: app at a `(procs/nodes)` scale point.
#[derive(Debug, Clone)]
pub struct HpcCase {
    pub app: HpcApp,
    pub procs: usize,
    pub nodes: usize,
    pub scaling: Scaling,
}

impl HpcCase {
    pub fn label(&self) -> String {
        format!("{} ({}/{})", self.app.name(), self.procs, self.nodes)
    }
}

/// The fifteen Fig. 10 validation points. CloverLeaf–LAMMPS are the weak
/// scaling set, ICON and OpenMX the strong scaling set.
pub fn hpc_suite() -> Vec<HpcCase> {
    use HpcApp::*;
    let mk = |app, procs, nodes, scaling| HpcCase { app, procs, nodes, scaling };
    vec![
        mk(CloverLeaf, 128, 8, Scaling::Weak),
        mk(Hpcg, 128, 8, Scaling::Weak),
        mk(Hpcg, 512, 32, Scaling::Weak),
        mk(Hpcg, 1024, 64, Scaling::Weak),
        mk(Lulesh, 128, 8, Scaling::Weak),
        mk(Lulesh, 432, 27, Scaling::Weak),
        mk(Lulesh, 1024, 64, Scaling::Weak),
        mk(Lammps, 128, 8, Scaling::Weak),
        mk(Lammps, 512, 32, Scaling::Weak),
        mk(Lammps, 1024, 64, Scaling::Weak),
        mk(Icon, 128, 8, Scaling::Strong),
        mk(Icon, 512, 32, Scaling::Strong),
        mk(Icon, 1024, 64, Scaling::Strong),
        mk(OpenMx, 128, 8, Scaling::Strong),
        mk(OpenMx, 512, 32, Scaling::Strong),
    ]
}

/// Trace one HPC case at `scale` and lower it to GOAL.
///
/// Strong-scaling cases start from a proportionally larger total problem
/// (the whole point of strong scaling is dividing a *fixed, large* problem
/// across more ranks), so per-rank compute stays in the realistic
/// mostly-computation regime the paper's applications exhibit.
pub fn hpc_goal(case: &HpcCase, scale: f64, seed: u64) -> (MpiTrace, GoalSchedule) {
    let base_compute = ((2_000_000.0 * scale) as u64).max(50_000);
    let cfg = HpcAppConfig {
        ranks: case.procs,
        iterations: ((10.0 * scale).ceil() as u32).max(2),
        scaling: case.scaling,
        compute_ns: match case.scaling {
            Scaling::Weak => base_compute,
            // Strong-scaling totals are sized so per-rank compute stays
            // dominant at the largest rank counts (the paper's ICON and
            // OpenMX run at 69–92% non-overlapped computation).
            Scaling::Strong => base_compute * case.procs as u64 * 4,
        },
        halo_bytes: ((64.0 * 1024.0 * scale) as u64).max(1024),
        noise: 0.02,
        seed,
    };
    let trace = case.app.trace(&cfg);
    let goal = mpi2goal::convert(&trace, &mpi2goal::MpiToGoalConfig::default())
        .expect("MPI trace must lower to GOAL");
    (trace, goal)
}

/// HPC fabric link class (ConnectX-3-era 56 Gb/s).
const HPC_LINK: LinkParams = LinkParams { gbps: 56.0, latency_ns: 600 };

/// The CSCS test-bed-class HPC fabric: 56 Gb/s links, one ToR per
/// physical node's worth of MPI ranks (fat tree, fully provisioned).
pub fn hpc_topology(procs: usize, nodes: usize) -> TopologyConfig {
    let per_node = (procs / nodes.max(1)).max(1);
    TopologyConfig::FatTree2L {
        hosts: procs,
        hosts_per_tor: per_node,
        uplinks_per_tor: per_node,
        edge: HPC_LINK,
        core: HPC_LINK,
    }
}

/// LogGOPS parameters *calibrated against the testbed emulator* for a
/// fabric built from `link`, the way the paper fits them to the physical
/// cluster with Netgauge (§5.3): `L` is the 4-hop cross-ToR path latency
/// (host→ToR→core→ToR→host), `o` the host overhead, `G` the inverse of
/// the effective (efficiency-derated) link bandwidth. The single source
/// of the calibration constants — the HPC/AI helpers below and the
/// scenario-sweep engine all delegate here.
pub fn lgs_params_for_link(link: LinkParams) -> atlahs_lgs::LogGopsParams {
    let testbed_efficiency = 0.92; // TestbedConfig::new default
    let host_o = 250; // TestbedConfig::new default
    atlahs_lgs::LogGopsParams {
        l: 4 * link.latency_ns,
        o: host_o,
        g: 0,
        big_g: 1.0 / (link.bytes_per_ns() * testbed_efficiency),
        big_o: 0.0,
        s: 0,
    }
}

/// LogGOPS parameters calibrated against the testbed on the HPC fabric.
pub fn hpc_lgs_params() -> atlahs_lgs::LogGopsParams {
    lgs_params_for_link(HPC_LINK)
}

/// LogGOPS parameters calibrated against the testbed on the AI fabric.
pub fn ai_lgs_params(nodes: usize) -> atlahs_lgs::LogGopsParams {
    let link = match ai_topology(nodes) {
        TopologyConfig::FatTree2L { edge, .. } => edge,
        TopologyConfig::SingleSwitch { link, .. } => link,
        TopologyConfig::Dragonfly { edge, .. } => edge,
    };
    lgs_params_for_link(link)
}

// ---------------------------------------------------------- Synthetic ----

/// Cross-ToR permutation: every rank sends `bytes` to the rank half a
/// ring away (tag = sender), so with ≤ `hosts/2` hosts per ToR every
/// flow crosses the core. Shared by the perf harness (`bench_engine`),
/// the criterion engine benches, and the determinism goldens — one
/// definition so they can never drift apart silently.
pub fn cross_tor_permutation(hosts: u32, bytes: u64) -> GoalSchedule {
    let mut b = atlahs_goal::GoalBuilder::new(hosts as usize);
    for h in 0..hosts {
        let dst = (h + hosts / 2) % hosts;
        b.send(h, dst, bytes, h);
        b.recv(dst, h, bytes, h);
    }
    b.build().expect("permutation is matched by construction")
}

// ------------------------------------------------------------ Storage ----

/// The Fig. 11 storage workload: Financial-distribution-like OLTP I/O.
pub fn storage_trace(operations: usize, seed: u64) -> SpcTrace {
    financial_like(&OltpConfig { operations, seed, ..OltpConfig::default() })
}

/// Same workload at a controlled offered load: `mean_gap_ns` is the mean
/// inter-arrival gap per the whole trace (smaller = more concurrent
/// requests in flight = more core congestion).
pub fn storage_trace_at_load(operations: usize, mean_gap_ns: u64, seed: u64) -> SpcTrace {
    financial_like(&OltpConfig { operations, mean_gap_ns, seed, ..OltpConfig::default() })
}

/// Fat tree fronting the Direct Drive cluster; `ratio` = 1 (fully
/// provisioned) or 8 (the paper's 8:1 oversubscription).
pub fn storage_topology(hosts: usize, ratio: usize) -> TopologyConfig {
    let hosts_per_tor = 8;
    let padded = hosts.div_ceil(hosts_per_tor) * hosts_per_tor;
    let link = LinkParams { gbps: 100.0, latency_ns: 500 };
    TopologyConfig::FatTree2L {
        hosts: padded,
        hosts_per_tor,
        uplinks_per_tor: (hosts_per_tor / ratio).max(1),
        edge: link,
        core: link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ai_suite_matches_fig8_geometry() {
        let suite = ai_suite(0.01, true, 7);
        assert_eq!(suite.len(), 6);
        let geoms: Vec<&str> = suite.iter().map(|c| c.geometry.as_str()).collect();
        assert_eq!(
            geoms,
            vec![
                "16 GPUs 4 Nodes",
                "128 GPUs 32 Nodes",
                "256 GPUs 64 Nodes",
                "64 GPUs 16 Nodes",
                "128 GPUs 32 Nodes",
                "256 GPUs 64 Nodes",
            ]
        );
        assert_eq!(suite[2].parallelism, "TP1 PP8 DP32");
        assert_eq!(suite[5].parallelism, "TP4 PP8 DP8 EP8");
    }

    #[test]
    fn quick_mode_caps_batch() {
        let quick = ai_suite(0.01, true, 7);
        let full = ai_suite(0.01, false, 7);
        assert!(quick[1].cfg.batch <= full[1].cfg.batch);
        assert_eq!(quick[0].cfg.iterations, 1);
    }

    #[test]
    fn ai_goal_produces_node_ranks() {
        let suite = ai_suite(0.005, true, 7);
        let (report, goal) = ai_goal(&suite[0].cfg);
        assert_eq!(report.num_gpus(), 16);
        assert_eq!(goal.num_ranks(), 4);
        atlahs_goal::stats::check_matching(&goal).unwrap();
    }

    #[test]
    fn hpc_suite_has_fifteen_points() {
        let suite = hpc_suite();
        assert_eq!(suite.len(), 15);
        assert_eq!(suite[0].label(), "CloverLeaf (128/8)");
        assert_eq!(suite[14].label(), "OpenMX (512/32)");
        let weak = suite.iter().filter(|c| c.scaling == Scaling::Weak).count();
        assert_eq!(weak, 10);
    }

    #[test]
    fn hpc_goal_builds_and_matches() {
        let case = &hpc_suite()[0];
        let (trace, goal) = hpc_goal(case, 0.05, 3);
        assert_eq!(trace.num_ranks(), 128);
        assert_eq!(goal.num_ranks(), 128);
        atlahs_goal::stats::check_matching(&goal).unwrap();
    }

    #[test]
    fn topologies_fit_their_workloads() {
        assert_eq!(ai_topology(4).num_hosts(), 4);
        assert_eq!(ai_topology(64).num_hosts(), 64);
        assert_eq!(hpc_topology(128, 8).num_hosts(), 128);
        assert!(storage_topology(47, 8).num_hosts() >= 47);
        // Oversubscription must reduce the uplink count.
        if let TopologyConfig::FatTree2L { uplinks_per_tor, hosts_per_tor, .. } =
            ai_topology_oversubscribed(64, 4)
        {
            assert_eq!(hosts_per_tor / uplinks_per_tor, 4);
        } else {
            panic!("expected fat tree");
        }
    }

    #[test]
    fn storage_trace_is_financial_like() {
        let t = storage_trace(2000, 11);
        assert_eq!(t.len(), 2000);
        let wf = t.write_fraction();
        assert!(wf > 0.5, "Financial is write-heavy: {wf}");
    }

    #[test]
    fn scale_shrinks_hpc_traces() {
        let case = &hpc_suite()[1];
        let (_, small) = hpc_goal(case, 0.02, 3);
        let (_, big) = hpc_goal(case, 0.2, 3);
        let sb = atlahs_goal::ScheduleStats::of(&small).bytes_sent;
        let bb = atlahs_goal::ScheduleStats::of(&big).bytes_sent;
        assert!(bb > sb);
    }
}
