//! Declarative scenario grids: the cartesian space the paper's evaluation
//! figures are points in.
//!
//! A [`ScenarioGrid`] names a set of topologies, workloads, congestion
//! controls, placement strategies, and backends; [`ScenarioGrid::expand`]
//! takes the cartesian product and drops infeasible combinations (workload
//! larger than the fabric, CC-less backends duplicated per CC), yielding
//! [`ScenarioCell`]s. Each cell is a fully specified, *single-threaded,
//! deterministic* simulation: its seed is derived from the grid seed and
//! the cell's workload label (see [`cell_seed`]; stable under reordering
//! and subsetting of the grid), so any cell can be re-run in isolation
//! and must reproduce its sweep result bit for bit, and cells sharing a
//! workload simulate the same generated instance.
//!
//! [`run_cell`] executes one cell; the parallel executor lives in
//! [`crate::sweep`].

use std::sync::Arc;
use std::time::Duration;

use atlahs_core::backends::IdealBackend;
use atlahs_core::faultgen::{self, ChurnEvent, Distribution};
use atlahs_core::{allocate, PlacementStrategy};
use atlahs_goal::merge::{compose, PlacedJob};
use atlahs_goal::GoalSchedule;
use atlahs_htsim::engine::{HtsimBackend, HtsimConfig, NetStats};
use atlahs_htsim::fault::{
    normalize_windows, select_fault_domains, select_fault_ports, FaultKind, PortFault,
};
use atlahs_htsim::stochastic::{LinkModel, LinkModelSpec};
use atlahs_htsim::topology::{LinkParams, Topology, TopologyConfig};
use atlahs_htsim::CcAlgo;
use atlahs_lgs::{LgsBackend, LogGopsParams, StragglerSpec};
use atlahs_schedgen::synthetic;
use atlahs_tracers::mpi::Scaling;
use atlahs_tracers::nccl::{presets, LlmConfig};

use crate::runner::{self, DistSummary};
use crate::workloads::{self, HpcApp, HpcCase};

// ------------------------------------------------------------ topology ----

/// One topology axis value.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The Alps-class AI fabric: 200 Gb/s two-level fat tree with
    /// `oversub`:1 ToR→core oversubscription (1 = fully provisioned).
    AiFatTree { nodes: usize, oversub: usize },
    /// The CSCS-class HPC fabric: 56 Gb/s fully provisioned fat tree.
    HpcFatTree { procs: usize, nodes: usize },
    /// The Direct Drive storage fabric: 100 Gb/s fat tree, `oversub`:1.
    StorageFatTree { hosts: usize, oversub: usize },
    /// Balanced dragonfly (`groups` × `routers` × `hosts_per_router`).
    Dragonfly { groups: usize, routers: usize, hosts_per_router: usize },
    /// All hosts behind one output-queued crossbar.
    SingleSwitch { hosts: usize },
}

impl TopologySpec {
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::AiFatTree { nodes, oversub } => format!("ai-fattree:{nodes}:{oversub}"),
            TopologySpec::HpcFatTree { procs, nodes } => format!("hpc-fattree:{procs}:{nodes}"),
            TopologySpec::StorageFatTree { hosts, oversub } => {
                format!("storage-fattree:{hosts}:{oversub}")
            }
            TopologySpec::Dragonfly { groups, routers, hosts_per_router } => {
                format!("dragonfly:{groups}:{routers}:{hosts_per_router}")
            }
            TopologySpec::SingleSwitch { hosts } => format!("switch:{hosts}"),
        }
    }

    /// Lower to the packet-level topology.
    pub fn config(&self) -> TopologyConfig {
        match *self {
            TopologySpec::AiFatTree { nodes, oversub } => {
                workloads::ai_topology_oversubscribed(nodes, oversub)
            }
            TopologySpec::HpcFatTree { procs, nodes } => workloads::hpc_topology(procs, nodes),
            TopologySpec::StorageFatTree { hosts, oversub } => {
                workloads::storage_topology(hosts, oversub)
            }
            TopologySpec::Dragonfly { groups, routers, hosts_per_router } => {
                TopologyConfig::dragonfly(groups, routers, hosts_per_router)
            }
            TopologySpec::SingleSwitch { hosts } => {
                TopologyConfig::SingleSwitch { hosts, link: LinkParams::default() }
            }
        }
    }

    /// Physical node count of the fabric (the cluster size placements
    /// allocate against).
    pub fn hosts(&self) -> usize {
        self.config().num_hosts()
    }

    /// The edge (host-facing) link class, from which the message-level
    /// and ideal backends derive their rate/latency parameters.
    pub fn edge_link(&self) -> LinkParams {
        match self.config() {
            TopologyConfig::SingleSwitch { link, .. } => link,
            TopologyConfig::FatTree2L { edge, .. } => edge,
            TopologyConfig::Dragonfly { edge, .. } => edge,
        }
    }

    /// Parse a CLI token (the inverse of [`TopologySpec::label`]).
    pub fn parse(tok: &str) -> Result<TopologySpec, String> {
        let parts: Vec<&str> = tok.split(':').collect();
        let n = |s: &str| -> Result<usize, String> {
            s.parse().map_err(|_| format!("bad number `{s}` in topology `{tok}`"))
        };
        match parts.as_slice() {
            ["ai-fattree", nodes] => Ok(TopologySpec::AiFatTree { nodes: n(nodes)?, oversub: 1 }),
            ["ai-fattree", nodes, ov] => {
                Ok(TopologySpec::AiFatTree { nodes: n(nodes)?, oversub: n(ov)? })
            }
            ["hpc-fattree", procs, nodes] => {
                Ok(TopologySpec::HpcFatTree { procs: n(procs)?, nodes: n(nodes)? })
            }
            ["storage-fattree", hosts] => {
                Ok(TopologySpec::StorageFatTree { hosts: n(hosts)?, oversub: 1 })
            }
            ["storage-fattree", hosts, ov] => {
                Ok(TopologySpec::StorageFatTree { hosts: n(hosts)?, oversub: n(ov)? })
            }
            ["dragonfly", g, r, h] => Ok(TopologySpec::Dragonfly {
                groups: n(g)?,
                routers: n(r)?,
                hosts_per_router: n(h)?,
            }),
            ["switch", hosts] => Ok(TopologySpec::SingleSwitch { hosts: n(hosts)? }),
            _ => Err(format!(
                "unknown topology `{tok}` (expected ai-fattree:<nodes>[:<oversub>], \
                 hpc-fattree:<procs>:<nodes>, storage-fattree:<hosts>[:<oversub>], \
                 dragonfly:<groups>:<routers>:<hosts>, switch:<hosts>)"
            )),
        }
    }
}

// ------------------------------------------------------------ workload ----

/// The six Fig. 8 LLM training presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmPreset {
    Llama7bDp16,
    Llama7bDp128,
    Llama70b,
    Mistral8x7b,
    Moe8x13b,
    Moe8x70b,
}

impl LlmPreset {
    pub fn name(self) -> &'static str {
        match self {
            LlmPreset::Llama7bDp16 => "llama7b-dp16",
            LlmPreset::Llama7bDp128 => "llama7b-dp128",
            LlmPreset::Llama70b => "llama70b",
            LlmPreset::Mistral8x7b => "mistral8x7b",
            LlmPreset::Moe8x13b => "moe8x13b",
            LlmPreset::Moe8x70b => "moe8x70b",
        }
    }

    pub fn cfg(self, scale: f64) -> LlmConfig {
        match self {
            LlmPreset::Llama7bDp16 => presets::llama7b_dp16(scale),
            LlmPreset::Llama7bDp128 => presets::llama7b_dp128(scale),
            LlmPreset::Llama70b => presets::llama70b(scale),
            LlmPreset::Mistral8x7b => presets::mistral8x7b(scale),
            LlmPreset::Moe8x13b => presets::moe8x13b(scale),
            LlmPreset::Moe8x70b => presets::moe8x70b(scale),
        }
    }

    fn parse(tok: &str) -> Result<LlmPreset, String> {
        Ok(match tok {
            "llama7b-dp16" => LlmPreset::Llama7bDp16,
            "llama7b-dp128" => LlmPreset::Llama7bDp128,
            "llama70b" => LlmPreset::Llama70b,
            "mistral8x7b" => LlmPreset::Mistral8x7b,
            "moe8x13b" => LlmPreset::Moe8x13b,
            "moe8x70b" => LlmPreset::Moe8x70b,
            _ => return Err(format!("unknown LLM preset `{tok}`")),
        })
    }
}

/// One workload axis value. Every variant lowers to one (or, for
/// [`WorkloadSpec::MultiJob`], several) GOAL schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Ring rotation ([`synthetic::ring`]).
    Ring { ranks: usize, bytes: u64, laps: u32 },
    /// Half-ring shift permutation ([`synthetic::permutation`]).
    Permutation { ranks: usize, bytes: u64, shift: usize, repeat: u32 },
    /// Uniform random traffic ([`synthetic::uniform_random`]).
    UniformRandom { ranks: usize, bytes: u64, msgs: usize },
    /// N-to-one incast onto rank 0 ([`synthetic::incast`]; `ranks`
    /// includes the sink).
    Incast { ranks: usize, bytes: u64, repeat: u32 },
    /// MoE expert-parallel all-to-all ([`synthetic::moe_alltoall`]).
    MoeAllToAll { ranks: usize, group: usize, bytes: u64, layers: u32, compute_ns: u64 },
    /// Pipeline-parallel LLM training ([`synthetic::pipeline_parallel`]).
    PipelineLlm { stages: usize, microbatches: u32, bytes: u64, compute_ns: u64 },
    /// Fan-in storage reads ([`synthetic::storage_incast`]).
    StorageIncast { clients: usize, servers: usize, bytes: u64, reads: u32 },
    /// Traced LLM training iteration (Fig. 8 presets; node-level GOAL).
    Llm { preset: LlmPreset, scale: f64, iterations: u32, cap_batch: bool },
    /// Traced HPC application skeleton (Fig. 10 apps).
    Hpc { app: HpcApp, procs: usize, nodes: usize, scale: f64 },
    /// Direct Drive OLTP storage trace at a controlled offered load
    /// (the Fig. 11 workload; arrival timestamps divided by `compress`).
    Storage { ops: usize, gap_ns: u64, compress: u64 },
    /// Several jobs co-scheduled on one fabric (Fig. 13); the cell's
    /// placement strategy decides who gets which nodes.
    MultiJob { jobs: Vec<WorkloadSpec> },
}

impl WorkloadSpec {
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Ring { ranks, bytes, laps } => format!("ring:{ranks}:{bytes}:{laps}"),
            WorkloadSpec::Permutation { ranks, bytes, shift, repeat } => {
                format!("perm:{ranks}:{bytes}:{shift}:{repeat}")
            }
            WorkloadSpec::UniformRandom { ranks, bytes, msgs } => {
                format!("uniform:{ranks}:{bytes}:{msgs}")
            }
            WorkloadSpec::Incast { ranks, bytes, repeat } => {
                format!("incast:{ranks}:{bytes}:{repeat}")
            }
            WorkloadSpec::MoeAllToAll { ranks, group, bytes, layers, compute_ns } => {
                format!("moe:{ranks}:{group}:{bytes}:{layers}:{compute_ns}")
            }
            WorkloadSpec::PipelineLlm { stages, microbatches, bytes, compute_ns } => {
                format!("pipeline:{stages}:{microbatches}:{bytes}:{compute_ns}")
            }
            WorkloadSpec::StorageIncast { clients, servers, bytes, reads } => {
                format!("storage-incast:{clients}:{servers}:{bytes}:{reads}")
            }
            WorkloadSpec::Llm { preset, scale, iterations, cap_batch } => {
                format!("llm:{}:{scale}:{iterations}:{cap_batch}", preset.name())
            }
            WorkloadSpec::Hpc { app, procs, nodes, scale } => {
                format!("hpc:{}:{procs}:{nodes}:{scale}", app.name().to_ascii_lowercase())
            }
            WorkloadSpec::Storage { ops, gap_ns, compress } => {
                format!("storage:{ops}:{gap_ns}:{compress}")
            }
            WorkloadSpec::MultiJob { jobs } => {
                let inner: Vec<String> = jobs.iter().map(|j| j.label()).collect();
                format!("multi[{}]", inner.join("+"))
            }
        }
    }

    /// Total ranks this workload occupies (sum over jobs).
    pub fn ranks(&self) -> usize {
        match self {
            WorkloadSpec::Ring { ranks, .. }
            | WorkloadSpec::Permutation { ranks, .. }
            | WorkloadSpec::UniformRandom { ranks, .. }
            | WorkloadSpec::Incast { ranks, .. }
            | WorkloadSpec::MoeAllToAll { ranks, .. } => *ranks,
            WorkloadSpec::PipelineLlm { stages, .. } => *stages,
            WorkloadSpec::StorageIncast { clients, servers, .. } => clients + servers,
            WorkloadSpec::Llm { preset, scale, .. } => preset.cfg(*scale).nodes() as usize,
            WorkloadSpec::Hpc { procs, .. } => *procs,
            WorkloadSpec::Storage { .. } => storage_layout().total_ranks(),
            WorkloadSpec::MultiJob { jobs } => jobs.iter().map(|j| j.ranks()).sum(),
        }
    }

    /// Lower to one GOAL schedule per job.
    ///
    /// Schedules come back in `Arc`s so the sweep executor can share one
    /// task arena per distinct (workload, seed) across every cell of a
    /// grid — a sweep never holds more than one copy of a workload's
    /// arena, no matter how many topology/CC/placement/backend cells
    /// reference it.
    pub fn build_jobs(&self, seed: u64) -> Vec<Arc<GoalSchedule>> {
        match self {
            WorkloadSpec::MultiJob { jobs } => {
                jobs.iter().flat_map(|j| j.build_jobs(seed)).collect()
            }
            other => vec![Arc::new(other.build_goal(seed))],
        }
    }

    fn build_goal(&self, seed: u64) -> GoalSchedule {
        match *self {
            WorkloadSpec::Ring { ranks, bytes, laps } => {
                synthetic::ring(ranks, bytes, laps).expect("ring is well-formed")
            }
            WorkloadSpec::Permutation { ranks, bytes, shift, repeat } => {
                synthetic::permutation(ranks, bytes, shift, repeat)
                    .expect("permutation is well-formed")
            }
            WorkloadSpec::UniformRandom { ranks, bytes, msgs } => {
                synthetic::uniform_random(ranks, bytes, msgs, seed)
                    .expect("uniform traffic is well-formed")
            }
            WorkloadSpec::Incast { ranks, bytes, repeat } => {
                assert!(ranks >= 2, "incast needs a sink and at least one sender");
                synthetic::incast(ranks - 1, bytes, repeat).expect("incast is well-formed")
            }
            WorkloadSpec::MoeAllToAll { ranks, group, bytes, layers, compute_ns } => {
                synthetic::moe_alltoall(ranks, group, bytes, layers, compute_ns)
                    .expect("moe all-to-all is well-formed")
            }
            WorkloadSpec::PipelineLlm { stages, microbatches, bytes, compute_ns } => {
                synthetic::pipeline_parallel(stages, microbatches, bytes, compute_ns)
                    .expect("pipeline is well-formed")
            }
            WorkloadSpec::StorageIncast { clients, servers, bytes, reads } => {
                synthetic::storage_incast(clients, servers, bytes, reads)
                    .expect("storage incast is well-formed")
            }
            WorkloadSpec::Llm { preset, scale, iterations, cap_batch } => {
                let mut cfg = preset.cfg(scale);
                cfg.seed = seed;
                cfg.iterations = iterations;
                if cap_batch {
                    cfg.batch = cfg.batch.min(2 * cfg.dp);
                }
                let (_, goal) = workloads::ai_goal(&cfg);
                goal
            }
            WorkloadSpec::Hpc { app, procs, nodes, scale } => {
                let case = HpcCase { app, procs, nodes, scaling: hpc_scaling(app) };
                let (_, goal) = workloads::hpc_goal(&case, scale, seed);
                goal
            }
            WorkloadSpec::Storage { ops, gap_ns, compress } => {
                storage_goal(ops, gap_ns, compress, seed)
            }
            WorkloadSpec::MultiJob { .. } => unreachable!("handled in build_jobs"),
        }
    }

    /// Parse a CLI token (see `docs/SCENARIOS.md` for the grammar).
    /// Structural constraints (group divides ranks, enough ranks, …) are
    /// checked here so a bad token fails at the CLI, not inside a worker.
    pub fn parse(tok: &str) -> Result<WorkloadSpec, String> {
        let spec = Self::parse_inner(tok)?;
        spec.check().map_err(|e| format!("workload `{tok}`: {e}"))?;
        Ok(spec)
    }

    /// Validate structural constraints the generators assert. Zero-work
    /// repetition counts are rejected too: an empty schedule is useless in
    /// a sweep and a hard error in the dynamic cluster engine.
    fn check(&self) -> Result<(), String> {
        match *self {
            WorkloadSpec::Ring { ranks, laps, .. } if ranks < 2 || laps < 1 => {
                Err("a ring needs at least 2 ranks and 1 lap".into())
            }
            WorkloadSpec::Permutation { ranks, shift, repeat, .. }
                if ranks < 2 || shift % ranks == 0 || repeat < 1 =>
            {
                Err("shift must move data (shift % ranks != 0, repeat >= 1)".into())
            }
            WorkloadSpec::UniformRandom { ranks, msgs, .. } if ranks < 2 || msgs < 1 => {
                Err("uniform traffic needs at least 2 ranks and 1 message".into())
            }
            WorkloadSpec::Incast { ranks, repeat, .. } if ranks < 2 || repeat < 1 => {
                Err("incast needs a sink, at least one sender, and 1 repeat".into())
            }
            WorkloadSpec::MoeAllToAll { ranks, group, layers, .. }
                if group < 2 || ranks % group != 0 || layers < 1 =>
            {
                Err("EP group must be >= 2 and divide the rank count; layers >= 1".into())
            }
            WorkloadSpec::PipelineLlm { stages, microbatches, .. }
                if stages < 2 || microbatches < 1 =>
            {
                Err("a pipeline needs >= 2 stages and >= 1 microbatch".into())
            }
            WorkloadSpec::StorageIncast { clients, servers, reads, .. }
                if clients < 1 || servers < 1 || reads < 1 =>
            {
                Err("need at least one client, one server, and one read".into())
            }
            WorkloadSpec::Llm { scale, .. } | WorkloadSpec::Hpc { scale, .. }
                if !(scale > 0.0 && scale <= 1.0) =>
            {
                Err("scale must be in (0, 1]".into())
            }
            _ => Ok(()),
        }
    }

    fn parse_inner(tok: &str) -> Result<WorkloadSpec, String> {
        let parts: Vec<&str> = tok.split(':').collect();
        fn num<T: std::str::FromStr>(s: &str, tok: &str) -> Result<T, String> {
            s.parse().map_err(|_| format!("bad number `{s}` in workload `{tok}`"))
        }
        let n = |s: &str| num::<usize>(s, tok);
        let b = |s: &str| num::<u64>(s, tok);
        let r = |s: &str| num::<u32>(s, tok);
        match parts.as_slice() {
            ["ring", ranks, bytes, laps] => {
                Ok(WorkloadSpec::Ring { ranks: n(ranks)?, bytes: b(bytes)?, laps: r(laps)? })
            }
            ["perm", ranks, bytes, shift, repeat] => Ok(WorkloadSpec::Permutation {
                ranks: n(ranks)?,
                bytes: b(bytes)?,
                shift: n(shift)?,
                repeat: r(repeat)?,
            }),
            ["uniform", ranks, bytes, msgs] => Ok(WorkloadSpec::UniformRandom {
                ranks: n(ranks)?,
                bytes: b(bytes)?,
                msgs: n(msgs)?,
            }),
            ["incast", ranks, bytes, repeat] => {
                Ok(WorkloadSpec::Incast { ranks: n(ranks)?, bytes: b(bytes)?, repeat: r(repeat)? })
            }
            ["moe", ranks, group, bytes, layers, compute] => Ok(WorkloadSpec::MoeAllToAll {
                ranks: n(ranks)?,
                group: n(group)?,
                bytes: b(bytes)?,
                layers: r(layers)?,
                compute_ns: b(compute)?,
            }),
            ["pipeline", stages, mbs, bytes, compute] => Ok(WorkloadSpec::PipelineLlm {
                stages: n(stages)?,
                microbatches: r(mbs)?,
                bytes: b(bytes)?,
                compute_ns: b(compute)?,
            }),
            ["storage-incast", clients, servers, bytes, reads] => Ok(WorkloadSpec::StorageIncast {
                clients: n(clients)?,
                servers: n(servers)?,
                bytes: b(bytes)?,
                reads: r(reads)?,
            }),
            ["llm", preset, scale] => Ok(WorkloadSpec::Llm {
                preset: LlmPreset::parse(preset)?,
                scale: num::<f64>(scale, tok)?,
                iterations: 1,
                cap_batch: true,
            }),
            ["hpc", app, procs, nodes, scale] => Ok(WorkloadSpec::Hpc {
                app: parse_hpc_app(app)?,
                procs: n(procs)?,
                nodes: n(nodes)?,
                scale: num::<f64>(scale, tok)?,
            }),
            ["storage", ops, gap, compress] => Ok(WorkloadSpec::Storage {
                ops: n(ops)?,
                gap_ns: b(gap)?,
                compress: b(compress)?.max(1),
            }),
            _ => Err(format!(
                "unknown workload `{tok}` (expected ring:<ranks>:<bytes>:<laps>, \
                 perm:<ranks>:<bytes>:<shift>:<repeat>, uniform:<ranks>:<bytes>:<msgs>, \
                 incast:<ranks>:<bytes>:<repeat>, moe:<ranks>:<group>:<bytes>:<layers>:<ns>, \
                 pipeline:<stages>:<mbs>:<bytes>:<ns>, \
                 storage-incast:<clients>:<servers>:<bytes>:<reads>, llm:<preset>:<scale>, \
                 hpc:<app>:<procs>:<nodes>:<scale>, storage:<ops>:<gap>:<compress>)"
            )),
        }
    }
}

fn parse_hpc_app(tok: &str) -> Result<HpcApp, String> {
    Ok(match tok {
        "cloverleaf" => HpcApp::CloverLeaf,
        "hpcg" => HpcApp::Hpcg,
        "lulesh" => HpcApp::Lulesh,
        "lammps" => HpcApp::Lammps,
        "icon" => HpcApp::Icon,
        "openmx" => HpcApp::OpenMx,
        _ => return Err(format!("unknown HPC app `{tok}`")),
    })
}

fn hpc_scaling(app: HpcApp) -> Scaling {
    match app {
        HpcApp::Icon | HpcApp::OpenMx => Scaling::Strong,
        _ => Scaling::Weak,
    }
}

/// The Direct Drive cluster geometry every storage cell uses: 16 clients,
/// 4 CCS, 24 BSS (the Fig. 11 deployment).
pub fn storage_layout() -> atlahs_directdrive::DirectDriveLayout {
    atlahs_directdrive::DirectDriveLayout::standard(16, 4, 24)
}

/// NVMe/RDMA-class service times (the fabric-bound regime Fig. 11
/// studies; `ServiceParams::default` would pace traffic below the core).
pub fn storage_service_params() -> atlahs_directdrive::ServiceParams {
    atlahs_directdrive::ServiceParams {
        ccs_lookup_ns: 300,
        bss_read_base_ns: 1_500,
        bss_read_per_byte: 0.005,
        bss_write_base_ns: 2_000,
        bss_write_per_byte: 0.005,
        ..atlahs_directdrive::ServiceParams::default()
    }
}

fn storage_goal(ops: usize, gap_ns: u64, compress: u64, seed: u64) -> GoalSchedule {
    let layout = storage_layout();
    let mut trace = workloads::storage_trace_at_load(ops, gap_ns, seed);
    // Compress arrival timestamps to reach the fabric-saturating offered
    // load the paper's 5k-operation burst represents.
    for rec in &mut trace.records {
        rec.ts_ns /= compress.max(1);
    }
    let mut b = atlahs_goal::GoalBuilder::new(layout.total_ranks());
    atlahs_directdrive::trace_to_goal(&trace, &layout, &storage_service_params(), &mut b);
    b.build().expect("storage GOAL must build")
}

// ----------------------------------------------------------- placement ----

/// Placement axis value: [`PlacementStrategy`] minus the seed (Random
/// draws its permutation from the cell seed at run time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementSpec {
    Packed,
    Random,
    RoundRobin,
}

impl PlacementSpec {
    pub fn label(&self) -> &'static str {
        match self {
            PlacementSpec::Packed => "packed",
            PlacementSpec::Random => "random",
            PlacementSpec::RoundRobin => "roundrobin",
        }
    }

    pub fn strategy(&self, seed: u64) -> PlacementStrategy {
        match self {
            PlacementSpec::Packed => PlacementStrategy::Packed,
            PlacementSpec::Random => PlacementStrategy::Random { seed },
            PlacementSpec::RoundRobin => PlacementStrategy::RoundRobin,
        }
    }

    pub fn parse(tok: &str) -> Result<PlacementSpec, String> {
        Ok(match tok {
            "packed" => PlacementSpec::Packed,
            "random" => PlacementSpec::Random,
            "roundrobin" => PlacementSpec::RoundRobin,
            _ => return Err(format!("unknown placement `{tok}` (packed|random|roundrobin)")),
        })
    }
}

// --------------------------------------------------------------- fault ----

/// Fault/variability axis value.
///
/// A fault composes with every other axis but only *bites* on the layer
/// it models: link faults are packet-level (htsim families), the
/// straggler model is message-level (LGS), and the ideal reference is
/// never faulted (it stays the contention- and fault-free lower bound).
/// Grid expansion pairs each backend only with the faults that apply to
/// it — plus [`FaultSpec::None`], which is always present and leaves the
/// cell bit-identical to a grid without a fault axis.
///
/// Fault randomness (which links fail, which ranks straggle) is keyed by
/// `cell_seed(cell.seed, fault_label)` at run time, so the base cell
/// seed — and therefore every fault-free cell and every generated
/// workload instance — is untouched by the axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Perfect fabric (the default; label `none`).
    None,
    /// `links` seeded fault-candidate ports go down at `down_ns` and come
    /// back at `up_ns` (packet-level; recovered by retransmission).
    LinkFlap { links: usize, down_ns: u64, up_ns: u64 },
    /// `links` seeded ports run at `bw_pct`% bandwidth and `lat_pct`%
    /// latency between `from_ns` and `to_ns` (packet-level).
    Degrade { links: usize, bw_pct: u32, lat_pct: u32, from_ns: u64, to_ns: u64 },
    /// Each rank straggles with probability `prob_pct`%, inflating calc
    /// costs to `factor_pct`% plus (when `spread_pct > 0`) a per-rank
    /// Weibull(`spread_pct`, `shape`) draw, so stragglers are slowed by
    /// *different* amounts (message-level; see
    /// [`atlahs_lgs::StragglerSpec`]).
    Straggler { prob_pct: u32, factor_pct: u32, spread_pct: u32, shape: u32 },
    /// Gilbert–Elliott flapping: `links` seeded ports alternate between
    /// up (Exp mean `up_ns`) and down (Exp mean `down_ns`) sojourns,
    /// unrolled deterministically into down-windows over `[0, horizon_ns)`
    /// (packet-level).
    Markov { links: usize, up_ns: u64, down_ns: u64, horizon_ns: u64 },
    /// Correlated failure: `racks` seeded edge-tier failure domains (a
    /// ToR and every port touching it) go down whole between `from_ns`
    /// and `to_ns` (packet-level).
    RackFail { racks: usize, from_ns: u64, to_ns: u64 },
    /// Correlated failure: `switches` seeded core-tier failure domains
    /// down whole between `from_ns` and `to_ns` (packet-level).
    SwitchFail { switches: usize, from_ns: u64, to_ns: u64 },
    /// Churn-trace replay: a validated down/up event sequence per trace
    /// domain, mapped onto the topology's edge failure domains
    /// (packet-level; see [`atlahs_core::faultgen::parse_churn_trace`]).
    Churn { events: Vec<ChurnEvent> },
    /// Per-packet stochastic link model: seeded random loss (`loss:` in
    /// ppm, optionally per tier) or latency jitter (`jitter:` from the
    /// faultgen Q32 samplers), evaluated in the forwarding hot path via
    /// counter-based draw streams (packet-level; see
    /// [`atlahs_htsim::stochastic`]).
    Stochastic(LinkModelSpec),
}

impl FaultSpec {
    pub fn label(&self) -> String {
        match *self {
            FaultSpec::None => "none".to_string(),
            FaultSpec::LinkFlap { links, down_ns, up_ns } => {
                format!("linkflap:{links}:{down_ns}:{up_ns}")
            }
            FaultSpec::Degrade { links, bw_pct, lat_pct, from_ns, to_ns } => {
                format!("degrade:{links}:{bw_pct}:{lat_pct}:{from_ns}:{to_ns}")
            }
            // The short form is the pre-spread label: uniform-straggler
            // cells keep their historical keys (and therefore seeds and
            // goldens) byte-identical.
            FaultSpec::Straggler { prob_pct, factor_pct, spread_pct: 0, shape: _ } => {
                format!("straggler:{prob_pct}:{factor_pct}")
            }
            FaultSpec::Straggler { prob_pct, factor_pct, spread_pct, shape } => {
                format!("straggler:{prob_pct}:{factor_pct}:{spread_pct}:{shape}")
            }
            FaultSpec::Markov { links, up_ns, down_ns, horizon_ns } => {
                format!("markov:{links}:{up_ns}:{down_ns}:{horizon_ns}")
            }
            FaultSpec::RackFail { racks, from_ns, to_ns } => {
                format!("rackfail:{racks}:{from_ns}:{to_ns}")
            }
            FaultSpec::SwitchFail { switches, from_ns, to_ns } => {
                format!("switchfail:{switches}:{from_ns}:{to_ns}")
            }
            FaultSpec::Churn { ref events } => {
                format!("churn:{}", faultgen::churn_inline_label(events))
            }
            FaultSpec::Stochastic(spec) => spec.label(),
        }
    }

    /// Whether this fault can affect the given backend at all. Pairs
    /// where it cannot are skipped at expansion — they would duplicate
    /// the `none` cell under a misleading key.
    pub fn applies_to(&self, backend: &BackendSpec) -> bool {
        match self {
            FaultSpec::None => true,
            FaultSpec::LinkFlap { .. }
            | FaultSpec::Degrade { .. }
            | FaultSpec::Markov { .. }
            | FaultSpec::RackFail { .. }
            | FaultSpec::SwitchFail { .. }
            | FaultSpec::Churn { .. }
            | FaultSpec::Stochastic(_) => {
                matches!(backend, BackendSpec::Htsim { .. })
            }
            FaultSpec::Straggler { .. } => matches!(backend, BackendSpec::Lgs),
        }
    }

    /// Whether this is one of the distributional regimes (generated by
    /// `atlahs_core::faultgen` rather than fixed windows). Only these
    /// cells carry realized-fault telemetry in reports — the primitive
    /// regimes predate the telemetry and their goldens stay byte-exact.
    pub fn distributional(&self) -> bool {
        match self {
            FaultSpec::Markov { .. }
            | FaultSpec::RackFail { .. }
            | FaultSpec::SwitchFail { .. }
            | FaultSpec::Churn { .. } => true,
            FaultSpec::Straggler { spread_pct, .. } => *spread_pct > 0,
            _ => false,
        }
    }

    /// Parse a CLI token (the inverse of [`FaultSpec::label`]).
    ///
    /// `churn:` accepts either the inline event grammar
    /// (`<t_ns>;<domain>;<d|u>` joined by `,`) or `churn:@<path>` to load
    /// a trace file (text lines or a JSON array; see
    /// [`atlahs_core::faultgen::parse_churn_trace`]). Either way the
    /// resulting spec labels itself with the canonical inline form, so a
    /// file-fed cell keys and reproduces identically to its inline twin.
    pub fn parse(tok: &str) -> Result<FaultSpec, String> {
        fn num<T: std::str::FromStr>(s: &str, tok: &str) -> Result<T, String> {
            s.parse().map_err(|_| format!("bad number `{s}` in fault `{tok}`"))
        }
        if let Some(rest) = tok.strip_prefix("churn:") {
            let events = if let Some(path) = rest.strip_prefix('@') {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("fault `{tok}`: cannot read trace file: {e}"))?;
                churn_events_from_text(&text)?
            } else {
                faultgen::parse_churn_inline(rest)?
            };
            if events.is_empty() {
                return Err(format!("fault `{tok}`: the churn trace has no events"));
            }
            return Ok(FaultSpec::Churn { events });
        }
        // The `loss:`/`jitter:` token family (per-packet stochastic link
        // models) parses and validates in the htsim crate; `None` means
        // the token is not from that family and falls through.
        if let Some(parsed) = LinkModelSpec::parse(tok) {
            return parsed.map(FaultSpec::Stochastic);
        }
        let parts: Vec<&str> = tok.split(':').collect();
        match parts.as_slice() {
            ["none"] => Ok(FaultSpec::None),
            ["linkflap", links, down, up] => {
                let (down_ns, up_ns) = (num(down, tok)?, num(up, tok)?);
                if up_ns <= down_ns {
                    return Err(format!("fault `{tok}`: the window must close after it opens"));
                }
                Ok(FaultSpec::LinkFlap { links: num(links, tok)?, down_ns, up_ns })
            }
            ["degrade", links, bw, lat, from, to] => {
                let (from_ns, to_ns) = (num(from, tok)?, num(to, tok)?);
                if to_ns <= from_ns {
                    return Err(format!("fault `{tok}`: the window must close after it opens"));
                }
                let (bw_pct, lat_pct): (u32, u32) = (num(bw, tok)?, num(lat, tok)?);
                if bw_pct == 0 {
                    return Err(format!(
                        "fault `{tok}`: bw_pct must be >= 1 — a 0-bandwidth link never drains; \
                         model an outage with linkflap/markov/rackfail instead"
                    ));
                }
                if lat_pct == 0 {
                    return Err(format!(
                        "fault `{tok}`: lat_pct must be >= 1 — a zero-latency wire is not a \
                         degradation (100 = nominal, >100 = slower)"
                    ));
                }
                Ok(FaultSpec::Degrade { links: num(links, tok)?, bw_pct, lat_pct, from_ns, to_ns })
            }
            ["straggler", prob, factor] => Ok(FaultSpec::Straggler {
                prob_pct: num::<u32>(prob, tok)?.min(100),
                factor_pct: num(factor, tok)?,
                spread_pct: 0,
                shape: 1,
            }),
            ["straggler", prob, factor, spread, shape] => Ok(FaultSpec::Straggler {
                prob_pct: num::<u32>(prob, tok)?.min(100),
                factor_pct: num(factor, tok)?,
                spread_pct: num(spread, tok)?,
                shape: num::<u32>(shape, tok)?.clamp(1, 16),
            }),
            ["markov", links, up, down, horizon] => {
                let (up_ns, down_ns, horizon_ns): (u64, u64, u64) =
                    (num(up, tok)?, num(down, tok)?, num(horizon, tok)?);
                if up_ns == 0 || down_ns == 0 {
                    return Err(format!(
                        "fault `{tok}`: mean sojourn times must be >= 1 ns in both states"
                    ));
                }
                if horizon_ns == 0 {
                    return Err(format!("fault `{tok}`: the flapping horizon must be >= 1 ns"));
                }
                Ok(FaultSpec::Markov { links: num(links, tok)?, up_ns, down_ns, horizon_ns })
            }
            ["rackfail", racks, from, to] => {
                let (from_ns, to_ns) = (num(from, tok)?, num(to, tok)?);
                if to_ns <= from_ns {
                    return Err(format!("fault `{tok}`: the window must close after it opens"));
                }
                Ok(FaultSpec::RackFail { racks: num(racks, tok)?, from_ns, to_ns })
            }
            ["switchfail", switches, from, to] => {
                let (from_ns, to_ns) = (num(from, tok)?, num(to, tok)?);
                if to_ns <= from_ns {
                    return Err(format!("fault `{tok}`: the window must close after it opens"));
                }
                Ok(FaultSpec::SwitchFail { switches: num(switches, tok)?, from_ns, to_ns })
            }
            _ => Err(format!(
                "unknown fault `{tok}` (expected none, linkflap:<links>:<down_ns>:<up_ns>, \
                 degrade:<links>:<bw_pct>:<lat_pct>:<from_ns>:<to_ns>, \
                 straggler:<prob_pct>:<factor_pct>[:<spread_pct>:<shape>], \
                 markov:<links>:<up_ns>:<down_ns>:<horizon_ns>, \
                 rackfail:<racks>:<from_ns>:<to_ns>, \
                 switchfail:<switches>:<from_ns>:<to_ns>, \
                 churn:<t;dom;d|u,...> or churn:@<trace-file>, \
                 loss:<ppm>[:core|:edge], jitter:exp:<mean_ns>, \
                 jitter:weibull:<scale_ns>:<shape>, jitter:uniform:<max_ns>)"
            )),
        }
    }

    /// Lower a packet-level fault to concrete port windows on `topo`.
    /// Port choice is seeded by `fault_seed` (derive it with
    /// [`cell_seed`] from the cell seed and the fault label). Returns an
    /// empty list for `None`/`Straggler`.
    pub fn port_faults(&self, topo: &Topology, fault_seed: u64) -> Vec<PortFault> {
        match *self {
            FaultSpec::None | FaultSpec::Straggler { .. } | FaultSpec::Stochastic(_) => Vec::new(),
            FaultSpec::LinkFlap { links, down_ns, up_ns } => {
                select_fault_ports(topo, links, fault_seed)
                    .into_iter()
                    .map(|port| PortFault {
                        port,
                        start_ns: down_ns,
                        end_ns: up_ns,
                        kind: FaultKind::Down,
                    })
                    .collect()
            }
            FaultSpec::Degrade { links, bw_pct, lat_pct, from_ns, to_ns } => {
                select_fault_ports(topo, links, fault_seed)
                    .into_iter()
                    .map(|port| PortFault {
                        port,
                        start_ns: from_ns,
                        end_ns: to_ns,
                        kind: FaultKind::Degrade { bw_pct, lat_pct },
                    })
                    .collect()
            }
            FaultSpec::Markov { links, up_ns, down_ns, horizon_ns } => {
                let up = Distribution::Exp { mean_ns: up_ns };
                let down = Distribution::Exp { mean_ns: down_ns };
                let faults = select_fault_ports(topo, links, fault_seed)
                    .into_iter()
                    .flat_map(|port| {
                        // One derived seed per port: which ports the
                        // shuffle picked never changes *how* a given
                        // port flaps.
                        let per_port = faultgen::fnv_draw(fault_seed, "markov-port", port as u64);
                        faultgen::unroll_two_state(
                            per_port,
                            &up,
                            &down,
                            horizon_ns,
                            MAX_FLAP_WINDOWS,
                        )
                        .into_iter()
                        .map(move |(start_ns, end_ns)| PortFault {
                            port,
                            start_ns,
                            end_ns,
                            kind: FaultKind::Down,
                        })
                    })
                    .collect();
                // Per-port trains are disjoint by construction; normalize
                // only re-sorts across ports (and would catch a generator
                // regression).
                normalize_windows(faults).expect("two-state unroll yields disjoint down-windows")
            }
            FaultSpec::RackFail { racks, from_ns, to_ns } => {
                domain_windows(topo, racks, false, fault_seed, from_ns, to_ns)
            }
            FaultSpec::SwitchFail { switches, from_ns, to_ns } => {
                domain_windows(topo, switches, true, fault_seed, from_ns, to_ns)
            }
            FaultSpec::Churn { ref events } => {
                let domains = topo.failure_domains(false);
                let mut faults = Vec::new();
                let mut seen: Vec<u32> = events.iter().map(|e| e.domain).collect();
                seen.sort_unstable();
                seen.dedup();
                for dom in seen {
                    let ports = &domains[dom as usize % domains.len()];
                    for (start_ns, end_ns) in faultgen::churn_windows(events, dom) {
                        for &port in ports {
                            faults.push(PortFault {
                                port,
                                start_ns,
                                end_ns,
                                kind: FaultKind::Down,
                            });
                        }
                    }
                }
                // Two trace domains may alias to one topology domain;
                // same-kind overlap merges into the union window.
                normalize_windows(faults).expect("churn replay emits only Down windows")
            }
        }
    }

    /// The message-level straggler spec for this fault (`None` when the
    /// fault is not a straggler).
    pub fn straggler_spec(&self, fault_seed: u64) -> Option<StragglerSpec> {
        match *self {
            FaultSpec::Straggler { prob_pct, factor_pct, spread_pct, shape } => {
                Some(StragglerSpec { prob_pct, factor_pct, spread_pct, shape, seed: fault_seed })
            }
            _ => None,
        }
    }

    /// The per-packet stochastic link model for this fault (`None` when
    /// the fault is not stochastic). `fault_seed` — derived like every
    /// other fault sub-seed as `cell_seed(cell.seed, label)` — becomes
    /// the draw-stream seed, so the model never touches the engine's
    /// own RNG seed or any other cell's draws.
    pub fn link_model(&self, fault_seed: u64) -> Option<LinkModel> {
        match *self {
            FaultSpec::Stochastic(spec) => Some(spec.model(fault_seed)),
            _ => None,
        }
    }
}

/// Cap on generated windows per flapping port — a backstop against a
/// pathological `up_ns`/`down_ns` vs. horizon ratio, far above anything
/// a realistic spec unrolls.
const MAX_FLAP_WINDOWS: usize = 4096;

/// Down every port of `count` seeded failure domains for `[from_ns, to_ns)`.
fn domain_windows(
    topo: &Topology,
    count: usize,
    core_tier: bool,
    fault_seed: u64,
    from_ns: u64,
    to_ns: u64,
) -> Vec<PortFault> {
    let faults = select_fault_domains(topo, count, core_tier, fault_seed)
        .into_iter()
        .flatten()
        .map(|port| PortFault { port, start_ns: from_ns, end_ns: to_ns, kind: FaultKind::Down })
        .collect();
    // Edge domains partition the port table but core domains of a fat
    // tree share nothing either; dedup via merge keeps this robust if a
    // topology ever yields overlapping domains.
    normalize_windows(faults).expect("domain failure emits only Down windows")
}

/// Parse a churn trace file body: a JSON array of `[t_ns, domain, "down"|"up"]`
/// triples when the text starts with `[`, otherwise the line-oriented text
/// format of [`faultgen::parse_churn_trace`].
fn churn_events_from_text(text: &str) -> Result<Vec<ChurnEvent>, String> {
    if text.trim_start().starts_with('[') {
        let doc = crate::json::Json::parse(text).map_err(|e| format!("churn trace JSON: {e}"))?;
        let arr = doc.as_arr().ok_or("churn trace JSON: expected a top-level array")?;
        let mut events = Vec::with_capacity(arr.len());
        for (i, entry) in arr.iter().enumerate() {
            let trip = entry
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| format!("churn trace JSON: entry {i} is not a 3-element array"))?;
            let t_ns = trip[0]
                .as_f64()
                .filter(|t| *t >= 0.0 && t.fract() == 0.0)
                .ok_or_else(|| format!("churn trace JSON: entry {i}: bad timestamp"))?
                as u64;
            let domain = trip[1]
                .as_f64()
                .filter(|d| *d >= 0.0 && d.fract() == 0.0)
                .ok_or_else(|| format!("churn trace JSON: entry {i}: bad domain"))?
                as u32;
            let down = match trip[2].as_str() {
                Some("down") => true,
                Some("up") => false,
                _ => return Err(format!("churn trace JSON: entry {i}: expected \"down\"|\"up\"")),
            };
            events.push(ChurnEvent { t_ns, domain, down });
        }
        faultgen::validate_churn(&events)?;
        Ok(events)
    } else {
        faultgen::parse_churn_trace(text)
    }
}

/// Realized-fault telemetry for one cell: what the distributional fault
/// generator actually produced, so a report is auditable without
/// re-deriving the draw chain. `windows`/`downtime_ns` describe the
/// packet-level schedule (downtime counts per-port window durations);
/// `stragglers` counts slowed ranks on the message-level path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTelemetry {
    pub windows: u64,
    pub downtime_ns: u64,
    pub stragglers: u64,
}

// ------------------------------------------------------------- backend ----

/// Backend family axis value. htsim families are crossed with the grid's
/// CC axis at expansion time; `lgs`/`ideal` have no CC notion and appear
/// once per (topology, workload, placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendFamily {
    /// Packet-level, per-flow ECMP.
    Htsim,
    /// Packet-level, per-packet spraying (UEC/Slingshot-class ALB).
    HtsimSpray,
    /// Message-level LogGOPS, parameters calibrated from the topology's
    /// edge link (see [`lgs_params_for`]).
    Lgs,
    /// Contention-free fixed-rate reference ([`IdealBackend`]).
    Ideal,
}

impl BackendFamily {
    pub fn parse(tok: &str) -> Result<BackendFamily, String> {
        Ok(match tok {
            "htsim" => BackendFamily::Htsim,
            "htsim-spray" => BackendFamily::HtsimSpray,
            "lgs" => BackendFamily::Lgs,
            "ideal" => BackendFamily::Ideal,
            _ => return Err(format!("unknown backend `{tok}` (htsim|htsim-spray|lgs|ideal)")),
        })
    }
}

/// Fully resolved backend of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpec {
    Htsim { cc: CcAlgo, spray: bool },
    Lgs,
    Ideal,
}

impl BackendSpec {
    pub fn label(&self) -> String {
        match self {
            BackendSpec::Htsim { cc, spray } => {
                let cc = cc.to_string().to_ascii_lowercase();
                if *spray {
                    format!("htsim-{cc}-spray")
                } else {
                    format!("htsim-{cc}")
                }
            }
            BackendSpec::Lgs => "lgs".to_string(),
            BackendSpec::Ideal => "ideal".to_string(),
        }
    }
}

/// Parse a CC token.
pub fn parse_cc(tok: &str) -> Result<CcAlgo, String> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "mprdma" => CcAlgo::Mprdma,
        "swift" => CcAlgo::Swift,
        "ndp" => CcAlgo::Ndp,
        "dctcp" => CcAlgo::Dctcp,
        _ => return Err(format!("unknown CC `{tok}` (mprdma|swift|ndp|dctcp)")),
    })
}

/// LogGOPS parameters calibrated against the testbed emulator for an
/// arbitrary fabric: [`workloads::lgs_params_for_link`] applied to the
/// topology's edge link (the same calibration `ai_lgs_params` and
/// `hpc_lgs_params` use).
pub fn lgs_params_for(topo: &TopologySpec) -> LogGopsParams {
    workloads::lgs_params_for_link(topo.edge_link())
}

// ---------------------------------------------------------------- grid ----

/// A declarative scenario grid: the cartesian product of its axes.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    pub topologies: Vec<TopologySpec>,
    pub workloads: Vec<WorkloadSpec>,
    pub ccs: Vec<CcAlgo>,
    pub placements: Vec<PlacementSpec>,
    pub backends: Vec<BackendFamily>,
    /// Fault/variability axis. Empty means fault-free (equivalent to
    /// `[FaultSpec::None]`); non-`None` entries multiply only the
    /// backends they apply to (see [`FaultSpec::applies_to`]).
    pub faults: Vec<FaultSpec>,
    /// Grid-level seed; each cell derives its own (see [`cell_seed`]).
    pub seed: u64,
    /// Record per-flow completion times on packet-level cells (MCT
    /// columns in the report).
    pub collect_flows: bool,
}

impl ScenarioGrid {
    /// Expand to concrete cells: the cartesian product, minus infeasible
    /// combinations (workload wider than the fabric). htsim families are
    /// crossed with the CC axis; CC-less backends appear once.
    ///
    /// Cells come out in a deterministic order (topology-major), but each
    /// cell's seed depends only on its own workload, so subsetting or
    /// reordering the grid never changes any cell's result.
    pub fn expand(&self) -> Vec<ScenarioCell> {
        self.expand_counted().0
    }

    /// [`ScenarioGrid::expand`], also returning the (topology, workload)
    /// pairs dropped as infeasible, so callers can tell the user instead
    /// of silently shrinking the grid.
    pub fn expand_counted(&self) -> (Vec<ScenarioCell>, Vec<String>) {
        let mut cells = Vec::new();
        let mut dropped = Vec::new();
        for topo in &self.topologies {
            let hosts = topo.hosts();
            for workload in &self.workloads {
                if workload.ranks() > hosts {
                    // Infeasible: workload wider than the fabric.
                    dropped.push(format!(
                        "{} needs {} ranks but {} has {hosts} hosts",
                        workload.label(),
                        workload.ranks(),
                        topo.label()
                    ));
                    continue;
                }
                for placement in &self.placements {
                    for family in &self.backends {
                        let backends: Vec<BackendSpec> = match family {
                            BackendFamily::Htsim => self
                                .ccs
                                .iter()
                                .map(|&cc| BackendSpec::Htsim { cc, spray: false })
                                .collect(),
                            BackendFamily::HtsimSpray => self
                                .ccs
                                .iter()
                                .map(|&cc| BackendSpec::Htsim { cc, spray: true })
                                .collect(),
                            BackendFamily::Lgs => vec![BackendSpec::Lgs],
                            BackendFamily::Ideal => vec![BackendSpec::Ideal],
                        };
                        for backend in backends {
                            // An empty fault axis is a fault-free grid.
                            let faults: &[FaultSpec] = if self.faults.is_empty() {
                                &[FaultSpec::None]
                            } else {
                                &self.faults
                            };
                            for fault in faults {
                                if !fault.applies_to(&backend) {
                                    continue;
                                }
                                let mut cell = ScenarioCell {
                                    topology: topo.clone(),
                                    workload: workload.clone(),
                                    placement: *placement,
                                    backend,
                                    fault: fault.clone(),
                                    seed: 0,
                                    collect_flows: self.collect_flows,
                                };
                                cell.seed = cell_seed(self.seed, &cell.workload.label());
                                cells.push(cell);
                            }
                        }
                    }
                }
            }
        }
        (cells, dropped)
    }
}

/// Derive a cell's seed: an FNV-1a fold of the grid seed and the cell's
/// *workload label*. The fold makes seeds stable under grid reordering
/// and subsetting; keying on the workload alone (not the full cell key)
/// means every cell sharing a workload simulates the *same* generated
/// instance — so rows differing only in topology, CC, placement, or
/// backend are directly comparable, exactly as the paper's figures
/// compare them — and the sweep builds each workload once.
pub fn cell_seed(grid_seed: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ grid_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in key.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Avoid the degenerate all-zero seed some PRNGs dislike.
    h | 1
}

// ---------------------------------------------------------------- cell ----

/// One fully specified scenario: a deterministic single-threaded
/// simulation.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    pub topology: TopologySpec,
    pub workload: WorkloadSpec,
    pub placement: PlacementSpec,
    pub backend: BackendSpec,
    /// Fault/variability regime ([`FaultSpec::None`] = perfect fabric).
    pub fault: FaultSpec,
    /// The simulation seed (workload generation, placement permutation,
    /// packet-level RNG). Grid expansion derives it via [`cell_seed`]
    /// from the workload label; figure wrappers pin it explicitly. Fault
    /// randomness uses the *derived* `cell_seed(seed, fault_label)`, so
    /// this seed — and every fault-free result — is independent of the
    /// fault axis.
    pub seed: u64,
    /// Record per-flow completion times (packet-level backends only).
    pub collect_flows: bool,
}

impl ScenarioCell {
    /// Canonical cell key: `topology/workload/placement/backend`, with a
    /// trailing `/fault` segment only for faulted cells — fault-free keys
    /// are identical to a grid without the fault axis.
    pub fn key(&self) -> String {
        let base = format!(
            "{}/{}/{}/{}",
            self.topology.label(),
            self.workload.label(),
            self.placement.label(),
            self.backend.label()
        );
        match &self.fault {
            FaultSpec::None => base,
            fault => format!("{base}/{}", fault.label()),
        }
    }
}

/// Everything a cell run produces. Wall-clock is kept for operator
/// output but excluded from the JSON report, which must be byte-identical
/// across thread counts and re-runs.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub key: String,
    pub seed: u64,
    /// Simulated makespan (ns).
    pub makespan: u64,
    /// GOAL tasks completed.
    pub tasks: usize,
    /// Message completion time summary (all-zero when flows were not
    /// collected or the backend is not packet-level).
    pub mct: DistSummary,
    /// Packet-level statistics (htsim cells only).
    pub net: Option<NetStats>,
    /// Per-job finish time: the latest rank finish among each job's
    /// nodes, in job order.
    pub job_finish: Vec<u64>,
    /// Peak task-arena bytes the cell's simulation held: the SoA task
    /// storage of the schedule handed to the backend (the composed
    /// multi-job schedule when placement remaps ranks). Deterministic,
    /// so memory regressions surface in byte-compared sweep reports.
    pub task_arena_bytes: u64,
    /// Realized-fault telemetry; `Some` only for distributional fault
    /// regimes (see [`FaultSpec::distributional`]).
    pub fault: Option<FaultTelemetry>,
    /// Host wall-clock cost of the cell (not part of the JSON report).
    pub wall: Duration,
}

/// Run one cell to completion. Single-threaded and deterministic: the
/// same cell always produces the same result, bit for bit.
pub fn run_cell(cell: &ScenarioCell) -> CellResult {
    run_cell_prepared(cell, &cell.workload.build_jobs(cell.seed))
}

/// A cell's composed schedule and per-job node placements, shared
/// between the straight executor ([`run_cell_prepared`]) and the
/// branch-and-continue executor ([`crate::branch`]).
pub struct PreparedGoal {
    /// `None` when the single packed job runs un-remapped (the identity
    /// placement) and the schedule is borrowed from `jobs[0]` instead.
    merged: Option<GoalSchedule>,
    /// Per-job node sets, in job order.
    pub placements: Vec<Vec<u32>>,
}

impl PreparedGoal {
    /// The schedule the backend simulates. `jobs` must be the slice this
    /// was prepared from.
    pub fn goal<'a>(&'a self, jobs: &'a [Arc<GoalSchedule>]) -> &'a GoalSchedule {
        match self.merged.as_ref() {
            Some(g) => g,
            None => &jobs[0],
        }
    }
}

/// Place and compose a cell's jobs into the schedule its backend will
/// simulate. A single packed job runs un-remapped (the identity
/// placement), so single-job cells reproduce the figure binaries
/// exactly; everything else goes through allocate + compose.
pub fn prepare_goal(cell: &ScenarioCell, jobs: &[Arc<GoalSchedule>]) -> PreparedGoal {
    let hosts = cell.topology.hosts();
    let single_packed = jobs.len() == 1 && cell.placement == PlacementSpec::Packed;
    if single_packed {
        PreparedGoal {
            merged: None,
            placements: vec![(0..jobs[0].num_ranks() as u32).collect::<Vec<u32>>()],
        }
    } else {
        let sizes: Vec<usize> = jobs.iter().map(|j| j.num_ranks()).collect();
        let placement = allocate(cell.placement.strategy(cell.seed), hosts, &sizes)
            .expect("grid expansion only admits workloads that fit the fabric");
        let placed: Vec<PlacedJob<'_>> = jobs
            .iter()
            .zip(placement.iter())
            .map(|(goal, nodes)| PlacedJob::new(goal, nodes.clone()))
            .collect();
        PreparedGoal {
            merged: Some(compose(&placed, hosts).expect("disjoint placements compose")),
            placements: placement,
        }
    }
}

/// [`run_cell`] with the workload's job schedules already built — the
/// sweep executor lowers each distinct (workload, seed) pair once and
/// shares the `Arc`ed result across cells. `jobs` must equal
/// `cell.workload.build_jobs(cell.seed)` (deterministic), so sharing
/// cannot change any result.
pub fn run_cell_prepared(cell: &ScenarioCell, jobs: &[Arc<GoalSchedule>]) -> CellResult {
    let prepared = prepare_goal(cell, jobs);
    let goal = prepared.goal(jobs);
    let placements = &prepared.placements;
    let task_arena_bytes = goal.task_arena_bytes();

    // Fault randomness is keyed off the *derived* seed so the base cell
    // seed (workload generation, placement, packet RNG) is untouched by
    // the fault axis. `FaultSpec::None` derives nothing.
    let fault_seed = match &cell.fault {
        FaultSpec::None => 0,
        fault => cell_seed(cell.seed, &fault.label()),
    };
    let mut fault_telemetry: Option<FaultTelemetry> = None;

    let (report, mct, net, wall) = match cell.backend {
        BackendSpec::Htsim { cc, spray } => {
            let topo_cfg = cell.topology.config();
            let mut cfg = HtsimConfig::new(topo_cfg.clone(), cc);
            cfg.seed = cell.seed;
            cfg.spray = spray;
            cfg.collect_flows = cell.collect_flows;
            if let Some(model) = cell.fault.link_model(fault_seed) {
                cfg.link_model = model;
            } else if !matches!(cell.fault, FaultSpec::None) {
                let faults = cell.fault.port_faults(&Topology::build(topo_cfg), fault_seed);
                if cell.fault.distributional() {
                    fault_telemetry = Some(FaultTelemetry {
                        windows: faults.len() as u64,
                        downtime_ns: faults.iter().map(|f| f.end_ns - f.start_ns).sum(),
                        stragglers: 0,
                    });
                }
                cfg.faults = faults;
            }
            let mut backend = HtsimBackend::new(cfg);
            let (report, wall) = runner::run_on(goal, &mut backend);
            let mct =
                DistSummary::of(backend.flow_records().iter().map(|f| f.duration()).collect());
            (report, mct, Some(backend.net_stats()), wall)
        }
        BackendSpec::Lgs => {
            let mut backend = match cell.fault.straggler_spec(fault_seed) {
                Some(spec) => {
                    if cell.fault.distributional() {
                        let slowed =
                            (0..goal.num_ranks()).filter(|&r| spec.is_straggler(r)).count();
                        fault_telemetry = Some(FaultTelemetry {
                            windows: 0,
                            downtime_ns: 0,
                            stragglers: slowed as u64,
                        });
                    }
                    LgsBackend::with_straggler(lgs_params_for(&cell.topology), spec)
                }
                None => LgsBackend::new(lgs_params_for(&cell.topology)),
            };
            let (report, wall) = runner::run_on(goal, &mut backend);
            (report, DistSummary::of(Vec::new()), None, wall)
        }
        BackendSpec::Ideal => {
            let link = cell.topology.edge_link();
            let mut backend = IdealBackend::new(link.bytes_per_ns(), link.latency_ns);
            let (report, wall) = runner::run_on(goal, &mut backend);
            (report, DistSummary::of(Vec::new()), None, wall)
        }
    };

    let job_finish = placements.iter().map(|nodes| report.job_finish(nodes)).collect();

    CellResult {
        key: cell.key(),
        seed: cell.seed,
        makespan: report.makespan,
        tasks: report.completed,
        mct,
        net,
        job_finish,
        task_arena_bytes,
        fault: fault_telemetry,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_labels_roundtrip() {
        for spec in [
            TopologySpec::AiFatTree { nodes: 32, oversub: 4 },
            TopologySpec::HpcFatTree { procs: 128, nodes: 8 },
            TopologySpec::StorageFatTree { hosts: 48, oversub: 8 },
            TopologySpec::Dragonfly { groups: 3, routers: 4, hosts_per_router: 2 },
            TopologySpec::SingleSwitch { hosts: 16 },
        ] {
            assert_eq!(TopologySpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(TopologySpec::parse("torus:4:4").is_err());
    }

    #[test]
    fn workload_tokens_parse() {
        for tok in [
            "ring:16:65536:2",
            "perm:16:65536:8:1",
            "uniform:16:4096:100",
            "incast:9:65536:2",
            "moe:16:4:65536:2:1000",
            "pipeline:4:4:1048576:5000",
            "storage-incast:2:8:131072:2",
            "llm:llama7b-dp16:0.002",
            "hpc:lulesh:8:8:0.02",
            "storage:500:50:12",
        ] {
            let w = WorkloadSpec::parse(tok).unwrap_or_else(|e| panic!("{tok}: {e}"));
            assert!(w.ranks() > 0, "{tok}");
        }
        assert!(WorkloadSpec::parse("bogus:1").is_err());
        // Structurally invalid tokens fail at parse time, not in a worker.
        assert!(WorkloadSpec::parse("moe:7:4:1024:1:0").is_err());
        assert!(WorkloadSpec::parse("perm:8:1024:8:1").is_err());
        assert!(WorkloadSpec::parse("pipeline:1:4:1024:0").is_err());
        assert!(WorkloadSpec::parse("ring:1:1024:1").is_err());
        assert!(WorkloadSpec::parse("llm:llama7b-dp16:7.0").is_err());
        // Zero-work repetition counts are rejected at parse time: they
        // lower to empty schedules the cluster engine cannot run.
        assert!(WorkloadSpec::parse("ring:4:1024:0").is_err());
        assert!(WorkloadSpec::parse("incast:4:1024:0").is_err());
        assert!(WorkloadSpec::parse("uniform:4:1024:0").is_err());
        assert!(WorkloadSpec::parse("moe:8:4:1024:0:10").is_err());
        assert!(WorkloadSpec::parse("storage-incast:2:2:1024:0").is_err());
    }

    #[test]
    fn expansion_is_cartesian_minus_infeasible() {
        let grid = ScenarioGrid {
            topologies: vec![
                TopologySpec::SingleSwitch { hosts: 8 },
                TopologySpec::SingleSwitch { hosts: 32 },
            ],
            workloads: vec![
                WorkloadSpec::Ring { ranks: 8, bytes: 1024, laps: 1 },
                WorkloadSpec::Ring { ranks: 16, bytes: 1024, laps: 1 }, // only fits the big switch
            ],
            ccs: vec![CcAlgo::Mprdma, CcAlgo::Ndp],
            placements: vec![PlacementSpec::Packed, PlacementSpec::Random],
            backends: vec![BackendFamily::Htsim, BackendFamily::Lgs],
            faults: vec![],
            seed: 1,
            collect_flows: false,
        };
        let (cells, dropped) = grid.expand_counted();
        // Feasible (topology, workload) pairs: 3. Each × 2 placements ×
        // (2 htsim CCs + 1 lgs) = 3 × 2 × 3 = 18.
        assert_eq!(cells.len(), 18);
        // The 16-rank ring does not fit the 8-host switch — reported,
        // not silently dropped.
        assert_eq!(dropped.len(), 1);
        assert!(dropped[0].contains("ring:16:1024:1"), "{dropped:?}");
        // Keys are unique.
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 18);
        // Cells sharing a workload share its seed (same generated
        // instance across topologies/placements/backends); distinct
        // workloads get distinct seeds.
        let seed_of = |label: &str| {
            let seeds: Vec<u64> =
                cells.iter().filter(|c| c.workload.label() == label).map(|c| c.seed).collect();
            assert!(seeds.windows(2).all(|w| w[0] == w[1]), "{label}: {seeds:?}");
            seeds[0]
        };
        assert_ne!(seed_of("ring:8:1024:1"), seed_of("ring:16:1024:1"));
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed(7, "ring:8:1024:1");
        let b = cell_seed(7, "ring:8:1024:1");
        let c = cell_seed(7, "ring:16:1024:1");
        let d = cell_seed(8, "ring:8:1024:1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn run_cell_is_deterministic_across_backends() {
        for backend in [
            BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            BackendSpec::Lgs,
            BackendSpec::Ideal,
        ] {
            let cell = ScenarioCell {
                topology: TopologySpec::SingleSwitch { hosts: 8 },
                workload: WorkloadSpec::Ring { ranks: 8, bytes: 64 << 10, laps: 1 },
                placement: PlacementSpec::Packed,
                backend,
                fault: FaultSpec::None,
                seed: 5,
                collect_flows: true,
            };
            let a = run_cell(&cell);
            let b = run_cell(&cell);
            assert_eq!(a.makespan, b.makespan, "{:?}", backend);
            assert_eq!(a.mct, b.mct);
            assert_eq!(a.net, b.net);
            assert!(a.makespan > 0);
            assert_eq!(a.job_finish.len(), 1);
        }
    }

    #[test]
    fn fault_labels_roundtrip() {
        for spec in [
            FaultSpec::None,
            FaultSpec::LinkFlap { links: 2, down_ns: 10_000, up_ns: 60_000 },
            FaultSpec::Degrade { links: 1, bw_pct: 25, lat_pct: 400, from_ns: 0, to_ns: 500_000 },
            FaultSpec::Straggler { prob_pct: 25, factor_pct: 300, spread_pct: 0, shape: 1 },
            FaultSpec::Straggler { prob_pct: 25, factor_pct: 300, spread_pct: 150, shape: 2 },
            FaultSpec::Markov { links: 2, up_ns: 40_000, down_ns: 8_000, horizon_ns: 400_000 },
            FaultSpec::RackFail { racks: 1, from_ns: 10_000, to_ns: 90_000 },
            FaultSpec::SwitchFail { switches: 1, from_ns: 10_000, to_ns: 90_000 },
            FaultSpec::Churn {
                events: faultgen::parse_churn_inline("1000;0;d,5000;0;u,2000;1;d,7000;1;u")
                    .unwrap(),
            },
            FaultSpec::parse("loss:20000").unwrap(),
            FaultSpec::parse("loss:80000:core").unwrap(),
            FaultSpec::parse("loss:5000:edge").unwrap(),
            FaultSpec::parse("jitter:exp:2000").unwrap(),
            FaultSpec::parse("jitter:weibull:3000:2").unwrap(),
            FaultSpec::parse("jitter:uniform:1500").unwrap(),
        ] {
            assert_eq!(FaultSpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(FaultSpec::parse("meteor:1").is_err());
        assert!(FaultSpec::parse("linkflap:1:500:100").is_err(), "window must close after open");
        // The uniform straggler keeps its historical short label.
        assert_eq!(
            FaultSpec::Straggler { prob_pct: 25, factor_pct: 300, spread_pct: 0, shape: 7 }.label(),
            "straggler:25:300"
        );
    }

    #[test]
    fn parse_rejects_degenerate_and_malformed_specs() {
        // Satellite: degenerate degrade parameters die at parse time, not
        // at simulation time as a never-draining queue or a time-warped
        // wire.
        let err = FaultSpec::parse("degrade:2:0:300:0:200000").unwrap_err();
        assert!(err.contains("bw_pct"), "{err}");
        let err = FaultSpec::parse("degrade:2:25:0:0:200000").unwrap_err();
        assert!(err.contains("lat_pct"), "{err}");
        // Distributional specs validate their shape too: a zero mean
        // sojourn in either state would collapse the Gilbert–Elliott
        // chain (the exponential sampler degenerates to instant
        // transitions), and a zero horizon generates nothing.
        let err = FaultSpec::parse("markov:2:0:8000:400000").unwrap_err();
        assert!(err.contains("sojourn"), "zero up sojourn: {err}");
        let err = FaultSpec::parse("markov:2:40000:0:400000").unwrap_err();
        assert!(err.contains("sojourn"), "zero down sojourn: {err}");
        let err = FaultSpec::parse("markov:2:40000:8000:0").unwrap_err();
        assert!(err.contains("horizon"), "zero horizon: {err}");
        assert!(FaultSpec::parse("rackfail:1:90000:10000").is_err(), "inverted window");
        assert!(FaultSpec::parse("churn:").is_err(), "empty trace");
        assert!(FaultSpec::parse("churn:1000;0;d").is_err(), "domain left down");
        assert!(FaultSpec::parse("churn:@/no/such/trace-file").is_err(), "missing file");
        // Clamps still apply on the extended straggler form.
        assert_eq!(
            FaultSpec::parse("straggler:250:300:100:99").unwrap(),
            FaultSpec::Straggler { prob_pct: 100, factor_pct: 300, spread_pct: 100, shape: 16 }
        );
        // Satellite: degenerate stochastic link models die at parse time
        // with messages that say what to use instead.
        let err = FaultSpec::parse("loss:0").unwrap_err();
        assert!(err.contains("drop the token instead"), "{err}");
        let err = FaultSpec::parse("loss:1000000").unwrap_err();
        assert!(err.contains("outage, not noise"), "{err}");
        let err = FaultSpec::parse("loss:20000:rack").unwrap_err();
        assert!(err.contains("unknown loss tier"), "{err}");
        let err = FaultSpec::parse("jitter:exp:0").unwrap_err();
        assert!(err.contains("never perturbs a timestamp"), "{err}");
        let err = FaultSpec::parse("jitter:weibull:3000:0").unwrap_err();
        assert!(err.contains("weibull shape"), "{err}");
        let err = FaultSpec::parse("jitter:gauss:100").unwrap_err();
        assert!(err.contains("expected jitter:exp"), "{err}");
    }

    #[test]
    fn churn_trace_files_key_like_their_inline_twins() {
        let dir = std::env::temp_dir();
        let text_path = dir.join("atlahs_churn_test.trace");
        let json_path = dir.join("atlahs_churn_test.json");
        std::fs::write(
            &text_path,
            "# rack 0 bounces twice\n1000 0 down\n5000 0 up\n20000 0 down # again\n21000 0 up\n",
        )
        .unwrap();
        std::fs::write(
            &json_path,
            "[[1000, 0, \"down\"], [5000, 0, \"up\"], [20000, 0, \"down\"], [21000, 0, \"up\"]]",
        )
        .unwrap();
        let inline = FaultSpec::parse("churn:1000;0;d,5000;0;u,20000;0;d,21000;0;u").unwrap();
        let from_text = FaultSpec::parse(&format!("churn:@{}", text_path.display())).unwrap();
        let from_json = FaultSpec::parse(&format!("churn:@{}", json_path.display())).unwrap();
        assert_eq!(from_text, inline, "file traces canonicalize to the inline spec");
        assert_eq!(from_json, inline);
        assert_eq!(from_text.label(), "churn:1000;0;d,5000;0;u,20000;0;d,21000;0;u");
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn distributional_port_faults_are_seeded_and_normalized() {
        let topo = Topology::build(TopologySpec::AiFatTree { nodes: 16, oversub: 4 }.config());
        let markov =
            FaultSpec::Markov { links: 2, up_ns: 40_000, down_ns: 8_000, horizon_ns: 400_000 };
        let a = markov.port_faults(&topo, 7);
        assert_eq!(a, markov.port_faults(&topo, 7), "same seed, same schedule");
        assert_ne!(a, markov.port_faults(&topo, 8), "flap schedules are seed-sensitive");
        assert!(!a.is_empty(), "a 5:1 up:down ratio over 400 µs must flap");
        for w in windows_by_port(&a) {
            assert!(w.windows(2).all(|p| p[0].1 <= p[1].0), "per-port windows stay disjoint");
        }
        // Correlated domain failure downs every port of the rack at once.
        let rack =
            FaultSpec::RackFail { racks: 1, from_ns: 10_000, to_ns: 90_000 }.port_faults(&topo, 7);
        let dom_sizes: Vec<usize> = topo.failure_domains(false).iter().map(|d| d.len()).collect();
        assert!(dom_sizes.contains(&rack.len()), "one whole rack domain fails: {rack:?}");
        assert!(rack.iter().all(|f| f.start_ns == 10_000 && f.end_ns == 90_000));
        // Churn maps trace domains onto rack domains and replays windows.
        let churn = FaultSpec::parse("churn:1000;0;d,5000;0;u,2000;1;d,7000;1;u").unwrap();
        let replay = churn.port_faults(&topo, 7);
        assert_eq!(replay, churn.port_faults(&topo, 99), "replay ignores the seed");
        assert_eq!(replay.len(), dom_sizes[0] + dom_sizes[1]);
    }

    fn windows_by_port(faults: &[PortFault]) -> Vec<Vec<(u64, u64)>> {
        let mut per: std::collections::BTreeMap<u32, Vec<(u64, u64)>> = Default::default();
        for f in faults {
            per.entry(f.port).or_default().push((f.start_ns, f.end_ns));
        }
        per.into_values().collect()
    }

    #[test]
    fn markov_cell_diverges_and_reports_telemetry() {
        let mk = |fault| ScenarioCell {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            workload: WorkloadSpec::Ring { ranks: 16, bytes: 1 << 20, laps: 1 },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            fault,
            seed: 3,
            collect_flows: false,
        };
        let clean = run_cell(&mk(FaultSpec::None));
        assert_eq!(clean.fault, None, "fault-free cells carry no telemetry");
        let markov =
            FaultSpec::Markov { links: 2, up_ns: 30_000, down_ns: 60_000, horizon_ns: 400_000 };
        let a = run_cell(&mk(markov.clone()));
        let b = run_cell(&mk(markov.clone()));
        assert_eq!(a.makespan, b.makespan, "distributional cells re-run bit-identically");
        assert_eq!(a.fault, b.fault);
        let tel = a.fault.expect("distributional cells report realized-fault telemetry");
        assert!(tel.windows > 0 && tel.downtime_ns > 0, "{tel:?}");
        // The telemetry identity: downtime is exactly the sum of the
        // generated windows' durations.
        let topo = Topology::build(mk(markov.clone()).topology.config());
        let fault_seed = cell_seed(3, &markov.label());
        let schedule = markov.port_faults(&topo, fault_seed);
        assert_eq!(tel.windows, schedule.len() as u64);
        assert_eq!(tel.downtime_ns, schedule.iter().map(|f| f.end_ns - f.start_ns).sum::<u64>());
        assert_ne!(a.makespan, clean.makespan, "heavy flapping must bite");
    }

    #[test]
    fn rackfail_and_churn_cells_diverge_from_clean() {
        let mk = |fault| ScenarioCell {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            workload: WorkloadSpec::Ring { ranks: 16, bytes: 1 << 20, laps: 1 },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            fault,
            seed: 3,
            collect_flows: false,
        };
        let clean = run_cell(&mk(FaultSpec::None));
        let rack = run_cell(&mk(FaultSpec::RackFail { racks: 1, from_ns: 0, to_ns: 300_000 }));
        assert_ne!(rack.makespan, clean.makespan, "a rack outage must bite");
        assert!(rack.net.unwrap().fault_drops > 0, "rack ports drop traffic: {:?}", rack.net);
        let tel = rack.fault.unwrap();
        assert_eq!(tel.downtime_ns, tel.windows * 300_000, "uniform windows sum exactly");
        let churn = FaultSpec::parse("churn:0;0;d,250000;0;u").unwrap();
        let churned = run_cell(&mk(churn));
        assert_ne!(churned.makespan, clean.makespan, "churn replay must bite");
        assert!(churned.fault.unwrap().windows > 0);
    }

    #[test]
    fn spread_straggler_cell_reports_straggler_count() {
        let mk = |fault| ScenarioCell {
            topology: TopologySpec::SingleSwitch { hosts: 8 },
            workload: WorkloadSpec::MoeAllToAll {
                ranks: 8,
                group: 4,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 50_000,
            },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Lgs,
            fault,
            seed: 2,
            collect_flows: false,
        };
        let uniform = run_cell(&mk(FaultSpec::Straggler {
            prob_pct: 100,
            factor_pct: 400,
            spread_pct: 0,
            shape: 1,
        }));
        assert_eq!(uniform.fault, None, "pre-existing uniform stragglers stay telemetry-free");
        let spread = run_cell(&mk(FaultSpec::Straggler {
            prob_pct: 100,
            factor_pct: 400,
            spread_pct: 200,
            shape: 2,
        }));
        let tel = spread.fault.expect("spread stragglers are distributional");
        assert_eq!(tel.stragglers, 8, "prob 100% slows every rank");
        assert_eq!((tel.windows, tel.downtime_ns), (0, 0), "message-level: no port windows");
        assert!(
            spread.makespan > uniform.makespan,
            "the Weibull spread only adds slowdown: {} vs {}",
            spread.makespan,
            uniform.makespan
        );
    }

    #[test]
    fn fault_axis_multiplies_only_applicable_backends() {
        let grid = ScenarioGrid {
            topologies: vec![TopologySpec::SingleSwitch { hosts: 8 }],
            workloads: vec![WorkloadSpec::Ring { ranks: 8, bytes: 1024, laps: 1 }],
            ccs: vec![CcAlgo::Mprdma],
            placements: vec![PlacementSpec::Packed],
            backends: vec![BackendFamily::Htsim, BackendFamily::Lgs, BackendFamily::Ideal],
            faults: vec![
                FaultSpec::None,
                FaultSpec::LinkFlap { links: 1, down_ns: 1_000, up_ns: 50_000 },
                FaultSpec::Straggler { prob_pct: 100, factor_pct: 200, spread_pct: 0, shape: 1 },
                FaultSpec::parse("loss:20000").unwrap(),
            ],
            seed: 1,
            collect_flows: false,
        };
        let cells = grid.expand();
        // htsim: none + linkflap + loss; lgs: none + straggler; ideal: none.
        assert_eq!(cells.len(), 6, "{:?}", cells.iter().map(|c| c.key()).collect::<Vec<_>>());
        let keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        assert!(keys.iter().any(|k| k.ends_with("htsim-mprdma")));
        assert!(keys.iter().any(|k| k.ends_with("htsim-mprdma/linkflap:1:1000:50000")));
        assert!(keys.iter().any(|k| k.ends_with("htsim-mprdma/loss:20000")));
        assert!(keys.iter().any(|k| k.ends_with("lgs/straggler:100:200")));
        assert!(keys.iter().any(|k| k == "switch:8/ring:8:1024:1/packed/ideal"));
        // The fault axis never perturbs the base cell seed.
        let seeds: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 1, "all cells share one workload, hence one seed");
        assert_eq!(seeds.into_iter().next().unwrap(), cell_seed(1, "ring:8:1024:1"));
    }

    #[test]
    fn faulted_cells_differ_from_clean_and_rerun_identically() {
        let mk = |fault| ScenarioCell {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            workload: WorkloadSpec::Ring { ranks: 16, bytes: 1 << 20, laps: 1 },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            fault,
            seed: 3,
            collect_flows: false,
        };
        let clean = run_cell(&mk(FaultSpec::None));
        let flap = FaultSpec::LinkFlap { links: 2, down_ns: 5_000, up_ns: 400_000 };
        let a = run_cell(&mk(flap.clone()));
        let b = run_cell(&mk(flap));
        assert_eq!(a.makespan, b.makespan, "faulted cells re-run bit-identically");
        assert_eq!(a.net, b.net);
        assert!(a.net.unwrap().fault_drops > 0, "the flap must bite: {:?}", a.net);
        assert!(
            a.makespan > clean.makespan,
            "a 395 µs core outage cannot speed the ring up: {} vs {}",
            a.makespan,
            clean.makespan
        );
    }

    #[test]
    fn stochastic_cells_bite_sub_seed_and_rerun_identically() {
        let mk = |fault| ScenarioCell {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            workload: WorkloadSpec::Ring { ranks: 16, bytes: 1 << 20, laps: 1 },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            fault,
            seed: 3,
            collect_flows: false,
        };
        let clean = run_cell(&mk(FaultSpec::None));
        assert_eq!(clean.net.unwrap().stochastic_draws, 0, "clean cells never draw");
        let loss = FaultSpec::parse("loss:50000").unwrap();
        let a = run_cell(&mk(loss.clone()));
        let b = run_cell(&mk(loss.clone()));
        assert_eq!(a.makespan, b.makespan, "lossy cells re-run bit-identically");
        assert_eq!(a.net, b.net);
        let net = a.net.unwrap();
        assert!(net.stochastic_drops > 0, "5% loss must bite: {net:?}");
        assert_eq!(net.retransmissions, net.rtx_timeout + net.rtx_fault_drop, "attribution sums");
        assert!(a.makespan > clean.makespan, "recovery costs time");
        assert_eq!(a.fault, None, "stochastic cells report via net stats, not FaultTelemetry");
        // The draw-stream seed is the fault sub-seed, so the model is
        // keyed off (cell seed, fault label) exactly like port faults.
        let expected = loss.link_model(cell_seed(3, &loss.label())).unwrap();
        assert_eq!(expected.seed, cell_seed(3, "loss:50000"));
        // Jitter-only cells delay but never drop.
        let jitter = run_cell(&mk(FaultSpec::parse("jitter:exp:2000").unwrap()));
        let jnet = jitter.net.unwrap();
        assert!(jnet.jittered > 0 && jnet.stochastic_drops == 0, "{jnet:?}");
        assert!(jitter.makespan > clean.makespan, "jitter stretches the wire");
    }

    #[test]
    fn straggler_cell_slows_lgs_only_when_applicable() {
        let mk = |fault| ScenarioCell {
            topology: TopologySpec::SingleSwitch { hosts: 8 },
            workload: WorkloadSpec::MoeAllToAll {
                ranks: 8,
                group: 4,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 50_000,
            },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Lgs,
            fault,
            seed: 2,
            collect_flows: false,
        };
        let clean = run_cell(&mk(FaultSpec::None));
        let slow = run_cell(&mk(FaultSpec::Straggler {
            prob_pct: 100,
            factor_pct: 400,
            spread_pct: 0,
            shape: 1,
        }));
        assert!(
            slow.makespan > clean.makespan + 100_000,
            "4x calc inflation on a compute-heavy MoE must show: {} vs {}",
            slow.makespan,
            clean.makespan
        );
    }

    #[test]
    fn random_placement_changes_the_packet_level_result() {
        let mk = |placement| ScenarioCell {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            workload: WorkloadSpec::Ring { ranks: 8, bytes: 1 << 20, laps: 1 },
            placement,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            fault: FaultSpec::None,
            seed: 1,
            collect_flows: false,
        };
        let packed = run_cell(&mk(PlacementSpec::Packed));
        let random = run_cell(&mk(PlacementSpec::Random));
        assert_eq!(packed.tasks, random.tasks);
        // With this seed the random permutation scatters the ring across
        // both ToRs of the 4:1 fabric, so it pays for the thin core.
        // (Not a theorem over all seeds — a lucky permutation can beat
        // packed's intra-ToR port collisions — but deterministic here.)
        assert!(
            random.makespan > packed.makespan,
            "packed {} vs random {}",
            packed.makespan,
            random.makespan
        );
    }
}
