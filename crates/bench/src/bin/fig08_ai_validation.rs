//! **E3 / Fig. 8** — AI validation: measured vs predicted training
//! iteration time for six LLM configurations, against ATLAHS LGS, ATLAHS
//! htsim, and the AstraSim-class baseline.
//!
//! Also **E5 (§5.2)** with `--timing`: simulator wall-clock comparison
//! (the paper's 13.9× / 2.7× LGS-over-AstraSim speedups).
//!
//! ```text
//! cargo run --release --bin fig08_ai_validation -- [--scale 0.002] [--seed 1] [--timing] [--full]
//! ```
//!
//! Expected shape (paper): both ATLAHS backends within ±5% of measured;
//! AstraSim executes only for the two pure-DP Llama 7B configurations
//! (every other run aborts with "src and dest have the same address") and
//! overpredicts on those two; ATLAHS LGS simulates faster than AstraSim.

#![forbid(unsafe_code)]

use atlahs_baselines::{chakra, AstraSim, AstraSystemConfig};
use atlahs_bench::args::Args;
use atlahs_bench::runner::{self, timed};
use atlahs_bench::table::{fmt_pct, pct_err, Table};
use atlahs_bench::workloads;
use atlahs_htsim::CcAlgo;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();
    let quick = !args.flag("full");
    let timing = args.flag("timing");

    println!("# Fig. 8 — AI validation (scale={scale}, seed={seed}, quick={quick})");
    println!("# measured = fluid-flow testbed emulator (DESIGN.md §1); times per training run\n");

    let mut table = Table::new([
        "workload",
        "geometry",
        "parallelism",
        "measured",
        "non-ovl comp",
        "LGS",
        "err",
        "htsim",
        "err",
        "AstraSim",
        "err",
    ]);
    let mut timing_rows = Vec::new();

    for case in workloads::ai_suite(scale, quick, seed) {
        let (report, goal) = workloads::ai_goal(&case.cfg);
        let topo = workloads::ai_topology(case.cfg.nodes() as usize);

        let (measured, _) = runner::run_testbed(&goal, topo.clone(), seed);
        let comp_ns = runner::compute_only_ns(&goal);
        let nonovl = comp_ns as f64 / measured.makespan as f64 * 100.0;

        let (lgs, lgs_wall) =
            runner::run_lgs(&goal, workloads::ai_lgs_params(case.cfg.nodes() as usize));
        let ht = runner::run_htsim_ai(&goal, topo, CcAlgo::Mprdma, seed);

        // The baseline replays its own Chakra conversion of the same trace.
        let et = chakra::from_nsys(&report);
        let astra_cfg = AstraSystemConfig {
            gpus_per_node: case.cfg.gpus_per_node,
            ..AstraSystemConfig::default()
        };
        let (astra, astra_wall) = timed(|| AstraSim::new(astra_cfg).run(&et));

        let (astra_cell, astra_err) = match &astra {
            Ok(rep) => (
                format!("{:.3} ms", rep.makespan_ns as f64 / 1e6),
                fmt_pct(pct_err(measured.makespan, rep.makespan_ns)),
            ),
            Err(e) => {
                let msg = e.to_string();
                let short = msg.split(": ").last().unwrap_or(&msg).to_string();
                (short, "—".to_string())
            }
        };

        table.row([
            case.name.clone(),
            case.geometry.clone(),
            case.parallelism.clone(),
            format!("{:.3} ms", measured.makespan as f64 / 1e6),
            format!("{nonovl:.1}%"),
            format!("{:.3} ms", lgs.makespan as f64 / 1e6),
            fmt_pct(pct_err(measured.makespan, lgs.makespan)),
            format!("{:.3} ms", ht.report.makespan as f64 / 1e6),
            fmt_pct(pct_err(measured.makespan, ht.report.makespan)),
            astra_cell,
            astra_err,
        ]);

        if timing {
            timing_rows.push((
                format!("{} {}", case.name, case.geometry),
                lgs_wall,
                ht.wall,
                astra.is_ok().then_some(astra_wall),
            ));
        }
    }
    table.print();

    if timing {
        println!("\n# §5.2 — simulation wall-clock (same runs as above)");
        let mut t =
            Table::new(["workload", "ATLAHS LGS", "ATLAHS htsim", "AstraSim", "LGS speedup"]);
        for (name, lgs, ht, astra) in timing_rows {
            let (astra_cell, speedup) = match astra {
                Some(a) => (
                    format!("{:.3} s", a.as_secs_f64()),
                    format!("{:.1}x", a.as_secs_f64() / lgs.as_secs_f64().max(1e-9)),
                ),
                None => ("failed".to_string(), "—".to_string()),
            };
            t.row([
                name,
                format!("{:.3} s", lgs.as_secs_f64()),
                format!("{:.3} s", ht.as_secs_f64()),
                astra_cell,
                speedup,
            ]);
        }
        t.print();
    }
}
