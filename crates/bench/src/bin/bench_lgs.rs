//! **BENCH_lgs** — the message-level (LGS) performance trajectory.
//!
//! Measures wall-clock cost of the LogGOPS backend plus the core
//! scheduler on trace-scale GOAL schedules, and emits `BENCH_lgs.json`
//! (same schema conventions as `BENCH_engine.json`) so the repository
//! carries a message-level perf baseline across PRs.
//!
//! ```text
//! cargo run --release --bin bench_lgs -- \
//!     [--reps 3] [--seed 1] [--quick] \
//!     [--label "my change"] [--baseline old.json] [--out BENCH_lgs.json]
//! ```
//!
//! Scenarios (all single-threaded, deterministic):
//!
//! * `pipeline_1m` — a ~1M-op GPipe-style pipeline-parallel LLM trace
//!   (64 stages × 2700 microbatches), the acceptance scenario for
//!   message-level perf PRs: deep per-rank dependency chains, one
//!   matcher key per (stage boundary, microbatch).
//! * `moe_eager_flood` — 64 ranks in EP groups of 16, 40 MoE layers of
//!   dispatch+combine all-to-alls under eager (`S = 0`) parameters:
//!   matcher- and NIC-gap-heavy, wide dependency fan-in.
//! * `rendezvous_storm` — a 64-rank 1 MiB shift permutation under the
//!   HPC parameters (`S = 256 kB`), so every message pays the full
//!   RTS/CTS handshake: five backend events per message.
//! * `deep_chain` — a two-rank ping-pong chained 120k rounds deep: the
//!   scheduler's serial dispatch path with a single in-flight event.
//!
//! Each scenario reports wall-clock (best of `--reps`), simulated
//! makespan, completed tasks, LGS message counters, task throughput, and
//! the bytes-per-task of the GOAL task storage (`task_arena_bytes /
//! tasks`). With `--baseline old.json` the previous run is embedded under
//! `"baseline"` and per-scenario `"speedup_vs_baseline"` ratios plus a
//! `"bytes_per_task_reduction"` summary are computed.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use atlahs_bench::args::Args;
use atlahs_bench::json::Json;
use atlahs_bench::table::Table;
use atlahs_core::Simulation;
use atlahs_goal::GoalSchedule;
use atlahs_lgs::{LgsBackend, LgsStats, LogGopsParams};
use atlahs_schedgen::synthetic;

/// Bytes of task storage held by a schedule (the SoA arena's column
/// footprints; the pre-SoA baseline measured `size_of::<Task>()` per task
/// of the former array-of-structs `Vec<Task>`).
fn arena_bytes(goal: &GoalSchedule) -> u64 {
    goal.task_arena_bytes()
}

struct Measurement {
    name: String,
    wall: Duration,
    makespan_ns: u64,
    tasks: u64,
    stats: LgsStats,
    task_arena_bytes: u64,
}

impl Measurement {
    fn tasks_per_sec(&self) -> f64 {
        self.tasks as f64 / self.wall.as_secs_f64()
    }

    fn bytes_per_task(&self) -> f64 {
        self.task_arena_bytes as f64 / self.tasks as f64
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("name", Json::Str(self.name.clone()));
        j.set("backend", Json::Str("lgs".into()));
        j.set("wall_ms", Json::Num(self.wall.as_secs_f64() * 1e3));
        j.set("makespan_ns", Json::Num(self.makespan_ns as f64));
        j.set("tasks", Json::Num(self.tasks as f64));
        j.set("tasks_per_sec", Json::Num(self.tasks_per_sec()));
        j.set("messages", Json::Num(self.stats.messages as f64));
        j.set("rendezvous_messages", Json::Num(self.stats.rendezvous_messages as f64));
        j.set("task_arena_bytes", Json::Num(self.task_arena_bytes as f64));
        j.set("bytes_per_task", Json::Num(self.bytes_per_task()));
        j
    }
}

/// Run the schedule `reps` times on a fresh backend; keep the fastest.
fn measure(name: &str, goal: &GoalSchedule, params: LogGopsParams, reps: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps.max(1) {
        let mut be = LgsBackend::new(params);
        let t0 = Instant::now();
        let rep = Simulation::new(goal).run(&mut be).expect("scenario must complete");
        let wall = t0.elapsed();
        let m = Measurement {
            name: name.into(),
            wall,
            makespan_ns: rep.makespan,
            tasks: rep.completed as u64,
            stats: be.stats(),
            task_arena_bytes: arena_bytes(goal),
        };
        if best.as_ref().map_or(true, |b| m.wall < b.wall) {
            best = Some(m);
        }
    }
    best.unwrap()
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let reps = args.get("reps", if quick { 1usize } else { 3 });
    let seed = args.seed();
    let label = args.get_str("label", "LGS message-level path");
    let out_path = args.get_str("out", "BENCH_lgs.json");

    // The acceptance scenario: ~1M ops (2 * mb * (3 * stages - 2)).
    let (stages, microbatches) = if quick { (8usize, 60u32) } else { (64, 2_700) };
    let moe_layers: u32 = if quick { 4 } else { 40 };
    let perm_repeat: u32 = if quick { 20 } else { 200 };
    let chain_rounds: u32 = if quick { 5_000 } else { 120_000 };

    eprintln!("# bench_lgs (reps={reps}, seed={seed}, quick={quick})");

    let mut ms: Vec<Measurement> = Vec::new();

    let pipeline = synthetic::pipeline_parallel(stages, microbatches, 128 << 10, 5_000)
        .expect("pipeline builds");
    ms.push(measure("pipeline_1m", &pipeline, LogGopsParams::ai_alps(), reps));
    drop(pipeline);

    let moe =
        synthetic::moe_alltoall(64, 16, 32 << 10, moe_layers, 5_000).expect("moe flood builds");
    ms.push(measure("moe_eager_flood", &moe, LogGopsParams::ai_alps(), reps));
    drop(moe);

    let perm = synthetic::permutation(64, 1 << 20, 1, perm_repeat).expect("permutation builds");
    ms.push(measure("rendezvous_storm", &perm, LogGopsParams::hpc_testbed(), reps));
    drop(perm);

    let chain = synthetic::pingpong_chain(chain_rounds, 4 << 10).expect("chain builds");
    ms.push(measure("deep_chain", &chain, LogGopsParams::ai_alps(), reps));
    drop(chain);

    // --- Report ----------------------------------------------------------
    let mut table = Table::new(["scenario", "wall", "tasks", "Mtask/s", "B/task"]);
    for m in &ms {
        table.row([
            m.name.clone(),
            format!("{:.1} ms", m.wall.as_secs_f64() * 1e3),
            m.tasks.to_string(),
            format!("{:.2}", m.tasks_per_sec() / 1e6),
            format!("{:.1}", m.bytes_per_task()),
        ]);
    }
    table.print();

    let mut doc = Json::obj();
    doc.set("schema", Json::Num(1.0));
    doc.set("tool", Json::Str("bench_lgs".into()));
    doc.set("label", Json::Str(label));
    let mut cfg = Json::obj();
    cfg.set("reps", Json::Num(reps as f64));
    cfg.set("seed", Json::Num(seed as f64));
    cfg.set("quick", Json::Bool(quick));
    doc.set("config", cfg);
    doc.set("scenarios", Json::Arr(ms.iter().map(Measurement::to_json).collect()));

    if let Some(base_path) = args.flag("baseline").then(|| args.get_str("baseline", "")) {
        let text = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("--baseline {base_path}: {e}"));
        let base = Json::parse(&text).unwrap_or_else(|e| panic!("--baseline {base_path}: {e}"));
        let mut speedup = Json::obj();
        let mut old_bpt: Option<f64> = None;
        if let Some(base_scen) = base.get("scenarios").and_then(Json::as_arr) {
            for m in &ms {
                let prev = base_scen
                    .iter()
                    .find(|s| s.get("name").and_then(Json::as_str) == Some(&m.name));
                // Scenario identity is name + task count: a `--quick` run
                // reuses the scenario names at a fraction of the size, and
                // a name-only match against a full-scale baseline would
                // report absurd (wrong-workload) speedups.
                let comparable = prev
                    .is_some_and(|s| s.get("tasks").and_then(Json::as_f64) == Some(m.tasks as f64));
                if !comparable {
                    if prev.is_some() {
                        eprintln!(
                            "warning: {}: baseline ran a different task count; skipping speedup",
                            m.name
                        );
                    }
                    continue;
                }
                if let Some(prev_ms) = prev.and_then(|s| s.get("wall_ms")).and_then(Json::as_f64) {
                    let cur_ms = m.wall.as_secs_f64() * 1e3;
                    if cur_ms > 0.0 {
                        let ratio = (prev_ms / cur_ms * 1000.0).round() / 1000.0;
                        speedup.set(&m.name, Json::Num(ratio));
                        println!("speedup {:<24} {:.2}x", m.name, prev_ms / cur_ms);
                    }
                }
                if old_bpt.is_none() {
                    old_bpt = prev.and_then(|s| s.get("bytes_per_task")).and_then(Json::as_f64);
                }
            }
        }
        doc.set("speedup_vs_baseline", speedup);
        if let (Some(old), Some(m)) = (old_bpt, ms.first()) {
            let reduction = 1.0 - m.bytes_per_task() / old;
            doc.set("bytes_per_task_reduction", Json::Num((reduction * 1000.0).round() / 1000.0));
            println!(
                "bytes/task {:.1} -> {:.1} ({:.1}% lower)",
                old,
                m.bytes_per_task(),
                reduction * 100.0
            );
        }
        doc.set("baseline", base);
    }

    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
