//! **E7 / Fig. 11** — Effect of congestion control on distributed
//! storage: 5k Direct Drive operations (Financial-like distribution),
//! MPRDMA vs NDP, fully provisioned vs 8:1 oversubscribed fat tree;
//! Message Completion Time mean / p99 / max.
//!
//! ```text
//! cargo run --release --bin fig11_storage_cc -- [--ops 5000] [--seed 1]
//! ```
//!
//! Expected shape (paper): comparable MCT on the fully provisioned
//! fabric; under 8:1 oversubscription NDP degrades — mean +14%, p99 +35%,
//! max +77% over MPRDMA — because receiver-driven control cannot see
//! congestion in the core.

use atlahs_bench::args::Args;
use atlahs_bench::runner::{self, DistSummary};
use atlahs_bench::table::Table;
use atlahs_bench::workloads;
use atlahs_directdrive::{trace_to_goal, DirectDriveLayout, ServiceParams};
use atlahs_goal::GoalBuilder;
use atlahs_htsim::CcAlgo;

fn main() {
    let args = Args::parse();
    let ops = args.get("ops", 5_000usize);
    let gap = args.get("gap", 50u64);
    let compress = args.get("compress", 12u64).max(1);
    let seed = args.seed();

    println!(
        "# Fig. 11 — storage MCT under congestion control (ops={ops}, gap={gap}ns, \
         compress={compress}x, seed={seed})\n"
    );

    // The Direct Drive cluster: 16 clients, 4 CCS, 24 BSS (+ MDS/GS/SLB).
    // Service times are NVMe/RDMA-class so the *fabric* is the bottleneck
    // (the regime Fig. 11 studies); the conservative defaults of
    // `ServiceParams` would pace traffic below the core's capacity.
    let layout = DirectDriveLayout::standard(16, 4, 24);
    let params = ServiceParams {
        ccs_lookup_ns: 300,
        bss_read_base_ns: 1_500,
        bss_read_per_byte: 0.005,
        bss_write_base_ns: 2_000,
        bss_write_per_byte: 0.005,
        ..ServiceParams::default()
    };
    let mut trace = workloads::storage_trace_at_load(ops, gap, seed);
    // Compress arrival timestamps to reach the fabric-saturating offered
    // load the paper's 5k-operation burst represents.
    for r in &mut trace.records {
        r.ts_ns /= compress;
    }

    let mut b = GoalBuilder::new(layout.total_ranks());
    trace_to_goal(&trace, &layout, &params, &mut b);
    let goal = b.build().expect("storage GOAL must build");

    let mut table =
        Table::new(["topology", "CC", "mean MCT", "p99 MCT", "max MCT", "flows", "drops/trims"]);

    let mut summaries = Vec::new();
    for (ratio, tlabel) in [(1usize, "fully provisioned"), (8, "8:1 oversubscribed")] {
        for cc in [CcAlgo::Mprdma, CcAlgo::Ndp] {
            let topo = workloads::storage_topology(layout.total_ranks(), ratio);
            let run = runner::run_htsim(&goal, topo, cc, seed, true);
            let mct = DistSummary::of(run.flows.iter().map(|f| f.duration()).collect());
            table.row([
                tlabel.to_string(),
                cc.to_string(),
                format!("{:.1} µs", mct.mean / 1e3),
                format!("{:.1} µs", mct.p99 as f64 / 1e3),
                format!("{:.1} µs", mct.max as f64 / 1e3),
                format!("{}", mct.count),
                format!("{}", run.stats.drops + run.stats.trims),
            ]);
            summaries.push((ratio, cc, mct));
        }
    }
    table.print();

    // The paper's headline deltas: NDP relative to MPRDMA, oversubscribed.
    let get = |ratio: usize, cc: CcAlgo| {
        summaries.iter().find(|(r, c, _)| *r == ratio && *c == cc).map(|(_, _, s)| *s).unwrap()
    };
    let m = get(8, CcAlgo::Mprdma);
    let n = get(8, CcAlgo::Ndp);
    if m.count > 0 && n.count > 0 {
        println!(
            "\n8:1 oversubscribed, NDP vs MPRDMA: mean {:+.0}%  p99 {:+.0}%  max {:+.0}%",
            (n.mean / m.mean - 1.0) * 100.0,
            (n.p99 as f64 / m.p99 as f64 - 1.0) * 100.0,
            (n.max as f64 / m.max as f64 - 1.0) * 100.0,
        );
        println!("(paper: mean +14%, p99 +35%, max +77%)");
    } else {
        println!("\n(no flows simulated — nothing to compare)");
    }
}
