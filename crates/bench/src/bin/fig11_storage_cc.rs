//! **E7 / Fig. 11** — Effect of congestion control on distributed
//! storage: 5k Direct Drive operations (Financial-like distribution),
//! MPRDMA vs NDP, fully provisioned vs 8:1 oversubscribed fat tree;
//! Message Completion Time mean / p99 / max.
//!
//! ```text
//! cargo run --release --bin fig11_storage_cc -- [--ops 5000] [--seed 1]
//! ```
//!
//! A thin wrapper over the scenario-sweep engine: the four cells
//! ({full, 8:1} × {MPRDMA, NDP}) are `atlahs_bench::scenario` cells run
//! through `atlahs_bench::sweep::execute`. The equivalent standalone
//! sweep is
//!
//! ```text
//! atlahs sweep --topos storage-fattree:48:1,storage-fattree:48:8 \
//!              --workloads storage:5000:50:12 --ccs mprdma,ndp \
//!              --backends htsim --collect-flows
//! ```
//!
//! Expected shape (paper): comparable MCT on the fully provisioned
//! fabric; under 8:1 oversubscription NDP degrades — mean +14%, p99 +35%,
//! max +77% over MPRDMA — because receiver-driven control cannot see
//! congestion in the core.

#![forbid(unsafe_code)]

use atlahs_bench::args::Args;
use atlahs_bench::scenario::{
    storage_layout, BackendSpec, FaultSpec, PlacementSpec, ScenarioCell, TopologySpec, WorkloadSpec,
};
use atlahs_bench::sweep::execute;
use atlahs_bench::table::Table;
use atlahs_htsim::CcAlgo;

fn main() {
    let args = Args::parse();
    let ops = args.get("ops", 5_000usize);
    let gap = args.get("gap", 50u64);
    let compress = args.get("compress", 12u64).max(1);
    let seed = args.seed();
    let threads = args.get("threads", 0usize);

    println!(
        "# Fig. 11 — storage MCT under congestion control (ops={ops}, gap={gap}ns, \
         compress={compress}x, seed={seed})\n"
    );

    let hosts = storage_layout().total_ranks();
    let workload = WorkloadSpec::Storage { ops, gap_ns: gap, compress };
    let grid: Vec<(usize, &str, CcAlgo)> = vec![
        (1, "fully provisioned", CcAlgo::Mprdma),
        (1, "fully provisioned", CcAlgo::Ndp),
        (8, "8:1 oversubscribed", CcAlgo::Mprdma),
        (8, "8:1 oversubscribed", CcAlgo::Ndp),
    ];
    let cells: Vec<ScenarioCell> = grid
        .iter()
        .map(|&(ratio, _, cc)| ScenarioCell {
            topology: TopologySpec::StorageFatTree { hosts, oversub: ratio },
            workload: workload.clone(),
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Htsim { cc, spray: false },
            fault: FaultSpec::None,
            seed,
            collect_flows: true,
        })
        .collect();
    let results = execute(&cells, threads);

    let mut table =
        Table::new(["topology", "CC", "mean MCT", "p99 MCT", "max MCT", "flows", "drops/trims"]);
    for ((_, tlabel, cc), run) in grid.iter().zip(&results) {
        let mct = run.mct;
        let net = run.net.expect("packet-level cell");
        table.row([
            tlabel.to_string(),
            cc.to_string(),
            format!("{:.1} µs", mct.mean / 1e3),
            format!("{:.1} µs", mct.p99 as f64 / 1e3),
            format!("{:.1} µs", mct.max as f64 / 1e3),
            format!("{}", mct.count),
            format!("{}", net.drops + net.trims),
        ]);
    }
    table.print();

    // The paper's headline deltas: NDP relative to MPRDMA, oversubscribed.
    let get = |ratio: usize, cc: CcAlgo| {
        grid.iter().position(|&(r, _, c)| r == ratio && c == cc).map(|i| results[i].mct).unwrap()
    };
    let m = get(8, CcAlgo::Mprdma);
    let n = get(8, CcAlgo::Ndp);
    if m.count > 0 && n.count > 0 {
        println!(
            "\n8:1 oversubscribed, NDP vs MPRDMA: mean {:+.0}%  p99 {:+.0}%  max {:+.0}%",
            (n.mean / m.mean - 1.0) * 100.0,
            (n.p99 as f64 / m.p99 as f64 - 1.0) * 100.0,
            (n.max as f64 / m.max as f64 - 1.0) * 100.0,
        );
        println!("(paper: mean +14%, p99 +35%, max +77%)");
    } else {
        println!("\n(no flows simulated — nothing to compare)");
    }
}
