//! **E4 / Fig. 9** — Trace size: GOAL (ATLAHS, compact binary) vs Chakra
//! (AstraSim, verbose per-node schema) for the six Fig. 8 configurations.
//!
//! ```text
//! cargo run --release --bin fig09_trace_size -- [--scale 0.002] [--seed 1]
//! ```
//!
//! Expected shape (paper): Chakra consistently larger, 1.8×–10.6×
//! depending on the workload mix (compute-gap-dominated traces inflate
//! the most, because every inferred gap becomes a fully-attributed node).

#![forbid(unsafe_code)]

use atlahs_baselines::chakra;
use atlahs_bench::args::Args;
use atlahs_bench::table::{fmt_bytes, Table};
use atlahs_bench::workloads;
use atlahs_goal::binary;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();
    let quick = !args.flag("full");

    println!("# Fig. 9 — GOAL vs Chakra trace sizes (scale={scale}, seed={seed})\n");

    let mut table =
        Table::new(["workload", "geometry", "GOAL (ATLAHS)", "Chakra (AstraSim)", "ratio"]);
    for case in workloads::ai_suite(scale, quick, seed) {
        let (report, goal) = workloads::ai_goal(&case.cfg);
        let goal_bytes = binary::encode(&goal).len() as u64;
        let chakra_bytes = chakra::from_nsys(&report).to_text().len() as u64;
        table.row([
            case.name.clone(),
            case.geometry.clone(),
            fmt_bytes(goal_bytes),
            fmt_bytes(chakra_bytes),
            format!("{:.1}x", chakra_bytes as f64 / goal_bytes as f64),
        ]);
    }
    table.print();
    println!("\n(paper ratios: 9.0x, 3.8x, 1.8x, 10.6x, 4.4x, 2.5x — Chakra always larger)");
}
