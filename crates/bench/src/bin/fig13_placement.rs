//! **E9 / Fig. 13** — Job placement in a shared cluster: Llama (AI) and
//! LULESH (HPC) co-scheduled on an oversubscribed fat tree, packed vs
//! random allocation, per-application runtime impact.
//!
//! ```text
//! cargo run --release --bin fig13_placement -- [--scale 0.002] [--seed 1]
//! ```
//!
//! A thin wrapper over the scenario-sweep engine: one multi-job workload
//! (Llama + LULESH), the placement strategy as the grid axis. The cell
//! runner performs the allocate → compose → simulate pipeline and reports
//! per-job finish times, so this binary only formats the table.
//!
//! Expected shape (paper): random allocation inflates Llama's runtime
//! (~+36%) because its DP rings start crossing the oversubscribed core,
//! while compute-bound LULESH barely moves (~+2%).

#![forbid(unsafe_code)]

use atlahs_bench::args::Args;
use atlahs_bench::scenario::{
    BackendSpec, FaultSpec, LlmPreset, PlacementSpec, ScenarioCell, TopologySpec, WorkloadSpec,
};
use atlahs_bench::sweep::execute;
use atlahs_bench::table::Table;
use atlahs_bench::workloads::HpcApp;
use atlahs_htsim::CcAlgo;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();
    let threads = args.get("threads", 0usize);

    println!("# Fig. 13 — job placement (scale={scale}, seed={seed})\n");

    // Job A: Llama 7B on 16 GPUs -> 4 nodes (communication-heavy).
    // Job B: LULESH on 8 ranks (compute-heavy).
    let workload = WorkloadSpec::MultiJob {
        jobs: vec![
            WorkloadSpec::Llm {
                preset: LlmPreset::Llama7bDp16,
                scale,
                iterations: 1,
                cap_batch: false,
            },
            WorkloadSpec::Hpc { app: HpcApp::Lulesh, procs: 8, nodes: 8, scale: scale.max(0.02) },
        ],
    };
    // 4 + 8 jobs on a 16-node cluster, 4:1 oversubscribed.
    let placements = [
        (PlacementSpec::Packed, "Packed Allocation"),
        (PlacementSpec::Random, "Random Allocation"),
    ];
    let cells: Vec<ScenarioCell> = placements
        .iter()
        .map(|&(placement, _)| ScenarioCell {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            workload: workload.clone(),
            placement,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            fault: FaultSpec::None,
            seed,
            collect_flows: false,
        })
        .collect();
    let results = execute(&cells, threads);

    let mut table = Table::new(["allocation", "Llama", "LULESH"]);
    for ((_, label), run) in placements.iter().zip(&results) {
        let [llama_t, lulesh_t] = run.job_finish[..] else {
            panic!("expected two co-scheduled jobs, got {:?}", run.job_finish)
        };
        table.row([
            label.to_string(),
            format!("{:.3} ms", llama_t as f64 / 1e6),
            format!("{:.3} ms", lulesh_t as f64 / 1e6),
        ]);
    }
    table.print();

    let (lp, up) = (results[0].job_finish[0], results[0].job_finish[1]);
    let (lr, ur) = (results[1].job_finish[0], results[1].job_finish[1]);
    println!(
        "\nrandom vs packed: Llama {:+.0}%  LULESH {:+.0}%   (paper: +36% / +2%)",
        (lr as f64 / lp as f64 - 1.0) * 100.0,
        (ur as f64 / up as f64 - 1.0) * 100.0,
    );
}
