//! **E9 / Fig. 13** — Job placement in a shared cluster: Llama (AI) and
//! LULESH (HPC) co-scheduled on an oversubscribed fat tree, packed vs
//! random allocation, per-application runtime impact.
//!
//! ```text
//! cargo run --release --bin fig13_placement -- [--scale 0.002] [--seed 1]
//! ```
//!
//! Expected shape (paper): random allocation inflates Llama's runtime
//! (~+36%) because its DP rings start crossing the oversubscribed core,
//! while compute-bound LULESH barely moves (~+2%).

use atlahs_bench::args::Args;
use atlahs_bench::runner;
use atlahs_bench::table::Table;
use atlahs_bench::workloads;
use atlahs_core::{allocate, PlacementStrategy};
use atlahs_goal::merge::{compose, PlacedJob};
use atlahs_htsim::CcAlgo;
use atlahs_tracers::nccl::presets;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();

    println!("# Fig. 13 — job placement (scale={scale}, seed={seed})\n");

    // Job A: Llama 7B on 16 GPUs -> 4 nodes (communication-heavy).
    let mut llama = presets::llama7b_dp16(scale);
    llama.seed = seed;
    llama.iterations = 1;
    let (_, llama_goal) = workloads::ai_goal(&llama);

    // Job B: LULESH on 8 ranks (compute-heavy).
    let case = workloads::HpcCase {
        app: workloads::HpcApp::Lulesh,
        procs: 8,
        nodes: 8,
        scaling: atlahs_tracers::mpi::Scaling::Weak,
    };
    let (_, lulesh_goal) = workloads::hpc_goal(&case, scale.max(0.02), seed);

    let cluster = 16usize; // 4 + 8 jobs on a 16-node cluster, 4:1 oversub
    let topo = workloads::ai_topology_oversubscribed(cluster, 4);
    let sizes = [llama_goal.num_ranks(), lulesh_goal.num_ranks()];

    let mut table = Table::new(["allocation", "Llama", "LULESH"]);
    let mut results = Vec::new();
    for (strategy, label) in [
        (PlacementStrategy::Packed, "Packed Allocation"),
        (PlacementStrategy::Random { seed }, "Random Allocation"),
    ] {
        let placement = allocate(strategy, cluster, &sizes).expect("cluster fits both jobs");
        let merged = compose(
            &[
                PlacedJob::new(&llama_goal, placement[0].clone()),
                PlacedJob::new(&lulesh_goal, placement[1].clone()),
            ],
            cluster,
        )
        .expect("composition must succeed");

        let run = runner::run_htsim(&merged, topo.clone(), CcAlgo::Mprdma, seed, false);
        // Per-app runtime: the latest finish among the app's own nodes.
        let finish = |nodes: &[u32]| {
            nodes.iter().map(|&n| run.report.rank_finish[n as usize]).max().unwrap_or(0)
        };
        let llama_t = finish(&placement[0]);
        let lulesh_t = finish(&placement[1]);
        table.row([
            label.to_string(),
            format!("{:.3} ms", llama_t as f64 / 1e6),
            format!("{:.3} ms", lulesh_t as f64 / 1e6),
        ]);
        results.push((llama_t, lulesh_t));
    }
    table.print();

    let (lp, up) = results[0];
    let (lr, ur) = results[1];
    println!(
        "\nrandom vs packed: Llama {:+.0}%  LULESH {:+.0}%   (paper: +36% / +2%)",
        (lr as f64 / lp as f64 - 1.0) * 100.0,
        (ur as f64 / up as f64 - 1.0) * 100.0,
    );
}
