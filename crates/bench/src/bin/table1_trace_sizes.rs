//! **E2 / Table 1** — Released trace dataset summary: raw trace size vs
//! GOAL size for every application/configuration of the paper's Table 1.
//!
//! ```text
//! cargo run --release --bin table1_trace_sizes -- [--scale 0.002] [--seed 1]
//! ```
//!
//! Raw traces are the tracer artifacts (nsys-style text for AI, MPI logs
//! for HPC); GOAL sizes use the compact binary encoding. Absolute sizes
//! are scale-dependent; the paper's shape is that the two stay within a
//! small factor of each other in both directions (GOAL grows when
//! collectives decompose into many sends, shrinks when verbose trace
//! records collapse into single vertices).

#![forbid(unsafe_code)]

use atlahs_bench::args::Args;
use atlahs_bench::table::{fmt_bytes, Table};
use atlahs_bench::workloads::{self, HpcApp, HpcCase};
use atlahs_goal::binary;
use atlahs_tracers::nccl::presets;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();
    let quick = !args.flag("full");

    println!("# Table 1 — trace dataset summary (scale={scale}, seed={seed})\n");
    let mut table = Table::new(["app", "configuration", "trace", "GOAL", "GOAL/trace"]);

    // ---- AI rows (DLRM + the Fig. 8 configurations) ----
    let mut ai: Vec<atlahs_tracers::nccl::LlmConfig> = vec![presets::dlrm(scale)];
    ai.extend(workloads::ai_suite(scale, quick, seed).into_iter().map(|c| c.cfg));
    for mut cfg in ai {
        cfg.seed = seed;
        if quick {
            cfg.iterations = 1;
            cfg.batch = cfg.batch.min(2 * cfg.dp);
        }
        let (report, goal) = workloads::ai_goal(&cfg);
        let trace_bytes = report.to_text().len() as u64;
        let goal_bytes = binary::encode(&goal).len() as u64;
        table.row([
            cfg.name.clone(),
            format!("{} GPUs {} Nodes", cfg.gpus(), cfg.nodes()),
            fmt_bytes(trace_bytes),
            fmt_bytes(goal_bytes),
            format!("{:.2}", goal_bytes as f64 / trace_bytes as f64),
        ]);
    }

    // ---- HPC rows (Table 1's process/node grid) ----
    let hpc: Vec<(HpcApp, usize, usize)> = vec![
        (HpcApp::CloverLeaf, 128, 8),
        (HpcApp::Hpcg, 128, 8),
        (HpcApp::Hpcg, 512, 32),
        (HpcApp::Hpcg, 1024, 64),
        (HpcApp::Lulesh, 128, 8),
        (HpcApp::Lulesh, 432, 27),
        (HpcApp::Lulesh, 1024, 64),
        (HpcApp::Lammps, 128, 8),
        (HpcApp::Lammps, 512, 32),
        (HpcApp::Lammps, 1024, 64),
        (HpcApp::Icon, 128, 8),
        (HpcApp::Icon, 512, 32),
        (HpcApp::Icon, 1024, 64),
        (HpcApp::OpenMx, 128, 8),
        (HpcApp::OpenMx, 512, 32),
    ];
    for (app, procs, nodes) in hpc {
        let case = HpcCase { app, procs, nodes, scaling: atlahs_tracers::mpi::Scaling::Weak };
        let (trace, goal) = workloads::hpc_goal(&case, scale.max(0.02), seed);
        let trace_bytes = trace.to_text().len() as u64;
        let goal_bytes = binary::encode(&goal).len() as u64;
        table.row([
            app.name().to_string(),
            format!("{procs} Procs {nodes} Nodes"),
            fmt_bytes(trace_bytes),
            fmt_bytes(goal_bytes),
            format!("{:.2}", goal_bytes as f64 / trace_bytes as f64),
        ]);
    }
    table.print();
}
