//! The unified `atlahs` CLI: declarative scenario sweeps over the whole
//! toolchain (docs/SCENARIOS.md).
//!
//! ```text
//! atlahs sweep [--topos t1,t2] [--workloads w1,w2] [--ccs c1,c2]
//!              [--placements p1,p2] [--backends b1,b2] [--seed N]
//!              [--threads N] [--collect-flows]
//!              [--out report.json] [--csv report.csv] [--md report.md]
//!              [--quiet] [--smoke]
//! atlahs list
//! atlahs help
//! ```
//!
//! `sweep` expands the cartesian grid, runs every cell across OS threads
//! (each cell a deterministic single-threaded simulation with a derived
//! seed), prints a summary table, and optionally writes the JSON/CSV/
//! markdown reports. The JSON report is byte-identical regardless of
//! `--threads`. `--smoke` runs the fixed CI grid (ci.sh diffs its JSON
//! against `tests/goldens/sweep_smoke.json`).

use std::time::Instant;

use atlahs_bench::args::Args;
use atlahs_bench::scenario::{
    parse_cc, BackendFamily, PlacementSpec, ScenarioGrid, TopologySpec, WorkloadSpec,
};
use atlahs_bench::sweep::{execute, SweepReport};
use atlahs_htsim::CcAlgo;

fn main() {
    let mut argv: Vec<String> = std::env::args().collect();
    // Pull the subcommand out so `Args` sees only `--flag value` pairs.
    let sub =
        if argv.len() > 1 && !argv[1].starts_with("--") { argv.remove(1) } else { String::new() };
    let args = Args::from_tokens(argv);

    match sub.as_str() {
        "sweep" => sweep(&args),
        "list" => list(),
        "" | "help" | "-h" => usage(),
        other => {
            eprintln!("atlahs: unknown subcommand `{other}`\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!(
        "atlahs — the ATLAHS scenario-sweep CLI\n\n\
         USAGE:\n  atlahs sweep [axes] [execution] [output]\n  atlahs list\n\n\
         AXES (comma-separated; see `atlahs list` and docs/SCENARIOS.md):\n\
         \x20 --topos      topologies   (default ai-fattree:16:1,ai-fattree:16:4)\n\
         \x20 --workloads  workloads    (default ring:16:262144:1,moe:16:4:262144:2:5000)\n\
         \x20 --ccs        congestion controls for htsim (default mprdma,ndp)\n\
         \x20 --placements placements   (default packed)\n\
         \x20 --backends   backend families (default htsim,lgs)\n\n\
         EXECUTION:\n\
         \x20 --seed N         grid seed; every cell derives its own (default 1)\n\
         \x20 --threads N      worker threads; 0 = all cores (default 0)\n\
         \x20 --collect-flows  record per-flow MCT statistics on packet cells\n\
         \x20 --smoke          run the fixed CI smoke grid (ignores axis flags)\n\n\
         OUTPUT:\n\
         \x20 --out FILE   write the deterministic JSON report\n\
         \x20 --csv FILE   write the CSV report\n\
         \x20 --md FILE    write the markdown report\n\
         \x20 --quiet      suppress the summary table"
    );
}

fn list() {
    println!(
        "topologies:\n\
         \x20 ai-fattree:<nodes>[:<oversub>]        200 Gb/s Alps-class fat tree\n\
         \x20 hpc-fattree:<procs>:<nodes>           56 Gb/s CSCS-class fat tree\n\
         \x20 storage-fattree:<hosts>[:<oversub>]   100 Gb/s Direct Drive fabric\n\
         \x20 dragonfly:<groups>:<routers>:<hosts>  balanced dragonfly\n\
         \x20 switch:<hosts>                        single crossbar switch\n\
         workloads:\n\
         \x20 ring:<ranks>:<bytes>:<laps>\n\
         \x20 perm:<ranks>:<bytes>:<shift>:<repeat>\n\
         \x20 uniform:<ranks>:<bytes>:<msgs>\n\
         \x20 incast:<ranks>:<bytes>:<repeat>\n\
         \x20 moe:<ranks>:<group>:<bytes>:<layers>:<compute_ns>\n\
         \x20 pipeline:<stages>:<microbatches>:<bytes>:<compute_ns>\n\
         \x20 storage-incast:<clients>:<servers>:<bytes>:<reads>\n\
         \x20 llm:<preset>:<scale>   presets: llama7b-dp16 llama7b-dp128 llama70b\n\
         \x20                                 mistral8x7b moe8x13b moe8x70b\n\
         \x20 hpc:<app>:<procs>:<nodes>:<scale>   apps: cloverleaf hpcg lulesh\n\
         \x20                                           lammps icon openmx\n\
         \x20 storage:<ops>:<gap_ns>:<compress>\n\
         ccs:        mprdma swift ndp dctcp\n\
         placements: packed random roundrobin\n\
         backends:   htsim htsim-spray lgs ideal"
    );
}

fn split_list(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty()).collect()
}

fn parse_axis<T>(
    args: &Args,
    flag: &str,
    default: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Vec<T> {
    let raw = args.get_str(flag, default);
    split_list(&raw)
        .into_iter()
        .map(|tok| {
            parse(tok).unwrap_or_else(|e| {
                eprintln!("atlahs sweep: --{flag}: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// The fixed CI smoke grid: 24 fast cells spanning both packet-level CC
/// algorithms, spraying, the message-level model, and the ideal bound.
fn smoke_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec![
            TopologySpec::SingleSwitch { hosts: 8 },
            TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        ],
        workloads: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 128 << 10, laps: 1 },
            WorkloadSpec::MoeAllToAll {
                ranks: 8,
                group: 4,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 2_000,
            },
        ],
        ccs: vec![CcAlgo::Mprdma, CcAlgo::Ndp],
        placements: vec![PlacementSpec::Packed],
        backends: vec![
            BackendFamily::Htsim,
            BackendFamily::HtsimSpray,
            BackendFamily::Lgs,
            BackendFamily::Ideal,
        ],
        seed: 1,
        collect_flows: true,
    }
}

fn sweep(args: &Args) {
    let grid = if args.flag("smoke") {
        smoke_grid()
    } else {
        ScenarioGrid {
            topologies: parse_axis(
                args,
                "topos",
                "ai-fattree:16:1,ai-fattree:16:4",
                TopologySpec::parse,
            ),
            workloads: parse_axis(
                args,
                "workloads",
                "ring:16:262144:1,moe:16:4:262144:2:5000",
                WorkloadSpec::parse,
            ),
            ccs: parse_axis(args, "ccs", "mprdma,ndp", parse_cc),
            placements: parse_axis(args, "placements", "packed", PlacementSpec::parse),
            backends: parse_axis(args, "backends", "htsim,lgs", BackendFamily::parse),
            seed: args.seed(),
            collect_flows: args.flag("collect-flows"),
        }
    };

    let (cells, dropped) = grid.expand_counted();
    for reason in &dropped {
        eprintln!("atlahs sweep: skipping infeasible combination: {reason}");
    }
    if cells.is_empty() {
        eprintln!("atlahs sweep: the grid expanded to zero feasible cells");
        std::process::exit(2);
    }
    let threads = args.get("threads", 0usize);
    let quiet = args.flag("quiet");

    if !quiet {
        println!(
            "# atlahs sweep — {} cells ({} topologies x {} workloads x {} placements x \
             {} backend specs), seed {}, threads {}",
            cells.len(),
            grid.topologies.len(),
            grid.workloads.len(),
            grid.placements.len(),
            grid.backends.len(),
            grid.seed,
            if threads == 0 { "auto".to_string() } else { threads.to_string() },
        );
    }

    let t0 = Instant::now();
    let results = execute(&cells, threads);
    let elapsed = t0.elapsed();
    let report = SweepReport { seed: grid.seed, results };

    if !quiet {
        report.summary_table().print();
        println!(
            "\n{} cells in {:.2} s wall ({:.2} s of single-threaded cell time)",
            report.results.len(),
            elapsed.as_secs_f64(),
            report.total_cell_wall().as_secs_f64(),
        );
    }

    let write = |path: &str, contents: String, what: &str| {
        std::fs::write(path, contents).unwrap_or_else(|e| {
            eprintln!("atlahs sweep: cannot write {what} report to {path}: {e}");
            std::process::exit(1);
        });
        if !quiet {
            println!("wrote {what} report: {path}");
        }
    };
    let out = args.get_str("out", "");
    if !out.is_empty() {
        write(&out, report.to_json().pretty(), "JSON");
    }
    let csv = args.get_str("csv", "");
    if !csv.is_empty() {
        write(&csv, report.to_csv(), "CSV");
    }
    let md = args.get_str("md", "");
    if !md.is_empty() {
        write(&md, report.to_markdown(), "markdown");
    }
}
