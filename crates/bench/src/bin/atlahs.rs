//! The unified `atlahs` CLI: declarative scenario sweeps over the whole
//! toolchain (docs/SCENARIOS.md).
//!
//! ```text
//! atlahs sweep [--topos t1,t2] [--workloads w1,w2] [--ccs c1,c2]
//!              [--placements p1,p2] [--backends b1,b2] [--faults f1,f2]
//!              [--seed N] [--threads N] [--collect-flows]
//!              [--out report.json] [--csv report.csv] [--md report.md]
//!              [--quiet] [--smoke] [--fault-smoke] [--stochastic-smoke]
//! atlahs cluster [--topo t] [--catalog w1,w2] [--arrivals a1,a2]
//!                [--queues q1,q2] [--placements p1,p2] [--ccs c1,c2]
//!                [--backends b1,b2] [--faults f1,f2] [--seed N]
//!                [--threads N]
//!                [--out report.json] [--csv report.csv] [--md report.md]
//!                [--quiet] [--smoke] [--fault-smoke]
//! atlahs lint [--root DIR]
//! atlahs list
//! atlahs help
//! ```
//!
//! `sweep` expands the cartesian grid, runs every cell across OS threads
//! (each cell a deterministic single-threaded simulation with a derived
//! seed), prints a summary table, and optionally writes the JSON/CSV/
//! markdown reports. The JSON report is byte-identical regardless of
//! `--threads`. `--smoke` runs the fixed CI grid (ci.sh diffs its JSON
//! against `tests/goldens/sweep_smoke.json`); `--fault-smoke` runs the
//! fixed fault-injection grid (diffed against
//! `tests/goldens/fault_smoke.json`); `--stochastic-smoke` runs the
//! fixed per-packet stochastic link-model grid (diffed against
//! `tests/goldens/stochastic_smoke.json`).
//!
//! `cluster` runs the dynamic multi-tenant engine: a seeded job-arrival
//! process over a workload catalog, an online allocator with queueing and
//! backfill, per-job wait/completion/slowdown metrics (docs/SCENARIOS.md).
//! Same determinism guarantee; `--smoke` runs the fixed CI grid diffed
//! against `tests/goldens/cluster_smoke.json`, and `--fault-smoke` the
//! fixed failure-injection grid diffed against
//! `tests/goldens/cluster_fault_smoke.json`.
//!
//! `lint` runs the offline determinism audit (docs/DETERMINISM.md): a
//! static pass over every non-shim crate banning floats, default-hashed
//! maps, hash-order iteration, wall clocks, ambient randomness and
//! `unsafe` from result-affecting code, honouring
//! `// det-lint: allow(<rule>) — <reason>` annotations, and checking
//! golden-file hygiene. Exits 1 on any finding (a ci.sh stage).

#![forbid(unsafe_code)]

use std::time::Instant;

use atlahs_bench::args::Args;
use atlahs_bench::branch::execute_branched;
use atlahs_bench::cluster::{
    run_grid, ArrivalSpec, ClusterFaultSpec, ClusterGrid, ClusterReport, QueueDiscipline,
};
use atlahs_bench::scenario::{
    parse_cc, BackendFamily, FaultSpec, PlacementSpec, ScenarioGrid, TopologySpec, WorkloadSpec,
};
use atlahs_bench::smoke;
use atlahs_bench::sweep::{execute, SweepReport};

fn main() {
    let mut argv: Vec<String> = std::env::args().collect();
    // Pull the subcommand out so `Args` sees only `--flag value` pairs.
    let sub =
        if argv.len() > 1 && !argv[1].starts_with("--") { argv.remove(1) } else { String::new() };
    let args = Args::from_tokens(argv);

    match sub.as_str() {
        "sweep" => sweep(&args),
        "cluster" => cluster(&args),
        "lint" => lint(&args),
        "list" => list(),
        "" | "help" | "-h" => usage(),
        other => {
            eprintln!("atlahs: unknown subcommand `{other}`\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!(
        "atlahs — the ATLAHS scenario-sweep CLI\n\n\
         USAGE:\n  atlahs sweep [axes] [execution] [output]\n  \
         atlahs cluster [axes] [execution] [output]\n  \
         atlahs lint [--root DIR]\n  atlahs list\n\n\
         LINT (docs/DETERMINISM.md):\n\
         \x20 the static determinism audit: bans floats, default-hashed maps,\n\
         \x20 hash-order iteration, wall clocks, ambient randomness and unsafe\n\
         \x20 from result-affecting crates; checks det-lint annotations and\n\
         \x20 golden hygiene. Exits 1 on any finding (runs as a ci.sh stage).\n\n\
         SWEEP AXES (comma-separated; see `atlahs list` and docs/SCENARIOS.md):\n\
         \x20 --topos      topologies   (default ai-fattree:16:1,ai-fattree:16:4)\n\
         \x20 --workloads  workloads    (default ring:16:262144:1,moe:16:4:262144:2:5000)\n\
         \x20 --ccs        congestion controls for htsim (default mprdma,ndp)\n\
         \x20 --placements placements   (default packed)\n\
         \x20 --backends   backend families (default htsim,lgs)\n\
         \x20 --faults     fault regimes  (default none; see `atlahs list`)\n\n\
         CLUSTER AXES (dynamic multi-tenant engine; docs/SCENARIOS.md):\n\
         \x20 --topo       the shared fabric (default ai-fattree:16:4)\n\
         \x20 --catalog    workload catalog arrivals draw from\n\
         \x20              (default ring:4:131072:1,incast:3:65536:1)\n\
         \x20 --arrivals   poisson:<jobs>:<mean_gap_ns> | trace:<t0>;<t1>;…\n\
         \x20              (default poisson:12:200000)\n\
         \x20 --queues     fifo | smallest (default fifo)\n\
         \x20 --placements / --ccs / --backends as for sweep (default packed /\n\
         \x20              mprdma / lgs,ideal)\n\
         \x20 --faults     none | jobfail:<pct>:<at_pct>:<retries> |\n\
         \x20              mtbf:<mtbf_ns>:<retries> (default none)\n\n\
         EXECUTION:\n\
         \x20 --seed N         grid seed; every cell derives its own (default 1)\n\
         \x20 --threads N      worker threads; 0 = all cores (default 0)\n\
         \x20 --collect-flows  record per-flow MCT statistics (sweep only)\n\
         \x20 --smoke          run the fixed CI smoke grid (ignores axis flags)\n\
         \x20 --fault-smoke    run the fixed fault-injection grid\n\
         \x20 --stochastic-smoke  run the fixed per-packet stochastic grid\n\
         \x20                  (sweep only)\n\
         \x20 --branch-at NS   branch-and-continue: simulate each shared prefix\n\
         \x20                  (topology+workload+placement+backend) once, snapshot,\n\
         \x20                  apply each cell's fault at NS, re-simulate only the\n\
         \x20                  suffix (sweep only)\n\
         \x20 --branch F1,F2   extra fault regimes applied only at the branch point\n\
         \x20                  (appended to --faults; requires --branch-at)\n\
         \x20 --branch-smoke   run the fixed branched CI grid at its pinned\n\
         \x20                  branch time\n\n\
         OUTPUT:\n\
         \x20 --out FILE   write the deterministic JSON report\n\
         \x20 --csv FILE   write the CSV report\n\
         \x20 --md FILE    write the markdown report\n\
         \x20 --quiet      suppress the summary table"
    );
}

fn list() {
    println!(
        "topologies:\n\
         \x20 ai-fattree:<nodes>[:<oversub>]        200 Gb/s Alps-class fat tree\n\
         \x20 hpc-fattree:<procs>:<nodes>           56 Gb/s CSCS-class fat tree\n\
         \x20 storage-fattree:<hosts>[:<oversub>]   100 Gb/s Direct Drive fabric\n\
         \x20 dragonfly:<groups>:<routers>:<hosts>  balanced dragonfly\n\
         \x20 switch:<hosts>                        single crossbar switch\n\
         workloads:\n\
         \x20 ring:<ranks>:<bytes>:<laps>\n\
         \x20 perm:<ranks>:<bytes>:<shift>:<repeat>\n\
         \x20 uniform:<ranks>:<bytes>:<msgs>\n\
         \x20 incast:<ranks>:<bytes>:<repeat>\n\
         \x20 moe:<ranks>:<group>:<bytes>:<layers>:<compute_ns>\n\
         \x20 pipeline:<stages>:<microbatches>:<bytes>:<compute_ns>\n\
         \x20 storage-incast:<clients>:<servers>:<bytes>:<reads>\n\
         \x20 llm:<preset>:<scale>   presets: llama7b-dp16 llama7b-dp128 llama70b\n\
         \x20                                 mistral8x7b moe8x13b moe8x70b\n\
         \x20 hpc:<app>:<procs>:<nodes>:<scale>   apps: cloverleaf hpcg lulesh\n\
         \x20                                           lammps icon openmx\n\
         \x20 storage:<ops>:<gap_ns>:<compress>\n\
         ccs:        mprdma swift ndp dctcp\n\
         placements: packed random roundrobin\n\
         backends:   htsim htsim-spray lgs ideal\n\
         faults (sweep):\n\
         \x20 none\n\
         \x20 linkflap:<links>:<down_ns>:<up_ns>              (htsim only)\n\
         \x20 degrade:<links>:<bw_pct>:<lat_pct>:<from_ns>:<to_ns>  (htsim only)\n\
         \x20 straggler:<prob_pct>:<factor_pct>[:<spread_pct>:<shape>]  (lgs only)\n\
         \x20 markov:<links>:<up_ns>:<down_ns>:<horizon_ns>   (htsim only)\n\
         \x20 rackfail:<racks>:<from_ns>:<to_ns>              (htsim only)\n\
         \x20 switchfail:<switches>:<from_ns>:<to_ns>         (htsim only)\n\
         \x20 churn:<t;dom;d|u,...> | churn:@<trace-file>     (htsim only)\n\
         \x20 loss:<ppm>[:core|:edge]                         (htsim only)\n\
         \x20 jitter:exp:<mean_ns> | jitter:weibull:<scale_ns>:<shape>\n\
         \x20   | jitter:uniform:<max_ns>                     (htsim only)\n\
         arrivals (cluster): poisson:<jobs>:<mean_gap_ns>  trace:<t0>;<t1>;…\n\
         queues (cluster):   fifo smallest\n\
         faults (cluster):   none  jobfail:<pct>:<at_pct>:<retries>\n\
         \x20                   mtbf:<mtbf_ns>:<retries>  loss:…  jitter:…"
    );
}

/// `atlahs lint`: the workspace determinism audit (docs/DETERMINISM.md).
/// Exits non-zero on any unannotated violation, stale or malformed
/// `det-lint` annotation, or golden-hygiene failure.
fn lint(args: &Args) {
    let root = {
        let explicit = args.get_str("root", "");
        if explicit.is_empty() {
            find_workspace_root()
        } else {
            std::path::PathBuf::from(explicit)
        }
    };
    if !root.join("crates").is_dir() {
        eprintln!("atlahs lint: `{}` is not the workspace root (no crates/)", root.display());
        std::process::exit(2);
    }
    let report = match atlahs_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("atlahs lint: audit failed to read the workspace: {e}");
            std::process::exit(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "atlahs lint: {} crates, {} files, {} allow annotations honoured, {} finding{}",
        report.crates_scanned,
        report.files_scanned,
        report.annotations_used,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
    );
    if !report.is_clean() {
        std::process::exit(1);
    }
}

/// Walk upward from the current directory to the workspace root.
fn find_workspace_root() -> std::path::PathBuf {
    let mut d = std::env::current_dir().expect("current dir");
    loop {
        if d.join("crates").is_dir() && d.join("ci.sh").is_file() {
            return d;
        }
        if !d.pop() {
            eprintln!("atlahs lint: no workspace root found above the current directory");
            std::process::exit(2);
        }
    }
}

fn split_list(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty()).collect()
}

fn parse_axis<T>(
    args: &Args,
    flag: &str,
    default: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Vec<T> {
    let raw = args.get_str(flag, default);
    split_list(&raw)
        .into_iter()
        .map(|tok| {
            parse(tok).unwrap_or_else(|e| {
                eprintln!("atlahs sweep: --{flag}: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn sweep(args: &Args) {
    let grid = if args.flag("branch-smoke") {
        smoke::branch_smoke_grid()
    } else if args.flag("stochastic-smoke") {
        smoke::stochastic_smoke_grid()
    } else if args.flag("fault-smoke") {
        smoke::fault_smoke_grid()
    } else if args.flag("smoke") {
        smoke::sweep_smoke_grid()
    } else {
        ScenarioGrid {
            topologies: parse_axis(
                args,
                "topos",
                "ai-fattree:16:1,ai-fattree:16:4",
                TopologySpec::parse,
            ),
            workloads: parse_axis(
                args,
                "workloads",
                "ring:16:262144:1,moe:16:4:262144:2:5000",
                WorkloadSpec::parse,
            ),
            ccs: parse_axis(args, "ccs", "mprdma,ndp", parse_cc),
            placements: parse_axis(args, "placements", "packed", PlacementSpec::parse),
            backends: parse_axis(args, "backends", "htsim,lgs", BackendFamily::parse),
            faults: parse_axis(args, "faults", "none", FaultSpec::parse),
            seed: args.seed(),
            collect_flows: args.flag("collect-flows"),
        }
    };

    // Branch-and-continue: `--branch-at <ns>` simulates each shared
    // prefix (same topology/workload/placement/backend) once, snapshots,
    // and fans out into per-cell continuations whose fault axis is
    // applied *at the branch point*. `--branch <faults>` appends what-if
    // override values to the fault axis; `--branch-smoke` runs the fixed
    // CI branch grid at its pinned branch time.
    let mut grid = grid;
    let branch_extra = args.get_str("branch", "");
    if !branch_extra.is_empty() {
        if args.get("branch-at", 0u64) == 0 && !args.flag("branch-smoke") {
            eprintln!("atlahs sweep: --branch requires --branch-at <ns>");
            std::process::exit(2);
        }
        for tok in branch_extra.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match FaultSpec::parse(tok) {
                Ok(f) => {
                    if !grid.faults.contains(&f) {
                        grid.faults.push(f);
                    }
                }
                Err(e) => {
                    eprintln!("atlahs sweep: --branch: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    let grid = grid;
    let branch_at = if args.flag("branch-smoke") {
        args.get("branch-at", smoke::BRANCH_SMOKE_AT)
    } else {
        args.get("branch-at", 0u64)
    };

    let (cells, dropped) = grid.expand_counted();
    for reason in &dropped {
        eprintln!("atlahs sweep: skipping infeasible combination: {reason}");
    }
    if cells.is_empty() {
        eprintln!("atlahs sweep: the grid expanded to zero feasible cells");
        std::process::exit(2);
    }
    let threads = args.get("threads", 0usize);
    let quiet = args.flag("quiet");

    if !quiet {
        println!(
            "# atlahs sweep — {} cells ({} topologies x {} workloads x {} placements x \
             {} backend specs), seed {}, threads {}",
            cells.len(),
            grid.topologies.len(),
            grid.workloads.len(),
            grid.placements.len(),
            grid.backends.len(),
            grid.seed,
            if threads == 0 { "auto".to_string() } else { threads.to_string() },
        );
    }

    let t0 = Instant::now();
    let (results, branch) = if branch_at > 0 {
        let (results, stats) = execute_branched(&cells, branch_at, threads);
        if !quiet {
            println!(
                "# branch-and-continue at {branch_at} ns: {} shared prefixes for {} cells",
                stats.prefix_runs,
                cells.len(),
            );
        }
        (results, Some(stats))
    } else {
        (execute(&cells, threads), None)
    };
    let elapsed = t0.elapsed();
    let report = SweepReport { seed: grid.seed, results, branch };

    if !quiet {
        report.summary_table().print();
        println!(
            "\n{} cells in {:.2} s wall ({:.2} s of single-threaded cell time)",
            report.results.len(),
            elapsed.as_secs_f64(),
            report.total_cell_wall().as_secs_f64(),
        );
    }

    let write = |path: &str, contents: String, what: &str| {
        std::fs::write(path, contents).unwrap_or_else(|e| {
            eprintln!("atlahs sweep: cannot write {what} report to {path}: {e}");
            std::process::exit(1);
        });
        if !quiet {
            println!("wrote {what} report: {path}");
        }
    };
    let out = args.get_str("out", "");
    if !out.is_empty() {
        write(&out, report.to_json().pretty(), "JSON");
    }
    let csv = args.get_str("csv", "");
    if !csv.is_empty() {
        write(&csv, report.to_csv(), "CSV");
    }
    let md = args.get_str("md", "");
    if !md.is_empty() {
        write(&md, report.to_markdown(), "markdown");
    }
}

fn cluster(args: &Args) {
    let grid = if args.flag("fault-smoke") {
        smoke::cluster_fault_smoke_grid()
    } else if args.flag("smoke") {
        smoke::cluster_smoke_grid()
    } else {
        let topos = parse_axis(args, "topo", "ai-fattree:16:4", TopologySpec::parse);
        if topos.len() != 1 {
            eprintln!("atlahs cluster: --topo takes exactly one fabric");
            std::process::exit(2);
        }
        ClusterGrid {
            topology: topos.into_iter().next().expect("checked above"),
            catalog: parse_axis(
                args,
                "catalog",
                "ring:4:131072:1,incast:3:65536:1",
                WorkloadSpec::parse,
            ),
            arrivals: parse_axis(args, "arrivals", "poisson:12:200000", ArrivalSpec::parse),
            queues: parse_axis(args, "queues", "fifo", QueueDiscipline::parse),
            placements: parse_axis(args, "placements", "packed", PlacementSpec::parse),
            ccs: parse_axis(args, "ccs", "mprdma", parse_cc),
            backends: parse_axis(args, "backends", "lgs,ideal", BackendFamily::parse),
            faults: parse_axis(args, "faults", "none", ClusterFaultSpec::parse),
            seed: args.seed(),
        }
    };

    let (cells, dropped) = grid.expand_counted();
    for reason in &dropped {
        eprintln!("atlahs cluster: skipping oversized catalog workload: {reason}");
    }
    if cells.is_empty() {
        eprintln!("atlahs cluster: the grid expanded to zero feasible cells");
        std::process::exit(2);
    }
    let threads = args.get("threads", 0usize);
    let quiet = args.flag("quiet");

    if !quiet {
        println!(
            "# atlahs cluster — {} cells ({} arrival specs x {} queues x {} placements x \
             {} backend families) on {}, seed {}, threads {}",
            cells.len(),
            grid.arrivals.len(),
            grid.queues.len(),
            grid.placements.len(),
            grid.backends.len(),
            grid.topology.label(),
            grid.seed,
            if threads == 0 { "auto".to_string() } else { threads.to_string() },
        );
    }

    let t0 = Instant::now();
    let results = run_grid(&cells, threads);
    let elapsed = t0.elapsed();
    let report = ClusterReport { seed: grid.seed, results };

    if !quiet {
        report.summary_table().print();
        println!(
            "\n{} cells in {:.2} s wall ({:.2} s of single-threaded cell time)",
            report.results.len(),
            elapsed.as_secs_f64(),
            report.total_cell_wall().as_secs_f64(),
        );
    }

    let write = |path: &str, contents: String, what: &str| {
        std::fs::write(path, contents).unwrap_or_else(|e| {
            eprintln!("atlahs cluster: cannot write {what} report to {path}: {e}");
            std::process::exit(1);
        });
        if !quiet {
            println!("wrote {what} report: {path}");
        }
    };
    let out = args.get_str("out", "");
    if !out.is_empty() {
        write(&out, report.to_json().pretty(), "JSON");
    }
    let csv = args.get_str("csv", "");
    if !csv.is_empty() {
        write(&csv, report.to_csv(), "CSV");
    }
    let md = args.get_str("md", "");
    if !md.is_empty() {
        write(&md, report.to_markdown(), "markdown");
    }
}
