//! **E6 / Fig. 10** — HPC validation: measured vs predicted runtime for
//! fifteen application/scale points (weak and strong scaling), error of
//! ATLAHS LGS and ATLAHS htsim against the measured runtime.
//!
//! ```text
//! cargo run --release --bin fig10_hpc_validation -- [--scale 0.05] [--seed 1]
//! ```
//!
//! Expected shape (paper): prediction error below ~5% across all points
//! for both backends; LGS error drifts slightly upward with scale while
//! htsim stays flat; the non-overlapped-computation share is high
//! (57–93%) for these MPI+OpenMP codes.

#![forbid(unsafe_code)]

use atlahs_bench::args::Args;
use atlahs_bench::runner;
use atlahs_bench::table::{fmt_pct, pct_err, Table};
use atlahs_bench::workloads;
use atlahs_htsim::CcAlgo;
use atlahs_tracers::mpi::Scaling;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.05);
    let seed = args.seed();

    println!("# Fig. 10 — HPC validation (scale={scale}, seed={seed})");
    println!("# measured = fluid-flow testbed emulator; LGS params calibrated against it");
    println!("# (the paper fits LogGOPS to its physical cluster with Netgauge the same way)\n");

    let mut table = Table::new([
        "app (procs/nodes)",
        "scaling",
        "measured",
        "non-ovl comp",
        "LGS",
        "err",
        "htsim",
        "err",
    ]);
    let mut worst_lgs: f64 = 0.0;
    let mut worst_ht: f64 = 0.0;

    for case in workloads::hpc_suite() {
        let (_trace, goal) = workloads::hpc_goal(&case, scale, seed);
        let topo = workloads::hpc_topology(case.procs, case.nodes);

        let (measured, _) = runner::run_testbed(&goal, topo.clone(), seed);
        let comp = runner::compute_only_ns(&goal);
        let nonovl = comp as f64 / measured.makespan as f64 * 100.0;

        let (lgs, _) = runner::run_lgs(&goal, workloads::hpc_lgs_params());
        let ht = runner::run_htsim(&goal, topo, CcAlgo::Mprdma, seed, false);

        let e_lgs = pct_err(measured.makespan, lgs.makespan);
        let e_ht = pct_err(measured.makespan, ht.report.makespan);
        worst_lgs = worst_lgs.max(e_lgs.abs());
        worst_ht = worst_ht.max(e_ht.abs());

        table.row([
            case.label(),
            match case.scaling {
                Scaling::Weak => "weak".to_string(),
                Scaling::Strong => "strong".to_string(),
            },
            format!("{:.3} ms", measured.makespan as f64 / 1e6),
            format!("{nonovl:.1}%"),
            format!("{:.3} ms", lgs.makespan as f64 / 1e6),
            fmt_pct(e_lgs),
            format!("{:.3} ms", ht.report.makespan as f64 / 1e6),
            fmt_pct(e_ht),
        ]);
    }
    table.print();
    println!("\nworst |error|: LGS {worst_lgs:.1}%  htsim {worst_ht:.1}%  (paper target: <5%)");
}
