//! **BENCH_engine** — the packet-engine performance trajectory.
//!
//! Measures wall-clock cost and engine event throughput of the simulation
//! backends on a fixed scenario set, and emits `BENCH_engine.json` so the
//! repository carries a perf baseline across PRs (ROADMAP: "make a hot
//! path measurably faster" requires the measurement to exist first).
//!
//! ```text
//! cargo run --release --bin bench_engine -- \
//!     [--ops 8000] [--reps 3] [--seed 1] [--quick] \
//!     [--label "my change"] [--baseline old.json] [--out BENCH_engine.json]
//! ```
//!
//! Scenarios:
//!
//! * `fig11_oversub_{mprdma,ndp}` — the paper's Fig. 11 storage workload
//!   on the 8:1 oversubscribed fat tree: heavy drops/retransmissions, the
//!   engine's worst case and the acceptance scenario for perf PRs.
//! * `spray_permutation_64h` — per-packet spraying on a fully provisioned
//!   fat tree: exercises the per-hop routing path.
//! * `engine_events_per_sec` — single-switch permutation: pure event-core
//!   throughput with no loss recovery.
//! * `ring_allreduce_{16,64}r_{ideal,lgs,htsim}` — the three backend
//!   tiers at small and large scale (the §5.2 runtime-cost story).
//!
//! With `--baseline old.json`, the previous run is embedded under
//! `"baseline"` and per-scenario `"speedup_vs_baseline"` ratios
//! (baseline wall / current wall; >1 = faster now) are computed.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use atlahs_bench::args::Args;
use atlahs_bench::json::Json;
use atlahs_bench::table::Table;
use atlahs_bench::workloads;
use atlahs_collectives::{mpi, CollParams};
use atlahs_core::backends::IdealBackend;
use atlahs_core::{Backend, Simulation};
use atlahs_directdrive::{trace_to_goal, DirectDriveLayout, ServiceParams};
use atlahs_goal::{GoalBuilder, GoalSchedule};
use atlahs_htsim::engine::{HtsimBackend, HtsimConfig, NetStats};
use atlahs_htsim::topology::{LinkParams, TopologyConfig};
use atlahs_htsim::CcAlgo;
use atlahs_lgs::{LgsBackend, LogGopsParams};

struct Measurement {
    name: String,
    backend: &'static str,
    wall: Duration,
    makespan_ns: u64,
    stats: Option<NetStats>,
}

impl Measurement {
    fn events_per_sec(&self) -> Option<f64> {
        let st = self.stats.as_ref()?;
        Some(st.internal_events as f64 / self.wall.as_secs_f64())
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("name", Json::Str(self.name.clone()));
        j.set("backend", Json::Str(self.backend.into()));
        j.set("wall_ms", Json::Num(self.wall.as_secs_f64() * 1e3));
        j.set("makespan_ns", Json::Num(self.makespan_ns as f64));
        if let Some(st) = &self.stats {
            j.set("internal_events", Json::Num(st.internal_events as f64));
            j.set("events_per_sec", Json::Num(self.events_per_sec().unwrap_or(0.0)));
            j.set("packets_sent", Json::Num(st.packets_sent as f64));
            j.set("drops", Json::Num(st.drops as f64));
            j.set("trims", Json::Num(st.trims as f64));
            j.set("retransmissions", Json::Num(st.retransmissions as f64));
        }
        j
    }
}

/// Run `mk()` fresh `reps` times; keep the fastest run (least noisy
/// estimator of the engine's cost on an otherwise idle machine).
fn measure<B: Backend>(
    name: &str,
    backend: &'static str,
    goal: &GoalSchedule,
    reps: usize,
    stats_of: impl Fn(&B) -> Option<NetStats>,
    mk: impl Fn() -> B,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps.max(1) {
        let mut be = mk();
        let t0 = Instant::now();
        let rep = Simulation::new(goal).run(&mut be).expect("scenario must complete");
        let wall = t0.elapsed();
        let m = Measurement {
            name: name.into(),
            backend,
            wall,
            makespan_ns: rep.makespan,
            stats: stats_of(&be),
        };
        if best.as_ref().map_or(true, |b| m.wall < b.wall) {
            best = Some(m);
        }
    }
    best.unwrap()
}

fn htsim_stats(be: &HtsimBackend) -> Option<NetStats> {
    Some(be.net_stats())
}

/// The Fig. 11 storage GOAL (Direct Drive OLTP burst) at `ops` operations.
fn fig11_goal(ops: usize, seed: u64) -> (GoalSchedule, usize) {
    let layout = DirectDriveLayout::standard(16, 4, 24);
    let params = ServiceParams {
        ccs_lookup_ns: 300,
        bss_read_base_ns: 1_500,
        bss_read_per_byte: 0.005,
        bss_write_base_ns: 2_000,
        bss_write_per_byte: 0.005,
        ..ServiceParams::default()
    };
    let mut trace = workloads::storage_trace_at_load(ops, 50, seed);
    for r in &mut trace.records {
        r.ts_ns /= 12;
    }
    let mut b = GoalBuilder::new(layout.total_ranks());
    trace_to_goal(&trace, &layout, &params, &mut b);
    (b.build().expect("storage GOAL must build"), layout.total_ranks())
}

fn ring_allreduce(ranks: usize, bytes: u64) -> GoalSchedule {
    let ids: Vec<u32> = (0..ranks as u32).collect();
    let mut b = GoalBuilder::new(ranks);
    mpi::allreduce_ring(&mut b, &ids, bytes, 0, &CollParams::default());
    b.build().unwrap()
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let ops = args.get("ops", if quick { 300usize } else { 8_000 });
    let reps = args.get("reps", if quick { 1usize } else { 3 });
    let seed = args.seed();
    let label = args.get_str("label", "htsim packet engine");
    let out_path = args.get_str("out", "BENCH_engine.json");
    let perm_bytes: u64 = if quick { 256 << 10 } else { 4 << 20 };
    let ring_bytes: u64 = if quick { 128 << 10 } else { 1 << 20 };

    eprintln!("# bench_engine (ops={ops}, reps={reps}, seed={seed}, quick={quick})");

    let mut ms: Vec<Measurement> = Vec::new();

    // --- Fig. 11 oversubscribed storage (the acceptance scenario) -------
    let (goal, ranks) = fig11_goal(ops, seed);
    let topo_over = workloads::storage_topology(ranks, 8);
    for (cc, tag) in [(CcAlgo::Mprdma, "mprdma"), (CcAlgo::Ndp, "ndp")] {
        ms.push(measure(
            &format!("fig11_oversub_{tag}"),
            "htsim",
            &goal,
            reps,
            htsim_stats,
            || {
                let mut cfg = HtsimConfig::new(topo_over.clone(), cc);
                cfg.seed = seed;
                HtsimBackend::new(cfg)
            },
        ));
    }

    // --- Per-packet spraying (the per-hop routing path) -----------------
    let spray_goal = workloads::cross_tor_permutation(64, perm_bytes);
    ms.push(measure("spray_permutation_64h", "htsim", &spray_goal, reps, htsim_stats, || {
        let mut cfg = HtsimConfig::new(TopologyConfig::fat_tree(64, 8), CcAlgo::Mprdma);
        cfg.seed = seed;
        cfg.spray = true;
        HtsimBackend::new(cfg)
    }));

    // --- Pure event-core throughput -------------------------------------
    let flood = workloads::cross_tor_permutation(16, if quick { 1 << 20 } else { 16 << 20 });
    ms.push(measure("engine_events_per_sec", "htsim", &flood, reps, htsim_stats, || {
        let mut cfg = HtsimConfig::new(
            TopologyConfig::SingleSwitch { hosts: 16, link: LinkParams::default() },
            CcAlgo::Mprdma,
        );
        cfg.seed = seed;
        HtsimBackend::new(cfg)
    }));

    // --- Three backend tiers, small + large scale -----------------------
    for ranks in [16usize, 64] {
        let goal = ring_allreduce(ranks, ring_bytes);
        ms.push(measure(
            &format!("ring_allreduce_{ranks}r_ideal"),
            "ideal",
            &goal,
            reps,
            |_| None,
            || IdealBackend::new(12.5, 500),
        ));
        ms.push(measure(
            &format!("ring_allreduce_{ranks}r_lgs"),
            "lgs",
            &goal,
            reps,
            |_| None,
            || LgsBackend::new(LogGopsParams::hpc_testbed()),
        ));
        ms.push(measure(
            &format!("ring_allreduce_{ranks}r_htsim"),
            "htsim",
            &goal,
            reps,
            htsim_stats,
            || {
                let mut cfg =
                    HtsimConfig::new(TopologyConfig::fat_tree(ranks, 8.min(ranks)), CcAlgo::Mprdma);
                cfg.seed = seed;
                HtsimBackend::new(cfg)
            },
        ));
    }

    // --- Report ----------------------------------------------------------
    let mut table = Table::new(["scenario", "backend", "wall", "Mev/s", "makespan"]);
    for m in &ms {
        table.row([
            m.name.clone(),
            m.backend.to_string(),
            format!("{:.1} ms", m.wall.as_secs_f64() * 1e3),
            m.events_per_sec().map_or("-".into(), |e| format!("{:.1}", e / 1e6)),
            format!("{:.2} ms", m.makespan_ns as f64 / 1e6),
        ]);
    }
    table.print();

    let mut doc = Json::obj();
    doc.set("schema", Json::Num(1.0));
    doc.set("tool", Json::Str("bench_engine".into()));
    doc.set("label", Json::Str(label));
    let mut cfg = Json::obj();
    cfg.set("ops", Json::Num(ops as f64));
    cfg.set("reps", Json::Num(reps as f64));
    cfg.set("seed", Json::Num(seed as f64));
    cfg.set("quick", Json::Bool(quick));
    doc.set("config", cfg);
    doc.set("scenarios", Json::Arr(ms.iter().map(Measurement::to_json).collect()));

    if let Some(base_path) = args.flag("baseline").then(|| args.get_str("baseline", "")) {
        let text = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("--baseline {base_path}: {e}"));
        let base = Json::parse(&text).unwrap_or_else(|e| panic!("--baseline {base_path}: {e}"));
        let mut speedup = Json::obj();
        if let Some(base_scen) = base.get("scenarios").and_then(Json::as_arr) {
            for m in &ms {
                let prev = base_scen
                    .iter()
                    .find(|s| s.get("name").and_then(Json::as_str) == Some(&m.name))
                    .and_then(|s| s.get("wall_ms"))
                    .and_then(Json::as_f64);
                if let Some(prev_ms) = prev {
                    let cur_ms = m.wall.as_secs_f64() * 1e3;
                    if cur_ms > 0.0 {
                        let ratio = (prev_ms / cur_ms * 1000.0).round() / 1000.0;
                        speedup.set(&m.name, Json::Num(ratio));
                        println!("speedup {:<28} {:.2}x", m.name, prev_ms / cur_ms);
                    }
                }
            }
        }
        doc.set("speedup_vs_baseline", speedup);
        doc.set("baseline", base);
    }

    std::fs::write(&out_path, doc.pretty()).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
