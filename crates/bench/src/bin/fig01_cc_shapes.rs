//! **E1 / Fig. 1C** — Why application traces matter: Swift vs MPRDMA on
//! two synthetic microbenchmarks (incast, permutation) and a realistic
//! LLM training workload with overlapping DP/PP traffic.
//!
//! ```text
//! cargo run --release --bin fig01_cc_shapes -- [--scale 0.002] [--seed 1] [--ranks 32]
//! ```
//!
//! Expected shape (paper): the two algorithms look comparable on the
//! microbenchmarks (low single-digit % differences, either direction),
//! but the LLM trace exposes Swift's weakness with multi-hop congestion
//! — a consistent slowdown on total iteration time (paper: ~4%) that the
//! microbenchmarks alone would never reveal.

#![forbid(unsafe_code)]

use atlahs_bench::args::Args;
use atlahs_bench::runner;
use atlahs_bench::table::Table;
use atlahs_bench::workloads;
use atlahs_goal::GoalSchedule;
use atlahs_htsim::topology::TopologyConfig;
use atlahs_htsim::CcAlgo;
use atlahs_schedgen::synthetic;
use atlahs_tracers::nccl::presets;

fn run_pair(goal: &GoalSchedule, topo: &TopologyConfig, seed: u64) -> (u64, u64, f64) {
    let m = runner::run_htsim(goal, topo.clone(), CcAlgo::Mprdma, seed, false);
    let s = runner::run_htsim(goal, topo.clone(), CcAlgo::Swift, seed, false);
    let delta =
        (s.report.makespan as f64 - m.report.makespan as f64) / m.report.makespan as f64 * 100.0;
    (m.report.makespan, s.report.makespan, delta)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();
    let ranks = args.get("ranks", 32usize);

    println!("# Fig. 1C — Swift vs MPRDMA: microbenchmarks vs an application trace");
    println!("# (scale={scale}, seed={seed}, {ranks} ranks for microbenchmarks)\n");

    let mut table = Table::new(["workload", "MPRDMA", "Swift", "Swift vs MPRDMA"]);

    // Synthetic microbenchmarks on a fully provisioned fabric: congestion
    // only at the last hop (incast) or nowhere structural (permutation).
    // Incast needs ranks+1 hosts (n senders + 1 sink); pad to the ToR size.
    let topo = workloads::ai_topology((ranks + 8) / 8 * 8);
    let incast = synthetic::incast(ranks, 1 << 20, 2).expect("incast builds");
    let (m, s, d) = run_pair(&incast, &topo, seed);
    table.row([
        format!("incast ({ranks}:1, 1 MiB)"),
        format!("{:.3} ms", m as f64 / 1e6),
        format!("{:.3} ms", s as f64 / 1e6),
        format!("{d:+.1}%"),
    ]);

    let perm = synthetic::permutation(ranks, 1 << 20, ranks / 2, 2).expect("permutation builds");
    let (m, s, d) = run_pair(&perm, &topo, seed);
    table.row([
        format!("permutation ({ranks} ranks, 1 MiB)"),
        format!("{:.3} ms", m as f64 / 1e6),
        format!("{:.3} ms", s as f64 / 1e6),
        format!("{d:+.1}%"),
    ]);

    // The application trace: PP victim flows + DP ring allreduce on an
    // oversubscribed core (the Fig. 1A/1B scenario).
    let mut cfg = presets::mistral8x7b(scale);
    cfg.seed = seed;
    cfg.iterations = 1;
    cfg.batch = cfg.batch.min(2 * cfg.dp);
    let (_, goal) = workloads::ai_goal(&cfg);
    let llm_topo = workloads::ai_topology_oversubscribed(cfg.nodes() as usize, 4);
    let (m, s, d) = run_pair(&goal, &llm_topo, seed);
    table.row([
        format!("LLM training ({}, {} nodes, 4:1 core)", cfg.name, cfg.nodes()),
        format!("{:.3} ms", m as f64 / 1e6),
        format!("{:.3} ms", s as f64 / 1e6),
        format!("{d:+.1}%"),
    ]);

    table.print();
    println!("\n(paper: microbenchmarks comparable; Swift ~4% slower on the LLM iteration)");
}
