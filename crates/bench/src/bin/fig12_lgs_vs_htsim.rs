//! **E8 / Fig. 12** — ATLAHS LGS vs ATLAHS htsim when the topology
//! assumption breaks: Llama 7B on a fully provisioned vs a 4:1
//! oversubscribed fat tree, plus the packet-drop statistic only the
//! packet-level backend can report.
//!
//! ```text
//! cargo run --release --bin fig12_lgs_vs_htsim -- [--scale 0.002] [--seed 1]
//! ```
//!
//! Expected shape (paper): on the fully provisioned fabric the two
//! backends agree within ~1%; with 4:1 oversubscription LGS (whose `G`
//! cannot see the thinner core) diverges by >100% while htsim reports
//! massive core drops.

use atlahs_bench::args::Args;
use atlahs_bench::runner;
use atlahs_bench::table::{fmt_pct, pct_err, Table};
use atlahs_bench::workloads;
use atlahs_htsim::CcAlgo;
use atlahs_tracers::nccl::presets;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();

    println!("# Fig. 12 — LGS vs htsim under oversubscription (scale={scale}, seed={seed})\n");

    let mut cfg = presets::llama7b_dp128(scale);
    cfg.seed = seed;
    cfg.iterations = 1;
    cfg.batch = cfg.batch.min(2 * cfg.dp);
    let (_report, goal) = workloads::ai_goal(&cfg);
    let nodes = cfg.nodes() as usize;

    // LGS is topology-oblivious: same G for both configurations, exactly
    // the paper's setup (theoretical injection bandwidth is unchanged).
    let (lgs, _) = runner::run_lgs(&goal, workloads::ai_lgs_params(nodes));

    let mut table = Table::new([
        "topology",
        "ATLAHS LGS",
        "ATLAHS htsim",
        "LGS vs htsim",
        "total drops",
        "core drops",
    ]);
    for (ratio, label) in [(1usize, "no oversubscription"), (4, "4:1 oversubscription")] {
        let topo = workloads::ai_topology_oversubscribed(nodes, ratio);
        let ht = runner::run_htsim_ai(&goal, topo, CcAlgo::Mprdma, seed);
        table.row([
            label.to_string(),
            format!("{:.3} ms", lgs.makespan as f64 / 1e6),
            format!("{:.3} ms", ht.report.makespan as f64 / 1e6),
            fmt_pct(pct_err(ht.report.makespan, lgs.makespan)),
            format!("{}", ht.stats.drops),
            format!("{}", ht.stats.core_drops),
        ]);
    }
    table.print();
    println!("\n(paper: -0.5% agreement fully provisioned, -120.3% divergence at 4:1,");
    println!(" with ~1e8 packet drops visible only to the packet-level backend)");
}
