//! **E8 / Fig. 12** — ATLAHS LGS vs ATLAHS htsim when the topology
//! assumption breaks: Llama 7B on a fully provisioned vs a 4:1
//! oversubscribed fat tree, plus the packet-drop statistic only the
//! packet-level backend can report.
//!
//! ```text
//! cargo run --release --bin fig12_lgs_vs_htsim -- [--scale 0.002] [--seed 1]
//! ```
//!
//! A thin wrapper over the scenario-sweep engine: per oversubscription
//! ratio one LGS cell and one sprayed-htsim cell, i.e. the grid
//!
//! ```text
//! atlahs sweep --topos ai-fattree:32:1,ai-fattree:32:4 \
//!              --workloads llm:llama7b-dp128:0.002 --ccs mprdma \
//!              --backends htsim-spray,lgs
//! ```
//!
//! Expected shape (paper): on the fully provisioned fabric the two
//! backends agree within ~1%; with 4:1 oversubscription LGS (whose `G`
//! cannot see the thinner core) diverges by >100% while htsim reports
//! massive core drops.

#![forbid(unsafe_code)]

use atlahs_bench::args::Args;
use atlahs_bench::scenario::{
    BackendSpec, FaultSpec, LlmPreset, PlacementSpec, ScenarioCell, TopologySpec, WorkloadSpec,
};
use atlahs_bench::sweep::execute;
use atlahs_bench::table::{fmt_pct, pct_err, Table};
use atlahs_htsim::CcAlgo;
use atlahs_tracers::nccl::presets;

fn main() {
    let args = Args::parse();
    let scale = args.scale(0.002);
    let seed = args.seed();
    let threads = args.get("threads", 0usize);

    println!("# Fig. 12 — LGS vs htsim under oversubscription (scale={scale}, seed={seed})\n");

    let nodes = presets::llama7b_dp128(scale).nodes() as usize;
    let workload = WorkloadSpec::Llm {
        preset: LlmPreset::Llama7bDp128,
        scale,
        iterations: 1,
        cap_batch: true,
    };
    // LGS is topology-oblivious: same G for both configurations, exactly
    // the paper's setup (theoretical injection bandwidth is unchanged),
    // so one LGS cell on the fully provisioned fabric serves both rows.
    let ratios: [(usize, &str); 2] = [(1, "no oversubscription"), (4, "4:1 oversubscription")];
    let mut cells: Vec<ScenarioCell> = vec![ScenarioCell {
        topology: TopologySpec::AiFatTree { nodes, oversub: 1 },
        workload: workload.clone(),
        placement: PlacementSpec::Packed,
        backend: BackendSpec::Lgs,
        fault: FaultSpec::None,
        seed,
        collect_flows: false,
    }];
    for &(ratio, _) in &ratios {
        cells.push(ScenarioCell {
            topology: TopologySpec::AiFatTree { nodes, oversub: ratio },
            workload: workload.clone(),
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: true },
            fault: FaultSpec::None,
            seed,
            collect_flows: false,
        });
    }
    let results = execute(&cells, threads);
    let lgs_makespan = results[0].makespan;

    let mut table = Table::new([
        "topology",
        "ATLAHS LGS",
        "ATLAHS htsim",
        "LGS vs htsim",
        "total drops",
        "core drops",
    ]);
    for ((_, label), ht) in ratios.iter().zip(&results[1..]) {
        let net = ht.net.expect("packet-level cell");
        table.row([
            label.to_string(),
            format!("{:.3} ms", lgs_makespan as f64 / 1e6),
            format!("{:.3} ms", ht.makespan as f64 / 1e6),
            fmt_pct(pct_err(ht.makespan, lgs_makespan)),
            format!("{}", net.drops),
            format!("{}", net.core_drops),
        ]);
    }
    table.print();
    println!("\n(paper: -0.5% agreement fully provisioned, -120.3% divergence at 4:1,");
    println!(" with ~1e8 packet drops visible only to the packet-level backend)");
}
