//! Branch-and-continue sweep execution: simulate a shared prefix once,
//! snapshot, fan out into N what-if continuations.
//!
//! A branched sweep reinterprets the grid's fault axis as *branch
//! overrides*: every cell that shares a prefix — same topology,
//! workload, placement, and backend, hence the same derived seed and the
//! same composed schedule — is grouped; the group's simulation runs
//! clean (no faults configured) up to the branch time, the backend is
//! [`Snapshot::checkpoint`]ed and the scheduler driver cloned, and each
//! cell then restores the snapshot, applies its override at the branch
//! point, and runs to completion. Only the post-branch suffix is
//! re-simulated per cell; the prefix is paid once per group (the
//! `prefix_runs` counter in [`BranchStats`], surfaced in the JSON
//! report, is how CI verifies that).
//!
//! ## Exactness
//!
//! The snapshot path must be invisible: for every cell,
//! [`execute_branched`] and [`run_cell_branched_straight`] (pause at the
//! branch time, apply the override, finish — *no* checkpoint/restore)
//! produce bit-identical [`CellResult`]s. That is the backend
//! [`Snapshot`] contract, pinned in this module's tests and by the
//! `branch_smoke.json` golden diff in `ci.sh`.
//!
//! Branched results are **not** comparable to a straight sweep that
//! configures the same faults at t=0: a branched override clamps every
//! fault window to open no earlier than the branch time, and its events
//! enter the queue at the injection point rather than before any
//! traffic. The branch answers "what if this failed *from here on*?",
//! not "what if this had been failing all along?".

use std::sync::Arc;
use std::time::{Duration, Instant};

use atlahs_core::backends::IdealBackend;
use atlahs_core::{Backend, SimDriver, SimReport, Snapshot};
use atlahs_goal::GoalSchedule;
use atlahs_htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs_htsim::topology::Topology;
use atlahs_lgs::LgsBackend;

use crate::runner::DistSummary;
use crate::scenario::{
    cell_seed, lgs_params_for, prepare_goal, BackendSpec, CellResult, FaultSpec, FaultTelemetry,
    PreparedGoal, ScenarioCell,
};
use crate::sweep::parallel_map;

/// Shared-prefix work accounting of one branched sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchStats {
    /// The branch time (ns): overrides apply at the first pause at or
    /// after this simulated time.
    pub branch_at: u64,
    /// Shared-prefix groups — and therefore how many times a prefix was
    /// actually simulated. A grid whose cells all differ only in the
    /// fault axis has `prefix_runs` = 1; CI asserts `prefix_runs` <
    /// number of cells on the branch smoke grid.
    pub prefix_runs: usize,
}

/// Run a branched sweep: group cells by shared prefix, simulate each
/// prefix once, and fan each group out into its per-cell continuations.
///
/// Results are in cell order and independent of `threads` (groups
/// parallelize across the claim-index pool; cells within a group run
/// serially against the group's snapshot).
pub fn execute_branched(
    cells: &[ScenarioCell],
    branch_at: u64,
    threads: usize,
) -> (Vec<CellResult>, BranchStats) {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };

    // Group by everything except the fault axis. Cells in one group share
    // the workload (hence the derived seed), topology, placement, and
    // backend — exactly the state the prefix depends on.
    let mut index_of: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let prefix_key = format!(
            "{}/{}/{}/{}",
            cell.topology.label(),
            cell.workload.label(),
            cell.placement.label(),
            cell.backend.label()
        );
        match index_of.get(&prefix_key) {
            Some(&g) => groups[g].push(i),
            None => {
                index_of.insert(prefix_key, groups.len());
                groups.push(vec![i]);
            }
        }
    }

    // One workload build per distinct (workload, seed), as in the
    // straight executor.
    let mut job_index: std::collections::HashMap<(String, u64), usize> =
        std::collections::HashMap::new();
    let mut uniq: Vec<&ScenarioCell> = Vec::new();
    let group_jobs: Vec<usize> = groups
        .iter()
        .map(|members| {
            let cell = &cells[members[0]];
            *job_index.entry((cell.workload.label(), cell.seed)).or_insert_with(|| {
                uniq.push(cell);
                uniq.len() - 1
            })
        })
        .collect();
    let jobs = parallel_map(&uniq, threads, |cell| cell.workload.build_jobs(cell.seed));

    let group_ids: Vec<usize> = (0..groups.len()).collect();
    let per_group: Vec<Vec<CellResult>> = parallel_map(&group_ids, threads, |&g| {
        let members: Vec<&ScenarioCell> = groups[g].iter().map(|&i| &cells[i]).collect();
        run_group(&members, &jobs[group_jobs[g]], branch_at)
    });

    let mut slots: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();
    for (g, results) in per_group.into_iter().enumerate() {
        for (&i, r) in groups[g].iter().zip(results) {
            slots[i] = Some(r);
        }
    }
    let results = slots.into_iter().map(|s| s.expect("every cell branched once")).collect();
    (results, BranchStats { branch_at, prefix_runs: groups.len() })
}

/// The straight-through reference for one branched cell: pause at the
/// branch time, apply the override, run to completion — the identical
/// mechanics with **no** checkpoint/restore. [`execute_branched`] must
/// match this bit for bit on every cell; tests (and the golden
/// regeneration path) use it as the independent oracle.
pub fn run_cell_branched_straight(
    cell: &ScenarioCell,
    jobs: &[Arc<GoalSchedule>],
    branch_at: u64,
) -> CellResult {
    let prepared = prepare_goal(cell, jobs);
    let goal = prepared.goal(jobs);
    match cell.backend {
        BackendSpec::Htsim { cc, spray } => {
            let topo_cfg = cell.topology.config();
            let topo = Topology::build(topo_cfg.clone());
            let mut backend = htsim_clean(cell, topo_cfg, cc, spray);
            let t0 = Instant::now();
            let mut driver = SimDriver::start(goal, &mut backend);
            driver.run_until(&mut backend, branch_at).expect("no deadlock");
            let telemetry = apply_htsim_override(&mut backend, cell, &topo);
            let report = driver.finish(&mut backend).expect("no deadlock");
            htsim_result(cell, goal, &prepared, &backend, report, telemetry, t0.elapsed())
        }
        BackendSpec::Lgs => {
            let mut backend = LgsBackend::new(lgs_params_for(&cell.topology));
            let t0 = Instant::now();
            let mut driver = SimDriver::start(goal, &mut backend);
            driver.run_until(&mut backend, branch_at).expect("no deadlock");
            let telemetry = apply_lgs_override(&mut backend, cell, goal);
            let report = driver.finish(&mut backend).expect("no deadlock");
            plain_result(cell, goal, &prepared, report, telemetry, t0.elapsed())
        }
        BackendSpec::Ideal => {
            let link = cell.topology.edge_link();
            let mut backend = IdealBackend::new(link.bytes_per_ns(), link.latency_ns);
            let t0 = Instant::now();
            let mut driver = SimDriver::start(goal, &mut backend);
            driver.run_until(&mut backend, branch_at).expect("no deadlock");
            let report = driver.finish(&mut backend).expect("no deadlock");
            plain_result(cell, goal, &prepared, report, None, t0.elapsed())
        }
    }
}

/// Run one shared-prefix group: prefix once, snapshot, one restore +
/// override + finish per member cell, in member order.
fn run_group(
    members: &[&ScenarioCell],
    jobs: &[Arc<GoalSchedule>],
    branch_at: u64,
) -> Vec<CellResult> {
    let lead = members[0];
    let prepared = prepare_goal(lead, jobs);
    let goal = prepared.goal(jobs);
    match lead.backend {
        BackendSpec::Htsim { cc, spray } => {
            let topo_cfg = lead.topology.config();
            let topo = Topology::build(topo_cfg.clone());
            let mut backend = htsim_clean(lead, topo_cfg, cc, spray);
            branch_fanout(
                &mut backend,
                goal,
                branch_at,
                members,
                |backend, cell| apply_htsim_override(backend, cell, &topo),
                |backend, cell, report, telemetry, wall| {
                    htsim_result(cell, goal, &prepared, backend, report, telemetry, wall)
                },
            )
        }
        BackendSpec::Lgs => {
            let mut backend = LgsBackend::new(lgs_params_for(&lead.topology));
            branch_fanout(
                &mut backend,
                goal,
                branch_at,
                members,
                |backend, cell| apply_lgs_override(backend, cell, goal),
                |_backend, cell, report, telemetry, wall| {
                    plain_result(cell, goal, &prepared, report, telemetry, wall)
                },
            )
        }
        BackendSpec::Ideal => {
            let link = lead.topology.edge_link();
            let mut backend = IdealBackend::new(link.bytes_per_ns(), link.latency_ns);
            branch_fanout(
                &mut backend,
                goal,
                branch_at,
                members,
                |_backend, _cell| None,
                |_backend, cell, report, telemetry, wall| {
                    plain_result(cell, goal, &prepared, report, telemetry, wall)
                },
            )
        }
    }
}

/// The generic prefix-once/fan-out loop over one backend. `apply` puts a
/// cell's override onto the restored backend at the branch point;
/// `collect` turns the finished run into its [`CellResult`].
///
/// The prefix wall-clock is charged to the group's first cell; every
/// other cell carries only its own suffix (wall time never enters the
/// byte-compared reports).
fn branch_fanout<B: Backend + Snapshot>(
    backend: &mut B,
    goal: &GoalSchedule,
    branch_at: u64,
    members: &[&ScenarioCell],
    mut apply: impl FnMut(&mut B, &ScenarioCell) -> Option<FaultTelemetry>,
    mut collect: impl FnMut(
        &B,
        &ScenarioCell,
        SimReport,
        Option<FaultTelemetry>,
        Duration,
    ) -> CellResult,
) -> Vec<CellResult> {
    let t0 = Instant::now();
    let mut driver = SimDriver::start(goal, backend);
    driver.run_until(backend, branch_at).expect("no deadlock");
    let snapshot = backend.checkpoint();
    let mut prefix_wall = t0.elapsed();
    members
        .iter()
        .map(|cell| {
            let t1 = Instant::now();
            backend.restore(&snapshot);
            let telemetry = apply(backend, cell);
            let report = driver.clone().finish(backend).expect("no deadlock");
            let wall = std::mem::take(&mut prefix_wall) + t1.elapsed();
            collect(backend, cell, report, telemetry, wall)
        })
        .collect()
}

/// A clean (no configured faults) packet backend for a branched cell:
/// overrides are injected at the branch point instead.
fn htsim_clean(
    cell: &ScenarioCell,
    topo_cfg: atlahs_htsim::topology::TopologyConfig,
    cc: atlahs_htsim::CcAlgo,
    spray: bool,
) -> HtsimBackend {
    let mut cfg = HtsimConfig::new(topo_cfg, cc);
    cfg.seed = cell.seed;
    cfg.spray = spray;
    cfg.collect_flows = cell.collect_flows;
    HtsimBackend::new(cfg)
}

/// Lower a cell's fault to port windows and inject them at the branch
/// point (windows are clamped to open no earlier than `now`). Telemetry
/// describes the *generated* schedule, as in the straight executor.
fn apply_htsim_override(
    backend: &mut HtsimBackend,
    cell: &ScenarioCell,
    topo: &Topology,
) -> Option<FaultTelemetry> {
    if cell.fault == FaultSpec::None {
        return None;
    }
    let fault_seed = cell_seed(cell.seed, &cell.fault.label());
    // Stochastic link models arm at the branch point: packets already in
    // flight were drawn (or not) under the prefix's clean model, and the
    // per-port draw counters ride in the snapshot, so a branch override
    // produces the same stream a straight-through run with a mid-run
    // `set_link_model` would.
    if let Some(model) = cell.fault.link_model(fault_seed) {
        backend.set_link_model(model);
        return None;
    }
    let faults = cell.fault.port_faults(topo, fault_seed);
    let telemetry = cell.fault.distributional().then(|| FaultTelemetry {
        windows: faults.len() as u64,
        downtime_ns: faults.iter().map(|f| f.end_ns - f.start_ns).sum(),
        stragglers: 0,
    });
    for f in faults {
        backend.inject_fault(f);
    }
    telemetry
}

/// Apply a cell's straggler override to a running message-level backend.
fn apply_lgs_override(
    backend: &mut LgsBackend,
    cell: &ScenarioCell,
    goal: &GoalSchedule,
) -> Option<FaultTelemetry> {
    if cell.fault == FaultSpec::None {
        return None;
    }
    let fault_seed = cell_seed(cell.seed, &cell.fault.label());
    let spec = cell.fault.straggler_spec(fault_seed)?;
    let telemetry = cell.fault.distributional().then(|| FaultTelemetry {
        windows: 0,
        downtime_ns: 0,
        stragglers: (0..goal.num_ranks()).filter(|&r| spec.is_straggler(r)).count() as u64,
    });
    backend.apply_straggler_now(spec);
    telemetry
}

fn htsim_result(
    cell: &ScenarioCell,
    goal: &GoalSchedule,
    prepared: &PreparedGoal,
    backend: &HtsimBackend,
    report: SimReport,
    telemetry: Option<FaultTelemetry>,
    wall: Duration,
) -> CellResult {
    let mct = DistSummary::of(backend.flow_records().iter().map(|f| f.duration()).collect());
    let job_finish = prepared.placements.iter().map(|nodes| report.job_finish(nodes)).collect();
    CellResult {
        key: cell.key(),
        seed: cell.seed,
        makespan: report.makespan,
        tasks: report.completed,
        mct,
        net: Some(backend.net_stats()),
        job_finish,
        task_arena_bytes: goal.task_arena_bytes(),
        fault: telemetry,
        wall,
    }
}

fn plain_result(
    cell: &ScenarioCell,
    goal: &GoalSchedule,
    prepared: &PreparedGoal,
    report: SimReport,
    telemetry: Option<FaultTelemetry>,
    wall: Duration,
) -> CellResult {
    let job_finish = prepared.placements.iter().map(|nodes| report.job_finish(nodes)).collect();
    CellResult {
        key: cell.key(),
        seed: cell.seed,
        makespan: report.makespan,
        tasks: report.completed,
        mct: DistSummary::of(Vec::new()),
        net: None,
        job_finish,
        task_arena_bytes: goal.task_arena_bytes(),
        fault: telemetry,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoke::{branch_smoke_grid, BRANCH_SMOKE_AT};
    use crate::sweep::SweepReport;

    fn strip_wall(mut results: Vec<CellResult>) -> String {
        for r in &mut results {
            r.wall = Duration::ZERO;
        }
        SweepReport { seed: 1, results, branch: None }.to_json().pretty()
    }

    /// The tentpole contract: the shared-prefix snapshot fan-out is
    /// byte-identical to pausing-and-injecting each cell independently,
    /// and the prefix is simulated once per group, not once per cell.
    #[test]
    fn branched_sweep_matches_straight_through_byte_for_byte() {
        let grid = branch_smoke_grid();
        let cells = grid.expand();
        assert_eq!(cells.len(), 24);

        let (branched, stats) = execute_branched(&cells, BRANCH_SMOKE_AT, 2);
        assert_eq!(stats.prefix_runs, 8, "4 prefix groups per workload");
        assert!(stats.prefix_runs < cells.len(), "suffix-only re-simulation");

        let straight: Vec<CellResult> = cells
            .iter()
            .map(|c| run_cell_branched_straight(c, &c.workload.build_jobs(c.seed), BRANCH_SMOKE_AT))
            .collect();
        assert_eq!(strip_wall(branched), strip_wall(straight));
    }

    /// Thread count must not leak into branched results, and overrides
    /// must actually bite: faulted branches diverge from their clean
    /// siblings somewhere in the grid.
    #[test]
    fn branched_sweep_is_thread_count_independent_and_faults_bite() {
        let cells = branch_smoke_grid().expand();
        let (serial, s1) = execute_branched(&cells, BRANCH_SMOKE_AT, 1);
        let (parallel, s4) = execute_branched(&cells, BRANCH_SMOKE_AT, 4);
        assert_eq!(s1, s4);
        assert_eq!(strip_wall(serial.clone()), strip_wall(parallel));

        let mut diverged = 0;
        for r in &serial {
            if let Some(clean) = serial.iter().find(|c| {
                c.key != r.key && r.key.starts_with(c.key.as_str()) && !c.key.contains("straggler")
            }) {
                if r.makespan != clean.makespan {
                    diverged += 1;
                }
            }
        }
        assert!(diverged > 0, "no branch override changed any makespan");
    }

    /// A stochastic link model armed at the branch point is
    /// byte-identical to a straight-through run that calls
    /// `set_link_model` at the same instant — the per-port draw
    /// counters ride in the snapshot, so the fork and the reference
    /// consume the same stream.
    #[test]
    fn stochastic_branch_cells_match_straight_through() {
        let mk = |fault| ScenarioCell {
            topology: crate::scenario::TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            workload: crate::scenario::WorkloadSpec::MoeAllToAll {
                ranks: 16,
                group: 16,
                bytes: 64 << 10,
                layers: 2,
                compute_ns: 20_000,
            },
            placement: crate::scenario::PlacementSpec::Packed,
            backend: crate::scenario::BackendSpec::Htsim {
                cc: atlahs_htsim::CcAlgo::Mprdma,
                spray: false,
            },
            fault,
            seed: 11,
            collect_flows: false,
        };
        let cells = vec![
            mk(FaultSpec::None),
            mk(FaultSpec::parse("loss:50000").unwrap()),
            mk(FaultSpec::parse("jitter:uniform:1500").unwrap()),
        ];
        let (branched, stats) = execute_branched(&cells, BRANCH_SMOKE_AT, 2);
        assert_eq!(stats.prefix_runs, 1, "all three cells share one clean prefix");
        let straight: Vec<CellResult> = cells
            .iter()
            .map(|c| run_cell_branched_straight(c, &c.workload.build_jobs(c.seed), BRANCH_SMOKE_AT))
            .collect();
        assert_eq!(strip_wall(branched.clone()), strip_wall(straight));
        let lossy = branched.iter().find(|r| r.key.contains("loss:")).unwrap();
        let clean = branched
            .iter()
            .find(|r| !r.key.contains("loss:") && !r.key.contains("jitter:"))
            .unwrap();
        assert!(lossy.net.unwrap().stochastic_drops > 0, "the branch-armed model must bite");
        assert_ne!(lossy.makespan, clean.makespan, "5% loss after the branch costs time");
        assert_eq!(clean.net.unwrap().stochastic_draws, 0, "the clean sibling never draws");
    }

    /// `FaultSpec::None` branch cells are pure checkpoint/resume — they
    /// must equal the ordinary straight executor exactly (same makespan,
    /// stats, and flow summaries), since nothing is ever injected.
    #[test]
    fn clean_branch_cells_equal_the_straight_executor() {
        let cells: Vec<ScenarioCell> = branch_smoke_grid()
            .expand()
            .into_iter()
            .filter(|c| c.fault == FaultSpec::None)
            .collect();
        let (branched, _) = execute_branched(&cells, BRANCH_SMOKE_AT, 2);
        let plain = crate::sweep::execute(&cells, 2);
        assert_eq!(strip_wall(branched), strip_wall(plain));
    }
}
