//! Run GOAL schedules across the backends with wall-clock bookkeeping.

use std::time::{Duration, Instant};

use atlahs_core::backends::IdealBackend;
use atlahs_core::{Backend, SimReport, Simulation};
use atlahs_goal::GoalSchedule;
use atlahs_htsim::engine::{FlowRecord, HtsimBackend, HtsimConfig, NetStats};
use atlahs_htsim::topology::TopologyConfig;
use atlahs_htsim::CcAlgo;
use atlahs_lgs::{LgsBackend, LogGopsParams};
use atlahs_testbed::{TestbedBackend, TestbedConfig};

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Run `goal` on an arbitrary backend, returning the report and the
/// simulator's wall-clock cost.
pub fn run_on<B: Backend>(goal: &GoalSchedule, backend: &mut B) -> (SimReport, Duration) {
    let (rep, wall) = timed(|| Simulation::new(goal).run(backend));
    (rep.expect("schedule must complete (deadlock-free by construction)"), wall)
}

/// "Measured" runtime: the fluid-flow testbed emulator standing in for
/// the real cluster (DESIGN.md §1).
pub fn run_testbed(goal: &GoalSchedule, topo: TopologyConfig, seed: u64) -> (SimReport, Duration) {
    let mut cfg = TestbedConfig::new(topo);
    cfg.seed = seed;
    run_on(goal, &mut TestbedBackend::new(cfg))
}

/// ATLAHS LGS prediction.
pub fn run_lgs(goal: &GoalSchedule, params: LogGopsParams) -> (SimReport, Duration) {
    run_on(goal, &mut LgsBackend::new(params))
}

/// Result of one packet-level run.
pub struct HtsimRun {
    pub report: SimReport,
    pub stats: NetStats,
    pub flows: Vec<FlowRecord>,
    pub wall: Duration,
}

/// ATLAHS htsim prediction (optionally keeping per-flow records).
pub fn run_htsim(
    goal: &GoalSchedule,
    topo: TopologyConfig,
    cc: CcAlgo,
    seed: u64,
    collect_flows: bool,
) -> HtsimRun {
    let mut cfg = HtsimConfig::new(topo, cc);
    cfg.seed = seed;
    cfg.collect_flows = collect_flows;
    run_htsim_cfg(goal, cfg)
}

/// ATLAHS htsim with a fully explicit configuration.
pub fn run_htsim_cfg(goal: &GoalSchedule, cfg: HtsimConfig) -> HtsimRun {
    let mut backend = HtsimBackend::new(cfg);
    let (report, wall) = run_on(goal, &mut backend);
    HtsimRun { report, stats: backend.net_stats(), flows: backend.flow_records().to_vec(), wall }
}

/// ATLAHS htsim on the AI fabric: Slingshot/UEC-class adaptive load
/// balancing (per-packet spraying), the configuration the paper's AI
/// validation uses.
pub fn run_htsim_ai(goal: &GoalSchedule, topo: TopologyConfig, cc: CcAlgo, seed: u64) -> HtsimRun {
    let mut cfg = HtsimConfig::new(topo, cc);
    cfg.seed = seed;
    cfg.spray = true;
    run_htsim_cfg(goal, cfg)
}

/// The compute-only makespan: the same schedule on an effectively
/// instant, contention-free network. This is the dark-blue
/// "non-overlapped computation" bar of Figs. 8/10 — the part of the
/// runtime no network improvement can remove.
pub fn compute_only_ns(goal: &GoalSchedule) -> u64 {
    let mut ideal = IdealBackend::new(1e9, 0);
    let (rep, _) = run_on(goal, &mut ideal);
    rep.makespan
}

/// Mean / p99 / max summary of a set of durations (Fig. 11's MCT rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    pub mean: f64,
    pub p99: u64,
    pub max: u64,
    pub count: usize,
}

impl DistSummary {
    pub fn of(mut durations: Vec<u64>) -> DistSummary {
        if durations.is_empty() {
            // Degenerate workloads (e.g. `--ops 0`) summarize to zeros
            // instead of panicking.
            return DistSummary { mean: 0.0, p99: 0, max: 0, count: 0 };
        }
        durations.sort_unstable();
        let count = durations.len();
        let mean = durations.iter().map(|&d| d as f64).sum::<f64>() / count as f64;
        let p99 = durations[((count as f64 * 0.99).ceil() as usize - 1).min(count - 1)];
        let max = *durations.last().unwrap();
        DistSummary { mean, p99, max, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use atlahs_goal::GoalBuilder;

    fn ring_goal(n: usize) -> GoalSchedule {
        let mut b = GoalBuilder::new(n);
        for r in 0..n as u32 {
            let dst = (r + 1) % n as u32;
            let src = (r + n as u32 - 1) % n as u32;
            b.send(r, dst, 64 << 10, 0);
            b.recv(r, src, 64 << 10, 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn all_backends_complete_the_same_schedule() {
        let goal = ring_goal(8);
        let topo = workloads::ai_topology(8);
        let (t, _) = run_testbed(&goal, topo.clone(), 1);
        let (l, _) = run_lgs(&goal, LogGopsParams::ai_alps());
        let h = run_htsim(&goal, topo, CcAlgo::Mprdma, 1, false);
        for rep in [&t, &l, &h.report] {
            assert_eq!(rep.completed, goal.total_tasks());
            assert!(rep.makespan > 0);
        }
    }

    #[test]
    fn compute_only_is_a_lower_bound() {
        let suite = workloads::ai_suite(0.005, true, 7);
        let (_, goal) = workloads::ai_goal(&suite[0].cfg);
        let comp = compute_only_ns(&goal);
        let (meas, _) = run_testbed(&goal, workloads::ai_topology(4), 1);
        assert!(comp > 0);
        assert!(comp <= meas.makespan, "comp {comp} vs measured {}", meas.makespan);
    }

    #[test]
    fn flow_records_only_when_requested() {
        let goal = ring_goal(4);
        let topo = workloads::ai_topology(4);
        let without = run_htsim(&goal, topo.clone(), CcAlgo::Mprdma, 1, false);
        let with = run_htsim(&goal, topo, CcAlgo::Mprdma, 1, true);
        assert!(without.flows.is_empty());
        assert_eq!(with.flows.len(), 4);
    }

    #[test]
    fn dist_summary_stats() {
        let s = DistSummary::of((1..=100).collect());
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn dist_summary_of_empty_is_zeros() {
        let s = DistSummary::of(Vec::new());
        assert_eq!((s.mean, s.p99, s.max, s.count), (0.0, 0, 0, 0));
    }
}
