//! A minimal JSON value, writer, and parser for the benchmark artifacts
//! (`BENCH_*.json`).
//!
//! Not a serde replacement: the benchmark harness needs exactly (a) stable,
//! human-diffable pretty-printing so perf trajectories live in git, and
//! (b) enough parsing to read a previous run back in as a baseline. Object
//! keys keep insertion order so emitted files diff cleanly across runs.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (the harness only stores measurements).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (stable output; duplicate keys are not
    /// merged — last lookup wins is not needed here, `get` returns the
    /// first match).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append a key into an object (panics on non-objects: misuse
    /// is a harness bug, not input data).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a readable error with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are safe to re-decode).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut j = Json::obj();
        j.set("name", Json::Str("fig11".into()));
        j.set("wall_ms", Json::Num(123.5));
        j.set("events", Json::Num(1_000_000.0));
        j.set("tags", Json::Arr(vec![Json::Str("a".into()), Json::Bool(true), Json::Null]));
        let text = j.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
        assert_eq!(back.get("wall_ms").unwrap().as_f64(), Some(123.5));
        assert_eq!(back.get("name").unwrap().as_str(), Some("fig11"));
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut j = Json::obj();
        j.set("n", Json::Num(42.0));
        assert!(j.pretty().contains("\"n\": 42\n"), "{}", j.pretty());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let j = Json::parse(r#"{"s": "a\nbA\" \\"}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str(), Some("a\nbA\" \\"));
    }

    /// The checked-in perf trajectories must stay parseable by this
    /// codec (ci.sh's bench smoke steps regenerate quick variants, and
    /// this test gates the committed documents themselves).
    #[test]
    fn checked_in_bench_reports_parse() {
        for (name, text) in [
            ("BENCH_engine.json", include_str!("../../../BENCH_engine.json")),
            ("BENCH_lgs.json", include_str!("../../../BENCH_lgs.json")),
        ] {
            let doc = Json::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let scenarios = doc.get("scenarios").and_then(Json::as_arr);
            assert!(
                scenarios.is_some_and(|a| !a.is_empty()),
                "{name}: missing or empty \"scenarios\""
            );
            assert!(doc.get("baseline").is_some(), "{name}: baseline not embedded");
            assert!(doc.get("speedup_vs_baseline").is_some(), "{name}: no speedup block");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
    }

    #[test]
    fn nested_roundtrip() {
        let text = "{\n  \"a\": [\n    {\n      \"b\": -1.5e3\n    }\n  ]\n}\n";
        let j = Json::parse(text).unwrap();
        assert_eq!(j.pretty(), text.replace("-1.5e3", "-1500"));
    }
}
