//! Dynamic multi-tenant cluster simulation: jobs arrive over time, queue
//! for nodes, run co-scheduled on a shared fabric, and release their
//! allocation when they finish.
//!
//! The paper's multi-job case study (§3.2, Fig. 13) composes a *static*
//! batch of jobs; this module generalizes it into an online cluster loop:
//!
//! 1. a seeded **arrival process** ([`ArrivalSpec`]: Poisson or an
//!    explicit trace) draws jobs from a workload **catalog**;
//! 2. an **online allocator** ([`atlahs_core::NodePool`]) hands each
//!    admitted job its nodes — packed, random, or round-robin — and
//!    reclaims them at completion, with fragmentation accounting;
//! 3. jobs that do not fit wait in a FIFO or smallest-first queue with
//!    **backfill**: at every release/arrival instant any queued job that
//!    fits the free pool is admitted ([`QueueDiscipline`]);
//! 4. every batch of jobs admitted at the same instant is lowered through
//!    [`atlahs_goal::merge::compose`] and simulated together on the
//!    cell's backend, so co-scheduled tenants contend for the fabric
//!    exactly as in Fig. 13; each multi-job batch member is additionally
//!    simulated *alone on its allocation* to obtain its **interference
//!    slowdown** (co-scheduled completion / solo completion — the Fig. 13
//!    metric, generalized to arbitrary batches).
//!
//! Jobs admitted at different instants occupy disjoint node sets and are
//! simulated in separate backend instances; cross-batch fabric
//! interference is deliberately not modeled (documented in
//! docs/SCENARIOS.md), which keeps every cell a deterministic function of
//! its spec — the JSON report is byte-identical across `--threads 1` vs
//! `N` and across re-runs, like the sweep engine's.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use atlahs_core::backends::IdealBackend;
use atlahs_core::faultgen;
use atlahs_core::{NodePool, SimReport};
use atlahs_goal::merge::{compose, PlacedJob, MAX_JOBS};
use atlahs_goal::{GoalSchedule, Rank};
use atlahs_htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs_htsim::stochastic::LinkModelSpec;
use atlahs_htsim::CcAlgo;
use atlahs_lgs::LgsBackend;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::json::Json;
use crate::runner;
use crate::scenario::{
    cell_seed, lgs_params_for, BackendFamily, BackendSpec, PlacementSpec, TopologySpec,
    WorkloadSpec,
};
use crate::sweep::parallel_map;
use crate::table::Table;

// ------------------------------------------------------------ arrivals ----

/// How jobs arrive at the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// `jobs` arrivals with exponentially distributed inter-arrival gaps
    /// of mean `mean_gap_ns` (a Poisson process), drawn from the cell
    /// seed.
    Poisson { jobs: usize, mean_gap_ns: u64 },
    /// An explicit arrival trace: job `i` arrives at `times_ns[i]`
    /// (sorted ascending at parse/construction time).
    Trace { times_ns: Vec<u64> },
}

impl ArrivalSpec {
    pub fn label(&self) -> String {
        match self {
            ArrivalSpec::Poisson { jobs, mean_gap_ns } => format!("poisson:{jobs}:{mean_gap_ns}"),
            ArrivalSpec::Trace { times_ns } => {
                let ts: Vec<String> = times_ns.iter().map(|t| t.to_string()).collect();
                format!("trace:{}", ts.join(";"))
            }
        }
    }

    /// Number of jobs this process generates.
    pub fn num_jobs(&self) -> usize {
        match self {
            ArrivalSpec::Poisson { jobs, .. } => *jobs,
            ArrivalSpec::Trace { times_ns } => times_ns.len(),
        }
    }

    /// Materialize the absolute arrival times (ns, ascending). Poisson
    /// draws are a deterministic function of `seed`.
    pub fn times(&self, seed: u64) -> Vec<u64> {
        match self {
            ArrivalSpec::Trace { times_ns } => times_ns.clone(),
            ArrivalSpec::Poisson { jobs, mean_gap_ns } => {
                let mut rng = StdRng::seed_from_u64(cell_seed(seed, "cluster-arrivals"));
                let mut t = 0u64;
                let mut out = Vec::with_capacity(*jobs);
                for _ in 0..*jobs {
                    // Inverse-CDF exponential: u in [0,1) so 1-u in (0,1]
                    // keeps ln finite.
                    let u: f64 = rng.random();
                    let gap = (-(1.0 - u).ln() * *mean_gap_ns as f64).round();
                    t += gap as u64;
                    out.push(t);
                }
                out
            }
        }
    }

    /// Parse a CLI token: `poisson:<jobs>:<mean_gap_ns>` or
    /// `trace:<t0>;<t1>;…` (docs/SCENARIOS.md).
    pub fn parse(tok: &str) -> Result<ArrivalSpec, String> {
        let parts: Vec<&str> = tok.split(':').collect();
        match parts.as_slice() {
            ["poisson", jobs, gap] => {
                let jobs = jobs
                    .parse()
                    .map_err(|_| format!("bad job count `{jobs}` in arrivals `{tok}`"))?;
                let mean_gap_ns =
                    gap.parse().map_err(|_| format!("bad mean gap `{gap}` in arrivals `{tok}`"))?;
                Ok(ArrivalSpec::Poisson { jobs, mean_gap_ns })
            }
            ["trace", times] => {
                let mut times_ns = Vec::new();
                for t in times.split(';').filter(|t| !t.is_empty()) {
                    times_ns.push(
                        t.parse()
                            .map_err(|_| format!("bad arrival time `{t}` in arrivals `{tok}`"))?,
                    );
                }
                if times_ns.is_empty() {
                    return Err(format!("arrivals `{tok}`: empty trace"));
                }
                times_ns.sort_unstable();
                Ok(ArrivalSpec::Trace { times_ns })
            }
            _ => Err(format!(
                "unknown arrivals `{tok}` (expected poisson:<jobs>:<mean_gap_ns> or \
                 trace:<t0>;<t1>;…)"
            )),
        }
    }
}

// --------------------------------------------------------------- queue ----

/// Order in which the backfilling admission scan considers queued jobs.
/// Any considered job that fits the free pool is admitted (backfill), so
/// the discipline is a *preference*, not a strict gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Arrival order.
    Fifo,
    /// Fewest nodes first (ties broken by arrival order): small jobs slip
    /// into fragments ahead of wide ones.
    SmallestFirst,
}

impl QueueDiscipline {
    pub fn label(&self) -> &'static str {
        match self {
            QueueDiscipline::Fifo => "fifo",
            QueueDiscipline::SmallestFirst => "smallest",
        }
    }

    pub fn parse(tok: &str) -> Result<QueueDiscipline, String> {
        Ok(match tok {
            "fifo" => QueueDiscipline::Fifo,
            "smallest" => QueueDiscipline::SmallestFirst,
            _ => return Err(format!("unknown queue discipline `{tok}` (fifo|smallest)")),
        })
    }
}

/// The admission scan order for the current queue (indices into `queue`).
/// Exposed for testing: the engine admits greedily in this order.
pub fn admission_order(
    queue: &[usize],
    discipline: QueueDiscipline,
    ranks_of: impl Fn(usize) -> usize,
) -> Vec<usize> {
    let mut order: Vec<usize> = queue.to_vec();
    if discipline == QueueDiscipline::SmallestFirst {
        order.sort_by_key(|&job| (ranks_of(job), job));
    }
    order
}

// --------------------------------------------------------------- fault ----

/// Seeded job-level failure injection for the cluster engine.
///
/// A failed attempt occupies the job's allocation for a fraction of the
/// simulated run time, then releases its nodes and re-queues the job
/// through the ordinary admission scan — so failures interact with
/// queueing, backfill, and fragmentation exactly like real departures
/// and re-arrivals. Whether attempt `k` of job `j` fails is a pure FNV
/// hash of `(fault seed, j, k)`: no RNG stream is consumed, so a
/// `None` fault spec leaves every other seeded draw untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterFaultSpec {
    /// No failures: the engine behaves exactly as without a fault axis.
    None,
    /// Each attempt fails with probability `pct`% (first `retries`
    /// attempts only — attempt `retries` always succeeds, bounding every
    /// job's restart count). A failed attempt holds its nodes for
    /// `at_pct`% of its simulated duration before releasing them.
    JobFail { pct: u32, at_pct: u32, retries: u32 },
    /// MTBF process: each attempt draws a seeded exponential
    /// time-to-failure with mean `mtbf_ns`
    /// ([`atlahs_core::faultgen::exp_sample`]) and fails iff the draw
    /// lands inside its run — so long jobs fail more often, and a failed
    /// attempt holds its nodes exactly until the failure instant. The
    /// first `retries` attempts may fail; attempt `retries` always runs
    /// to completion.
    Mtbf { mtbf_ns: u64, retries: u32 },
    /// Per-packet stochastic link model (loss/jitter) applied inside
    /// every packet-level simulation of the cell — batches and solo
    /// baselines alike. Jobs never fail or restart; the noise shows up
    /// as longer simulated runs (hence occupancy, queueing, slowdown).
    /// Packet-level only: grids expand it for htsim backends and skip
    /// it for message/ideal backends, like packet faults in the sweep.
    Stochastic(LinkModelSpec),
}

impl ClusterFaultSpec {
    pub fn label(&self) -> String {
        match self {
            ClusterFaultSpec::None => "none".into(),
            ClusterFaultSpec::JobFail { pct, at_pct, retries } => {
                format!("jobfail:{pct}:{at_pct}:{retries}")
            }
            ClusterFaultSpec::Mtbf { mtbf_ns, retries } => format!("mtbf:{mtbf_ns}:{retries}"),
            ClusterFaultSpec::Stochastic(spec) => spec.label(),
        }
    }

    /// Packet-level faults only make sense on packet-level backends;
    /// job-failure processes apply everywhere.
    pub fn applies_to(&self, backend: BackendSpec) -> bool {
        match self {
            ClusterFaultSpec::Stochastic(_) => matches!(backend, BackendSpec::Htsim { .. }),
            _ => true,
        }
    }

    /// Parse a CLI token: `none`, `jobfail:<pct>:<at_pct>:<retries>`, or
    /// `mtbf:<mtbf_ns>:<retries>` (docs/SCENARIOS.md).
    pub fn parse(tok: &str) -> Result<ClusterFaultSpec, String> {
        if tok == "none" {
            return Ok(ClusterFaultSpec::None);
        }
        // `loss:`/`jitter:` share one grammar with the sweep fault axis;
        // validation (and its error text) lives in the htsim crate.
        if let Some(parsed) = LinkModelSpec::parse(tok) {
            return parsed.map(ClusterFaultSpec::Stochastic);
        }
        let parts: Vec<&str> = tok.split(':').collect();
        match parts.as_slice() {
            ["jobfail", pct, at_pct, retries] => {
                let pct: u32 =
                    pct.parse().map_err(|_| format!("bad failure pct `{pct}` in fault `{tok}`"))?;
                let at_pct: u32 = at_pct
                    .parse()
                    .map_err(|_| format!("bad at-pct `{at_pct}` in fault `{tok}`"))?;
                let retries: u32 = retries
                    .parse()
                    .map_err(|_| format!("bad retry bound `{retries}` in fault `{tok}`"))?;
                Ok(ClusterFaultSpec::JobFail {
                    pct: pct.min(100),
                    at_pct: at_pct.min(100),
                    retries,
                })
            }
            ["mtbf", mtbf, retries] => {
                let mtbf_ns: u64 =
                    mtbf.parse().map_err(|_| format!("bad MTBF `{mtbf}` in fault `{tok}`"))?;
                if mtbf_ns == 0 {
                    return Err(format!(
                        "fault `{tok}`: the mean time between failures must be >= 1 ns"
                    ));
                }
                let retries: u32 = retries
                    .parse()
                    .map_err(|_| format!("bad retry bound `{retries}` in fault `{tok}`"))?;
                Ok(ClusterFaultSpec::Mtbf { mtbf_ns, retries })
            }
            _ => Err(format!(
                "unknown cluster fault `{tok}` (expected none, \
                 jobfail:<pct>:<at_pct>:<retries>, mtbf:<mtbf_ns>:<retries>, \
                 loss:<ppm>[:core|:edge], jitter:exp:<mean_ns>, \
                 jitter:weibull:<scale_ns>:<shape>, or jitter:uniform:<max_ns>)"
            )),
        }
    }

    /// Does attempt `attempt` (0-based) of job `job` fail? Deterministic
    /// in `(seed, job, attempt)`; attempts at or past the retry bound
    /// always succeed, so every job eventually completes.
    pub fn fails(&self, seed: u64, job: usize, attempt: u32) -> bool {
        match *self {
            ClusterFaultSpec::None => false,
            ClusterFaultSpec::JobFail { pct, retries, .. } => {
                if attempt >= retries {
                    return false;
                }
                let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                for b in (job as u64).to_le_bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                for b in attempt.to_le_bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                h % 100 < pct as u64
            }
            // An MTBF failure depends on the attempt's duration; this
            // duration-free predicate cannot express it — use
            // [`Self::failure_at`].
            ClusterFaultSpec::Mtbf { .. } => false,
            // Stochastic link noise perturbs packets, never whole jobs.
            ClusterFaultSpec::Stochastic(_) => false,
        }
    }

    /// How long a failed attempt occupies its allocation, given the
    /// duration the attempt would have run to completion. At least 1 ns,
    /// so a failed attempt is always a distinct simulation instant.
    pub fn failed_occupancy_ns(&self, duration_ns: u64) -> u64 {
        match *self {
            ClusterFaultSpec::None => 0,
            ClusterFaultSpec::JobFail { at_pct, .. } => {
                (duration_ns.saturating_mul(at_pct as u64) / 100).max(1)
            }
            ClusterFaultSpec::Mtbf { .. } | ClusterFaultSpec::Stochastic(_) => 0,
        }
    }

    /// The seeded exponential time-to-failure of attempt `attempt` of
    /// job `job` under an MTBF process.
    fn mtbf_draw(seed: u64, mtbf_ns: u64, job: usize, attempt: u32) -> u64 {
        let n = ((job as u64) << 32) | attempt as u64;
        faultgen::exp_sample(mtbf_ns, faultgen::fnv_draw(seed, "mtbf", n))
    }

    /// Does attempt `attempt` of job `job` fail, and if so, how long
    /// does it occupy its allocation before releasing? `None` means the
    /// attempt runs to completion. This subsumes [`Self::fails`] +
    /// [`Self::failed_occupancy_ns`]: the `JobFail` path reproduces them
    /// exactly, while `Mtbf` draws a time-to-failure and fails iff it
    /// lands inside `duration_ns`.
    pub fn failure_at(&self, seed: u64, job: usize, attempt: u32, duration_ns: u64) -> Option<u64> {
        match *self {
            ClusterFaultSpec::None => None,
            ClusterFaultSpec::JobFail { .. } => {
                self.fails(seed, job, attempt).then(|| self.failed_occupancy_ns(duration_ns))
            }
            ClusterFaultSpec::Mtbf { mtbf_ns, retries } => {
                if attempt >= retries {
                    return None;
                }
                let ttf = Self::mtbf_draw(seed, mtbf_ns, job, attempt);
                (ttf < duration_ns).then(|| ttf.max(1))
            }
            ClusterFaultSpec::Stochastic(_) => None,
        }
    }
}

// ---------------------------------------------------------------- spec ----

/// One fully specified dynamic cluster scenario: a deterministic
/// simulation of a job stream over a shared fabric.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    pub topology: TopologySpec,
    /// The workload catalog arrivals draw from (seeded uniform choice).
    pub catalog: Vec<WorkloadSpec>,
    pub arrivals: ArrivalSpec,
    pub placement: PlacementSpec,
    pub backend: BackendSpec,
    pub queue: QueueDiscipline,
    /// Job failure/restart injection ([`ClusterFaultSpec::None`] for a
    /// failure-free cluster).
    pub fault: ClusterFaultSpec,
    /// Cell seed: drives arrival draws, catalog choice, workload
    /// generation, random placement, and packet-level RNG.
    pub seed: u64,
}

impl ClusterSpec {
    /// Canonical cell key:
    /// `topology/arrivals/queue/placement/backend[/fault]` — the fault
    /// segment appears only for faulted cells, so fault-free keys (and
    /// goldens) are byte-identical to a build without the fault axis.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}/{}/{}/{}",
            self.topology.label(),
            self.arrivals.label(),
            self.queue.label(),
            self.placement.label(),
            self.backend.label()
        );
        if self.fault != ClusterFaultSpec::None {
            key.push('/');
            key.push_str(&self.fault.label());
        }
        key
    }
}

// ------------------------------------------------------------- outcome ----

/// Everything the engine records about one job's life in the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Arrival-order id (job 0 arrives first).
    pub id: usize,
    /// Label of the catalog workload this job instantiated.
    pub workload: String,
    /// Nodes the job occupies.
    pub ranks: usize,
    pub arrival_ns: u64,
    /// Admission instant of the *successful* attempt (allocation +
    /// simulation start).
    pub start_ns: u64,
    /// Total queueing delay across all attempts. Equals
    /// `start_ns - arrival_ns` for a job that never failed.
    pub wait_ns: u64,
    /// Simulated run time on its allocation, co-scheduled with its batch
    /// (successful attempt only).
    pub duration_ns: u64,
    /// Absolute completion: `start_ns + duration_ns`.
    pub finish_ns: u64,
    /// Turnaround: `finish_ns - arrival_ns` =
    /// `wait_ns + failed_ns + duration_ns`.
    pub completion_ns: u64,
    /// Number of failed attempts before the successful one (0 without a
    /// fault spec).
    pub restarts: u32,
    /// Total node-holding time burned by failed attempts.
    pub failed_ns: u64,
    /// Run time of the same job simulated alone on the same allocation.
    pub solo_ns: u64,
    /// Interference slowdown: `duration_ns / solo_ns` (1.0 for a batch of
    /// one, and on contention-free backends with disjoint placements).
    pub slowdown: f64,
    /// The allocated nodes.
    pub nodes: Vec<Rank>,
    /// Admission-batch index (jobs sharing it were simulated together).
    pub batch: usize,
}

/// Aggregate fragmentation accounting over a cluster run: the free pool
/// is snapshotted after every admission batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragSummary {
    /// Most free extents ever observed.
    pub peak_extents: usize,
    /// Mean fragmentation index (see [`atlahs_core::FragStats::index`]).
    pub mean_index: f64,
}

/// A finished cluster cell.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    pub key: String,
    pub seed: u64,
    /// Per-job records in arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Completion of the last job (ns).
    pub makespan_ns: u64,
    /// Number of admission batches.
    pub batches: usize,
    /// Deepest the queue ever got.
    pub peak_queue: usize,
    /// Node-time utilization: busy node-ns / (cluster nodes × makespan).
    pub utilization: f64,
    pub frag: FragSummary,
    /// Realized-fault telemetry; `Some` only for faulted cells.
    pub fault: Option<ClusterFaultTelemetry>,
    /// Host wall-clock cost (not part of the JSON report).
    pub wall: Duration,
}

/// What the failure process actually did to one cluster cell: the
/// aggregate of the per-job restart records, surfaced at cell level so a
/// report is auditable at a glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterFaultTelemetry {
    /// Failed attempts across all jobs.
    pub restarts: u64,
    /// Total node-holding time burned by failed attempts (ns).
    pub failed_ns: u64,
}

impl ClusterOutcome {
    pub fn mean_wait_ns(&self) -> f64 {
        mean(self.jobs.iter().map(|j| j.wait_ns as f64))
    }

    pub fn mean_slowdown(&self) -> f64 {
        mean(self.jobs.iter().map(|j| j.slowdown))
    }

    pub fn max_slowdown(&self) -> f64 {
        self.jobs.iter().map(|j| j.slowdown).fold(0.0, f64::max)
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in it {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

// -------------------------------------------------------------- engine ----

/// One simulation the engine needs at an admission instant: the composed
/// batch, or one member alone on its allocation.
enum SimTask<'a> {
    Batch(&'a [(usize, Arc<GoalSchedule>, Vec<Rank>)]),
    Solo(&'a (usize, Arc<GoalSchedule>, Vec<Rank>)),
}

/// Run one dynamic cluster cell. Deterministic: the result is a pure
/// function of `spec`, independent of `threads` (which only parallelizes
/// the independent simulations within each admission instant).
pub fn run_cluster(spec: &ClusterSpec, threads: usize) -> ClusterOutcome {
    let t0 = std::time::Instant::now();
    let hosts = spec.topology.hosts();
    assert!(!spec.catalog.is_empty(), "cluster: empty workload catalog");
    for w in &spec.catalog {
        assert!(
            w.ranks() <= hosts,
            "cluster: workload {} needs {} ranks but {} has {hosts} hosts \
             (grid expansion filters these)",
            w.label(),
            w.ranks(),
            spec.topology.label()
        );
    }

    // The job stream: arrival times and catalog picks, both seeded.
    let arrival_times = spec.arrivals.times(spec.seed);
    let mut pick_rng = StdRng::seed_from_u64(cell_seed(spec.seed, "cluster-catalog"));
    let picks: Vec<usize> =
        arrival_times.iter().map(|_| pick_rng.random_range(0..spec.catalog.len())).collect();

    // Lower every job's GOAL up front (parallel; deterministic per-job
    // seeds, so two jobs from the same catalog entry are distinct
    // instances — e.g. distinct uniform-random traffic draws).
    let job_ids: Vec<usize> = (0..arrival_times.len()).collect();
    let goals: Vec<Arc<GoalSchedule>> = parallel_map(&job_ids, threads.max(1), |&id| {
        let w = &spec.catalog[picks[id]];
        let seed = cell_seed(spec.seed, &format!("cluster-job:{id}:{}", w.label()));
        let mut built = w.build_jobs(seed);
        assert_eq!(built.len(), 1, "catalog entries must be single-job workloads");
        let goal = built.pop().expect("one schedule");
        // A zero-task job would run for 0 ns and hold nodes forever-free
        // semantics hostage; the CLI grammar rejects these at parse time,
        // so reaching here means a programmatic spec bug.
        assert!(
            goal.total_tasks() > 0,
            "cluster: workload {} generated an empty schedule; cluster jobs must do work",
            w.label()
        );
        goal
    });

    let mut pool = NodePool::new(spec.placement.strategy(spec.seed), hosts);
    let mut queue: Vec<usize> = Vec::new();
    let mut running: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; arrival_times.len()];
    let mut arr_ptr = 0usize;
    let mut batches = 0usize;
    let mut peak_queue = 0usize;
    let mut peak_extents = 0usize;
    let mut frag_sum = 0.0f64;
    let mut busy_node_ns = 0u64;

    // Per-job failure/restart state. All identically zero (and all
    // branches on them dead) when `spec.fault` is `None`, so a
    // failure-free cell runs the exact event sequence it always has.
    let fault_seed = cell_seed(spec.seed, "cluster-fault");
    let mut attempts: Vec<u32> = vec![0; arrival_times.len()];
    let mut failed_acc_ns: Vec<u64> = vec![0; arrival_times.len()];
    let mut wait_acc_ns: Vec<u64> = vec![0; arrival_times.len()];
    // When the job last became runnable: arrival, or the end of a failed
    // attempt after it re-queues.
    let mut ready_ns: Vec<u64> = arrival_times.clone();
    // Allocation of the in-flight attempt (released when it leaves the
    // running set, whether it completed or failed).
    let mut cur_nodes: Vec<Vec<Rank>> = vec![Vec::new(); arrival_times.len()];
    let mut cur_failed: Vec<bool> = vec![false; arrival_times.len()];

    loop {
        // Next instant anything changes: a completion or an arrival.
        let next_finish = running.peek().map(|&Reverse((t, _))| t);
        let next_arrival = arrival_times.get(arr_ptr).copied();
        let t = match (next_finish, next_arrival) {
            (Some(f), Some(a)) => f.min(a),
            (Some(f), None) => f,
            (None, Some(a)) => a,
            (None, None) => break,
        };

        // Completions first, so freed nodes can be re-allocated to jobs
        // arriving at the very same instant. A failed attempt releases
        // its nodes exactly like a completion, then re-queues the job —
        // ahead of any new arrivals at the same instant (it has been
        // waiting longer).
        while let Some(&Reverse((f, job))) = running.peek() {
            if f > t {
                break;
            }
            running.pop();
            pool.release(&cur_nodes[job]);
            cur_nodes[job].clear();
            if cur_failed[job] {
                cur_failed[job] = false;
                queue.push(job);
            }
        }
        while arr_ptr < arrival_times.len() && arrival_times[arr_ptr] <= t {
            queue.push(arr_ptr);
            arr_ptr += 1;
        }

        // Backfilling admission: scan in discipline order, admit whatever
        // fits the free pool right now. One batch holds at most MAX_JOBS
        // jobs (compose's tag-namespace bound); any overflow simply stays
        // queued for the next instant.
        let order = admission_order(&queue, spec.queue, |job| goals[job].num_ranks());
        let mut batch: Vec<(usize, Arc<GoalSchedule>, Vec<Rank>)> = Vec::new();
        for job in order {
            if batch.len() == MAX_JOBS {
                break;
            }
            if let Some(nodes) = pool.alloc(goals[job].num_ranks()) {
                batch.push((job, Arc::clone(&goals[job]), nodes));
            }
        }
        queue.retain(|job| !batch.iter().any(|(j, _, _)| j == job));
        // Queue depth after admission: only jobs that must actually wait.
        peak_queue = peak_queue.max(queue.len());
        if batch.is_empty() {
            continue;
        }

        let frag = pool.frag();
        peak_extents = peak_extents.max(frag.extents);
        frag_sum += frag.index();
        let batch_idx = batches;
        batches += 1;

        // Simulate the composed batch, plus each member alone on its
        // allocation (the slowdown baseline). All independent
        // single-threaded sims: parallelize across them.
        let mut sims: Vec<SimTask<'_>> = vec![SimTask::Batch(&batch)];
        if batch.len() > 1 {
            sims.extend(batch.iter().map(SimTask::Solo));
        }
        let reports: Vec<SimReport> = parallel_map(&sims, threads.max(1), |task| match task {
            SimTask::Batch(members) => {
                let placed: Vec<PlacedJob<'_>> =
                    members.iter().map(|(_, g, nodes)| PlacedJob::new(g, nodes.clone())).collect();
                let merged = compose(&placed, hosts).expect("pool allocations are disjoint");
                simulate(spec, &merged, cell_seed(spec.seed, &format!("batch:{batch_idx}")))
            }
            SimTask::Solo((job, g, nodes)) => {
                let merged = compose(&[PlacedJob::new(g, nodes.clone())], hosts)
                    .expect("a single job composes");
                simulate(spec, &merged, cell_seed(spec.seed, &format!("solo:{job}")))
            }
        });

        for (i, (job, goal, nodes)) in batch.iter().enumerate() {
            let duration = reports[0].job_finish(nodes);
            let solo = if batch.len() > 1 { reports[1 + i].job_finish(nodes) } else { duration };
            assert!(solo > 0, "a non-empty job must take time");
            wait_acc_ns[*job] += t - ready_ns[*job];
            cur_nodes[*job] = nodes.clone();
            if let Some(occupied) =
                spec.fault.failure_at(fault_seed, *job, attempts[*job], duration)
            {
                // Failed attempt: hold the allocation until the failure
                // instant, then release and re-queue (handled when this
                // entry pops off `running`).
                attempts[*job] += 1;
                failed_acc_ns[*job] += occupied;
                busy_node_ns += occupied * goal.num_ranks() as u64;
                ready_ns[*job] = t + occupied;
                cur_failed[*job] = true;
                running.push(Reverse((t + occupied, *job)));
                continue;
            }
            let w = &spec.catalog[picks[*job]];
            busy_node_ns += duration * goal.num_ranks() as u64;
            running.push(Reverse((t + duration, *job)));
            outcomes[*job] = Some(JobOutcome {
                id: *job,
                workload: w.label(),
                ranks: goal.num_ranks(),
                arrival_ns: arrival_times[*job],
                start_ns: t,
                wait_ns: wait_acc_ns[*job],
                duration_ns: duration,
                finish_ns: t + duration,
                completion_ns: t + duration - arrival_times[*job],
                solo_ns: solo,
                slowdown: duration as f64 / solo as f64,
                restarts: attempts[*job],
                failed_ns: failed_acc_ns[*job],
                nodes: nodes.clone(),
                batch: batch_idx,
            });
        }
    }

    let jobs: Vec<JobOutcome> =
        outcomes.into_iter().map(|o| o.expect("every arrived job eventually runs")).collect();
    let makespan_ns = jobs.iter().map(|j| j.finish_ns).max().unwrap_or(0);
    let utilization = if makespan_ns == 0 {
        0.0
    } else {
        busy_node_ns as f64 / (hosts as f64 * makespan_ns as f64)
    };
    // Restart telemetry only makes sense for job-failure processes;
    // stochastic link noise never restarts anything — its realizations
    // show up in the simulated durations instead.
    let fault = (!matches!(spec.fault, ClusterFaultSpec::None | ClusterFaultSpec::Stochastic(_)))
        .then(|| ClusterFaultTelemetry {
            restarts: jobs.iter().map(|j| j.restarts as u64).sum(),
            failed_ns: jobs.iter().map(|j| j.failed_ns).sum(),
        });
    ClusterOutcome {
        key: spec.key(),
        seed: spec.seed,
        jobs,
        makespan_ns,
        batches,
        peak_queue,
        utilization,
        fault,
        frag: FragSummary {
            peak_extents,
            mean_index: if batches == 0 { 0.0 } else { frag_sum / batches as f64 },
        },
        wall: t0.elapsed(),
    }
}

/// Run a composed schedule on the cell's backend (mirrors
/// [`crate::scenario::run_cell_prepared`]'s backend dispatch).
fn simulate(spec: &ClusterSpec, goal: &GoalSchedule, sim_seed: u64) -> SimReport {
    match spec.backend {
        BackendSpec::Htsim { cc, spray } => {
            let mut cfg = HtsimConfig::new(spec.topology.config(), cc);
            cfg.seed = sim_seed;
            cfg.spray = spray;
            // The draw-stream seed is derived from this *simulation's*
            // seed, so every batch and every solo baseline experiences
            // its own loss/jitter realization — two sims never share a
            // stream, and a fault-free spec leaves the model inactive.
            if let ClusterFaultSpec::Stochastic(model) = spec.fault {
                cfg.link_model = model.model(cell_seed(sim_seed, &spec.fault.label()));
            }
            let (report, _) = runner::run_on(goal, &mut HtsimBackend::new(cfg));
            report
        }
        BackendSpec::Lgs => {
            let (report, _) =
                runner::run_on(goal, &mut LgsBackend::new(lgs_params_for(&spec.topology)));
            report
        }
        BackendSpec::Ideal => {
            let link = spec.topology.edge_link();
            let (report, _) =
                runner::run_on(goal, &mut IdealBackend::new(link.bytes_per_ns(), link.latency_ns));
            report
        }
    }
}

// ---------------------------------------------------------------- grid ----

/// A declarative cluster grid: one fabric and catalog, crossed over
/// arrival processes × queue disciplines × placements × backends — the
/// sweepable axes of the dynamic engine.
#[derive(Debug, Clone)]
pub struct ClusterGrid {
    pub topology: TopologySpec,
    pub catalog: Vec<WorkloadSpec>,
    pub arrivals: Vec<ArrivalSpec>,
    pub queues: Vec<QueueDiscipline>,
    pub placements: Vec<PlacementSpec>,
    pub ccs: Vec<CcAlgo>,
    pub backends: Vec<BackendFamily>,
    /// Fault axis; an empty list means a single fault-free regime, so
    /// existing grids expand to exactly the cells they always have.
    pub faults: Vec<ClusterFaultSpec>,
    pub seed: u64,
}

impl ClusterGrid {
    /// Expand to concrete cells, also returning the catalog workloads
    /// dropped because they are wider than the fabric.
    pub fn expand_counted(&self) -> (Vec<ClusterSpec>, Vec<String>) {
        let hosts = self.topology.hosts();
        let mut dropped = Vec::new();
        let catalog: Vec<WorkloadSpec> = self
            .catalog
            .iter()
            .filter(|w| {
                let fits = w.ranks() <= hosts;
                if !fits {
                    dropped.push(format!(
                        "{} needs {} ranks but {} has {hosts} hosts",
                        w.label(),
                        w.ranks(),
                        self.topology.label()
                    ));
                }
                fits
            })
            .cloned()
            .collect();
        if catalog.is_empty() {
            return (Vec::new(), dropped);
        }
        let mut cells = Vec::new();
        for arrivals in &self.arrivals {
            for queue in &self.queues {
                for placement in &self.placements {
                    for family in &self.backends {
                        let backends: Vec<BackendSpec> = match family {
                            BackendFamily::Htsim => self
                                .ccs
                                .iter()
                                .map(|&cc| BackendSpec::Htsim { cc, spray: false })
                                .collect(),
                            BackendFamily::HtsimSpray => self
                                .ccs
                                .iter()
                                .map(|&cc| BackendSpec::Htsim { cc, spray: true })
                                .collect(),
                            BackendFamily::Lgs => vec![BackendSpec::Lgs],
                            BackendFamily::Ideal => vec![BackendSpec::Ideal],
                        };
                        let faults: &[ClusterFaultSpec] = if self.faults.is_empty() {
                            &[ClusterFaultSpec::None]
                        } else {
                            &self.faults
                        };
                        for backend in backends {
                            for fault in faults.iter().filter(|f| f.applies_to(backend)) {
                                cells.push(ClusterSpec {
                                    topology: self.topology.clone(),
                                    catalog: catalog.clone(),
                                    arrivals: arrivals.clone(),
                                    placement: *placement,
                                    backend,
                                    queue: *queue,
                                    fault: *fault,
                                    // One seed per grid: cells differing
                                    // only in queue/placement/backend/
                                    // fault simulate the same arrival
                                    // stream and job instances, so rows
                                    // are directly comparable (and the
                                    // fault axis never perturbs seeds).
                                    seed: cell_seed(self.seed, &arrivals.label()),
                                });
                            }
                        }
                    }
                }
            }
        }
        (cells, dropped)
    }
}

/// Run every cell of a cluster grid. Cells are independent; a single
/// cell parallelizes its per-instant simulations instead.
pub fn run_grid(cells: &[ClusterSpec], threads: usize) -> Vec<ClusterOutcome> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    if cells.len() == 1 {
        vec![run_cluster(&cells[0], threads)]
    } else {
        parallel_map(cells, threads, |cell| run_cluster(cell, 1))
    }
}

// -------------------------------------------------------------- report ----

/// A finished cluster sweep: grid seed plus per-cell outcomes.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    pub seed: u64,
    pub results: Vec<ClusterOutcome>,
}

/// Round for report emission: keeps goldens tidy while staying a
/// deterministic function of the value.
fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

impl ClusterReport {
    /// The deterministic JSON report: simulation outcomes only (no
    /// wall-clock), byte-identical across thread counts and re-runs.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("atlahs-cluster-v1".into()));
        doc.set(
            "seed",
            if self.seed < (1 << 53) {
                Json::Num(self.seed as f64)
            } else {
                Json::Str(format!("{:#018x}", self.seed))
            },
        );
        doc.set("cells", Json::Num(self.results.len() as f64));
        let mut arr = Vec::with_capacity(self.results.len());
        for r in &self.results {
            let mut cell = Json::obj();
            cell.set("key", Json::Str(r.key.clone()));
            cell.set("seed", Json::Str(format!("{:#018x}", r.seed)));
            cell.set("makespan_ns", Json::Num(r.makespan_ns as f64));
            cell.set("batches", Json::Num(r.batches as f64));
            cell.set("peak_queue", Json::Num(r.peak_queue as f64));
            cell.set("utilization", Json::Num(round4(r.utilization)));
            cell.set("mean_wait_ns", Json::Num(r.mean_wait_ns().round()));
            cell.set("mean_slowdown", Json::Num(round4(r.mean_slowdown())));
            let mut frag = Json::obj();
            frag.set("peak_extents", Json::Num(r.frag.peak_extents as f64));
            frag.set("mean_index", Json::Num(round4(r.frag.mean_index)));
            cell.set("frag", frag);
            // Realized-fault telemetry, faulted cells only: fault-free
            // reports keep their exact historical bytes.
            if let Some(tel) = &r.fault {
                let mut f = Json::obj();
                f.set("restarts", Json::Num(tel.restarts as f64));
                f.set("failed_ns", Json::Num(tel.failed_ns as f64));
                cell.set("fault", f);
            }
            let mut jobs = Vec::with_capacity(r.jobs.len());
            for j in &r.jobs {
                let mut job = Json::obj();
                job.set("id", Json::Num(j.id as f64));
                job.set("workload", Json::Str(j.workload.clone()));
                job.set("ranks", Json::Num(j.ranks as f64));
                job.set("arrival_ns", Json::Num(j.arrival_ns as f64));
                job.set("start_ns", Json::Num(j.start_ns as f64));
                job.set("wait_ns", Json::Num(j.wait_ns as f64));
                job.set("duration_ns", Json::Num(j.duration_ns as f64));
                job.set("finish_ns", Json::Num(j.finish_ns as f64));
                job.set("completion_ns", Json::Num(j.completion_ns as f64));
                job.set("solo_ns", Json::Num(j.solo_ns as f64));
                job.set("slowdown", Json::Num(round4(j.slowdown)));
                // Restart accounting only for jobs that actually failed:
                // failure-free reports stay byte-identical to builds
                // without the fault axis.
                if j.restarts > 0 {
                    job.set("restarts", Json::Num(j.restarts as f64));
                    job.set("failed_ns", Json::Num(j.failed_ns as f64));
                }
                job.set("nodes", Json::Arr(j.nodes.iter().map(|&n| Json::Num(n as f64)).collect()));
                job.set("batch", Json::Num(j.batch as f64));
                jobs.push(job);
            }
            cell.set("jobs", Json::Arr(jobs));
            arr.push(cell);
        }
        doc.set("results", Json::Arr(arr));
        doc
    }

    /// CSV: one row per (cell, job).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "key,job,workload,ranks,arrival_ns,start_ns,wait_ns,duration_ns,finish_ns,\
             solo_ns,slowdown,batch\n",
        );
        for r in &self.results {
            for j in &r.jobs {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{:.4},{}\n",
                    crate::table::csv_field(&r.key),
                    j.id,
                    crate::table::csv_field(&j.workload),
                    j.ranks,
                    j.arrival_ns,
                    j.start_ns,
                    j.wait_ns,
                    j.duration_ns,
                    j.finish_ns,
                    j.solo_ns,
                    j.slowdown,
                    j.batch
                ));
            }
        }
        out
    }

    /// GitHub-flavored markdown: one row per cell.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| scenario | jobs | makespan | mean wait | mean slowdown | max slowdown | util |\n\
             |---|---:|---:|---:|---:|---:|---:|\n",
        );
        for r in &self.results {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {:.3} | {:.0}% |\n",
                r.key,
                r.jobs.len(),
                crate::table::fmt_ns(r.makespan_ns),
                crate::table::fmt_ns(r.mean_wait_ns().round() as u64),
                r.mean_slowdown(),
                r.max_slowdown(),
                r.utilization * 100.0,
            ));
        }
        out
    }

    /// Human-readable summary table for terminal output.
    pub fn summary_table(&self) -> Table {
        let mut t =
            Table::new(["scenario", "jobs", "makespan", "mean wait", "slowdown", "util", "wall"]);
        for r in &self.results {
            t.row([
                r.key.clone(),
                r.jobs.len().to_string(),
                crate::table::fmt_ns(r.makespan_ns),
                crate::table::fmt_ns(r.mean_wait_ns().round() as u64),
                format!("{:.3}", r.mean_slowdown()),
                format!("{:.0}%", r.utilization * 100.0),
                format!("{:.0} ms", r.wall.as_secs_f64() * 1e3),
            ]);
        }
        t
    }

    /// Total simulated-cell wall-clock.
    pub fn total_cell_wall(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(placement: PlacementSpec, backend: BackendSpec) -> ClusterSpec {
        ClusterSpec {
            topology: TopologySpec::SingleSwitch { hosts: 8 },
            catalog: vec![
                WorkloadSpec::Ring { ranks: 4, bytes: 32 << 10, laps: 1 },
                WorkloadSpec::Incast { ranks: 3, bytes: 16 << 10, repeat: 1 },
            ],
            arrivals: ArrivalSpec::Poisson { jobs: 8, mean_gap_ns: 50_000 },
            placement,
            backend,
            queue: QueueDiscipline::Fifo,
            fault: ClusterFaultSpec::None,
            seed: 9,
        }
    }

    #[test]
    fn arrival_specs_roundtrip_and_are_seeded() {
        for tok in ["poisson:10:500000", "trace:0;1000;2500"] {
            let spec = ArrivalSpec::parse(tok).unwrap();
            assert_eq!(spec.label(), tok);
        }
        assert!(ArrivalSpec::parse("poisson:x:1").is_err());
        assert!(ArrivalSpec::parse("burst:3").is_err());
        assert!(ArrivalSpec::parse("trace:").is_err());

        let p = ArrivalSpec::Poisson { jobs: 100, mean_gap_ns: 10_000 };
        let a = p.times(1);
        let b = p.times(1);
        let c = p.times(2);
        assert_eq!(a, b, "same seed, same arrival stream");
        assert_ne!(a, c, "different seed, different stream");
        assert_eq!(a.len(), 100);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "ascending");
        // The empirical mean gap should be within 3x of the nominal one.
        let mean_gap = *a.last().unwrap() as f64 / 100.0;
        assert!((3_000.0..30_000.0).contains(&mean_gap), "{mean_gap}");

        // Trace times are sorted at parse time and reproduced verbatim.
        let t = ArrivalSpec::parse("trace:5;1;9").unwrap();
        assert_eq!(t, ArrivalSpec::Trace { times_ns: vec![1, 5, 9] });
        assert_eq!(t.times(123), vec![1, 5, 9], "trace ignores the seed");
    }

    #[test]
    fn admission_order_disciplines() {
        // Jobs 0..=2 with ranks 6, 4, 2.
        let ranks = [6usize, 4, 2];
        let queue = vec![0usize, 1, 2];
        assert_eq!(admission_order(&queue, QueueDiscipline::Fifo, |j| ranks[j]), vec![0, 1, 2]);
        assert_eq!(
            admission_order(&queue, QueueDiscipline::SmallestFirst, |j| ranks[j]),
            vec![2, 1, 0]
        );
    }

    #[test]
    fn cluster_run_is_deterministic_across_threads_and_reruns() {
        let spec = small_spec(PlacementSpec::Packed, BackendSpec::Lgs);
        let a = run_cluster(&spec, 1);
        let b = run_cluster(&spec, 4);
        let c = run_cluster(&spec, 1);
        let json =
            |r: ClusterOutcome| ClusterReport { seed: 9, results: vec![r] }.to_json().pretty();
        let (ja, jb, jc) = (json(a), json(b), json(c));
        assert_eq!(ja, jb, "thread count must not change the report");
        assert_eq!(ja, jc, "re-runs must be byte-identical");
    }

    #[test]
    fn every_job_runs_and_metrics_are_consistent() {
        let spec = small_spec(PlacementSpec::RoundRobin, BackendSpec::Ideal);
        let out = run_cluster(&spec, 2);
        assert_eq!(out.jobs.len(), 8);
        for j in &out.jobs {
            assert!(j.start_ns >= j.arrival_ns);
            assert_eq!(j.wait_ns, j.start_ns - j.arrival_ns);
            assert_eq!(j.finish_ns, j.start_ns + j.duration_ns);
            assert_eq!(j.completion_ns, j.wait_ns + j.duration_ns);
            assert!(j.duration_ns > 0);
            assert!(j.solo_ns > 0);
            assert_eq!(j.nodes.len(), j.ranks);
            assert!(j.slowdown >= 1.0 - 1e-9, "{}", j.slowdown);
        }
        assert_eq!(out.makespan_ns, out.jobs.iter().map(|j| j.finish_ns).max().unwrap());
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
        assert!(out.batches >= 1);
    }

    #[test]
    fn disjoint_tenants_have_unit_slowdown_on_contention_free_backends() {
        // On the ideal backend a co-scheduled job on its own nodes runs
        // exactly as fast as alone: the slowdown metric must be 1.0 even
        // when batches of several jobs are admitted together.
        let mut spec = small_spec(PlacementSpec::Packed, BackendSpec::Ideal);
        // All jobs arrive at t=0, so they are admitted in multi-job batches.
        spec.arrivals = ArrivalSpec::Trace { times_ns: vec![0, 0, 0, 0] };
        let out = run_cluster(&spec, 1);
        assert!(
            out.jobs
                .iter()
                .any(|j| { out.jobs.iter().any(|k| k.id != j.id && k.batch == j.batch) }),
            "expected at least one multi-job batch"
        );
        for j in &out.jobs {
            assert!(
                (j.slowdown - 1.0).abs() < 1e-9,
                "job {}: ideal-backend slowdown {} != 1",
                j.id,
                j.slowdown
            );
            assert_eq!(j.duration_ns, j.solo_ns);
        }
    }

    #[test]
    fn saturated_cluster_queues_jobs() {
        // 4-rank jobs on an 8-host switch, all arriving at once: at most
        // two run concurrently, the rest wait.
        let mut spec = small_spec(PlacementSpec::Packed, BackendSpec::Lgs);
        spec.catalog = vec![WorkloadSpec::Ring { ranks: 4, bytes: 64 << 10, laps: 2 }];
        spec.arrivals = ArrivalSpec::Trace { times_ns: vec![0, 0, 0, 0, 0, 0] };
        let out = run_cluster(&spec, 1);
        assert!(out.peak_queue >= 4, "peak queue {}", out.peak_queue);
        assert!(out.jobs.iter().filter(|j| j.wait_ns > 0).count() >= 4);
        assert!(out.batches >= 3);
        // Jobs in the same batch occupy disjoint nodes.
        for a in &out.jobs {
            for b in &out.jobs {
                if a.id < b.id && a.batch == b.batch {
                    assert!(a.nodes.iter().all(|n| !b.nodes.contains(n)));
                }
            }
        }
    }

    #[test]
    fn smallest_first_lets_narrow_jobs_jump_wide_heads() {
        // Free pool of 8; a 6-rank job runs; queue gets [6-rank, 4-rank,
        // 2-rank] — fifo backfill admits the 2-rank job (first fit in
        // arrival order among those that fit: 6 no, 4 no... with 2 free
        // only the 2-rank job fits under either discipline; distinguish
        // with 4 free: fifo admits the 4-rank job, smallest the 2-rank
        // one first and then none.
        let mk = |queue| {
            let mut spec = small_spec(PlacementSpec::Packed, BackendSpec::Ideal);
            spec.queue = queue;
            spec.catalog = vec![
                WorkloadSpec::Ring { ranks: 4, bytes: 1 << 20, laps: 8 }, // long, wide
                WorkloadSpec::Ring { ranks: 4, bytes: 8 << 10, laps: 1 },
                WorkloadSpec::Ring { ranks: 2, bytes: 8 << 10, laps: 1 },
            ];
            spec
        };
        // Construct the race directly through the admission scan instead
        // of hunting for a seed: with 4 free nodes and queued jobs of
        // sizes [4, 2], fifo admits job0 first, smallest admits job1.
        let goals = [4usize, 2usize];
        let fifo = admission_order(&[0, 1], QueueDiscipline::Fifo, |j| goals[j]);
        let smallest = admission_order(&[0, 1], QueueDiscipline::SmallestFirst, |j| goals[j]);
        assert_eq!(fifo, vec![0, 1]);
        assert_eq!(smallest, vec![1, 0]);
        // And end-to-end, both disciplines still run everything.
        for queue in [QueueDiscipline::Fifo, QueueDiscipline::SmallestFirst] {
            let out = run_cluster(&mk(queue), 1);
            assert_eq!(out.jobs.len(), 8);
        }
    }

    #[test]
    fn admission_caps_batches_at_the_tag_namespace_bound() {
        // 300 two-rank jobs all arrive at t=0 on a 600-host switch:
        // everything fits the pool, but one composed batch can hold at
        // most MAX_JOBS (256) tenants, so admission must split the burst
        // instead of panicking inside compose.
        let spec = ClusterSpec {
            topology: TopologySpec::SingleSwitch { hosts: 600 },
            catalog: vec![WorkloadSpec::Incast { ranks: 2, bytes: 1 << 10, repeat: 1 }],
            arrivals: ArrivalSpec::Trace { times_ns: vec![0; 300] },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Ideal,
            queue: QueueDiscipline::Fifo,
            fault: ClusterFaultSpec::None,
            seed: 2,
        };
        let out = run_cluster(&spec, 4);
        assert_eq!(out.jobs.len(), 300);
        let first_batch = out.jobs.iter().filter(|j| j.batch == 0).count();
        assert_eq!(first_batch, MAX_JOBS, "first batch capped at the compose bound");
        assert!(out.batches >= 2, "overflow admitted in a later batch");
        assert!(out.jobs.iter().all(|j| j.duration_ns > 0));
    }

    #[test]
    fn grid_expansion_crosses_axes_and_drops_oversized_workloads() {
        let grid = ClusterGrid {
            topology: TopologySpec::SingleSwitch { hosts: 8 },
            catalog: vec![
                WorkloadSpec::Ring { ranks: 4, bytes: 1 << 10, laps: 1 },
                WorkloadSpec::Ring { ranks: 16, bytes: 1 << 10, laps: 1 }, // too wide
            ],
            arrivals: vec![
                ArrivalSpec::Poisson { jobs: 4, mean_gap_ns: 1000 },
                ArrivalSpec::Trace { times_ns: vec![0, 10] },
            ],
            queues: vec![QueueDiscipline::Fifo],
            placements: vec![PlacementSpec::Packed, PlacementSpec::Random],
            ccs: vec![CcAlgo::Mprdma],
            backends: vec![BackendFamily::Htsim, BackendFamily::Ideal],
            faults: vec![],
            seed: 3,
        };
        let (cells, dropped) = grid.expand_counted();
        // 2 arrivals × 1 queue × 2 placements × (1 htsim CC + 1 ideal) = 8.
        assert_eq!(cells.len(), 8);
        assert_eq!(dropped.len(), 1);
        assert!(dropped[0].contains("ring:16"));
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 8, "cell keys are unique");
        // Cells sharing an arrival spec share a seed (same job stream).
        for c in &cells {
            assert_eq!(c.seed, cell_seed(3, &c.arrivals.label()));
        }
    }

    #[test]
    fn grid_reports_are_thread_count_independent() {
        let grid = ClusterGrid {
            topology: TopologySpec::SingleSwitch { hosts: 8 },
            catalog: vec![WorkloadSpec::Ring { ranks: 4, bytes: 16 << 10, laps: 1 }],
            arrivals: vec![
                ArrivalSpec::Poisson { jobs: 5, mean_gap_ns: 20_000 },
                ArrivalSpec::Trace { times_ns: vec![0, 0, 50_000] },
            ],
            queues: vec![QueueDiscipline::Fifo, QueueDiscipline::SmallestFirst],
            placements: vec![PlacementSpec::Packed],
            ccs: vec![],
            backends: vec![BackendFamily::Lgs, BackendFamily::Ideal],
            faults: vec![],
            seed: 5,
        };
        let (cells, _) = grid.expand_counted();
        assert_eq!(cells.len(), 8);
        let serial = ClusterReport { seed: 5, results: run_grid(&cells, 1) };
        let parallel = ClusterReport { seed: 5, results: run_grid(&cells, 4) };
        assert_eq!(serial.to_json().pretty(), parallel.to_json().pretty());
        assert_eq!(serial.to_csv(), parallel.to_csv());
        // The JSON parses back and the formats agree on cardinality.
        let json = serial.to_json();
        assert_eq!(Json::parse(&json.pretty()).unwrap(), json);
        assert_eq!(json.get("results").unwrap().as_arr().unwrap().len(), 8);
        let total_jobs: usize = serial.results.iter().map(|r| r.jobs.len()).sum();
        assert_eq!(serial.to_csv().lines().count(), total_jobs + 1);
        assert_eq!(serial.to_markdown().lines().count(), 8 + 2);
    }

    #[test]
    fn htsim_contention_shows_up_as_slowdown() {
        // Two chatty jobs admitted together on an oversubscribed fabric:
        // packed placement keeps them in separate ToRs (little
        // interference); the composed batch still must not be *faster*
        // than solo.
        let spec = ClusterSpec {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            catalog: vec![WorkloadSpec::Ring { ranks: 8, bytes: 512 << 10, laps: 1 }],
            arrivals: ArrivalSpec::Trace { times_ns: vec![0, 0] },
            placement: PlacementSpec::Random,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            queue: QueueDiscipline::Fifo,
            fault: ClusterFaultSpec::None,
            seed: 11,
        };
        let out = run_cluster(&spec, 2);
        assert_eq!(out.jobs.len(), 2);
        assert_eq!(out.jobs[0].batch, out.jobs[1].batch);
        for j in &out.jobs {
            // Random placement scatters both rings across the shared
            // 4:1 core: co-scheduling must not speed anyone up, and at
            // least some interference is expected.
            assert!(j.slowdown >= 0.999, "job {} slowdown {}", j.id, j.slowdown);
        }
        assert!(out.mean_slowdown() > 1.0, "mean {}", out.mean_slowdown());
    }

    #[test]
    fn cluster_fault_specs_roundtrip_and_decide_deterministically() {
        for tok in ["none", "jobfail:25:50:3", "jobfail:100:0:1", "mtbf:2000000:3"] {
            let spec = ClusterFaultSpec::parse(tok).unwrap();
            assert_eq!(spec.label(), tok);
        }
        assert!(ClusterFaultSpec::parse("jobfail:x:50:3").is_err());
        assert!(ClusterFaultSpec::parse("jobfail:10:50").is_err());
        assert!(ClusterFaultSpec::parse("nodefail:1").is_err());
        // A zero MTBF would make the exponential time-to-failure sampler
        // degenerate (every attempt fails at t=0, forever); it must die
        // at parse time with a message naming the constraint.
        let err = ClusterFaultSpec::parse("mtbf:0:3").unwrap_err();
        assert!(err.contains("mean time between failures"), "{err}");
        assert!(ClusterFaultSpec::parse("mtbf:1000").is_err());
        // Percentages clamp instead of erroring (CLI forgiveness).
        assert_eq!(
            ClusterFaultSpec::parse("jobfail:150:200:2").unwrap(),
            ClusterFaultSpec::JobFail { pct: 100, at_pct: 100, retries: 2 }
        );

        let always = ClusterFaultSpec::JobFail { pct: 100, at_pct: 50, retries: 2 };
        let never = ClusterFaultSpec::JobFail { pct: 0, at_pct: 50, retries: 2 };
        for job in 0..8 {
            assert!(always.fails(7, job, 0) && always.fails(7, job, 1));
            assert!(!always.fails(7, job, 2), "attempt == retries always succeeds");
            assert!(!never.fails(7, job, 0));
            assert!(!ClusterFaultSpec::None.fails(7, job, 0));
        }
        // The draw is a pure function of (seed, job, attempt) and actually
        // depends on each of them at a 50% rate.
        let half = ClusterFaultSpec::JobFail { pct: 50, at_pct: 50, retries: 1 };
        let draws: Vec<bool> = (0..64).map(|j| half.fails(1, j, 0)).collect();
        assert_eq!(draws, (0..64).map(|j| half.fails(1, j, 0)).collect::<Vec<_>>());
        let hits = draws.iter().filter(|&&b| b).count();
        assert!(hits > 8 && hits < 56, "50% draw hit {hits}/64 jobs");
        assert_ne!(draws, (0..64).map(|j| half.fails(2, j, 0)).collect::<Vec<_>>());

        assert_eq!(always.failed_occupancy_ns(1000), 500);
        assert_eq!(never.failed_occupancy_ns(0), 1, "failed attempts take at least 1 ns");
        assert_eq!(ClusterFaultSpec::None.failed_occupancy_ns(1000), 0);

        // `failure_at` subsumes fails + failed_occupancy_ns exactly.
        for job in 0..8 {
            assert_eq!(always.failure_at(7, job, 0, 1000), Some(500));
            assert_eq!(always.failure_at(7, job, 2, 1000), None);
            assert_eq!(never.failure_at(7, job, 0, 1000), None);
            assert_eq!(ClusterFaultSpec::None.failure_at(7, job, 0, 1000), None);
        }
    }

    #[test]
    fn mtbf_failures_scale_with_duration_and_respect_the_retry_bound() {
        let mtbf = ClusterFaultSpec::Mtbf { mtbf_ns: 1_000_000, retries: 2 };
        // Short attempts rarely fail, long attempts usually do, and when
        // one fails it holds its nodes strictly inside its run.
        let mut short_fails = 0;
        let mut long_fails = 0;
        for job in 0..64 {
            if let Some(held) = mtbf.failure_at(7, job, 0, 10_000) {
                assert!((1..10_000).contains(&held));
                short_fails += 1;
            }
            if let Some(held) = mtbf.failure_at(7, job, 0, 20_000_000) {
                assert!((1..20_000_000).contains(&held));
                long_fails += 1;
            }
            assert_eq!(mtbf.failure_at(7, job, 2, u64::MAX), None, "retry bound holds");
            assert_eq!(
                mtbf.failure_at(7, job, 0, 123_456),
                mtbf.failure_at(7, job, 0, 123_456),
                "pure function of (seed, job, attempt, duration)"
            );
        }
        assert!(short_fails < 16, "10 µs attempts vs 1 ms MTBF: {short_fails}/64 failed");
        assert!(long_fails > 56, "20 ms attempts vs 1 ms MTBF: only {long_fails}/64 failed");
        // The duration-free predicate cannot express an MTBF failure.
        assert!(!mtbf.fails(7, 0, 0));
        assert_eq!(mtbf.failed_occupancy_ns(1000), 0);
    }

    #[test]
    fn mtbf_cluster_runs_restart_jobs_and_report_telemetry() {
        let mut spec = small_spec(PlacementSpec::Packed, BackendSpec::Lgs);
        // Job runs are hundreds of µs; a 200 µs MTBF forces failures.
        spec.fault = ClusterFaultSpec::Mtbf { mtbf_ns: 200_000, retries: 3 };
        let out = run_cluster(&spec, 2);
        let clean = run_cluster(&small_spec(PlacementSpec::Packed, BackendSpec::Lgs), 2);
        assert_eq!(out.jobs.len(), 8, "every job still completes");
        assert_eq!(clean.fault, None, "fault-free cells carry no telemetry");
        let tel = out.fault.expect("faulted cells report telemetry");
        assert!(tel.restarts > 0, "a sub-runtime MTBF must fire: {tel:?}");
        assert_eq!(tel.restarts, out.jobs.iter().map(|j| j.restarts as u64).sum::<u64>());
        assert_eq!(tel.failed_ns, out.jobs.iter().map(|j| j.failed_ns).sum::<u64>());
        assert!(tel.failed_ns > 0, "failed attempts hold their nodes for at least 1 ns");
        for j in out.jobs.iter().filter(|j| j.restarts > 0) {
            assert!(j.failed_ns > 0);
            assert_eq!(j.start_ns, j.arrival_ns + j.wait_ns + j.failed_ns);
        }
        // Both runs are identical up to the first failure, so that job's
        // successful start must slip past its clean twin's (the cluster
        // is unsaturated, so the *makespan* need not move — the per-job
        // records must).
        assert!(
            out.jobs
                .iter()
                .filter(|j| j.restarts > 0)
                .any(|j| j.start_ns > clean.jobs[j.id].start_ns),
            "a restarted job starts later than its fault-free twin"
        );
        // Deterministic across thread counts, and the telemetry reaches
        // the JSON report.
        let json =
            |r: ClusterOutcome| ClusterReport { seed: 9, results: vec![r] }.to_json().pretty();
        let ja = json(out);
        assert_eq!(ja, json(run_cluster(&spec, 1)), "thread-count independent");
        assert!(ja.contains("\"fault\"") && ja.contains("\"failed_ns\""), "{ja}");
        assert!(!json(clean).contains("\"fault\""));
    }

    #[test]
    fn failed_jobs_release_nodes_restart_and_complete() {
        // Every job fails its first two attempts (holding nodes for half
        // the would-be run), then succeeds on the third.
        let mut spec = small_spec(PlacementSpec::Packed, BackendSpec::Lgs);
        spec.fault = ClusterFaultSpec::JobFail { pct: 100, at_pct: 50, retries: 2 };
        let out = run_cluster(&spec, 2);
        let clean = run_cluster(&small_spec(PlacementSpec::Packed, BackendSpec::Lgs), 2);
        assert_eq!(out.jobs.len(), 8, "every job still completes");
        for j in &out.jobs {
            assert_eq!(j.restarts, 2, "job {}: exactly `retries` failed attempts", j.id);
            assert!(j.failed_ns > 0);
            // Total accounting: the successful start is arrival plus all
            // queueing plus all failed-attempt occupancy.
            assert_eq!(j.start_ns, j.arrival_ns + j.wait_ns + j.failed_ns);
            assert_eq!(j.finish_ns, j.start_ns + j.duration_ns);
            assert_eq!(j.completion_ns, j.wait_ns + j.failed_ns + j.duration_ns);
            assert_eq!(j.nodes.len(), j.ranks);
            assert!(j.duration_ns > 0 && j.solo_ns > 0);
        }
        // Failed attempts burn cluster time: the faulted run takes longer
        // and the pool still drains completely (utilization stays sane,
        // which it cannot if released node accounting leaked).
        assert!(out.makespan_ns > clean.makespan_ns);
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
        assert!(out.frag.peak_extents >= 1);
        // Re-runs and thread counts do not change the faulted report.
        let json =
            |r: ClusterOutcome| ClusterReport { seed: 9, results: vec![r] }.to_json().pretty();
        let ja = json(out);
        assert_eq!(ja, json(run_cluster(&spec, 1)), "faulted cell is thread-count independent");
        assert!(ja.contains("\"restarts\": 2"), "restart accounting reaches the report");
        assert!(ja.contains("\"failed_ns\""));
        assert!(!json(clean).contains("restarts"), "fault-free reports carry no restart fields");
    }

    #[test]
    fn zero_probability_faults_match_the_fault_free_engine() {
        // A fault spec that never fires must leave every job metric
        // untouched — only the cell key gains a fault segment.
        let mut spec = small_spec(PlacementSpec::Random, BackendSpec::Lgs);
        spec.fault = ClusterFaultSpec::JobFail { pct: 0, at_pct: 50, retries: 3 };
        let faulted = run_cluster(&spec, 2);
        let clean = run_cluster(&small_spec(PlacementSpec::Random, BackendSpec::Lgs), 2);
        assert_eq!(faulted.jobs, clean.jobs);
        assert_eq!(faulted.makespan_ns, clean.makespan_ns);
        assert_eq!(faulted.peak_queue, clean.peak_queue);
        assert_eq!(faulted.key, format!("{}/jobfail:0:50:3", clean.key));
    }

    #[test]
    fn requeued_jobs_count_in_queue_and_wait_metrics() {
        // A saturated switch where every job fails once: re-queued jobs
        // must show up in peak_queue and in accumulated wait.
        let mk = |fault| {
            let mut spec = small_spec(PlacementSpec::Packed, BackendSpec::Ideal);
            spec.catalog = vec![WorkloadSpec::Ring { ranks: 4, bytes: 64 << 10, laps: 2 }];
            spec.arrivals = ArrivalSpec::Trace { times_ns: vec![0, 0, 0, 0, 0, 0] };
            spec.fault = fault;
            spec
        };
        let clean = run_cluster(&mk(ClusterFaultSpec::None), 1);
        let faulted =
            run_cluster(&mk(ClusterFaultSpec::JobFail { pct: 100, at_pct: 100, retries: 1 }), 1);
        assert!(faulted.jobs.iter().all(|j| j.restarts == 1));
        assert!(
            faulted.peak_queue >= clean.peak_queue,
            "re-queued jobs deepen the queue: {} < {}",
            faulted.peak_queue,
            clean.peak_queue
        );
        let wait = |o: &ClusterOutcome| o.jobs.iter().map(|j| j.wait_ns).sum::<u64>();
        assert!(
            wait(&faulted) > wait(&clean),
            "failed attempts push later jobs' queueing delay up"
        );
        assert!(faulted.makespan_ns > clean.makespan_ns);
    }

    #[test]
    fn restarts_respect_the_tag_namespace_bound() {
        // The MAX_JOBS burst test, with every job failing once: re-queued
        // jobs flow through the same capped admission scan, so no batch
        // may ever exceed the compose bound.
        let spec = ClusterSpec {
            topology: TopologySpec::SingleSwitch { hosts: 600 },
            catalog: vec![WorkloadSpec::Incast { ranks: 2, bytes: 1 << 10, repeat: 1 }],
            arrivals: ArrivalSpec::Trace { times_ns: vec![0; 300] },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Ideal,
            queue: QueueDiscipline::Fifo,
            fault: ClusterFaultSpec::JobFail { pct: 100, at_pct: 25, retries: 1 },
            seed: 2,
        };
        let out = run_cluster(&spec, 4);
        assert_eq!(out.jobs.len(), 300);
        assert!(out.jobs.iter().all(|j| j.restarts == 1));
        let mut per_batch = std::collections::HashMap::new();
        for j in &out.jobs {
            *per_batch.entry(j.batch).or_insert(0usize) += 1;
        }
        assert!(per_batch.values().all(|&n| n <= MAX_JOBS), "successful-attempt batches capped");
        assert!(out.batches >= 3, "failures force extra admission batches");
    }

    #[test]
    fn grid_fault_axis_multiplies_cells_without_perturbing_seeds() {
        let base = ClusterGrid {
            topology: TopologySpec::SingleSwitch { hosts: 8 },
            catalog: vec![WorkloadSpec::Ring { ranks: 4, bytes: 16 << 10, laps: 1 }],
            arrivals: vec![ArrivalSpec::Poisson { jobs: 4, mean_gap_ns: 20_000 }],
            queues: vec![QueueDiscipline::Fifo],
            placements: vec![PlacementSpec::Packed],
            ccs: vec![],
            backends: vec![BackendFamily::Lgs, BackendFamily::Ideal],
            faults: vec![],
            seed: 5,
        };
        let mut faulted = base.clone();
        faulted.faults = vec![
            ClusterFaultSpec::None,
            ClusterFaultSpec::JobFail { pct: 50, at_pct: 50, retries: 2 },
        ];
        let (plain, _) = base.expand_counted();
        let (cells, _) = faulted.expand_counted();
        assert_eq!(plain.len(), 2);
        assert_eq!(cells.len(), 4, "2 backends x 2 fault regimes");
        for c in &cells {
            // The fault axis is invisible to cell seeding: every cell
            // still derives its seed from the arrival label alone.
            assert_eq!(c.seed, cell_seed(5, &c.arrivals.label()));
        }
        let keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        assert_eq!(keys.iter().filter(|k| k.ends_with("/jobfail:50:50:2")).count(), 2);
        assert!(
            plain.iter().all(|c| cells.iter().any(|f| f.key() == c.key())),
            "fault-free cells keep their exact pre-axis keys"
        );
    }

    #[test]
    fn stochastic_cluster_specs_parse_apply_only_to_packet_backends() {
        // The loss/jitter grammar is shared with the sweep fault axis —
        // labels round-trip and degenerate specs die with the htsim
        // crate's own messages.
        for tok in ["loss:20000", "loss:80000:core", "jitter:exp:2000", "jitter:uniform:1500"] {
            let spec = ClusterFaultSpec::parse(tok).unwrap();
            assert_eq!(spec.label(), tok);
            assert!(matches!(spec, ClusterFaultSpec::Stochastic(_)));
            // Packet noise never fails a job or holds nodes.
            assert!(!spec.fails(7, 0, 0));
            assert_eq!(spec.failed_occupancy_ns(1000), 0);
            assert_eq!(spec.failure_at(7, 0, 0, 1000), None);
        }
        let err = ClusterFaultSpec::parse("loss:0").unwrap_err();
        assert!(err.contains("drop the token instead"), "{err}");
        let err = ClusterFaultSpec::parse("loss:1000000").unwrap_err();
        assert!(err.contains("outage, not noise"), "{err}");
        let err = ClusterFaultSpec::parse("jitter:exp:0").unwrap_err();
        assert!(err.contains("never perturbs a timestamp"), "{err}");

        // Grid expansion skips stochastic cells on message-level and
        // ideal backends (packets only exist in htsim) and never
        // perturbs the base seeds.
        let grid = ClusterGrid {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            catalog: vec![WorkloadSpec::Ring { ranks: 4, bytes: 16 << 10, laps: 1 }],
            arrivals: vec![ArrivalSpec::Poisson { jobs: 4, mean_gap_ns: 20_000 }],
            queues: vec![QueueDiscipline::Fifo],
            placements: vec![PlacementSpec::Packed],
            ccs: vec![CcAlgo::Mprdma],
            backends: vec![BackendFamily::Htsim, BackendFamily::Lgs, BackendFamily::Ideal],
            faults: vec![ClusterFaultSpec::None, ClusterFaultSpec::parse("loss:50000").unwrap()],
            seed: 5,
        };
        let (cells, _) = grid.expand_counted();
        // htsim: none + loss; lgs: none; ideal: none.
        assert_eq!(cells.len(), 4, "{:?}", cells.iter().map(|c| c.key()).collect::<Vec<_>>());
        let lossy: Vec<&ClusterSpec> =
            cells.iter().filter(|c| c.key().ends_with("/loss:50000")).collect();
        assert_eq!(lossy.len(), 1);
        assert!(matches!(lossy[0].backend, BackendSpec::Htsim { .. }));
        for c in &cells {
            assert_eq!(c.seed, cell_seed(5, &c.arrivals.label()));
        }
    }

    #[test]
    fn lossy_cluster_cells_complete_diverge_and_rerun_identically() {
        let mk = |fault| ClusterSpec {
            topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
            catalog: vec![WorkloadSpec::Ring { ranks: 4, bytes: 64 << 10, laps: 1 }],
            arrivals: ArrivalSpec::Trace { times_ns: vec![0, 0, 10_000, 20_000] },
            placement: PlacementSpec::Packed,
            backend: BackendSpec::Htsim { cc: CcAlgo::Mprdma, spray: false },
            queue: QueueDiscipline::Fifo,
            fault,
            seed: 11,
        };
        let clean = run_cluster(&mk(ClusterFaultSpec::None), 1);
        let lossy_spec = mk(ClusterFaultSpec::parse("loss:100000").unwrap());
        let a = run_cluster(&lossy_spec, 1);
        let b = run_cluster(&lossy_spec, 4);
        // Liveness: sustained 10% loss stretches every run but the RTO
        // machinery still finishes all jobs.
        assert_eq!(a.jobs.len(), 4, "every job completes under loss");
        assert!(a.jobs.iter().all(|j| j.duration_ns > 0 && j.restarts == 0));
        assert_eq!(a.fault, None, "packet noise is not job-failure telemetry");
        assert!(
            a.jobs.iter().zip(&clean.jobs).any(|(l, c)| l.duration_ns > c.duration_ns),
            "10% loss must stretch at least one simulated run"
        );
        // Thread-count and rerun identity, down to the report bytes.
        let json =
            |r: ClusterOutcome| ClusterReport { seed: 11, results: vec![r] }.to_json().pretty();
        let ja = json(a);
        assert_eq!(ja, json(b), "thread count must not change a lossy report");
        assert_eq!(ja, json(run_cluster(&lossy_spec, 1)), "lossy reruns are byte-identical");
    }
}
