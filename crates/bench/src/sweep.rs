//! The parallel scenario-sweep executor and its report writers.
//!
//! Cells are independent, deterministic, single-threaded simulations
//! ([`crate::scenario::run_cell`]), so the sweep parallelizes across OS
//! threads with a shared claim-index queue: every idle worker steals the
//! next unclaimed cell (`fetch_add` on an atomic cursor), which load
//! balances a grid whose cell costs span orders of magnitude without any
//! coordination beyond one atomic. Results land in their cell's slot, so
//! the report is **independent of the thread count and of completion
//! order**: `--threads 1` and `--threads N` must produce byte-identical
//! JSON (the determinism gate `ci.sh` enforces on the smoke grid).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crate::json::Json;
use crate::scenario::{run_cell_prepared, CellResult, ScenarioCell};
use crate::table::Table;

/// Claim-index parallel map: workers steal the next unclaimed item via
/// one atomic `fetch_add`; results land in their item's slot, so the
/// output order is independent of thread count and completion order.
/// Shared with the dynamic cluster engine ([`crate::cluster`]), whose
/// per-epoch simulations parallelize the same way.
pub(crate) fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return claimed;
                        }
                        claimed.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("sweep worker must not panic") {
                slots[i] = Some(result);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every item claimed exactly once")).collect()
}

/// Run every cell, `threads`-wide. 0 means one thread per available core.
///
/// Two phases, both over the claim-index pool: first one GOAL lowering
/// per *distinct* (workload, seed) pair — cells differing only in
/// topology, CC, placement, or backend share the built schedules instead
/// of re-tracing the workload per cell — then the simulations themselves.
/// Sharing cannot change results: job construction is a deterministic
/// function of exactly that pair.
pub fn execute(cells: &[ScenarioCell], threads: usize) -> Vec<CellResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };

    // Phase 1: deduplicate workload builds.
    let mut index_of: std::collections::HashMap<(String, u64), usize> =
        std::collections::HashMap::new();
    let mut uniq: Vec<&ScenarioCell> = Vec::new();
    let job_idx: Vec<usize> = cells
        .iter()
        .map(|cell| {
            *index_of.entry((cell.workload.label(), cell.seed)).or_insert_with(|| {
                uniq.push(cell);
                uniq.len() - 1
            })
        })
        .collect();
    let jobs = parallel_map(&uniq, threads, |cell| cell.workload.build_jobs(cell.seed));

    // Phase 2: the simulations.
    let indices: Vec<usize> = (0..cells.len()).collect();
    parallel_map(&indices, threads, |&i| run_cell_prepared(&cells[i], &jobs[job_idx[i]]))
}

/// A finished sweep: the grid seed, the cells, and their results.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub seed: u64,
    pub results: Vec<CellResult>,
    /// Set when the sweep ran branched ([`crate::branch::execute_branched`]):
    /// records the branch time and the shared-prefix work actually done,
    /// so reports prove the prefix was simulated per group, not per cell.
    pub branch: Option<crate::branch::BranchStats>,
}

impl SweepReport {
    /// Total simulated-cell wall-clock (the single-threaded cost; the
    /// parallel sweep's elapsed time divides this by the effective
    /// parallelism).
    pub fn total_cell_wall(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// The deterministic JSON report. Contains only simulation outcomes —
    /// no wall-clock, no host data — so re-runs and different thread
    /// counts emit byte-identical documents.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("atlahs-sweep-v1".into()));
        // Small (typical, user-chosen) seeds stay plain numbers; seeds
        // beyond f64's exact-integer window fall back to hex strings so
        // the recorded grid seed always reproduces the sweep.
        doc.set(
            "seed",
            if self.seed < (1 << 53) {
                Json::Num(self.seed as f64)
            } else {
                Json::Str(format!("{:#018x}", self.seed))
            },
        );
        doc.set("cells", Json::Num(self.results.len() as f64));
        // Branched sweeps record the branch point and the shared-prefix
        // work counter; straight sweeps omit the object entirely so all
        // pre-existing goldens keep their exact bytes.
        if let Some(b) = &self.branch {
            let mut br = Json::obj();
            br.set("at_ns", Json::Num(b.branch_at as f64));
            br.set("prefix_runs", Json::Num(b.prefix_runs as f64));
            doc.set("branch", br);
        }
        let mut arr = Vec::with_capacity(self.results.len());
        for r in &self.results {
            let mut cell = Json::obj();
            cell.set("key", Json::Str(r.key.clone()));
            // Derived cell seeds span the full u64 range, beyond f64's
            // exact-integer window — emit them as hex strings.
            cell.set("seed", Json::Str(format!("{:#018x}", r.seed)));
            cell.set("makespan_ns", Json::Num(r.makespan as f64));
            cell.set("tasks", Json::Num(r.tasks as f64));
            // Peak task-arena bytes: memory regressions in the GOAL task
            // storage show up as a diff in byte-compared sweep reports.
            cell.set("task_arena_bytes", Json::Num(r.task_arena_bytes as f64));
            if r.mct.count > 0 {
                let mut mct = Json::obj();
                mct.set("mean_ns", Json::Num(r.mct.mean));
                mct.set("p99_ns", Json::Num(r.mct.p99 as f64));
                mct.set("max_ns", Json::Num(r.mct.max as f64));
                mct.set("flows", Json::Num(r.mct.count as f64));
                cell.set("mct", mct);
            }
            if let Some(net) = &r.net {
                let mut n = Json::obj();
                n.set("packets", Json::Num(net.packets_sent as f64));
                n.set("drops", Json::Num(net.drops as f64));
                n.set("trims", Json::Num(net.trims as f64));
                n.set("core_drops", Json::Num(net.core_drops as f64));
                n.set("ecn_marks", Json::Num(net.ecn_marks as f64));
                n.set("retransmissions", Json::Num(net.retransmissions as f64));
                // Injected-fault discards, only for cells whose fault
                // window actually bit: fault-free reports keep their
                // exact historical bytes.
                if net.fault_drops > 0 {
                    n.set("fault_drops", Json::Num(net.fault_drops as f64));
                }
                // Per-packet stochastic realizations, only for cells
                // running a link model: every other cell makes zero
                // draws, so all pre-existing reports keep their exact
                // historical bytes.
                if net.stochastic_draws > 0 {
                    n.set("stochastic_draws", Json::Num(net.stochastic_draws as f64));
                    n.set("stochastic_drops", Json::Num(net.stochastic_drops as f64));
                    n.set("jittered", Json::Num(net.jittered as f64));
                    n.set("rtx_timeout", Json::Num(net.rtx_timeout as f64));
                    n.set("rtx_fault_drop", Json::Num(net.rtx_fault_drop as f64));
                    n.set("payload_bytes", Json::Num(net.payload_bytes as f64));
                    n.set("retransmitted_bytes", Json::Num(net.retransmitted_bytes as f64));
                    n.set("goodput_ppm", Json::Num(net.goodput_ppm() as f64));
                    n.set("rtx_storm_per_kflow", Json::Num(net.rtx_storm_per_kflow() as f64));
                }
                cell.set("net", n);
            }
            // Realized-fault telemetry: what the distributional generator
            // actually produced for this cell. Only distributional
            // regimes set it (see `FaultSpec::distributional`), so every
            // pre-existing cell keeps its exact historical bytes.
            if let Some(tel) = &r.fault {
                let mut f = Json::obj();
                f.set("windows", Json::Num(tel.windows as f64));
                f.set("downtime_ns", Json::Num(tel.downtime_ns as f64));
                f.set("stragglers", Json::Num(tel.stragglers as f64));
                cell.set("fault", f);
            }
            if r.job_finish.len() > 1 {
                cell.set(
                    "job_finish_ns",
                    Json::Arr(r.job_finish.iter().map(|&t| Json::Num(t as f64)).collect()),
                );
            }
            arr.push(cell);
        }
        doc.set("results", Json::Arr(arr));
        doc
    }

    /// CSV: one row per cell, fixed columns, `-` for absent values.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "key,seed,makespan_ns,tasks,mct_mean_ns,mct_p99_ns,mct_max_ns,flows,\
             packets,drops,trims,core_drops\n",
        );
        for r in &self.results {
            let (mean, p99, max, flows) = if r.mct.count > 0 {
                (
                    format!("{:.1}", r.mct.mean),
                    r.mct.p99.to_string(),
                    r.mct.max.to_string(),
                    r.mct.count.to_string(),
                )
            } else {
                ("-".into(), "-".into(), "-".into(), "-".into())
            };
            let (packets, drops, trims, core) = match &r.net {
                Some(n) => (
                    n.packets_sent.to_string(),
                    n.drops.to_string(),
                    n.trims.to_string(),
                    n.core_drops.to_string(),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            out.push_str(&format!(
                "{},{},{},{},{mean},{p99},{max},{flows},{packets},{drops},{trims},{core}\n",
                crate::table::csv_field(&r.key),
                r.seed,
                r.makespan,
                r.tasks
            ));
        }
        out
    }

    /// GitHub-flavored markdown table (one row per cell).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| scenario | makespan | tasks | mean MCT | p99 MCT | drops |\n\
             |---|---:|---:|---:|---:|---:|\n",
        );
        for r in &self.results {
            let (mean, p99) = if r.mct.count > 0 {
                (crate::table::fmt_ns(r.mct.mean.round() as u64), crate::table::fmt_ns(r.mct.p99))
            } else {
                ("-".into(), "-".into())
            };
            let drops = match &r.net {
                Some(n) => (n.drops + n.trims).to_string(),
                None => "-".into(),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {mean} | {p99} | {drops} |\n",
                r.key,
                crate::table::fmt_ns(r.makespan),
                r.tasks,
            ));
        }
        out
    }

    /// Human-readable summary table for terminal output.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(["scenario", "makespan", "tasks", "mean MCT", "drops", "wall"]);
        for r in &self.results {
            let mean = if r.mct.count > 0 {
                crate::table::fmt_ns(r.mct.mean.round() as u64)
            } else {
                "-".into()
            };
            let drops = match &r.net {
                Some(n) => (n.drops + n.trims).to_string(),
                None => "-".into(),
            };
            t.row([
                r.key.clone(),
                crate::table::fmt_ns(r.makespan),
                r.tasks.to_string(),
                mean,
                drops,
                format!("{:.0} ms", r.wall.as_secs_f64() * 1e3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{BackendFamily, PlacementSpec, ScenarioGrid, TopologySpec, WorkloadSpec};
    use atlahs_htsim::CcAlgo;

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid {
            topologies: vec![
                TopologySpec::SingleSwitch { hosts: 8 },
                TopologySpec::AiFatTree { nodes: 8, oversub: 2 },
            ],
            workloads: vec![
                WorkloadSpec::Ring { ranks: 8, bytes: 64 << 10, laps: 1 },
                WorkloadSpec::Incast { ranks: 5, bytes: 32 << 10, repeat: 1 },
            ],
            ccs: vec![CcAlgo::Mprdma],
            placements: vec![PlacementSpec::Packed],
            backends: vec![BackendFamily::Htsim, BackendFamily::Lgs, BackendFamily::Ideal],
            faults: vec![],
            seed: 9,
            collect_flows: true,
        }
    }

    #[test]
    fn parallel_report_matches_serial_byte_for_byte() {
        let cells = small_grid().expand();
        assert_eq!(cells.len(), 12);
        let serial = SweepReport { seed: 9, results: execute(&cells, 1), branch: None };
        let parallel = SweepReport { seed: 9, results: execute(&cells, 4), branch: None };
        assert_eq!(serial.to_json().pretty(), parallel.to_json().pretty());
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    #[test]
    fn report_formats_are_consistent() {
        let cells = small_grid().expand();
        let report = SweepReport { seed: 9, results: execute(&cells, 2), branch: None };
        let json = report.to_json();
        assert_eq!(json.get("schema").unwrap().as_str(), Some("atlahs-sweep-v1"));
        assert_eq!(json.get("results").unwrap().as_arr().unwrap().len(), 12);
        // The JSON document parses back.
        let text = json.pretty();
        assert_eq!(Json::parse(&text).unwrap(), json);
        // CSV: header + one line per cell.
        assert_eq!(report.to_csv().lines().count(), 13);
        // Markdown: header + separator + one row per cell.
        assert_eq!(report.to_markdown().lines().count(), 14);
        assert_eq!(report.summary_table().num_rows(), 12);
    }

    /// Regression: churn fault labels embed the inline event grammar,
    /// whose `,` separators used to shear CSV rows into extra columns.
    /// Cell keys must be RFC 4180-escaped so every data row keeps the
    /// header's arity.
    #[test]
    fn csv_rows_with_churn_labelled_keys_keep_their_arity() {
        let mut grid = small_grid();
        grid.topologies = vec![TopologySpec::AiFatTree { nodes: 8, oversub: 2 }];
        grid.workloads = vec![WorkloadSpec::Ring { ranks: 8, bytes: 64 << 10, laps: 1 }];
        grid.backends = vec![BackendFamily::Htsim];
        grid.faults = vec![crate::scenario::FaultSpec::Churn {
            events: atlahs_core::faultgen::parse_churn_inline("0;0;d,5000;0;u").unwrap(),
        }];
        let cells = grid.expand();
        assert_eq!(cells.len(), 1);
        let report = SweepReport { seed: 9, results: execute(&cells, 1), branch: None };
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let columns = lines.next().unwrap().split(',').count();
        let row = lines.next().unwrap();
        // The whole key field is wrapped in quotes (the comma lives in
        // the churn label suffix).
        assert!(row.starts_with("\"ai-fattree"), "{row}");
        assert!(row.contains("churn:0;0;d,5000;0;u\","), "{row}");
        // Count commas outside quoted fields: arity must match the header.
        let mut in_quotes = false;
        let fields = 1 + row
            .chars()
            .filter(|&c| {
                if c == '"' {
                    in_quotes = !in_quotes;
                }
                c == ',' && !in_quotes
            })
            .count();
        assert_eq!(fields, columns);
    }

    #[test]
    fn htsim_cells_carry_net_stats_lgs_cells_do_not() {
        let cells = small_grid().expand();
        let results = execute(&cells, 2);
        for (cell, result) in cells.iter().zip(&results) {
            match cell.backend {
                crate::scenario::BackendSpec::Htsim { .. } => {
                    assert!(result.net.is_some(), "{}", result.key)
                }
                _ => assert!(result.net.is_none(), "{}", result.key),
            }
            assert!(result.makespan > 0, "{}", result.key);
        }
    }
}
