//! The fixed CI smoke grids (`atlahs sweep --smoke`, `atlahs sweep
//! --fault-smoke`, `atlahs cluster --smoke`).
//!
//! Each grid is a frozen, fast (< a few seconds) cell set whose JSON
//! report is goldened under `tests/goldens/` and byte-diffed by `ci.sh`:
//! any change to simulation behavior, report formatting, or seed
//! derivation shows up as a golden diff. The grids live here — not in
//! the CLI binary — so integration tests can expand and run the exact
//! grids CI runs without shelling out.

use atlahs_htsim::CcAlgo;

use crate::cluster::{ArrivalSpec, ClusterFaultSpec, ClusterGrid, QueueDiscipline};
use crate::scenario::{
    BackendFamily, FaultSpec, PlacementSpec, ScenarioGrid, TopologySpec, WorkloadSpec,
};

/// The fixed sweep smoke grid: 24 fast cells spanning both packet-level
/// CC algorithms, spraying, the message-level model, and the ideal
/// bound. Goldened as `tests/goldens/sweep_smoke.json`; the fault axis
/// is deliberately empty so these cells (and their seeds and keys) are
/// frozen at their pre-fault-axis bytes.
pub fn sweep_smoke_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec![
            TopologySpec::SingleSwitch { hosts: 8 },
            TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        ],
        workloads: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 128 << 10, laps: 1 },
            WorkloadSpec::MoeAllToAll {
                ranks: 8,
                group: 4,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 2_000,
            },
        ],
        ccs: vec![CcAlgo::Mprdma, CcAlgo::Ndp],
        placements: vec![PlacementSpec::Packed],
        backends: vec![
            BackendFamily::Htsim,
            BackendFamily::HtsimSpray,
            BackendFamily::Lgs,
            BackendFamily::Ideal,
        ],
        faults: vec![],
        seed: 1,
        collect_flows: true,
    }
}

/// The fixed fault-injection smoke grid: 45 cells exercising every
/// fault regime against the backends it applies to, goldened as
/// `tests/goldens/fault_smoke.json`.
///
/// Per workload: `none` pairs with both htsim CCs and LGS (3 cells);
/// `linkflap`, `degrade`, and the distributional `markov`, `rackfail`,
/// and `churn` regimes with the two htsim CCs (2 each); and the uniform
/// plus the Weibull-spread `straggler` with LGS (1 each) — 15 cells ×
/// 3 workloads = 45. The original 24 cells keep their exact
/// pre-distributional keys, seeds, and report bytes; the 21
/// distributional cells additionally carry realized-fault telemetry.
///
/// Every workload spans all 16 nodes (both ToRs), so packed placement
/// still pushes traffic through the core uplinks the link faults
/// target, and every workload carries per-rank compute, so the
/// straggler has calc costs to inflate: each faulted cell demonstrably
/// diverges from its `none` sibling (pinned by the
/// `fault_smoke_cells_diverge_from_their_clean_siblings` test in
/// `tests/determinism_golden.rs`).
pub fn fault_smoke_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec![TopologySpec::AiFatTree { nodes: 16, oversub: 4 }],
        workloads: vec![
            WorkloadSpec::MoeAllToAll {
                ranks: 16,
                group: 16,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 20_000,
            },
            WorkloadSpec::MoeAllToAll {
                ranks: 16,
                group: 16,
                bytes: 32 << 10,
                layers: 2,
                compute_ns: 4_000,
            },
            WorkloadSpec::PipelineLlm {
                stages: 16,
                microbatches: 2,
                bytes: 64 << 10,
                compute_ns: 2_000,
            },
        ],
        ccs: vec![CcAlgo::Mprdma, CcAlgo::Ndp],
        placements: vec![PlacementSpec::Packed],
        backends: vec![BackendFamily::Htsim, BackendFamily::Lgs],
        faults: vec![
            FaultSpec::None,
            FaultSpec::LinkFlap { links: 2, down_ns: 5_000, up_ns: 60_000 },
            FaultSpec::Degrade { links: 2, bw_pct: 25, lat_pct: 300, from_ns: 0, to_ns: 200_000 },
            FaultSpec::Straggler { prob_pct: 50, factor_pct: 300, spread_pct: 0, shape: 1 },
            // Distributional regimes (atlahs_core::faultgen): a heavy
            // Gilbert–Elliott flap, a whole-rack outage, a two-rack
            // churn replay, and Weibull-spread stragglers.
            FaultSpec::Markov { links: 4, up_ns: 20_000, down_ns: 20_000, horizon_ns: 300_000 },
            FaultSpec::RackFail { racks: 1, from_ns: 20_000, to_ns: 140_000 },
            FaultSpec::Churn { events: churn_smoke_trace() },
            FaultSpec::Straggler { prob_pct: 50, factor_pct: 200, spread_pct: 200, shape: 2 },
        ],
        seed: 1,
        collect_flows: true,
    }
}

/// The fixed per-packet stochastic smoke grid (`atlahs sweep
/// --stochastic-smoke`): the fault smoke grid's exact axes plus five
/// stochastic link models appended to the fault axis, goldened as
/// `tests/goldens/stochastic_smoke.json`.
///
/// The five appended regimes — all-tier loss, core-only loss, and one
/// jitter cell per faultgen sampler family — apply only to the two
/// htsim CCs, adding 10 cells per workload: 45 + 30 = 75 cells total.
/// Because the fault axis never perturbs cell seeds or the other axes'
/// keys, the original 45 cells keep their exact [`fault_smoke_grid`]
/// report bytes inside this golden; the 30 stochastic cells additionally
/// carry the gated `net` realization fields (`stochastic_draws` et al.).
pub fn stochastic_smoke_grid() -> ScenarioGrid {
    let mut grid = fault_smoke_grid();
    for tok in [
        // 2% everywhere: enough to force retransmissions on every
        // workload without drowning the run in timeouts.
        "loss:20000",
        // 8% on the oversubscribed core uplinks only — the edge stays
        // clean, so recovery cost tracks core traversal.
        "loss:80000:core",
        // One cell per sampler family, scales near the fabric's own
        // per-hop latency so reordering actually happens.
        "jitter:exp:2000",
        "jitter:weibull:3000:2",
        "jitter:uniform:1500",
    ] {
        grid.faults.push(FaultSpec::parse(tok).expect("frozen smoke tokens are valid"));
    }
    grid
}

/// The pinned branch time of the branch smoke grid (`atlahs sweep
/// --branch-smoke`): 60 µs into the run, inside every workload's steady
/// state, so each continuation replays a real mid-flight snapshot rather
/// than an empty or drained simulation.
pub const BRANCH_SMOKE_AT: u64 = 60_000;

/// The fixed branch-and-continue smoke grid: 24 cells over 8 shared
/// prefixes, goldened as `tests/goldens/branch_smoke.json` from a run
/// with `--branch-at` [`BRANCH_SMOKE_AT`].
///
/// Per workload (2): the four fault axis values pair with both htsim CCs
/// (8 cells), the two straggler regimes plus `none` with LGS (3), and
/// `none` with the ideal bound (1) — 12 cells across 4 prefix groups
/// (htsim-mprdma, htsim-ndp, lgs, ideal). Both workloads carry per-rank
/// compute so completions — the only points the scheduler can pause at —
/// exist well before the branch time. The fault windows open at or after
/// [`BRANCH_SMOKE_AT`] where possible, but clamping is part of the
/// contract being smoked: injection at the branch point must clip
/// already-elapsed windows instead of rewriting history.
pub fn branch_smoke_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec![TopologySpec::AiFatTree { nodes: 16, oversub: 4 }],
        workloads: vec![
            WorkloadSpec::MoeAllToAll {
                ranks: 16,
                group: 16,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 20_000,
            },
            WorkloadSpec::PipelineLlm {
                stages: 16,
                microbatches: 2,
                bytes: 64 << 10,
                compute_ns: 2_000,
            },
        ],
        ccs: vec![CcAlgo::Mprdma, CcAlgo::Ndp],
        placements: vec![PlacementSpec::Packed],
        backends: vec![BackendFamily::Htsim, BackendFamily::Lgs, BackendFamily::Ideal],
        faults: vec![
            FaultSpec::None,
            FaultSpec::LinkFlap { links: 2, down_ns: 70_000, up_ns: 140_000 },
            FaultSpec::Degrade {
                links: 2,
                bw_pct: 25,
                lat_pct: 300,
                from_ns: 60_000,
                to_ns: 250_000,
            },
            FaultSpec::Markov { links: 2, up_ns: 20_000, down_ns: 20_000, horizon_ns: 300_000 },
            FaultSpec::Straggler { prob_pct: 50, factor_pct: 300, spread_pct: 0, shape: 1 },
            FaultSpec::Straggler { prob_pct: 50, factor_pct: 200, spread_pct: 200, shape: 2 },
        ],
        seed: 1,
        collect_flows: true,
    }
}

/// The frozen churn trace the fault smoke grid replays: rack 0 bounces
/// early, rack 1 fails later while 0 is already back.
fn churn_smoke_trace() -> Vec<atlahs_core::faultgen::ChurnEvent> {
    atlahs_core::faultgen::parse_churn_inline("0;0;d,60000;0;u,100000;1;d,180000;1;u")
        .expect("the frozen smoke trace is valid")
}

/// The fixed cluster smoke grid: 24 fast cells crossing both arrival
/// families, both queue disciplines, and packed/random placement over
/// the packet-level (MPRDMA), message-level, and ideal backends on a
/// small oversubscribed fabric. Goldened as
/// `tests/goldens/cluster_smoke.json`; fault axis empty for the same
/// frozen-bytes reason as [`sweep_smoke_grid`].
pub fn cluster_smoke_grid() -> ClusterGrid {
    ClusterGrid {
        // 16 nodes across two ToRs behind a 4:1 core: random placement
        // scatters rings across the thin uplinks, so the placement axis
        // (and the htsim slowdown path) actually moves the goldens.
        topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        catalog: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 256 << 10, laps: 1 },
            WorkloadSpec::Incast { ranks: 5, bytes: 128 << 10, repeat: 1 },
        ],
        arrivals: vec![
            // Offered load high enough that the queue and the slowdown
            // paths are actually exercised (mean gap << job duration).
            ArrivalSpec::Poisson { jobs: 8, mean_gap_ns: 40_000 },
            ArrivalSpec::Trace { times_ns: vec![0, 0, 0, 30_000, 30_000, 400_000] },
        ],
        queues: vec![QueueDiscipline::Fifo, QueueDiscipline::SmallestFirst],
        placements: vec![PlacementSpec::Packed, PlacementSpec::Random],
        ccs: vec![CcAlgo::Mprdma],
        backends: vec![BackendFamily::Htsim, BackendFamily::Lgs, BackendFamily::Ideal],
        faults: vec![],
        seed: 1,
    }
}

/// The fixed cluster fault smoke grid (`atlahs cluster --fault-smoke`):
/// 3 message-level cells over one saturated arrival stream — fault-free,
/// Bernoulli `jobfail`, and the distributional `mtbf` process — goldened
/// as `tests/goldens/cluster_fault_smoke.json`. Kept separate from
/// [`cluster_smoke_grid`] so that golden's bytes stay frozen.
pub fn cluster_fault_smoke_grid() -> ClusterGrid {
    ClusterGrid {
        topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        catalog: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 256 << 10, laps: 1 },
            WorkloadSpec::Incast { ranks: 5, bytes: 128 << 10, repeat: 1 },
        ],
        arrivals: vec![ArrivalSpec::Poisson { jobs: 8, mean_gap_ns: 40_000 }],
        queues: vec![QueueDiscipline::Fifo],
        placements: vec![PlacementSpec::Packed],
        ccs: vec![],
        backends: vec![BackendFamily::Lgs],
        faults: vec![
            ClusterFaultSpec::None,
            ClusterFaultSpec::JobFail { pct: 50, at_pct: 50, retries: 2 },
            // Job runs are tens of µs, so a 20 µs MTBF fires on a
            // realistic fraction of attempts.
            ClusterFaultSpec::Mtbf { mtbf_ns: 20_000, retries: 3 },
        ],
        seed: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grids_have_their_frozen_cell_counts() {
        assert_eq!(sweep_smoke_grid().expand().len(), 24);
        assert_eq!(cluster_smoke_grid().expand_counted().0.len(), 24);
        assert_eq!(cluster_fault_smoke_grid().expand_counted().0.len(), 3);
        let cells = fault_smoke_grid().expand();
        assert_eq!(cells.len(), 45);
        // 15 cells per workload: 3 fault-free, 10 packet-level faulted
        // (5 regimes × 2 CCs), 2 message-level stragglers.
        let faulted = cells.iter().filter(|c| c.fault != FaultSpec::None).count();
        assert_eq!(faulted, 36);
        let distributional = cells.iter().filter(|c| c.fault.distributional()).count();
        assert_eq!(distributional, 21, "7 distributional cells per workload");
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 45, "fault smoke keys are unique");
        // The cell key derivation counts '/' separators; no fault label
        // may smuggle one in.
        assert!(keys.iter().all(|k| k.matches('/').count() <= 4), "{keys:?}");
    }

    #[test]
    fn stochastic_smoke_grid_extends_the_fault_grid_without_moving_it() {
        let base = fault_smoke_grid().expand();
        let cells = stochastic_smoke_grid().expand();
        assert_eq!(cells.len(), 75, "45 fault cells + 5 models x 2 CCs x 3 workloads");
        let stochastic: Vec<_> =
            cells.iter().filter(|c| matches!(c.fault, FaultSpec::Stochastic(_))).collect();
        assert_eq!(stochastic.len(), 30);
        // Stochastic regimes are packet-level: htsim cells only.
        assert!(stochastic
            .iter()
            .all(|c| matches!(c.backend, crate::scenario::BackendSpec::Htsim { .. })));
        // Every original fault-smoke cell survives with its exact key
        // and seed — the appended axis values cannot move the frozen 45.
        for b in &base {
            assert!(
                cells.iter().any(|c| c.key() == b.key() && c.seed == b.seed),
                "fault smoke cell {} lost or re-seeded",
                b.key()
            );
        }
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 75, "stochastic smoke keys are unique");
    }

    #[test]
    fn branch_smoke_grid_has_its_frozen_shape() {
        let cells = branch_smoke_grid().expand();
        assert_eq!(cells.len(), 24, "12 cells per workload");
        // 4 shared prefixes per workload: htsim×2 CCs, lgs, ideal.
        let mut prefixes: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{}/{}/{}/{}",
                    c.topology.label(),
                    c.workload.label(),
                    c.placement.label(),
                    c.backend.label()
                )
            })
            .collect();
        prefixes.sort();
        prefixes.dedup();
        assert_eq!(prefixes.len(), 8);
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 24, "branch smoke keys are unique");
    }

    #[test]
    fn fault_smoke_seeds_ignore_the_fault_axis() {
        use crate::scenario::cell_seed;
        for c in fault_smoke_grid().expand() {
            assert_eq!(c.seed, cell_seed(1, &c.workload.label()));
        }
    }
}
