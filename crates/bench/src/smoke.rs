//! The fixed CI smoke grids (`atlahs sweep --smoke`, `atlahs sweep
//! --fault-smoke`, `atlahs cluster --smoke`).
//!
//! Each grid is a frozen, fast (< a few seconds) cell set whose JSON
//! report is goldened under `tests/goldens/` and byte-diffed by `ci.sh`:
//! any change to simulation behavior, report formatting, or seed
//! derivation shows up as a golden diff. The grids live here — not in
//! the CLI binary — so integration tests can expand and run the exact
//! grids CI runs without shelling out.

use atlahs_htsim::CcAlgo;

use crate::cluster::{ArrivalSpec, ClusterGrid, QueueDiscipline};
use crate::scenario::{
    BackendFamily, FaultSpec, PlacementSpec, ScenarioGrid, TopologySpec, WorkloadSpec,
};

/// The fixed sweep smoke grid: 24 fast cells spanning both packet-level
/// CC algorithms, spraying, the message-level model, and the ideal
/// bound. Goldened as `tests/goldens/sweep_smoke.json`; the fault axis
/// is deliberately empty so these cells (and their seeds and keys) are
/// frozen at their pre-fault-axis bytes.
pub fn sweep_smoke_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec![
            TopologySpec::SingleSwitch { hosts: 8 },
            TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        ],
        workloads: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 128 << 10, laps: 1 },
            WorkloadSpec::MoeAllToAll {
                ranks: 8,
                group: 4,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 2_000,
            },
        ],
        ccs: vec![CcAlgo::Mprdma, CcAlgo::Ndp],
        placements: vec![PlacementSpec::Packed],
        backends: vec![
            BackendFamily::Htsim,
            BackendFamily::HtsimSpray,
            BackendFamily::Lgs,
            BackendFamily::Ideal,
        ],
        faults: vec![],
        seed: 1,
        collect_flows: true,
    }
}

/// The fixed fault-injection smoke grid: 24 cells exercising every
/// fault regime against the backends it applies to, goldened as
/// `tests/goldens/fault_smoke.json`.
///
/// Per workload: `none` pairs with both htsim CCs and LGS (3 cells),
/// `linkflap` and `degrade` with the two htsim CCs (2 each), and
/// `straggler` with LGS (1) — 8 cells × 3 workloads = 24.
///
/// Every workload spans all 16 nodes (both ToRs), so packed placement
/// still pushes traffic through the core uplinks the link faults
/// target, and every workload carries per-rank compute, so the
/// straggler has calc costs to inflate: each faulted cell demonstrably
/// diverges from its `none` sibling (pinned by the
/// `fault_smoke_cells_diverge_from_their_clean_siblings` test in
/// `tests/determinism_golden.rs`).
pub fn fault_smoke_grid() -> ScenarioGrid {
    ScenarioGrid {
        topologies: vec![TopologySpec::AiFatTree { nodes: 16, oversub: 4 }],
        workloads: vec![
            WorkloadSpec::MoeAllToAll {
                ranks: 16,
                group: 16,
                bytes: 64 << 10,
                layers: 1,
                compute_ns: 20_000,
            },
            WorkloadSpec::MoeAllToAll {
                ranks: 16,
                group: 16,
                bytes: 32 << 10,
                layers: 2,
                compute_ns: 4_000,
            },
            WorkloadSpec::PipelineLlm {
                stages: 16,
                microbatches: 2,
                bytes: 64 << 10,
                compute_ns: 2_000,
            },
        ],
        ccs: vec![CcAlgo::Mprdma, CcAlgo::Ndp],
        placements: vec![PlacementSpec::Packed],
        backends: vec![BackendFamily::Htsim, BackendFamily::Lgs],
        faults: vec![
            FaultSpec::None,
            FaultSpec::LinkFlap { links: 2, down_ns: 5_000, up_ns: 60_000 },
            FaultSpec::Degrade { links: 2, bw_pct: 25, lat_pct: 300, from_ns: 0, to_ns: 200_000 },
            FaultSpec::Straggler { prob_pct: 50, factor_pct: 300 },
        ],
        seed: 1,
        collect_flows: true,
    }
}

/// The fixed cluster smoke grid: 24 fast cells crossing both arrival
/// families, both queue disciplines, and packed/random placement over
/// the packet-level (MPRDMA), message-level, and ideal backends on a
/// small oversubscribed fabric. Goldened as
/// `tests/goldens/cluster_smoke.json`; fault axis empty for the same
/// frozen-bytes reason as [`sweep_smoke_grid`].
pub fn cluster_smoke_grid() -> ClusterGrid {
    ClusterGrid {
        // 16 nodes across two ToRs behind a 4:1 core: random placement
        // scatters rings across the thin uplinks, so the placement axis
        // (and the htsim slowdown path) actually moves the goldens.
        topology: TopologySpec::AiFatTree { nodes: 16, oversub: 4 },
        catalog: vec![
            WorkloadSpec::Ring { ranks: 8, bytes: 256 << 10, laps: 1 },
            WorkloadSpec::Incast { ranks: 5, bytes: 128 << 10, repeat: 1 },
        ],
        arrivals: vec![
            // Offered load high enough that the queue and the slowdown
            // paths are actually exercised (mean gap << job duration).
            ArrivalSpec::Poisson { jobs: 8, mean_gap_ns: 40_000 },
            ArrivalSpec::Trace { times_ns: vec![0, 0, 0, 30_000, 30_000, 400_000] },
        ],
        queues: vec![QueueDiscipline::Fifo, QueueDiscipline::SmallestFirst],
        placements: vec![PlacementSpec::Packed, PlacementSpec::Random],
        ccs: vec![CcAlgo::Mprdma],
        backends: vec![BackendFamily::Htsim, BackendFamily::Lgs, BackendFamily::Ideal],
        faults: vec![],
        seed: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grids_have_their_frozen_cell_counts() {
        assert_eq!(sweep_smoke_grid().expand().len(), 24);
        assert_eq!(cluster_smoke_grid().expand_counted().0.len(), 24);
        let cells = fault_smoke_grid().expand();
        assert_eq!(cells.len(), 24);
        // 8 cells per workload: 3 fault-free, 4 packet-level faulted
        // (2 regimes × 2 CCs), 1 message-level straggler.
        let faulted = cells.iter().filter(|c| c.fault != FaultSpec::None).count();
        assert_eq!(faulted, 15);
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 24, "fault smoke keys are unique");
    }

    #[test]
    fn fault_smoke_seeds_ignore_the_fault_axis() {
        use crate::scenario::cell_seed;
        for c in fault_smoke_grid().expand() {
            assert_eq!(c.seed, cell_seed(1, &c.workload.label()));
        }
    }
}
