//! # atlahs-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index), plus shared
//! plumbing used by all of them:
//!
//! * [`args`] — a tiny `--flag value` parser (no CLI dependency),
//! * [`json`] — a minimal JSON codec for `BENCH_*.json` artifacts,
//! * [`table`] — aligned text tables matching the paper's row format,
//! * [`workloads`] — the AI / HPC / storage workload suites at
//!   configurable scale, and the topologies the paper's experiments use,
//! * [`runner`] — run one GOAL schedule across backends, with error and
//!   wall-clock bookkeeping,
//! * [`scenario`] — declarative scenario grids (topology × workload × CC ×
//!   placement × backend) expanded into deterministic cells,
//! * [`sweep`] — the parallel sweep executor and JSON/CSV/markdown report
//!   writers behind the unified `atlahs` CLI (`atlahs sweep`,
//!   docs/SCENARIOS.md),
//! * [`branch`] — the branch-and-continue executor (`atlahs sweep
//!   --branch-at`): simulate each shared prefix once, snapshot via the
//!   backend `Snapshot` contract, fan out into per-cell what-if
//!   continuations.
//!
//! Every binary accepts `--seed <u64>` and `--scale <f64>` (workload
//! scale; the default keeps packet-level runs tractable on a laptop) and
//! prints the same rows/series as the corresponding figure. Absolute
//! values differ from the paper (the substrate is synthetic; DESIGN.md
//! §1), but the qualitative shape — who wins, by what factor, where the
//! crossovers sit — is the reproduction target recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod args;
pub mod branch;
pub mod cluster;
pub mod json;
pub mod runner;
pub mod scenario;
pub mod smoke;
pub mod sweep;
pub mod table;
pub mod workloads;
