//! A minimal `--flag [value]` argument parser for the harness binaries.
//!
//! Not a CLI framework: every harness takes a handful of numeric knobs and
//! boolean switches, so a 100-line parser beats a dependency.

use std::collections::HashMap;

/// Parsed arguments: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
    program: String,
}

impl Args {
    /// Parse the process arguments. A token starting with `--` is a key;
    /// if the next token does not start with `--`, it is that key's value,
    /// otherwise the key is a boolean switch.
    pub fn parse() -> Args {
        Self::from_tokens(std::env::args())
    }

    /// Parse an explicit token stream (first token = program name).
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut it = iter.into_iter();
        let program = it.next().unwrap_or_default();
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let tokens: Vec<String> = it.collect();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(key.to_string());
                    i += 1;
                }
            } else {
                // Bare positional tokens are ignored by the harnesses.
                i += 1;
            }
        }
        Args { values, switches, program }
    }

    pub fn program(&self) -> &str {
        &self.program
    }

    /// A `--switch` with no value.
    pub fn flag(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.values.contains_key(name)
    }

    /// A typed `--key value`; falls back to `default` when absent,
    /// panics with a usage message when present but malformed.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.values.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| panic!("--{name}: cannot parse {v:?}")),
        }
    }

    /// A string `--key value`.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values.get(name).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Common knob: RNG seed.
    pub fn seed(&self) -> u64 {
        self.get("seed", 1u64)
    }

    /// Common knob: workload scale factor in (0, 1].
    pub fn scale(&self, default: f64) -> f64 {
        let s: f64 = self.get("scale", default);
        assert!(s > 0.0 && s <= 1.0, "--scale must be in (0, 1]");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_tokens(
            std::iter::once("prog".to_string()).chain(s.split_whitespace().map(String::from)),
        )
    }

    #[test]
    fn values_and_switches() {
        let a = args("--seed 42 --timing --scale 0.5");
        assert_eq!(a.get("seed", 0u64), 42);
        assert!(a.flag("timing"));
        assert!(!a.flag("quick"));
        assert!((a.scale(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.seed(), 1);
        assert_eq!(a.get("ops", 500usize), 500);
        assert_eq!(a.get_str("mode", "fast"), "fast");
    }

    #[test]
    fn flag_with_value_counts_as_flag() {
        let a = args("--timing 1");
        assert!(a.flag("timing"));
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn malformed_value_panics() {
        args("--seed banana").get("seed", 0u64);
    }

    #[test]
    #[should_panic(expected = "--scale must be in")]
    fn scale_out_of_range_panics() {
        args("--scale 3.0").scale(1.0);
    }

    #[test]
    fn positional_tokens_ignored() {
        let a = args("stray --seed 9 more");
        assert_eq!(a.seed(), 9);
    }
}
