//! Criterion microbenches of the message-level (LGS) hot paths: the
//! matcher under eager floods, the rendezvous handshake machinery, and
//! the scheduler's serial dispatch on deep dependency chains.
//!
//! These complement `benches/engine.rs` (packet-engine hot paths) by
//! pinning the pieces the message-level perf work targets: the pooled
//! fast-hash [`atlahs_core::Matcher`], the shared timer-wheel event core,
//! and the SoA task-arena scan in the core scheduler. Wall-clock numbers
//! for the tracked trajectory live in `BENCH_lgs.json` (emitted by the
//! `bench_lgs` binary); these benches are the fine-grained view.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use atlahs_core::Simulation;
use atlahs_goal::GoalSchedule;
use atlahs_lgs::{LgsBackend, LogGopsParams};
use atlahs_schedgen::synthetic;

fn replay(goal: &GoalSchedule, params: LogGopsParams) -> atlahs_core::SimReport {
    let mut be = LgsBackend::new(params);
    Simulation::new(goal).run(&mut be).expect("scenario completes")
}

/// Eager flood: MoE all-to-alls with one matcher key per (pair, layer,
/// phase) — matcher insert/match churn dominates, every message eager.
fn bench_eager_flood(c: &mut Criterion) {
    let goal = synthetic::moe_alltoall(32, 8, 32 << 10, 4, 2_000).expect("moe builds");
    let mut g = c.benchmark_group("lgs_eager_flood");
    g.sample_size(10);
    g.bench_function("moe_alltoall_32r", |b| {
        b.iter(|| black_box(replay(&goal, LogGopsParams::ai_alps())))
    });
    g.finish();
}

/// Rendezvous handshake storm: every message above `S` pays the full
/// RTS/CTS round trip — five backend events per message instead of two.
fn bench_rendezvous_storm(c: &mut Criterion) {
    let goal = synthetic::permutation(32, 1 << 20, 1, 24).expect("permutation builds");
    let mut g = c.benchmark_group("lgs_rendezvous_storm");
    g.sample_size(10);
    g.bench_function("permutation_32r_1mib", |b| {
        b.iter(|| black_box(replay(&goal, LogGopsParams::hpc_testbed())))
    });
    g.finish();
}

/// Deep dependency chain: a two-rank ping-pong with every round chained
/// on the previous one — the scheduler's serial dispatch path, a single
/// event in flight at any time. Same generator as `bench_lgs`'s
/// `deep_chain` scenario, at criterion-friendly size.
fn bench_deep_chain(c: &mut Criterion) {
    let goal = synthetic::pingpong_chain(10_000, 4 << 10).expect("chain builds");
    let mut g = c.benchmark_group("lgs_deep_chain");
    g.sample_size(10);
    g.bench_function("pingpong_10k_rounds", |b| {
        b.iter(|| black_box(replay(&goal, LogGopsParams::ai_alps())))
    });
    g.finish();
}

criterion_group!(benches, bench_eager_flood, bench_rendezvous_storm, bench_deep_chain);
criterion_main!(benches);
