//! Criterion microbenches of the packet-engine hot paths: the event core
//! in isolation, and end-to-end replay across the three backend tiers
//! (ideal / LGS / htsim) at small and large scale.
//!
//! These complement `benches/backends.rs` (whole-toolchain replay cost)
//! by pinning the pieces the perf work targets: `EventQueue` push/pop
//! throughput and the packet engine's events-per-second. Wall-clock
//! numbers for the tracked trajectory live in `BENCH_engine.json`
//! (emitted by the `bench_engine` binary); these benches are the
//! fine-grained view.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use atlahs_core::backends::IdealBackend;
use atlahs_core::Simulation;
use atlahs_htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs_htsim::topology::TopologyConfig;
use atlahs_htsim::{CcAlgo, EventQueue};
use atlahs_lgs::{LgsBackend, LogGopsParams};

/// The event queue alone: a packet-engine-shaped mix of delays (same
/// tick, serialization-scale, RTT-scale, timer-scale) pushed and popped
/// through the wheel.
fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_mixed_4k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            let mut now = 0u64;
            let mut x = 0x9E37_79B9u64;
            for i in 0..4096u32 {
                // Cheap xorshift over the delay profile tiers.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let delay = match x % 10 {
                    0 => 0,
                    1..=5 => x % 700,              // serialization + propagation
                    6..=8 => x % 20_000,           // RTT / host overhead scale
                    _ => 100_000 + x % 10_000_000, // timers, compute
                };
                q.push(now + delay, i);
                if i % 2 == 1 {
                    if let Some((t, ev)) = q.pop() {
                        now = t;
                        black_box(ev);
                    }
                }
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        })
    });
    g.finish();
}

/// Engine events per second on a loss-free single switch: the purest
/// measure of per-event cost (no drops, no timers firing).
fn bench_engine_events(c: &mut Criterion) {
    let goal = atlahs_bench::workloads::cross_tor_permutation(16, 2 << 20);
    let mut g = c.benchmark_group("engine_event_core");
    g.sample_size(10);
    g.bench_function("single_switch_permutation", |b| {
        b.iter(|| {
            let mut be = HtsimBackend::new(HtsimConfig::new(
                TopologyConfig::SingleSwitch {
                    hosts: 16,
                    link: atlahs_htsim::LinkParams::default(),
                },
                CcAlgo::Mprdma,
            ));
            black_box(Simulation::new(&goal).run(&mut be).unwrap())
        })
    });
    g.bench_function("spray_fat_tree_permutation", |b| {
        b.iter(|| {
            let mut cfg = HtsimConfig::new(TopologyConfig::fat_tree(16, 4), CcAlgo::Mprdma);
            cfg.spray = true;
            let mut be = HtsimBackend::new(cfg);
            black_box(Simulation::new(&goal).run(&mut be).unwrap())
        })
    });
    g.finish();
}

/// The three backend tiers at two scales: the §5.2 cost ladder the
/// toolchain's "choose your fidelity" story rests on.
fn bench_backend_tiers(c: &mut Criterion) {
    for (scale, hosts, bytes) in [("small_16r", 16u32, 1u64 << 20), ("large_64r", 64, 1 << 20)] {
        let goal = atlahs_bench::workloads::cross_tor_permutation(hosts, bytes);
        let mut g = c.benchmark_group(format!("replay_permutation_{scale}"));
        g.sample_size(10);
        g.bench_function("ideal", |b| {
            b.iter(|| {
                let mut be = IdealBackend::new(12.5, 500);
                black_box(Simulation::new(&goal).run(&mut be).unwrap())
            })
        });
        g.bench_function("lgs", |b| {
            b.iter(|| {
                let mut be = LgsBackend::new(LogGopsParams::hpc_testbed());
                black_box(Simulation::new(&goal).run(&mut be).unwrap())
            })
        });
        g.bench_function("htsim", |b| {
            b.iter(|| {
                let mut be = HtsimBackend::new(HtsimConfig::new(
                    TopologyConfig::fat_tree(hosts as usize, 8.min(hosts as usize)),
                    CcAlgo::Mprdma,
                ));
                black_box(Simulation::new(&goal).run(&mut be).unwrap())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_event_queue, bench_engine_events, bench_backend_tiers);
criterion_main!(benches);
