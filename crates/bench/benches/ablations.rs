//! Ablation benches for the design choices DESIGN.md calls out: the
//! eager/rendezvous threshold in LGS, the ECN marking window in htsim,
//! NCCL protocol choice, and ring chunk size. Criterion measures the
//! *simulator's* wall-clock; the printed simulated makespans (stderr, one
//! line per configuration, first iteration only) document the modelled
//! effect of each knob.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

use atlahs_collectives::nccl::{self, NcclConfig, NcclProtocol};
use atlahs_collectives::{mpi, CollParams};
use atlahs_core::Simulation;
use atlahs_goal::{GoalBuilder, GoalSchedule};
use atlahs_htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs_htsim::topology::TopologyConfig;
use atlahs_htsim::CcAlgo;
use atlahs_lgs::{LgsBackend, LogGopsParams};

fn exchange_goal(n: usize, bytes: u64) -> GoalSchedule {
    let mut b = GoalBuilder::new(n);
    for r in 0..n as u32 {
        let dst = (r + 1) % n as u32;
        let src = (r + n as u32 - 1) % n as u32;
        b.send(r, dst, bytes, 0);
        b.recv(r, src, bytes, 0);
    }
    b.build().unwrap()
}

/// LGS eager/rendezvous threshold sweep: the S knob flips 256 KiB
/// messages between buffered and handshake semantics.
fn bench_rendezvous_threshold(c: &mut Criterion) {
    let goal = exchange_goal(16, 256 << 10);
    let mut g = c.benchmark_group("lgs_rendezvous_threshold");
    static ONCE: Once = Once::new();
    for s in [0u64, 64 << 10, 1 << 20] {
        let params = LogGopsParams { s, ..LogGopsParams::hpc_testbed() };
        ONCE.call_once(|| {});
        let mut be = LgsBackend::new(params);
        let rep = Simulation::new(&goal).run(&mut be).unwrap();
        eprintln!("# S={s}: simulated {} ns", rep.makespan);
        g.bench_function(format!("S_{s}"), |b| {
            b.iter(|| {
                let mut be = LgsBackend::new(params);
                black_box(Simulation::new(&goal).run(&mut be).unwrap())
            })
        });
    }
    g.finish();
}

/// ECN K_min/K_max sweep under incast.
fn bench_ecn_window(c: &mut Criterion) {
    let mut b = GoalBuilder::new(9);
    for s in 1..=8u32 {
        b.send(s, 0, 512 << 10, s);
        b.recv(0, s, 512 << 10, s);
    }
    let goal = b.build().unwrap();
    let mut g = c.benchmark_group("htsim_ecn_window");
    g.sample_size(10);
    for (kmin, kmax, label) in [(0.05, 0.2, "early"), (0.2, 0.8, "paper"), (0.9, 0.99, "late")] {
        let mut cfg = HtsimConfig::new(
            TopologyConfig::SingleSwitch { hosts: 9, link: Default::default() },
            CcAlgo::Mprdma,
        );
        cfg.kmin_frac = kmin;
        cfg.kmax_frac = kmax;
        let mut be = HtsimBackend::new(cfg.clone());
        let rep = Simulation::new(&goal).run(&mut be).unwrap();
        eprintln!(
            "# ECN {label}: simulated {} ns, marks {}, drops {}",
            rep.makespan,
            be.net_stats().ecn_marks,
            be.net_stats().drops
        );
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut be = HtsimBackend::new(cfg.clone());
                black_box(Simulation::new(&goal).run(&mut be).unwrap())
            })
        });
    }
    g.finish();
}

/// NCCL Simple vs LL protocol: LL doubles wire bytes (flag words) but
/// skips the chunk handshake; the schedule shapes differ materially.
fn bench_nccl_protocol(c: &mut Criterion) {
    let ranks: Vec<u32> = (0..8).collect();
    let mut g = c.benchmark_group("nccl_protocol");
    for (proto, label) in [(NcclProtocol::Simple, "simple"), (NcclProtocol::Ll, "ll")] {
        let cfg = NcclConfig { protocol: proto, ..Default::default() };
        let mut b = GoalBuilder::new(8);
        nccl::allreduce(&mut b, &ranks, 4 << 20, 0, &cfg);
        let goal = b.build().unwrap();
        let mut be = LgsBackend::new(LogGopsParams::ai_alps());
        let rep = Simulation::new(&goal).run(&mut be).unwrap();
        eprintln!("# proto {label}: {} tasks, simulated {} ns", goal.total_tasks(), rep.makespan);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut be = LgsBackend::new(LogGopsParams::ai_alps());
                black_box(Simulation::new(&goal).run(&mut be).unwrap())
            })
        });
    }
    g.finish();
}

/// Ring chunk-size sweep: smaller chunks pipeline better but multiply
/// schedule size and simulation cost.
fn bench_chunk_size(c: &mut Criterion) {
    let ranks: Vec<u32> = (0..8).collect();
    let mut g = c.benchmark_group("nccl_chunk_size");
    for chunk in [64u64 << 10, 512 << 10, 4 << 20] {
        let cfg = NcclConfig { chunk_bytes: chunk, ..Default::default() };
        let mut b = GoalBuilder::new(8);
        nccl::allreduce(&mut b, &ranks, 8 << 20, 0, &cfg);
        let goal = b.build().unwrap();
        let mut be = LgsBackend::new(LogGopsParams::ai_alps());
        let rep = Simulation::new(&goal).run(&mut be).unwrap();
        eprintln!("# chunk {chunk}: {} tasks, simulated {} ns", goal.total_tasks(), rep.makespan);
        g.bench_function(format!("{}KiB", chunk >> 10), |b| {
            b.iter(|| {
                let mut be = LgsBackend::new(LogGopsParams::ai_alps());
                black_box(Simulation::new(&goal).run(&mut be).unwrap())
            })
        });
    }
    g.finish();
}

/// Collective algorithm face-off at two payload regimes (the Auto cutoff
/// ablation for Schedgen).
fn bench_allreduce_algorithms(c: &mut Criterion) {
    let ranks: Vec<u32> = (0..16).collect();
    let p = CollParams::default();
    let mut g = c.benchmark_group("allreduce_algorithms");
    for (bytes, regime) in [(1u64 << 10, "1KiB"), (4 << 20, "4MiB")] {
        for (name, f) in [
            (
                "ring",
                mpi::allreduce_ring as fn(&mut GoalBuilder, &[u32], u64, u32, &CollParams) -> _,
            ),
            ("recdoub", mpi::allreduce_recdoub),
            ("rabenseifner", mpi::allreduce_rabenseifner),
        ] {
            let mut b = GoalBuilder::new(16);
            f(&mut b, &ranks, bytes, 0, &p);
            let goal = b.build().unwrap();
            let mut be = LgsBackend::new(LogGopsParams::hpc_testbed());
            let rep = Simulation::new(&goal).run(&mut be).unwrap();
            eprintln!("# {regime} {name}: simulated {} ns", rep.makespan);
            g.bench_function(format!("{regime}_{name}"), |b| {
                b.iter(|| {
                    let mut be = LgsBackend::new(LogGopsParams::hpc_testbed());
                    black_box(Simulation::new(&goal).run(&mut be).unwrap())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rendezvous_threshold,
    bench_ecn_window,
    bench_nccl_protocol,
    bench_chunk_size,
    bench_allreduce_algorithms
);
criterion_main!(benches);
