//! Criterion microbenches of the simulation engines themselves: how fast
//! each backend replays a fixed GOAL schedule, and the GOAL codec
//! throughput. These quantify the §5.2 runtime story (message-level ≫
//! packet-level ≫ chunk-replay baseline) on neutral ground.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use atlahs_baselines::{chakra, AstraSim, AstraSystemConfig};
use atlahs_collectives::{mpi, CollParams};
use atlahs_core::backends::IdealBackend;
use atlahs_core::Simulation;
use atlahs_goal::{binary, GoalBuilder, GoalSchedule};
use atlahs_htsim::engine::{HtsimBackend, HtsimConfig};
use atlahs_htsim::topology::TopologyConfig;
use atlahs_htsim::CcAlgo;
use atlahs_lgs::{LgsBackend, LogGopsParams};
use atlahs_testbed::{TestbedBackend, TestbedConfig};
use atlahs_tracers::nccl::{presets, trace_llm};

/// A fixed 16-rank ring-allreduce schedule (1 MiB payload).
fn ring_allreduce() -> GoalSchedule {
    let ranks: Vec<u32> = (0..16).collect();
    let mut b = GoalBuilder::new(16);
    mpi::allreduce_ring(&mut b, &ranks, 1 << 20, 0, &CollParams::default());
    b.build().unwrap()
}

fn bench_backends(c: &mut Criterion) {
    let goal = ring_allreduce();
    let mut g = c.benchmark_group("replay_ring_allreduce_16r_1MiB");

    g.bench_function("ideal", |b| {
        b.iter(|| {
            let mut be = IdealBackend::new(12.5, 500);
            black_box(Simulation::new(&goal).run(&mut be).unwrap())
        })
    });
    g.bench_function("lgs", |b| {
        b.iter(|| {
            let mut be = LgsBackend::new(LogGopsParams::hpc_testbed());
            black_box(Simulation::new(&goal).run(&mut be).unwrap())
        })
    });
    g.bench_function("testbed", |b| {
        b.iter(|| {
            let mut be = TestbedBackend::new(TestbedConfig::new(TopologyConfig::fat_tree(16, 4)));
            black_box(Simulation::new(&goal).run(&mut be).unwrap())
        })
    });
    g.bench_function("htsim", |b| {
        b.iter(|| {
            let mut be = HtsimBackend::new(HtsimConfig::new(
                TopologyConfig::fat_tree(16, 4),
                CcAlgo::Mprdma,
            ));
            black_box(Simulation::new(&goal).run(&mut be).unwrap())
        })
    });
    g.finish();
}

fn bench_toolchain_vs_baseline(c: &mut Criterion) {
    // §5.2 in miniature: same traced workload, ATLAHS LGS replay vs the
    // chunk-granular AstraSim-class baseline.
    let mut cfg = presets::llama7b_dp16(0.002);
    cfg.iterations = 1;
    cfg.batch = 16;
    let report = trace_llm(&cfg);
    let goal = atlahs_schedgen::nccl2goal::convert(
        &report,
        &atlahs_schedgen::nccl2goal::NcclToGoalConfig::default(),
    )
    .unwrap();
    let et = chakra::from_nsys(&report);

    let mut g = c.benchmark_group("llama7b_dp16_replay");
    g.sample_size(10);
    g.bench_function("atlahs_lgs", |b| {
        b.iter(|| {
            let mut be = LgsBackend::new(LogGopsParams::ai_alps());
            black_box(Simulation::new(&goal).run(&mut be).unwrap())
        })
    });
    g.bench_function("astrasim_baseline", |b| {
        b.iter(|| black_box(AstraSim::new(AstraSystemConfig::default()).run(&et).unwrap()))
    });
    g.finish();
}

fn bench_goal_codec(c: &mut Criterion) {
    let goal = ring_allreduce();
    let bytes = binary::encode(&goal);
    let mut g = c.benchmark_group("goal_codec");
    g.bench_function("encode", |b| b.iter(|| black_box(binary::encode(&goal))));
    g.bench_function("decode", |b| {
        b.iter_batched(
            || bytes.clone(),
            |by| black_box(binary::decode(&by).unwrap()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_nccl_lowering(c: &mut Criterion) {
    // Trace→GOAL conversion cost (the toolchain's own overhead).
    let mut cfg = presets::llama7b_dp16(0.002);
    cfg.iterations = 1;
    cfg.batch = 16;
    let report = trace_llm(&cfg);
    c.bench_function("nccl2goal_llama7b_dp16", |b| {
        b.iter(|| {
            black_box(
                atlahs_schedgen::nccl2goal::convert(
                    &report,
                    &atlahs_schedgen::nccl2goal::NcclToGoalConfig::default(),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_backends,
    bench_toolchain_vs_baseline,
    bench_goal_codec,
    bench_nccl_lowering
);
criterion_main!(benches);
