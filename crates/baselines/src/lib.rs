//! # atlahs-baselines
//!
//! The AstraSim/Chakra-class baseline the paper compares ATLAHS against
//! (§5.2, Figs. 8 and 9).
//!
//! Two pieces:
//!
//! * [`chakra`] — a Chakra-ET-style execution trace schema (per-rank node
//!   graphs with verbose Kineto-grade attributes) plus the converter that
//!   produces it from the same nsys-style reports ATLAHS consumes, so both
//!   toolchains replay *identical execution patterns*;
//! * [`sim`] — an ASTRA-sim-2.0-class replay engine: the
//!   congestion-unaware analytical network backend, simulating collectives
//!   at chunk granularity with process-group barrier semantics, and
//!   reproducing the DP-only real-trace restriction (`src and dest have
//!   the same address` on pipeline-parallel traces).
//!
//! The baseline is deliberately *not* an ATLAHS `Backend`:
//! AstraSim owns its own trace format and replay loop, which is exactly
//! the architectural difference (GOAL as a universal interchange vs a
//! domain-specific schema) the paper's comparison is about.
//!
//! ```
//! use atlahs_baselines::{chakra, sim};
//! use atlahs_tracers::nccl::{presets, trace_llm};
//!
//! let mut cfg = presets::llama7b_dp16(0.01);
//! cfg.iterations = 1;
//! let report = trace_llm(&cfg);
//! let et = chakra::from_nsys(&report);               // Chakra conversion
//! let astra = sim::AstraSim::new(sim::AstraSystemConfig::default());
//! let out = astra.run(&et).unwrap();                 // DP-only: succeeds
//! assert!(out.makespan_ns > 0);
//! ```

#![forbid(unsafe_code)]

pub mod chakra;
pub mod sim;

pub use chakra::{from_nsys, ChakraNode, ChakraNodeType, ChakraTrace, CollKind};
pub use sim::{AstraError, AstraReport, AstraSim, AstraSystemConfig};
