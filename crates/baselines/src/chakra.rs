//! A Chakra-ET-style execution trace schema (the AstraSim input format).
//!
//! Chakra represents one trace file per rank; each file is a graph of
//! *nodes* (compute kernels, collective operations, point-to-point sends
//! and receives) joined by data/control dependency edges, where every node
//! carries a verbose attribute list — kernel names, tensor shapes, grid
//! dimensions, process-group descriptions, and framework bookkeeping
//! (paper §2.1: "Chakra files contain additional information, such as data
//! on compute kernels").
//!
//! This module reproduces that artifact from the same nsys-style reports
//! ATLAHS consumes, so Fig. 8/9 compare the two toolchains on *identical
//! execution patterns* (the paper generates Chakra traces from raw
//! PyTorch + Kineto captures of the same run). The verbosity is intrinsic to the
//! schema — per-node attribute records — which is what makes the on-disk
//! Chakra traces a multiple of GOAL's size (Fig. 9).

use atlahs_tracers::nccl::{NcclKernel, NsysReport};

/// Chakra node categories (mirrors Chakra's `NodeType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChakraNodeType {
    /// A compute kernel (GPU or CPU).
    Comp,
    /// A collective communication operation.
    CommColl,
    /// A point-to-point send.
    CommSend,
    /// A point-to-point receive.
    CommRecv,
}

impl ChakraNodeType {
    pub fn as_str(self) -> &'static str {
        match self {
            ChakraNodeType::Comp => "COMP_NODE",
            ChakraNodeType::CommColl => "COMM_COLL_NODE",
            ChakraNodeType::CommSend => "COMM_SEND_NODE",
            ChakraNodeType::CommRecv => "COMM_RECV_NODE",
        }
    }
}

/// Collective kinds Chakra distinguishes (subset used by the paper's
/// workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    AllReduce,
    AllGather,
    ReduceScatter,
    AllToAll,
    Broadcast,
}

impl CollKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CollKind::AllReduce => "ALL_REDUCE",
            CollKind::AllGather => "ALL_GATHER",
            CollKind::ReduceScatter => "REDUCE_SCATTER",
            CollKind::AllToAll => "ALL_TO_ALL",
            CollKind::Broadcast => "BROADCAST",
        }
    }
}

/// One attribute record. Chakra stores these as named protobuf fields;
/// we keep the same key/value shape in text.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    pub key: String,
    pub value: String,
}

impl Attr {
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        Attr { key: key.into(), value: value.into() }
    }
}

/// One node of a per-rank Chakra graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ChakraNode {
    pub id: u64,
    pub name: String,
    pub node_type: ChakraNodeType,
    /// Ids of nodes this one depends on (data deps).
    pub data_deps: Vec<u64>,
    /// Wall duration observed at capture (µs-resolution in real Chakra;
    /// we keep ns).
    pub duration_ns: u64,
    /// Communication payload (collectives and p2p), bytes.
    pub comm_bytes: u64,
    /// Collective kind for `CommColl` nodes.
    pub coll: Option<CollKind>,
    /// Peer rank for p2p nodes.
    pub peer: Option<u32>,
    /// Process-group id (communicator) for communication nodes.
    pub pg: Option<u32>,
    /// The verbose attribute payload.
    pub attrs: Vec<Attr>,
}

/// The per-rank trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChakraRankTrace {
    pub rank: u32,
    pub nodes: Vec<ChakraNode>,
}

/// A complete Chakra execution trace: one graph per rank plus the global
/// metadata file describing process groups.
#[derive(Debug, Clone, PartialEq)]
pub struct ChakraTrace {
    pub app: String,
    pub world: u32,
    /// Process groups: `(pg id, member ranks)`.
    pub groups: Vec<(u32, Vec<u32>)>,
    pub ranks: Vec<ChakraRankTrace>,
}

impl ChakraTrace {
    pub fn num_nodes(&self) -> usize {
        self.ranks.iter().map(|r| r.nodes.len()).sum()
    }

    /// Serialize every per-rank file plus metadata into one text artifact
    /// (whose size Fig. 9 measures against GOAL's binary encoding).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# chakra_et app=\"{}\" world={}", self.app, self.world);
        for (id, members) in &self.groups {
            let list: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            let _ = writeln!(out, "process_group id={id} ranks={}", list.join(","));
        }
        for r in &self.ranks {
            let _ = writeln!(out, "rank {}", r.rank);
            for n in &r.nodes {
                let deps: Vec<String> = n.data_deps.iter().map(|d| d.to_string()).collect();
                let _ = write!(
                    out,
                    "node id={} type={} name=\"{}\" duration_ns={} comm_bytes={}",
                    n.id,
                    n.node_type.as_str(),
                    n.name,
                    n.duration_ns,
                    n.comm_bytes
                );
                if let Some(c) = n.coll {
                    let _ = write!(out, " coll={}", c.as_str());
                }
                if let Some(p) = n.peer {
                    let _ = write!(out, " peer={p}");
                }
                if let Some(pg) = n.pg {
                    let _ = write!(out, " pg={pg}");
                }
                let _ = writeln!(out, " deps=[{}]", deps.join(","));
                for a in &n.attrs {
                    let _ = writeln!(out, "  attr {}={}", a.key, a.value);
                }
            }
        }
        out
    }

    /// Parse the text artifact back (round-trip tested).
    pub fn parse(input: &str) -> Result<ChakraTrace, String> {
        let mut app = String::new();
        let mut world = 0u32;
        let mut groups = Vec::new();
        let mut ranks: Vec<ChakraRankTrace> = Vec::new();
        for (ln, raw) in input.lines().enumerate() {
            let err = |m: &str| format!("line {}: {m}", ln + 1);
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# chakra_et ") {
                let mut rest = rest.to_string();
                if let Some(start) = rest.find("app=\"") {
                    let after = &rest[start + 5..];
                    let end = after.find('"').ok_or(err("unterminated app"))?;
                    app = after[..end].to_string();
                    rest.replace_range(start..start + 5 + end + 1, "");
                }
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("world=") {
                        world = v.parse().map_err(|_| err("bad world"))?;
                    }
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("process_group ") {
                let mut id = 0u32;
                let mut members = Vec::new();
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("id=") {
                        id = v.parse().map_err(|_| err("bad pg id"))?;
                    } else if let Some(v) = tok.strip_prefix("ranks=") {
                        members = v
                            .split(',')
                            .map(|s| s.parse())
                            .collect::<Result<_, _>>()
                            .map_err(|_| err("bad pg ranks"))?;
                    }
                }
                groups.push((id, members));
                continue;
            }
            if let Some(rest) = line.strip_prefix("rank ") {
                let rank = rest.trim().parse().map_err(|_| err("bad rank"))?;
                ranks.push(ChakraRankTrace { rank, nodes: Vec::new() });
                continue;
            }
            if let Some(rest) = line.trim_start().strip_prefix("attr ") {
                let (k, v) = rest.split_once('=').ok_or(err("bad attr"))?;
                let node = ranks
                    .last_mut()
                    .and_then(|r| r.nodes.last_mut())
                    .ok_or(err("attr before node"))?;
                node.attrs.push(Attr::new(k, v));
                continue;
            }
            if let Some(rest) = line.strip_prefix("node ") {
                let mut node = ChakraNode {
                    id: 0,
                    name: String::new(),
                    node_type: ChakraNodeType::Comp,
                    data_deps: Vec::new(),
                    duration_ns: 0,
                    comm_bytes: 0,
                    coll: None,
                    peer: None,
                    pg: None,
                    attrs: Vec::new(),
                };
                // name="..." may contain spaces: extract it first.
                let mut rest = rest.to_string();
                if let Some(start) = rest.find("name=\"") {
                    let after = &rest[start + 6..];
                    let end = after.find('"').ok_or(err("unterminated name"))?;
                    node.name = after[..end].to_string();
                    rest.replace_range(start..start + 6 + end + 1, "");
                }
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("id=") {
                        node.id = v.parse().map_err(|_| err("bad id"))?;
                    } else if let Some(v) = tok.strip_prefix("type=") {
                        node.node_type = match v {
                            "COMP_NODE" => ChakraNodeType::Comp,
                            "COMM_COLL_NODE" => ChakraNodeType::CommColl,
                            "COMM_SEND_NODE" => ChakraNodeType::CommSend,
                            "COMM_RECV_NODE" => ChakraNodeType::CommRecv,
                            _ => return Err(err("bad node type")),
                        };
                    } else if let Some(v) = tok.strip_prefix("duration_ns=") {
                        node.duration_ns = v.parse().map_err(|_| err("bad duration"))?;
                    } else if let Some(v) = tok.strip_prefix("comm_bytes=") {
                        node.comm_bytes = v.parse().map_err(|_| err("bad bytes"))?;
                    } else if let Some(v) = tok.strip_prefix("coll=") {
                        node.coll = Some(match v {
                            "ALL_REDUCE" => CollKind::AllReduce,
                            "ALL_GATHER" => CollKind::AllGather,
                            "REDUCE_SCATTER" => CollKind::ReduceScatter,
                            "ALL_TO_ALL" => CollKind::AllToAll,
                            "BROADCAST" => CollKind::Broadcast,
                            _ => return Err(err("bad coll kind")),
                        });
                    } else if let Some(v) = tok.strip_prefix("peer=") {
                        node.peer = Some(v.parse().map_err(|_| err("bad peer"))?);
                    } else if let Some(v) = tok.strip_prefix("pg=") {
                        node.pg = Some(v.parse().map_err(|_| err("bad pg"))?);
                    } else if let Some(v) = tok.strip_prefix("deps=") {
                        let inner = v
                            .strip_prefix('[')
                            .and_then(|s| s.strip_suffix(']'))
                            .ok_or(err("bad deps"))?;
                        if !inner.is_empty() {
                            node.data_deps = inner
                                .split(',')
                                .map(|s| s.parse())
                                .collect::<Result<_, _>>()
                                .map_err(|_| err("bad dep id"))?;
                        }
                    }
                }
                ranks.last_mut().ok_or(err("node before rank"))?.nodes.push(node);
                continue;
            }
            return Err(err("unrecognized line"));
        }
        Ok(ChakraTrace { app, world, groups, ranks })
    }
}

/// Kineto-style kernel metadata attached to every node; this is the
/// verbosity the real pipeline inherits from merging PyTorch ET with
/// Kineto device traces (tensor shapes, kernel grids, correlation ids,
/// python call stacks).
fn verbose_attrs(kind: &str, bytes: u64, seqno: u64, stream: u32) -> Vec<Attr> {
    vec![
        Attr::new("rf_id", seqno.to_string()),
        Attr::new("fw_parent", (seqno / 2).to_string()),
        Attr::new("seq_id", seqno.to_string()),
        Attr::new("scope", "7"),
        Attr::new("tid", (stream + 1).to_string()),
        Attr::new("fw_tid", "1"),
        Attr::new("op_schema", format!("aten::{kind}(Tensor self) -> Tensor")),
        Attr::new("inputs", format!("[[{},{}]]", bytes / 2, 2)),
        Attr::new("input_shapes", format!("[[{}]]", bytes / 2)),
        Attr::new("input_types", "[\"Tensor(c10::BFloat16)\"]"),
        Attr::new("outputs", "[]"),
        Attr::new("output_shapes", "[]"),
        Attr::new("kernel_backend", "CUDA"),
        Attr::new("grid", "[132,1,1]"),
        Attr::new("block", "[128,1,1]"),
        Attr::new("registers_per_thread", "96"),
        Attr::new("shared_memory", "49152"),
        Attr::new("correlation", (seqno * 3 + 11).to_string()),
        Attr::new(
            "stack",
            format!(
                "[\"train.py:314\",\"engine.py:{}\",\"module.py:{}\",\
                 \"functional.py:{}\",\"_tensor.py:1047\"]",
                200 + seqno % 400,
                seqno % 900,
                seqno % 2400
            ),
        ),
        Attr::new("python_id", (seqno * 7 + 3).to_string()),
        Attr::new("python_parent_id", (seqno * 7).to_string()),
    ]
}

/// Approximate duration of one fused GPU operator; the PyTorch execution
/// trace records every `aten::` operator, so an inferred compute gap of
/// `gap` ns expands into roughly `gap / OP_NS` operator nodes.
const OP_NS: u64 = 5_000;
/// Ceiling on operator expansion per gap (keeps degenerate traces sane).
const MAX_OPS_PER_GAP: u64 = 2_048;

/// Names cycled through for expanded operator nodes.
const OP_NAMES: [&str; 8] = [
    "aten::linear",
    "aten::layer_norm",
    "aten::scaled_dot_product_attention",
    "aten::gelu",
    "aten::add_",
    "aten::matmul",
    "aten::softmax",
    "aten::embedding_dense_backward",
];

/// Convert an nsys-style report into a Chakra execution trace.
///
/// This mirrors the `chakra_trace_link + chakra_converter` pipeline the
/// paper uses (its ref. \[66\]): every NCCL kernel becomes a `COMM_*` node, the
/// timestamp gaps on the compute stream become `COMP` nodes, and nodes on
/// one rank chain through data dependencies per stream (cross-stream
/// concurrency is preserved by *not* linking across streams, exactly like
/// the PyTorch ET's per-stream ordering).
pub fn from_nsys(report: &NsysReport) -> ChakraTrace {
    let mut ranks = Vec::with_capacity(report.num_gpus());
    for g in &report.gpus {
        let mut nodes: Vec<ChakraNode> = Vec::new();
        let mut next_id = 0u64;
        // last (node id, tend) per stream
        let mut last: std::collections::HashMap<u32, (u64, u64)> = Default::default();
        for rec in &g.records {
            let mut deps = Vec::new();
            // Inferred computation (the gap since the previous kernel on
            // this stream, or the leading compute before its first kernel)
            // becomes an explicit COMP node carrying the full Kineto
            // metadata load.
            let (gap, prev) = match last.get(&rec.stream) {
                Some(&(prev, prev_end)) => (rec.tstart.saturating_sub(prev_end), Some(prev)),
                None => (rec.tstart, None),
            };
            if gap > 0 {
                // The PyTorch ET records *every* operator, not one node
                // per gap: expand the gap into a chain of aten:: operator
                // nodes of ~OP_NS each. This is the verbosity that makes
                // Chakra traces a multiple of GOAL's size (Fig. 9).
                let nops = (gap / OP_NS).clamp(1, MAX_OPS_PER_GAP);
                let per_op = gap / nops;
                let mut tail = gap - per_op * nops; // remainder on the last op
                let mut prev_op = prev;
                for k in 0..nops {
                    let comp_id = next_id;
                    next_id += 1;
                    let name = OP_NAMES[(comp_id % OP_NAMES.len() as u64) as usize];
                    let dur =
                        if k + 1 == nops { per_op + std::mem::take(&mut tail) } else { per_op };
                    nodes.push(ChakraNode {
                        id: comp_id,
                        name: format!("{name}#{comp_id}"),
                        node_type: ChakraNodeType::Comp,
                        data_deps: prev_op.into_iter().collect(),
                        duration_ns: dur,
                        comm_bytes: 0,
                        coll: None,
                        peer: None,
                        pg: None,
                        attrs: verbose_attrs(
                            name.trim_start_matches("aten::"),
                            dur,
                            comp_id,
                            rec.stream,
                        ),
                    });
                    prev_op = Some(comp_id);
                }
                deps.push(prev_op.expect("at least one op emitted"));
            } else if let Some(prev) = prev {
                deps.push(prev);
            }
            let id = next_id;
            next_id += 1;
            let (node_type, coll, peer, name) = match rec.kernel {
                NcclKernel::AllReduce => (
                    ChakraNodeType::CommColl,
                    Some(CollKind::AllReduce),
                    None,
                    "nccl:all_reduce".to_string(),
                ),
                NcclKernel::Broadcast { root } => (
                    ChakraNodeType::CommColl,
                    Some(CollKind::Broadcast),
                    Some(root),
                    "nccl:broadcast".to_string(),
                ),
                NcclKernel::AllGather => (
                    ChakraNodeType::CommColl,
                    Some(CollKind::AllGather),
                    None,
                    "nccl:all_gather".to_string(),
                ),
                NcclKernel::ReduceScatter => (
                    ChakraNodeType::CommColl,
                    Some(CollKind::ReduceScatter),
                    None,
                    "nccl:reduce_scatter".to_string(),
                ),
                NcclKernel::AllToAll => (
                    ChakraNodeType::CommColl,
                    Some(CollKind::AllToAll),
                    None,
                    "nccl:all_to_all".to_string(),
                ),
                NcclKernel::Send { peer } => {
                    (ChakraNodeType::CommSend, None, Some(peer), "nccl:send".to_string())
                }
                NcclKernel::Recv { peer } => {
                    (ChakraNodeType::CommRecv, None, Some(peer), "nccl:recv".to_string())
                }
            };
            let mut attrs = verbose_attrs(&name.replace(':', "_"), rec.bytes, id, rec.stream);
            attrs.push(Attr::new("comm_type", node_type.as_str()));
            attrs.push(Attr::new("pg_name", format!("default_pg:{}.{}", rec.comm, rec.stream)));
            attrs.push(Attr::new("dtype", "BFloat16"));
            attrs.push(Attr::new("count", (rec.bytes / 2).to_string()));
            nodes.push(ChakraNode {
                id,
                name,
                node_type,
                data_deps: deps,
                duration_ns: rec.tend - rec.tstart,
                comm_bytes: rec.bytes,
                coll,
                peer,
                pg: Some(rec.comm),
                attrs,
            });
            last.insert(rec.stream, (id, rec.tend));
        }
        ranks.push(ChakraRankTrace { rank: g.gpu, nodes });
    }
    ChakraTrace {
        app: report.app.clone(),
        world: report.num_gpus() as u32,
        groups: report.comms.iter().map(|c| (c.id, c.gpus.clone())).collect(),
        ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_tracers::nccl::{presets, trace_llm};

    fn small_report() -> NsysReport {
        let mut cfg = presets::llama7b_dp16(0.01);
        cfg.iterations = 1;
        cfg.batch = 16;
        trace_llm(&cfg)
    }

    #[test]
    fn from_nsys_covers_every_kernel() {
        let rep = small_report();
        let et = from_nsys(&rep);
        assert_eq!(et.world, 16);
        assert_eq!(et.ranks.len(), 16);
        let comm_nodes: usize = et
            .ranks
            .iter()
            .flat_map(|r| &r.nodes)
            .filter(|n| n.node_type != ChakraNodeType::Comp)
            .count();
        assert_eq!(comm_nodes, rep.num_records());
    }

    #[test]
    fn gaps_become_comp_nodes() {
        let rep = small_report();
        let et = from_nsys(&rep);
        let comp: usize = et
            .ranks
            .iter()
            .flat_map(|r| &r.nodes)
            .filter(|n| n.node_type == ChakraNodeType::Comp)
            .count();
        assert!(comp > 0, "timestamp gaps must surface as COMP nodes");
    }

    #[test]
    fn deps_are_acyclic_and_local() {
        let et = from_nsys(&small_report());
        for r in &et.ranks {
            for (i, n) in r.nodes.iter().enumerate() {
                assert_eq!(n.id as usize, i, "ids are dense");
                for &d in &n.data_deps {
                    assert!(d < n.id, "dep {d} must precede node {}", n.id);
                }
            }
        }
    }

    #[test]
    fn text_roundtrip() {
        let et = from_nsys(&small_report());
        let text = et.to_text();
        let back = ChakraTrace::parse(&text).unwrap();
        assert_eq!(et, back);
    }

    #[test]
    fn nodes_carry_verbose_attrs() {
        let et = from_nsys(&small_report());
        for r in &et.ranks {
            for n in &r.nodes {
                assert!(
                    n.attrs.len() >= 15,
                    "Chakra verbosity: every node has the Kineto metadata"
                );
            }
        }
    }

    #[test]
    fn chakra_text_is_larger_than_nsys_text() {
        // The converted trace inflates the raw capture — the Fig. 9 premise.
        let rep = small_report();
        let et = from_nsys(&rep);
        assert!(et.to_text().len() > rep.to_text().len());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ChakraTrace::parse("node id=0").is_err(), "node before rank");
        assert!(ChakraTrace::parse("rank 0\nnode id=x deps=[]").is_err());
        assert!(ChakraTrace::parse("garbage").is_err());
    }

    #[test]
    fn groups_match_report_comms() {
        let rep = small_report();
        let et = from_nsys(&rep);
        assert_eq!(et.groups.len(), rep.comms.len());
        for ((id, members), c) in et.groups.iter().zip(&rep.comms) {
            assert_eq!(*id, c.id);
            assert_eq!(members, &c.gpus);
        }
    }
}
