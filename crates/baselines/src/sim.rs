//! An AstraSim-class baseline: congestion-unaware, chunk-granular replay
//! of Chakra execution traces.
//!
//! The model follows ASTRA-sim 2.0's *analytical / congestion-unaware*
//! network backend (the only configuration the paper could compare
//! against, §5.2):
//!
//! * every collective is decomposed into ring phases and simulated at
//!   **chunk granularity** through an explicit per-chunk recurrence —
//!   AstraSim's unit of network work — with a fixed per-chunk boundary
//!   overhead at each phase crossing;
//! * links never contend: each transfer sees the full configured
//!   bandwidth regardless of concurrent traffic (congestion-unaware);
//! * collectives synchronize their process group: every member starts the
//!   k-th collective of a group together (at the latest member's ready
//!   time) and completes together — the barrier-like semantics of the
//!   analytical backend;
//! * real-trace support is limited to **data-parallel** workloads: traces
//!   containing point-to-point nodes (pipeline parallelism) abort with
//!   the `src and dest have the same address` error the paper reproduces
//!   across four of its six configurations (Fig. 8).
//!
//! The chunk machinery is what makes replay honest-but-slow: a 100 MiB
//! allreduce over 16 ranks at the default 64 KiB chunk walks tens of
//! thousands of chunk slots, where ATLAHS LGS processes a few hundred
//! message-level events for the same operation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::chakra::{ChakraNodeType, ChakraTrace, CollKind};

/// System configuration of the analytical backend (the `system.json` /
/// `network.json` knobs of a real AstraSim run).
#[derive(Debug, Clone)]
pub struct AstraSystemConfig {
    /// Inter-node link bandwidth (GB/s per direction; numerically equal
    /// to bytes/ns).
    pub link_gbps: f64,
    /// Inter-node wire latency (ns).
    pub link_latency_ns: u64,
    /// Intra-node (NVLink-class) bandwidth (GB/s).
    pub intra_gbps: f64,
    /// Intra-node latency (ns).
    pub intra_latency_ns: u64,
    /// GPUs per node (decides which tier a ring hop crosses).
    pub gpus_per_node: u32,
    /// Network simulation granularity (bytes).
    pub chunk_bytes: u64,
    /// Per-chunk boundary processing overhead (ns) — charged on every
    /// chunk at every phase; the AstraSim artifact that inflates long
    /// collectives relative to measured runs.
    pub chunk_overhead_ns: u64,
}

impl Default for AstraSystemConfig {
    fn default() -> Self {
        AstraSystemConfig {
            link_gbps: 25.0,
            link_latency_ns: 3_700,
            intra_gbps: 150.0,
            intra_latency_ns: 700,
            gpus_per_node: 4,
            // AstraSim slices collective payloads near its network-packet
            // granularity; small chunks are what make its replay loop
            // expensive relative to message-level simulation (§5.2).
            chunk_bytes: 8 << 10,
            chunk_overhead_ns: 500,
        }
    }
}

/// Replay failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstraError {
    /// The real-trace frontend mis-resolves point-to-point endpoints for
    /// non-data-parallel traces; both endpoints land on the same rank.
    /// (The runtime error observed in the paper's Fig. 8 for every
    /// configuration with pipeline parallelism.)
    SameAddress { rank: u32, node: u64 },
    /// A node depends on an id that does not exist in its rank's graph.
    MissingDependency { rank: u32, node: u64, dep: u64 },
    /// Members of a process group disagree on the collective sequence.
    CollectiveMismatch { pg: u32 },
    /// A node references an undeclared process group.
    UnknownGroup { rank: u32, node: u64, pg: u32 },
}

impl std::fmt::Display for AstraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AstraError::SameAddress { rank, node } => {
                write!(f, "rank {rank} node {node}: src and dest have the same address")
            }
            AstraError::MissingDependency { rank, node, dep } => {
                write!(f, "rank {rank} node {node}: missing dependency {dep}")
            }
            AstraError::CollectiveMismatch { pg } => {
                write!(f, "process group {pg}: members disagree on collective sequence")
            }
            AstraError::UnknownGroup { rank, node, pg } => {
                write!(f, "rank {rank} node {node}: unknown process group {pg}")
            }
        }
    }
}

impl std::error::Error for AstraError {}

/// Result of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct AstraReport {
    /// Simulated end-to-end time (ns).
    pub makespan_ns: u64,
    /// Per-rank finish time (ns).
    pub per_rank_finish: Vec<u64>,
    /// Heap events processed (cost proxy).
    pub events: u64,
    /// Chunk transmissions simulated.
    pub chunks: u64,
}

/// One collective instance awaiting the rest of its process group.
struct PendingColl {
    kind: CollKind,
    bytes: u64,
    /// (rank, node index, ready time) of members that reached it.
    arrived: Vec<(u32, u32, u64)>,
    expected: usize,
}

/// The congestion-unaware analytical simulator.
pub struct AstraSim {
    cfg: AstraSystemConfig,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct NodeDone {
    rank: u32,
    idx: u32,
}

impl AstraSim {
    pub fn new(cfg: AstraSystemConfig) -> Self {
        AstraSim { cfg }
    }

    pub fn config(&self) -> &AstraSystemConfig {
        &self.cfg
    }

    /// Replay `trace` to completion.
    pub fn run(&self, trace: &ChakraTrace) -> Result<AstraReport, AstraError> {
        // ---- DP-only real-trace restriction -------------------------
        // The Chakra real-trace frontend resolves p2p endpoints through a
        // data-parallel-centric rank map; any pipeline send/recv collapses
        // src == dst and the run aborts before simulation starts.
        for r in &trace.ranks {
            for n in &r.nodes {
                if matches!(n.node_type, ChakraNodeType::CommSend | ChakraNodeType::CommRecv) {
                    return Err(AstraError::SameAddress { rank: r.rank, node: n.id });
                }
            }
        }

        let groups: HashMap<u32, &Vec<u32>> = trace.groups.iter().map(|(id, m)| (*id, m)).collect();

        // Per-rank dependency bookkeeping.
        let nranks = trace.ranks.len();
        let mut indeg: Vec<Vec<u32>> = Vec::with_capacity(nranks);
        let mut succs: Vec<Vec<Vec<u32>>> = Vec::with_capacity(nranks);
        for r in &trace.ranks {
            let n = r.nodes.len();
            let mut ind = vec![0u32; n];
            let mut suc: Vec<Vec<u32>> = vec![Vec::new(); n];
            let index: HashMap<u64, u32> =
                r.nodes.iter().enumerate().map(|(i, nd)| (nd.id, i as u32)).collect();
            for (i, nd) in r.nodes.iter().enumerate() {
                for &d in &nd.data_deps {
                    let &di = index.get(&d).ok_or(AstraError::MissingDependency {
                        rank: r.rank,
                        node: nd.id,
                        dep: d,
                    })?;
                    ind[i] += 1;
                    suc[di as usize].push(i as u32);
                }
            }
            indeg.push(ind);
            succs.push(suc);
        }

        // Precompute each collective node's instance number within its
        // process group (NCCL's ordering guarantee: the k-th collective a
        // rank issues on a communicator is the same instance on every
        // member), and verify the members agree on the counts.
        let mut pos_counter: HashMap<(u32, u32), u64> = HashMap::new();
        let mut coll_pos: Vec<Vec<u64>> = Vec::with_capacity(nranks);
        for r in &trace.ranks {
            let mut v = vec![0u64; r.nodes.len()];
            for (i, n) in r.nodes.iter().enumerate() {
                if n.node_type == ChakraNodeType::CommColl {
                    let pg = n.pg.unwrap_or(0);
                    let c = pos_counter.entry((pg, r.rank)).or_insert(0);
                    v[i] = *c;
                    *c += 1;
                }
            }
            coll_pos.push(v);
        }
        for (pg, members) in &trace.groups {
            let mut expect: Option<u64> = None;
            for &m in members {
                let c = pos_counter.get(&(*pg, m)).copied().unwrap_or(0);
                match expect {
                    None => expect = Some(c),
                    Some(e) if e != c => return Err(AstraError::CollectiveMismatch { pg: *pg }),
                    _ => {}
                }
            }
        }

        let mut heap: BinaryHeap<Reverse<(u64, u64, NodeDone)>> = BinaryHeap::new();
        let mut pending: HashMap<(u32, u64), PendingColl> = HashMap::new();
        let mut seq = 0u64;
        let mut events = 0u64;
        let mut chunks = 0u64;
        let mut finish = vec![0u64; nranks];
        let mut completed = vec![0usize; nranks];
        let mut ready_time: Vec<Vec<u64>> =
            trace.ranks.iter().map(|r| vec![0u64; r.nodes.len()]).collect();

        // Issue one dependency-free node at time `at`.
        macro_rules! issue {
            ($rank:expr, $idx:expr, $at:expr) => {{
                let rank: u32 = $rank;
                let idx: u32 = $idx;
                let at: u64 = $at;
                let node = &trace.ranks[rank as usize].nodes[idx as usize];
                match node.node_type {
                    ChakraNodeType::Comp => {
                        heap.push(Reverse((at + node.duration_ns, seq, NodeDone { rank, idx })));
                        seq += 1;
                    }
                    ChakraNodeType::CommColl => {
                        let pg = node.pg.unwrap_or(0);
                        let members = *groups.get(&pg).ok_or(AstraError::UnknownGroup {
                            rank,
                            node: node.id,
                            pg,
                        })?;
                        let inst = coll_pos[rank as usize][idx as usize];
                        let entry = pending.entry((pg, inst)).or_insert_with(|| PendingColl {
                            kind: node.coll.unwrap_or(CollKind::AllReduce),
                            bytes: node.comm_bytes,
                            arrived: Vec::new(),
                            expected: members.len(),
                        });
                        entry.arrived.push((rank, idx, at));
                        if entry.arrived.len() == entry.expected {
                            // Everybody is here: the whole group starts at
                            // the latest arrival and completes together.
                            let start = entry.arrived.iter().map(|&(_, _, t)| t).max().unwrap();
                            let dur =
                                self.collective_ns(entry.kind, entry.bytes, members, &mut chunks);
                            let done = start + dur;
                            let coll = pending.remove(&(pg, inst)).expect("just inserted");
                            for (rk, ix, _) in coll.arrived {
                                heap.push(Reverse((done, seq, NodeDone { rank: rk, idx: ix })));
                                seq += 1;
                            }
                        }
                    }
                    ChakraNodeType::CommSend | ChakraNodeType::CommRecv => {
                        unreachable!("rejected upfront")
                    }
                }
            }};
        }

        for (ri, r) in trace.ranks.iter().enumerate() {
            for (i, _) in r.nodes.iter().enumerate() {
                if indeg[ri][i] == 0 {
                    issue!(ri as u32, i as u32, 0);
                }
            }
        }

        while let Some(Reverse((t, _, NodeDone { rank, idx }))) = heap.pop() {
            events += 1;
            let ri = rank as usize;
            completed[ri] += 1;
            finish[ri] = finish[ri].max(t);
            let succ = std::mem::take(&mut succs[ri][idx as usize]);
            for s in succ {
                let si = s as usize;
                indeg[ri][si] -= 1;
                ready_time[ri][si] = ready_time[ri][si].max(t);
                if indeg[ri][si] == 0 {
                    let at = ready_time[ri][si];
                    issue!(rank, s, at);
                }
            }
        }

        debug_assert!(
            trace.ranks.iter().enumerate().all(|(ri, r)| completed[ri] == r.nodes.len()),
            "replay must drain: a stuck node implies a malformed trace"
        );

        Ok(AstraReport {
            makespan_ns: finish.iter().copied().max().unwrap_or(0),
            per_rank_finish: finish,
            events,
            chunks,
        })
    }

    /// Chunk-granular cost of one collective over `members`, simulated
    /// per NPU the way AstraSim's chunk scheduler does: every member
    /// drives its own chunk timeline through an event queue — chunk `c`
    /// of phase `p` departs once the member's previous chunk has been
    /// transmitted AND the same chunk has arrived from the upstream ring
    /// neighbour (one wire latency later). Congestion-unaware: each hop
    /// sees the full tier bandwidth.
    ///
    /// The per-member event walk is the honest cost model of the real
    /// system — AstraSim simulates each NPU's sends explicitly — and it
    /// is precisely why chunk-level replay is slower than ATLAHS LGS's
    /// message-level replay on identical workloads (§5.2).
    pub fn collective_ns(
        &self,
        kind: CollKind,
        bytes: u64,
        members: &[u32],
        chunks_out: &mut u64,
    ) -> u64 {
        let n = members.len().max(1) as u64;
        if n == 1 || bytes == 0 {
            return self.cfg.chunk_overhead_ns;
        }
        // Does any ring hop cross nodes?
        let crosses = members
            .iter()
            .zip(members.iter().cycle().skip(1))
            .take(members.len())
            .any(|(&a, &b)| a / self.cfg.gpus_per_node != b / self.cfg.gpus_per_node);
        let (bytes_per_ns, lat) = if crosses {
            (self.cfg.link_gbps, self.cfg.link_latency_ns)
        } else {
            (self.cfg.intra_gbps, self.cfg.intra_latency_ns)
        };
        let (phases, per_phase_bytes) = match kind {
            CollKind::AllReduce => (2 * (n - 1), bytes.div_ceil(n)),
            CollKind::AllGather | CollKind::ReduceScatter => (n - 1, bytes.div_ceil(n)),
            CollKind::Broadcast => (n - 1, bytes),
            CollKind::AllToAll => (n - 1, bytes.div_ceil(n)),
        };
        let nchunks = per_phase_bytes.div_ceil(self.cfg.chunk_bytes).max(1);
        let tail_bytes = per_phase_bytes - (nchunks - 1) * self.cfg.chunk_bytes;

        // Per-NPU chunk event walk. In a symmetric, contention-free ring
        // every member's timeline is statistically identical, but the
        // engine still simulates each one (chunk events per member), so
        // the cost (and `chunks_out`) scales with members × phases ×
        // chunks — AstraSim's real complexity.
        let mut completion = 0u64;
        let mut events: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for _m in 0..n {
            let mut prev_phase: Vec<u64> = vec![0; nchunks as usize];
            for _p in 0..phases {
                let mut t = 0u64;
                for (c, slot) in prev_phase.iter_mut().enumerate() {
                    let b = if c as u64 + 1 == nchunks {
                        tail_bytes.max(1)
                    } else {
                        self.cfg.chunk_bytes
                    };
                    let tx = (b as f64 / bytes_per_ns).ceil() as u64;
                    let start = t.max(*slot);
                    let done = start + tx + self.cfg.chunk_overhead_ns;
                    events.push(Reverse((done, c as u32)));
                    t = done;
                    *slot = done + lat;
                    *chunks_out += 1;
                }
                // Drain this phase's events (the scheduler's dequeue).
                while let Some(Reverse((d, _))) = events.pop() {
                    completion = completion.max(d + lat);
                }
            }
        }
        completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chakra::from_nsys;
    use atlahs_tracers::nccl::{presets, trace_llm};

    fn dp_trace() -> ChakraTrace {
        let mut cfg = presets::llama7b_dp16(0.01);
        cfg.iterations = 1;
        cfg.batch = 16;
        from_nsys(&trace_llm(&cfg))
    }

    #[test]
    fn dp_trace_replays() {
        let et = dp_trace();
        let rep = AstraSim::new(AstraSystemConfig::default()).run(&et).unwrap();
        assert!(rep.makespan_ns > 0);
        assert!(rep.events > 0);
        assert!(rep.chunks > 0);
        assert_eq!(rep.per_rank_finish.len(), 16);
    }

    #[test]
    fn pp_trace_fails_with_same_address() {
        let mut cfg = presets::mistral8x7b(0.01);
        cfg.iterations = 1;
        cfg.batch = 8;
        let et = from_nsys(&trace_llm(&cfg));
        let err = AstraSim::new(AstraSystemConfig::default()).run(&et).unwrap_err();
        assert!(matches!(err, AstraError::SameAddress { .. }));
        assert!(err.to_string().contains("src and dest have the same address"));
    }

    #[test]
    fn moe_traces_fail_like_the_paper() {
        for et in [
            {
                let mut c = presets::moe8x13b(0.01);
                c.iterations = 1;
                c.batch = 8;
                from_nsys(&trace_llm(&c))
            },
            {
                let mut c = presets::llama70b(0.01);
                c.iterations = 1;
                c.batch = 8;
                from_nsys(&trace_llm(&c))
            },
        ] {
            assert!(matches!(
                AstraSim::new(AstraSystemConfig::default()).run(&et),
                Err(AstraError::SameAddress { .. })
            ));
        }
    }

    #[test]
    fn bigger_messages_take_longer() {
        // At 1 MiB the 2(n-1) phase latencies dominate; at 64 MiB the
        // pipelined chunk serialization does. Growth is sub-linear in
        // bytes (chunks pipeline across phases) but must be substantial,
        // and the chunk count scales with the data.
        let sim = AstraSim::new(AstraSystemConfig::default());
        let members: Vec<u32> = (0..16).collect();
        let (mut c1, mut c2) = (0, 0);
        let t1 = sim.collective_ns(CollKind::AllReduce, 1 << 20, &members, &mut c1);
        let t2 = sim.collective_ns(CollKind::AllReduce, 256 << 20, &members, &mut c2);
        assert!(t2 > 3 * t1, "t1={t1} t2={t2}");
        assert!(c2 >= 128 * c1, "c1={c1} c2={c2}");
    }

    #[test]
    fn intra_node_groups_use_fast_tier() {
        let sim = AstraSim::new(AstraSystemConfig::default());
        let mut c = 0;
        let intra = sim.collective_ns(CollKind::AllReduce, 8 << 20, &[0, 1, 2, 3], &mut c);
        let inter = sim.collective_ns(CollKind::AllReduce, 8 << 20, &[0, 4, 8, 12], &mut c);
        // With small chunks the per-chunk boundary overhead compresses
        // the tier gap, but the slower tier must still clearly lose.
        assert!(inter as f64 > 1.3 * intra as f64, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn single_member_collective_is_cheap() {
        let sim = AstraSim::new(AstraSystemConfig::default());
        let mut c = 0;
        let t = sim.collective_ns(CollKind::AllReduce, 1 << 30, &[3], &mut c);
        assert!(t <= sim.config().chunk_overhead_ns);
    }

    #[test]
    fn replay_is_deterministic() {
        let et = dp_trace();
        let sim = AstraSim::new(AstraSystemConfig::default());
        assert_eq!(sim.run(&et).unwrap(), sim.run(&et).unwrap());
    }

    #[test]
    fn chunk_overhead_inflates_makespan() {
        let et = dp_trace();
        let base = AstraSim::new(AstraSystemConfig { chunk_overhead_ns: 0, ..Default::default() })
            .run(&et)
            .unwrap();
        let inflated =
            AstraSim::new(AstraSystemConfig { chunk_overhead_ns: 2_000, ..Default::default() })
                .run(&et)
                .unwrap();
        assert!(inflated.makespan_ns > base.makespan_ns);
    }

    #[test]
    fn missing_dependency_detected() {
        let mut et = dp_trace();
        et.ranks[0].nodes[0].data_deps.push(999_999);
        assert!(matches!(
            AstraSim::new(AstraSystemConfig::default()).run(&et),
            Err(AstraError::MissingDependency { .. })
        ));
    }

    #[test]
    fn unknown_group_detected() {
        let mut et = dp_trace();
        for r in &mut et.ranks {
            for n in &mut r.nodes {
                if n.node_type == ChakraNodeType::CommColl {
                    n.pg = Some(4242);
                }
            }
        }
        assert!(matches!(
            AstraSim::new(AstraSystemConfig::default()).run(&et),
            Err(AstraError::UnknownGroup { .. })
        ));
    }

    #[test]
    fn collective_mismatch_detected() {
        let mut et = dp_trace();
        // Drop one rank's last collective: the group now disagrees.
        let r0 = &mut et.ranks[0];
        if let Some(pos) = r0.nodes.iter().rposition(|n| n.node_type == ChakraNodeType::CommColl) {
            // Also detach any successors referencing it to keep deps valid.
            let removed_id = r0.nodes[pos].id;
            r0.nodes.remove(pos);
            for n in &mut r0.nodes {
                n.data_deps.retain(|&d| d != removed_id);
            }
        }
        assert!(matches!(
            AstraSim::new(AstraSystemConfig::default()).run(&et),
            Err(AstraError::CollectiveMismatch { .. })
        ));
    }

    #[test]
    fn alltoall_cheaper_than_allreduce_same_bytes() {
        // n-1 phases vs 2(n-1) phases.
        let sim = AstraSim::new(AstraSystemConfig::default());
        let members: Vec<u32> = (0..16).collect();
        let mut c = 0;
        let ar = sim.collective_ns(CollKind::AllReduce, 16 << 20, &members, &mut c);
        let a2a = sim.collective_ns(CollKind::AllToAll, 16 << 20, &members, &mut c);
        assert!(a2a < ar);
    }
}
