//! # atlahs-eventq
//!
//! The shared event core of the ATLAHS simulation backends: a
//! hierarchical timer wheel with an overflow heap and an O(1) lane for
//! same-timestamp events ([`EventQueue`]), plus the deterministic fast
//! hashing the hot-path maps use ([`hash`]).
//!
//! Both the packet engine (`atlahs_htsim`) and the message-level backends
//! (`atlahs_lgs`, `atlahs_core::backends::IdealBackend`) schedule millions
//! of events whose delays cluster tightly: serialization times (hundreds
//! of ns), link latencies (500 to 1500 ns), host overheads (200 ns), and
//! zero-delay completions, with a thin tail of retransmission timers
//! (tens of µs, exponentially backed off) and compute releases (up to
//! seconds). A global `BinaryHeap` pays O(log n) comparisons and
//! half-a-cache-line swaps on every one of them. This queue makes the
//! dominant cases O(1):
//!
//! * **Lane** — events scheduled for *exactly* the current timestamp (the
//!   same-tick completions, pull-pacer kicks, and emit chains that
//!   dominate congested runs) go into a FIFO `VecDeque` and pop without
//!   touching the wheel at all.
//! * **Level 0** — a 4096-slot wheel at 1 ns per slot covering the
//!   current 4.1 µs *frame*. One slot holds one exact timestamp, so
//!   insertion order *is* FIFO order and no sorting ever happens.
//! * **Level 1** — a 4096-slot wheel at one frame per slot covering the
//!   current 16.8 ms *superframe*. Slots cascade into level 0 when the
//!   scan enters their frame.
//! * **Overflow** — a plain binary heap, keyed `(time, push seq)`, for
//!   everything beyond the superframe horizon. Its contents migrate into
//!   the wheel when the scan crosses a superframe boundary, so each event
//!   pays at most one heap traversal regardless of how far out it was
//!   scheduled.
//!
//! **Ordering contract:** `pop` yields events in exactly the order a
//! min-heap on `(time, push sequence)` would — ties broken by insertion
//! order — which is what keeps simulation results bit-identical to the
//! backends' previous global-heap implementations. The structure relies
//! on time moving only forward: `push(t, _)` requires `t >= now`, where
//! `now` is the timestamp of the most recently popped event.

#![forbid(unsafe_code)]

use std::collections::{BinaryHeap, VecDeque};

pub mod hash;

/// log2 of level-0 slots per frame (and ns per frame).
const BITS0: u32 = 12;
/// log2 of level-1 slots per superframe (frames per superframe).
const BITS1: u32 = 12;
const SLOTS: usize = 1 << BITS0;
const MASK0: u64 = (1 << BITS0) - 1;
const MASK1: u64 = (1 << BITS1) - 1;
/// Bitmap words per level (4096 slots / 64 bits).
const WORDS: usize = SLOTS / 64;

#[derive(Clone)]
struct Overflow<T> {
    t: u64,
    seq: u64,
    ev: T,
}

impl<T> PartialEq for Overflow<T> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl<T> Eq for Overflow<T> {}
impl<T> PartialOrd for Overflow<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Overflow<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversal.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// Occupancy bitmap over one wheel level.
#[derive(Clone)]
struct Bits([u64; WORDS]);

impl Bits {
    fn new() -> Bits {
        Bits([0; WORDS])
    }
    #[inline]
    fn set(&mut self, i: usize) {
        self.0[i >> 6] |= 1 << (i & 63);
    }
    #[inline]
    fn clear(&mut self, i: usize) {
        self.0[i >> 6] &= !(1 << (i & 63));
    }
    #[inline]
    fn test(&self, i: usize) -> bool {
        self.0[i >> 6] >> (i & 63) & 1 == 1
    }
    /// First set bit at index `>= from`, if any.
    fn next(&self, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let mut w = from >> 6;
        let mut word = self.0[w] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.0[w];
        }
    }
}

/// Diagnostic counters (cheap; exposed for tests and perf tooling).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Pushes that landed in the same-timestamp lane (the O(1) fast path).
    pub lane_pushes: u64,
    /// Pushes into the level-0 / level-1 wheels.
    pub wheel_pushes: u64,
    /// Pushes that overflowed past the superframe horizon into the heap.
    pub heap_pushes: u64,
    /// Level-1 slots cascaded into level 0.
    pub cascades: u64,
}

/// A discrete-event priority queue ordered by `(time, insertion order)`.
///
/// `Clone` (for `T: Clone`) deep-copies the entire queue — wheel slots,
/// lane, overflow heap, cursor, and sequence counter — so a clone pops
/// the exact same `(time, event)` stream as the original. Backends rely
/// on this for their `Snapshot` implementations: heap entries are keyed
/// `(t, seq)`, so a cloned `BinaryHeap` yields the same total order even
/// though its internal array layout is unspecified.
pub struct EventQueue<T> {
    /// Timestamp of the most recent `pop` (and of everything in `lane`).
    now: u64,
    /// Scan position in ns; always `>= now` and `<=` every queued event.
    cursor: u64,
    /// Events at exactly `now`, in insertion order.
    lane: VecDeque<T>,
    l0: Box<[Vec<(u64, T)>]>,
    l1: Box<[Vec<(u64, T)>]>,
    l0_bits: Bits,
    l1_bits: Bits,
    l0_count: usize,
    l1_count: usize,
    heap: BinaryHeap<Overflow<T>>,
    /// Tie-break sequence for heap entries (wheel slots are FIFO by
    /// construction and need no explicit sequence).
    seq: u64,
    len: usize,
    stats: QueueStats,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Clone for EventQueue<T> {
    fn clone(&self) -> Self {
        EventQueue {
            now: self.now,
            cursor: self.cursor,
            lane: self.lane.clone(),
            l0: self.l0.clone(),
            l1: self.l1.clone(),
            l0_bits: self.l0_bits.clone(),
            l1_bits: self.l1_bits.clone(),
            l0_count: self.l0_count,
            l1_count: self.l1_count,
            heap: self.heap.clone(),
            seq: self.seq,
            len: self.len,
            stats: self.stats,
        }
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    /// Summary only: the wheel's 8192 slot vectors are noise in debug
    /// output, and `T: Debug` must not be required of backends.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("len", &self.len)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            now: 0,
            cursor: 0,
            lane: VecDeque::new(),
            l0: (0..SLOTS).map(|_| Vec::new()).collect(),
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            l0_bits: Bits::new(),
            l1_bits: Bits::new(),
            l0_count: 0,
            l1_count: 0,
            heap: BinaryHeap::new(),
            seq: 0,
            len: 0,
            stats: QueueStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Timestamp of the most recently popped event.
    pub fn now(&self) -> u64 {
        self.now
    }

    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Remove every queued event and rewind time to zero. Slot and lane
    /// allocations are kept.
    pub fn clear(&mut self) {
        self.lane.clear();
        for v in self.l0.iter_mut().chain(self.l1.iter_mut()) {
            v.clear();
        }
        self.l0_bits = Bits::new();
        self.l1_bits = Bits::new();
        self.l0_count = 0;
        self.l1_count = 0;
        self.heap.clear();
        self.now = 0;
        self.cursor = 0;
        self.seq = 0;
        self.len = 0;
        self.stats = QueueStats::default();
    }

    /// Schedule `ev` at absolute time `t` (`t >= now()` required).
    pub fn push(&mut self, t: u64, ev: T) {
        debug_assert!(t >= self.now, "time runs forward: {t} < {}", self.now);
        self.len += 1;
        if t == self.now {
            self.stats.lane_pushes += 1;
            self.lane.push_back(ev);
            return;
        }
        let frame = t >> BITS0;
        let cur_frame = self.cursor >> BITS0;
        if frame == cur_frame {
            self.stats.wheel_pushes += 1;
            let s = (t & MASK0) as usize;
            self.l0_bits.set(s);
            self.l0[s].push((t, ev));
            self.l0_count += 1;
        } else if frame >> BITS1 == cur_frame >> BITS1 {
            self.stats.wheel_pushes += 1;
            let s = (frame & MASK1) as usize;
            self.l1_bits.set(s);
            self.l1[s].push((t, ev));
            self.l1_count += 1;
        } else {
            self.stats.heap_pushes += 1;
            self.heap.push(Overflow { t, seq: self.seq, ev });
            self.seq += 1;
        }
    }

    /// Pop the earliest event, `(time, insertion order)`-ordered.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if let Some(ev) = self.lane.pop_front() {
            self.len -= 1;
            return Some((self.now, ev));
        }
        if self.len == 0 {
            return None;
        }
        loop {
            // Next occupied level-0 slot within the current frame.
            if self.l0_count > 0 {
                let frame_base = (self.cursor >> BITS0) << BITS0;
                // The scan position may never trail time itself nor its
                // own frame: a snapshot restored with a stale cursor
                // would wrap the slot offset below in release builds.
                debug_assert!(
                    self.cursor >= self.now,
                    "cursor {} behind now {} (stale snapshot?)",
                    self.cursor,
                    self.now
                );
                debug_assert!(
                    self.cursor >= frame_base,
                    "cursor {} behind its frame base {frame_base}",
                    self.cursor
                );
                let from = (self.cursor - frame_base) as usize;
                if let Some(s) = self.l0_bits.next(from) {
                    let t = frame_base + s as u64;
                    debug_assert!(
                        t >= self.cursor,
                        "level-0 slot at {t} behind the cursor {}",
                        self.cursor
                    );
                    self.cursor = t;
                    self.now = t;
                    self.l0_bits.clear(s);
                    let slot = &mut self.l0[s];
                    self.l0_count -= slot.len();
                    self.len -= 1;
                    // Singleton slots (the common case) skip the lane.
                    if slot.len() == 1 {
                        let (et, ev) = slot.pop().expect("len checked");
                        debug_assert_eq!(et, t);
                        return Some((t, ev));
                    }
                    for (et, ev) in slot.drain(..) {
                        debug_assert_eq!(et, t);
                        self.lane.push_back(ev);
                    }
                    let ev = self.lane.pop_front().expect("occupied slot drained");
                    return Some((t, ev));
                }
                unreachable!("l0_count > 0 but no occupied slot at/after the cursor");
            }
            // Frame exhausted: advance to the next frame holding events.
            let cur_frame = self.cursor >> BITS0;
            let next_frame = if self.l1_count > 0 {
                let sf_base = (cur_frame >> BITS1) << BITS1;
                debug_assert!(
                    cur_frame + 1 > sf_base,
                    "frame {cur_frame} behind its superframe base {sf_base}"
                );
                let from = (cur_frame + 1 - sf_base) as usize;
                let s = self.l1_bits.next(from).expect("level 1 only holds the current superframe");
                sf_base + s as u64
            } else if let Some(top) = self.heap.peek() {
                // The wheel is empty: jump straight to the heap's head.
                top.t >> BITS0
            } else {
                debug_assert_eq!(self.len, 0);
                return None;
            };
            self.cursor = next_frame << BITS0;
            // Crossing a superframe boundary: migrate that superframe's
            // overflow events into the wheel (in `(t, seq)` order, which
            // keeps slot FIFO order correct).
            if next_frame >> BITS1 != cur_frame >> BITS1 {
                let sf = next_frame >> BITS1;
                while let Some(top) = self.heap.peek() {
                    if top.t >> (BITS0 + BITS1) != sf {
                        break;
                    }
                    let Overflow { t, ev, .. } = self.heap.pop().expect("peeked");
                    let frame = t >> BITS0;
                    if frame == next_frame {
                        let s = (t & MASK0) as usize;
                        self.l0_bits.set(s);
                        self.l0[s].push((t, ev));
                        self.l0_count += 1;
                    } else {
                        let s = (frame & MASK1) as usize;
                        self.l1_bits.set(s);
                        self.l1[s].push((t, ev));
                        self.l1_count += 1;
                    }
                }
            }
            // Cascade the new frame's level-1 slot into level 0.
            let s1 = (next_frame & MASK1) as usize;
            if self.l1_bits.test(s1) {
                self.stats.cascades += 1;
                let l0 = &mut self.l0;
                let l0_bits = &mut self.l0_bits;
                let slot = &mut self.l1[s1];
                self.l1_count -= slot.len();
                self.l0_count += slot.len();
                for (t, ev) in slot.drain(..) {
                    debug_assert_eq!(t >> BITS0, next_frame);
                    let s0 = (t & MASK0) as usize;
                    l0_bits.set(s0);
                    l0[s0].push((t, ev));
                }
                self.l1_bits.clear(s1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Reference implementation: the backends' previous global heap.
    struct RefQueue<T> {
        heap: BinaryHeap<Overflow<T>>,
        seq: u64,
    }

    impl<T> RefQueue<T> {
        fn new() -> Self {
            RefQueue { heap: BinaryHeap::new(), seq: 0 }
        }
        fn push(&mut self, t: u64, ev: T) {
            self.heap.push(Overflow { t, seq: self.seq, ev });
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(u64, T)> {
            self.heap.pop().map(|o| (o.t, o.ev))
        }
    }

    #[test]
    fn empty_pops_none() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_a_timestamp() {
        let mut q = EventQueue::new();
        for (t, id) in [(5u64, 0u32), (5, 1), (3, 2), (5, 3), (3, 4)] {
            q.push(t, id);
        }
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(3, 2), (3, 4), (5, 0), (5, 1), (5, 3)]);
    }

    #[test]
    fn lane_takes_zero_delay_events() {
        let mut q = EventQueue::new();
        q.push(10, 'a');
        assert_eq!(q.pop(), Some((10, 'a')));
        // now == 10: these go through the lane.
        q.push(10, 'b');
        q.push(10, 'c');
        q.push(11, 'd');
        assert!(q.stats().lane_pushes >= 2);
        assert_eq!(q.pop(), Some((10, 'b')));
        assert_eq!(q.pop(), Some((10, 'c')));
        assert_eq!(q.pop(), Some((11, 'd')));
    }

    #[test]
    fn spans_frames_superframes_and_overflow() {
        let mut q = EventQueue::new();
        // One event per tier: current frame, later frame in the same
        // superframe, beyond the superframe horizon (heap), and far out.
        let times = [100u64, 10_000, 20_000_000, 3_000_000_000];
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        assert!(q.stats().heap_pushes >= 2);
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_events_keep_fifo_ties() {
        let mut q = EventQueue::new();
        let far = 100_000_000; // beyond the superframe horizon
        for id in 0..32u32 {
            q.push(far, id);
        }
        for id in 0..32u32 {
            assert_eq!(q.pop(), Some((far, id)));
        }
    }

    #[test]
    fn clear_resets_time() {
        let mut q = EventQueue::new();
        q.push(1_000, 1u8);
        q.pop();
        q.push(2_000, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 0);
        q.push(5, 3); // would violate time order had clear not rewound
        assert_eq!(q.pop(), Some((5, 3)));
    }

    /// The contract test: a long random interleaving of pushes and pops
    /// must match the `(t, seq)` binary-heap reference exactly, across
    /// delay scales that exercise lane, both wheel levels, overflow
    /// migration, and empty-wheel jumps.
    #[test]
    fn matches_reference_heap_order_under_stress() {
        let mut rng = StdRng::seed_from_u64(0xA7145);
        for round in 0..4u64 {
            let mut q = EventQueue::new();
            let mut r = RefQueue::new();
            let mut now = 0u64;
            let mut id = 0u64;
            for _ in 0..20_000 {
                let roll = rng.random::<u64>() % 100;
                if roll < 55 {
                    // Push with a delay profile spanning every tier.
                    let delay = match rng.random::<u64>() % 10 {
                        0 => 0,
                        1..=4 => rng.random::<u64>() % 1_000,
                        5..=6 => rng.random::<u64>() % 100_000,
                        7..=8 => rng.random::<u64>() % 30_000_000,
                        _ => rng.random::<u64>() % 5_000_000_000,
                    };
                    q.push(now + delay, id);
                    r.push(now + delay, id);
                    id += 1;
                } else {
                    let a = q.pop();
                    let b = r.pop();
                    assert_eq!(a, b, "divergence in round {round} at id {id}");
                    if let Some((t, _)) = a {
                        now = t;
                    }
                }
            }
            // Drain both completely.
            loop {
                let a = q.pop();
                let b = r.pop();
                assert_eq!(a, b, "drain divergence in round {round}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Snapshot contract: a cloned queue pops the exact same stream as
    /// the original, including when the clone is taken mid-drain with
    /// the cursor parked exactly on frame and superframe boundaries —
    /// the positions where a stale-cursor restore would underflow the
    /// slot-offset arithmetic `pop` guards with `debug_assert!`.
    #[test]
    fn clone_resumes_identically_at_boundaries() {
        let mut rng = StdRng::seed_from_u64(0xB00);
        let mut q = EventQueue::new();
        let mut now = 0u64;
        // Boundary-heavy schedule: frame edges (multiples of 1 << BITS0),
        // superframe edges (1 << (BITS0 + BITS1)), overflow, plus noise.
        for id in 0..4_000u64 {
            let delay = match rng.random::<u64>() % 8 {
                0 => 0,
                1 => (1 << BITS0) - (now & MASK0), // next frame boundary
                2 => (1 << (BITS0 + BITS1)) - (now & ((1 << (BITS0 + BITS1)) - 1)),
                3..=5 => rng.random::<u64>() % 50_000,
                _ => rng.random::<u64>() % 40_000_000,
            };
            q.push(now + delay, id);
            if rng.random::<u64>() % 3 == 0 {
                if let Some((t, _)) = q.pop() {
                    now = t;
                }
            }
        }
        // Checkpoint at several points of the drain (first pop lands on
        // whatever boundary the schedule reached) and verify the clone's
        // remaining stream is bit-identical to the original's.
        while !q.is_empty() {
            let mut snap = q.clone();
            assert_eq!(snap.len(), q.len());
            assert_eq!(snap.now(), q.now());
            for _ in 0..500 {
                let a = q.pop();
                let b = snap.pop();
                assert_eq!(a, b, "clone diverged from original after checkpoint");
                if a.is_none() {
                    break;
                }
            }
            // Fast-forward the original past the compared prefix — the
            // next checkpoint is taken deeper into the drain.
            q = snap;
            for _ in 0..500 {
                if q.pop().is_none() {
                    break;
                }
            }
        }
    }

    /// A clone taken with events parked in every tier (lane, level 0,
    /// level 1, overflow heap) stays independent of the original: popping
    /// one never perturbs the other.
    #[test]
    fn clone_is_independent_of_the_original() {
        let mut q = EventQueue::new();
        q.push(10, 0u64);
        assert_eq!(q.pop(), Some((10, 0)));
        q.push(10, 1); // lane
        q.push(500, 2); // level 0
        q.push(50_000, 3); // level 1
        q.push(60_000_000, 4); // heap
        let mut snap = q.clone();
        // Drain the original completely; the clone must still replay the
        // full stream afterwards.
        let original: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let cloned: Vec<_> = std::iter::from_fn(|| snap.pop()).collect();
        assert_eq!(original, vec![(10, 1), (500, 2), (50_000, 3), (60_000_000, 4)]);
        assert_eq!(original, cloned);
    }

    #[test]
    fn sparse_far_future_jumps_do_not_scan() {
        // A handful of events spread over 10 simulated seconds must pop
        // quickly (the scan jumps via the heap instead of walking every
        // frame). The time bound is implicit: the test would blow the
        // suite budget if the jump logic regressed to linear scanning.
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.push(i * 10_000_000, i);
        }
        for i in 0..1_000u64 {
            assert_eq!(q.pop(), Some((i * 10_000_000, i)));
        }
    }
}
