//! Deterministic multiplicative hashing for hot-path maps.
//!
//! The simulation backends key `HashMap`s on small, already-well-mixed
//! integers: packed `(src, dst, bucket)` route-cache keys in the packet
//! engine, `(src, dst, tag)` match keys in the two-sided matcher. For
//! those, SipHash's per-lookup cost (keyed initialization plus a rounds
//! pipeline, on maps hit once or twice per simulated message) buys
//! nothing — the keys are attacker-free simulation state. [`FastHasher`]
//! is a Fibonacci-multiplicative mixer: one multiply and one xor-shift
//! per written word.
//!
//! **Determinism contract:** unlike `RandomState`, a [`FastBuildHasher`]
//! is a pure function of its seed (default 0), so bucket layouts are
//! identical across runs, processes, and platforms. Simulation results
//! must *never* depend on that layout — nothing order-sensitive may
//! iterate these maps — and `core::matcher` pins exactly that with a
//! seed-independence test.

use std::hash::{BuildHasher, Hasher};

const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// A fast, deterministic hasher for small integer keys.
///
/// Not collision-resistant against adversarial input; use only for maps
/// keyed on simulation state.
#[derive(Debug, Clone, Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, n: u64) {
        let mut x = (self.0 ^ n).wrapping_mul(PHI);
        x ^= x >> 32;
        self.0 = x;
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Byte-wise FNV-1a for odd-sized tails; the integer fast paths
        // below cover every hot key shape.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A [`BuildHasher`] producing [`FastHasher`]s from an explicit seed.
///
/// The default seed is 0; [`FastBuildHasher::with_seed`] exists so tests
/// can prove that observable behavior is independent of bucket layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastBuildHasher {
    seed: u64,
}

impl FastBuildHasher {
    pub fn with_seed(seed: u64) -> Self {
        FastBuildHasher { seed }
    }
}

impl BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T, seed: u64) -> u64 {
        FastBuildHasher::with_seed(seed).hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        let key = (3u32, 7u32, 11u32);
        assert_eq!(hash_of(&key, 0), hash_of(&key, 0));
        assert_eq!(hash_of(&42u64, 9), hash_of(&42u64, 9));
    }

    #[test]
    fn seed_changes_the_hash() {
        assert_ne!(hash_of(&42u64, 0), hash_of(&42u64, 1));
    }

    #[test]
    fn nearby_keys_spread() {
        // Dense small keys must not collide in the low bits hashbrown
        // uses for bucket selection.
        let mut low7 = std::collections::HashSet::new();
        for i in 0..128u64 {
            low7.insert(hash_of(&i, 0) & 0x7f);
        }
        assert!(low7.len() > 80, "only {} distinct low-7-bit patterns", low7.len());
    }

    #[test]
    fn tuple_fields_all_matter() {
        let base = hash_of(&(1u32, 2u32, 3u32), 0);
        assert_ne!(base, hash_of(&(9u32, 2u32, 3u32), 0));
        assert_ne!(base, hash_of(&(1u32, 9u32, 3u32), 0));
        assert_ne!(base, hash_of(&(1u32, 2u32, 9u32), 0));
    }

    #[test]
    fn odd_sized_writes_hash_via_bytes() {
        assert_ne!(hash_of(&[1u8, 2, 3][..], 0), hash_of(&[1u8, 2, 4][..], 0));
    }
}
