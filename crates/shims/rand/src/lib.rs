//! Offline, dependency-free stand-in for the parts of the [`rand`] crate
//! that ATLAHS uses.
//!
//! The simulators only need *reproducible* pseudo-randomness — every
//! backend seeds its generator from a config field so that runs are
//! deterministic and comparable — so a small SplitMix64 generator behind
//! the familiar `StdRng` / `SeedableRng` / `shuffle` names is sufficient.
//! The statistical quality bar is "decorrelated noise for jitter, loss,
//! and placement shuffles", not cryptography.
//!
//! Provided surface:
//!
//! * [`rngs::StdRng`] — the concrete generator (SplitMix64),
//! * [`SeedableRng::seed_from_u64`] — deterministic construction,
//! * [`RngExt::random`] / [`RngExt::random_range`] — typed sampling,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffles for placement.
//!
//! [`rand`]: https://docs.rs/rand

/// Core sampling interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from an integer seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
///
/// This plays the role of `rand`'s `StandardUniform` distribution for the
/// handful of types the simulators draw directly.
pub trait SampleStandard {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as `random_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Modulo bias is ~span/2^64, negligible for simulator spans.
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
///
/// Named `RngExt` (rather than `Rng`) to make it obvious at the call sites
/// that this is the local shim's extension trait.
pub trait RngExt: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a half-open `low..high` range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and passes BigCrush for non-crypto use.
    ///
    /// Chosen because it is a pure function of a single `u64` state word,
    /// which keeps backend state snapshots trivial.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`).

    use super::{RngCore, RngExt};

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle; every permutation is equally likely
        /// (up to the generator's quality).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
