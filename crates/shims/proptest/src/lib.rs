//! Offline, dependency-free stand-in for the parts of the [`proptest`]
//! property-testing crate that the ATLAHS test suites use.
//!
//! Differences from the real crate, deliberate for an offline CI image:
//!
//! * **No shrinking.** A failing case panics with its (deterministic) case
//!   index; re-running reproduces it exactly.
//! * **Deterministic seeding.** Every `proptest!` test runs the same fixed
//!   generator stream, so failures are reproducible across machines — at
//!   the cost of not exploring new inputs between runs.
//! * **Generation only.** [`strategy::Strategy`] is "a way to produce a
//!   random value", not a value tree.
//!
//! Supported surface: range strategies (`0u32..8`), tuples of strategies,
//! [`strategy::Just`], [`collection::vec`], `prop_map` / `prop_flat_map`,
//! the [`proptest!`] macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, and the
//! `prop_assert*` macros.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    //! Configuration and the deterministic generator behind every test.

    /// Per-test configuration (the subset of proptest's that matters here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 generator used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` macro.
        pub fn deterministic() -> Self {
            TestRng { state: 0x5EED_5EED_5EED_5EED }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[low, high)` (u128 arithmetic avoids
        /// overflow at type extremes).
        pub fn below(&mut self, low: u128, high: u128) -> u128 {
            assert!(low < high, "empty range strategy");
            low + (self.next_u64() as u128) % (high - low)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for producing random values of an associated type.
    pub trait Strategy: Sized {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every produced value with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Produce a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u128, self.end as u128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0);
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s whose length is drawn from a range and
    /// whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(strategy, 0..24)`: vectors of 0–23 elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.below(self.len.start as u128, self.len.end as u128) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let strat = ( $($strat,)+ );
                for _case in 0..cfg.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strat, &mut rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = crate::collection::vec(1u32..5, 0..8);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 8);
            assert!(v.iter().all(|x| (1..5).contains(x)));
        }
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..200 {
            let (n, i) = s.generate(&mut rng);
            assert!(i < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_drives_cases(x in 0u64..100, y in 0u64..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_ne!(x + 1, 0);
        }
    }
}
