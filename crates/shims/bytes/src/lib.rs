//! Offline, dependency-free stand-in for the parts of the [`bytes`] crate
//! that ATLAHS uses (the GOAL binary codec in `atlahs_goal::binary`).
//!
//! The container this repository builds in has no access to crates.io, so
//! external dependencies are vendored as minimal API-compatible shims under
//! `crates/shims/`. Only the cursor-style [`Buf`] reads over `&[u8]` and
//! [`BufMut`] writes into `Vec<u8>` are provided; that is the entire surface
//! the codec needs. Swapping in the real crate is a one-line change in the
//! workspace manifest.
//!
//! [`bytes`]: https://docs.rs/bytes

/// Read-side cursor over a contiguous byte buffer.
///
/// Mirrors `bytes::Buf` for the methods the GOAL codec calls: consuming
/// reads advance an internal cursor (for `&[u8]`, the slice itself).
pub trait Buf {
    /// Number of bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Advance the cursor past `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Returns the bytes between the cursor and the end of the buffer.
    fn chunk(&self) -> &[u8];

    /// True while at least one unread byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume and return one byte.
    ///
    /// # Panics
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side sink for byte output.
///
/// Mirrors `bytes::BufMut` for the methods the GOAL codec calls.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a single byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cursor_reads_and_advances() {
        let data = [1u8, 2, 3];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.remaining(), 3);
        assert_eq!(buf.get_u8(), 1);
        buf.advance(1);
        assert!(buf.has_remaining());
        assert_eq!(buf.chunk(), &[3]);
        assert_eq!(buf.get_u8(), 3);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn vec_sink_appends() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_slice(&[8, 9]);
        assert_eq!(out, vec![7, 8, 9]);
    }
}
