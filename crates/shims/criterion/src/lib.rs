//! Offline, dependency-free stand-in for the parts of the [`criterion`]
//! benchmark harness that the `atlahs_bench` suite uses.
//!
//! This shim keeps the familiar structure — `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Bencher::iter` — but measures with
//! plain `std::time::Instant` and reports median ns/iteration to stdout
//! instead of doing criterion's full statistical analysis. It exists so the
//! `crates/bench/benches/*.rs` files compile and run (`cargo bench`)
//! without network access; swap in the real crate for publication-grade
//! statistics.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// measured batch regardless of the variant, so this is API-compatibility
/// only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input; batch many iterations per setup.
    SmallInput,
    /// Large per-iteration input; batch few iterations per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement knobs shared by every benchmark in a run.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Wall-clock budget per benchmark (warmup + measurement).
    measurement_time: Duration,
    /// Number of timed samples collected per benchmark.
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(300), samples: 15 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks. Settings changed on the
    /// group apply only within it.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { budget: self.measurement_time, samples: self.samples, _c: self, name }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), self.measurement_time, self.samples, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: String, budget: Duration, samples: usize, mut f: F) {
    let mut b = Bencher { budget, samples, median_ns: 0.0 };
    f(&mut b);
    println!("  {id:40} {:>12.1} ns/iter", b.median_ns);
}

/// A named collection of benchmarks with its own copy of the parent's
/// settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    budget: Duration,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(id, self.budget, self.samples, f);
        self
    }

    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Cap the wall-clock measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// End the group. (The real crate flushes reports here; the shim
    /// prints as it goes, so this only marks the boundary.)
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measure `routine` repeatedly and record the median time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that fills roughly
        // one sample's worth of the budget.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget / self.samples as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            times.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = times[times.len() / 2];
    }

    /// Measure `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            times.push(t.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = times[times.len() / 2];
    }
}

/// Declare a group function that runs each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `fn main` running the listed groups (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_positive_time() {
        let mut c = Criterion { measurement_time: Duration::from_millis(10), samples: 3 };
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion { measurement_time: Duration::from_millis(10), samples: 3 };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
