//! SPC block trace → Direct Drive GOAL conversion (paper §3.1.3).
//!
//! A thin orchestration layer over [`atlahs_directdrive`]: it sizes the
//! storage cluster, runs the request-flow lowering, and returns both the
//! schedule and the per-request completion vertices (used by harnesses to
//! extract completion-time statistics).

use atlahs_directdrive::{trace_to_goal, DirectDriveLayout, ServiceParams};
use atlahs_goal::{GoalBuilder, GoalError, GoalSchedule, TaskId};
use atlahs_tracers::storage::SpcTrace;

/// Storage conversion configuration.
#[derive(Debug, Clone)]
pub struct StorageToGoalConfig {
    pub clients: usize,
    pub ccs: usize,
    pub bss: usize,
    pub params: ServiceParams,
}

impl Default for StorageToGoalConfig {
    fn default() -> Self {
        StorageToGoalConfig { clients: 8, ccs: 2, bss: 12, params: ServiceParams::default() }
    }
}

/// Result of a storage conversion.
pub struct StorageGoal {
    pub goal: GoalSchedule,
    pub layout: DirectDriveLayout,
    /// Per-request completion vertex (client-side), in trace order.
    pub completions: Vec<TaskId>,
}

/// Convert a block trace into a Direct Drive GOAL schedule.
pub fn convert(trace: &SpcTrace, cfg: &StorageToGoalConfig) -> Result<StorageGoal, GoalError> {
    let layout = DirectDriveLayout::standard(cfg.clients, cfg.ccs, cfg.bss);
    let mut b = GoalBuilder::new(layout.total_ranks());
    let completions = trace_to_goal(trace, &layout, &cfg.params, &mut b);
    Ok(StorageGoal { goal: b.build()?, layout, completions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::{backends::IdealBackend, Simulation};
    use atlahs_tracers::storage::{financial_like, OltpConfig};

    #[test]
    fn convert_and_simulate() {
        let trace = financial_like(&OltpConfig { operations: 300, ..OltpConfig::default() });
        let sg = convert(&trace, &StorageToGoalConfig::default()).unwrap();
        assert_eq!(sg.completions.len(), 300);
        atlahs_goal::stats::check_matching(&sg.goal).unwrap();
        let mut be = IdealBackend::new(12.5, 500);
        let rep = Simulation::new(&sg.goal).run(&mut be).unwrap();
        assert_eq!(rep.completed, sg.goal.total_tasks());
    }

    #[test]
    fn cluster_size_matches_layout() {
        let trace = financial_like(&OltpConfig { operations: 50, ..OltpConfig::default() });
        let cfg = StorageToGoalConfig { clients: 4, ccs: 1, bss: 6, ..Default::default() };
        let sg = convert(&trace, &cfg).unwrap();
        assert_eq!(sg.goal.num_ranks(), 4 + 1 + 6 + 3);
        assert_eq!(sg.layout.bss.len(), 6);
    }
}
