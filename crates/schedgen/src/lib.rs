//! # atlahs-schedgen
//!
//! Schedule generators: everything that turns an application trace (or a
//! synthetic pattern) into a GOAL schedule (paper §3.1).
//!
//! * [`mpi2goal`] — replay liballprof MPI traces: timestamp gaps become
//!   `calc` vertices, collectives are substituted with point-to-point
//!   algorithms from `atlahs-collectives` (Schedgen proper, §3.1.1);
//! * [`nccl2goal`] — the four-stage NCCL pipeline of §3.1.2: per-stream
//!   DAGs with inferred computation (Stage 2), collective decomposition
//!   under `NCCL_ALGO`/`NCCL_PROTO`/channels (Stage 3), and GPU→node
//!   grouping with intra-node communication lowered to `calc` (Stage 4);
//! * [`storage2goal`] — SPC block traces through the Direct Drive model;
//! * [`synthetic`] — the microbenchmarks networking papers usually rely on
//!   (incast, permutation, uniform, ring), for the Fig. 1C comparison.

#![forbid(unsafe_code)]

pub mod mpi2goal;
pub mod nccl2goal;
pub mod storage2goal;
pub mod synthetic;
