//! MPI trace → GOAL conversion (Schedgen, paper §3.1.1).
//!
//! The converter walks every rank's record timeline. The gap between the
//! end of one operation and the start of the next becomes a `calc` vertex
//! (the computation the tracer observed). Point-to-point records become
//! send/recv vertices directly; collective records are substituted with
//! point-to-point algorithms chosen by [`MpiToGoalConfig`].
//!
//! Collective correspondence across ranks uses MPI's own ordering rule:
//! the k-th collective call on a communicator is the same *instance* on
//! every rank, so timelines are consumed in lock-step at collective
//! boundaries while p2p records in between are emitted per rank.

use atlahs_collectives::{mpi as coll, CollParams, Ports};
use atlahs_goal::{GoalBuilder, GoalError, GoalSchedule, Rank, TaskId};
use atlahs_tracers::mpi::{MpiOp, MpiTrace};

/// Tag space reserved for collective instances (p2p tags must stay below).
pub const COLL_TAG_BASE: u32 = 1 << 20;

/// Algorithm selection per collective, mirroring Schedgen's options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    Ring,
    RecursiveDoubling,
    Rabenseifner,
    /// Latency-optimal below the cutoff, bandwidth-optimal above.
    Auto,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlgo {
    Binomial,
    RingPipelined,
    Auto,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlltoallAlgo {
    Linear,
    Pairwise,
    Bruck,
    /// Bruck below `auto_cutoff / k` bytes per block, pairwise above —
    /// the latency/bandwidth switch real MPI libraries apply.
    Auto,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherAlgo {
    Ring,
    Bruck,
    Auto,
}

/// Full converter configuration.
#[derive(Debug, Clone)]
pub struct MpiToGoalConfig {
    pub coll: CollParams,
    pub allreduce: AllreduceAlgo,
    pub bcast: BcastAlgo,
    pub alltoall: AlltoallAlgo,
    pub allgather: AllgatherAlgo,
    /// Size cutoff (bytes) separating latency- from bandwidth-optimal
    /// algorithms under `Auto`.
    pub auto_cutoff: u64,
}

impl Default for MpiToGoalConfig {
    fn default() -> Self {
        MpiToGoalConfig {
            coll: CollParams::default(),
            allreduce: AllreduceAlgo::Auto,
            bcast: BcastAlgo::Auto,
            alltoall: AlltoallAlgo::Auto,
            allgather: AllgatherAlgo::Auto,
            auto_cutoff: 64 * 1024,
        }
    }
}

/// Convert a trace to a GOAL schedule.
pub fn convert(trace: &MpiTrace, cfg: &MpiToGoalConfig) -> Result<GoalSchedule, GoalError> {
    let n = trace.num_ranks();
    let mut b = GoalBuilder::new(n);
    let ranks: Vec<Rank> = (0..n as u32).collect();

    // Per-rank cursor state.
    let mut idx = vec![0usize; n];
    let mut tail: Vec<Option<TaskId>> = vec![None; n];
    let mut prev_end = vec![0u64; n];
    let mut next_coll_tag = COLL_TAG_BASE;

    // Helper: chain `t` after the rank's tail.
    macro_rules! chain {
        ($b:expr, $tail:expr, $r:expr, $t:expr) => {{
            if let Some(prev) = $tail[$r] {
                $b.requires($r as Rank, $t, prev);
            }
            $tail[$r] = Some($t);
        }};
    }

    loop {
        let mut all_done = true;
        let mut at_collective = true;

        // Emit p2p ops until every rank is either done or at a collective.
        for r in 0..n {
            while idx[r] < trace.timelines[r].len() {
                let rec = &trace.timelines[r][idx[r]];
                if is_collective(&rec.op) {
                    break;
                }
                let gap = rec.tstart.saturating_sub(prev_end[r]);
                if gap > 0 {
                    let c = b.calc(r as Rank, gap);
                    chain!(b, tail, r, c);
                }
                prev_end[r] = rec.tend;
                match rec.op {
                    MpiOp::Send { bytes, dst, tag } => {
                        let s = b.send(r as Rank, dst, bytes, tag);
                        chain!(b, tail, r, s);
                    }
                    MpiOp::Recv { bytes, src, tag } => {
                        let v = b.recv(r as Rank, src, bytes, tag);
                        chain!(b, tail, r, v);
                    }
                    MpiOp::Sendrecv { bytes, dst, src, tag } => {
                        // send and recv overlap; a dummy joins them.
                        let prev = tail[r];
                        let s = b.send(r as Rank, dst, bytes, tag);
                        let v = b.recv(r as Rank, src, bytes, tag);
                        if let Some(p) = prev {
                            b.requires(r as Rank, s, p);
                            b.requires(r as Rank, v, p);
                        }
                        let j = b.dummy(r as Rank);
                        b.requires(r as Rank, j, s);
                        b.requires(r as Rank, j, v);
                        tail[r] = Some(j);
                    }
                    _ => unreachable!("collectives handled below"),
                }
                idx[r] += 1;
            }
            if idx[r] < trace.timelines[r].len() {
                all_done = false;
            } else {
                at_collective = false;
            }
        }
        if all_done {
            break;
        }
        if !at_collective {
            // Some rank is exhausted while others sit at a collective: the
            // trace is inconsistent (collective without all participants).
            let stuck = (0..n).find(|&r| idx[r] < trace.timelines[r].len()).unwrap();
            return Err(GoalError::Compose {
                msg: format!(
                    "rank {stuck} reaches a collective but other ranks have no records left"
                ),
            });
        }

        // All ranks at a collective record: verify and emit one instance.
        let op0 = trace.timelines[0][idx[0]].op;
        for (r, &ir) in idx.iter().enumerate().take(n).skip(1) {
            let opr = trace.timelines[r][ir].op;
            if std::mem::discriminant(&opr) != std::mem::discriminant(&op0) {
                return Err(GoalError::Compose {
                    msg: format!("collective mismatch: rank 0 at {op0:?}, rank {r} at {opr:?}"),
                });
            }
        }
        // Pre-collective compute gaps.
        for r in 0..n {
            let rec = &trace.timelines[r][idx[r]];
            let gap = rec.tstart.saturating_sub(prev_end[r]);
            if gap > 0 {
                let c = b.calc(r as Rank, gap);
                chain!(b, tail, r, c);
            }
            prev_end[r] = rec.tend;
        }
        let tag = next_coll_tag;
        next_coll_tag += 64;
        let ports = emit_collective(&mut b, &ranks, &op0, tag, cfg);
        for r in 0..n {
            if let Some(prev) = tail[r] {
                b.requires(r as Rank, ports.entry[r], prev);
            }
            tail[r] = Some(ports.exit[r]);
            idx[r] += 1;
        }
    }

    b.build()
}

fn is_collective(op: &MpiOp) -> bool {
    !matches!(op, MpiOp::Send { .. } | MpiOp::Recv { .. } | MpiOp::Sendrecv { .. })
}

fn emit_collective(
    b: &mut GoalBuilder,
    ranks: &[Rank],
    op: &MpiOp,
    tag: u32,
    cfg: &MpiToGoalConfig,
) -> Ports {
    let p = &cfg.coll;
    match *op {
        MpiOp::Allreduce { bytes } => match cfg.allreduce {
            AllreduceAlgo::Ring => coll::allreduce_ring(b, ranks, bytes, tag, p),
            AllreduceAlgo::RecursiveDoubling => coll::allreduce_recdoub(b, ranks, bytes, tag, p),
            AllreduceAlgo::Rabenseifner => coll::allreduce_rabenseifner(b, ranks, bytes, tag, p),
            AllreduceAlgo::Auto => {
                if bytes <= cfg.auto_cutoff {
                    coll::allreduce_recdoub(b, ranks, bytes, tag, p)
                } else {
                    coll::allreduce_ring(b, ranks, bytes, tag, p)
                }
            }
        },
        MpiOp::Bcast { bytes, root } => match cfg.bcast {
            BcastAlgo::Binomial => coll::bcast_binomial(b, ranks, bytes, root as usize, tag, p),
            BcastAlgo::RingPipelined => {
                coll::bcast_ring_pipelined(b, ranks, bytes, root as usize, tag, p)
            }
            BcastAlgo::Auto => {
                if bytes <= cfg.auto_cutoff {
                    coll::bcast_binomial(b, ranks, bytes, root as usize, tag, p)
                } else {
                    coll::bcast_ring_pipelined(b, ranks, bytes, root as usize, tag, p)
                }
            }
        },
        MpiOp::Reduce { bytes, root } => {
            coll::reduce_binomial(b, ranks, bytes, root as usize, tag, p)
        }
        MpiOp::Allgather { bytes } => match cfg.allgather {
            AllgatherAlgo::Ring => coll::allgather_ring(b, ranks, bytes, tag, p),
            AllgatherAlgo::Bruck => coll::allgather_bruck(b, ranks, bytes, tag, p),
            AllgatherAlgo::Auto => {
                if bytes <= cfg.auto_cutoff {
                    coll::allgather_bruck(b, ranks, bytes, tag, p)
                } else {
                    coll::allgather_ring(b, ranks, bytes, tag, p)
                }
            }
        },
        MpiOp::ReduceScatter { bytes } => coll::reduce_scatter_ring(b, ranks, bytes, tag, p),
        MpiOp::Alltoall { bytes } => match cfg.alltoall {
            AlltoallAlgo::Linear => coll::alltoall_linear(b, ranks, bytes, tag, p),
            AlltoallAlgo::Pairwise => coll::alltoall_pairwise(b, ranks, bytes, tag, p),
            AlltoallAlgo::Bruck => coll::alltoall_bruck(b, ranks, bytes, tag, p),
            AlltoallAlgo::Auto => {
                // MPICH-style policy: Bruck for short blocks (log-round
                // aggregation wins), pairwise exchange for long ones.
                if bytes <= cfg.auto_cutoff / 8 {
                    coll::alltoall_bruck(b, ranks, bytes, tag, p)
                } else {
                    coll::alltoall_pairwise(b, ranks, bytes, tag, p)
                }
            }
        },
        MpiOp::Gather { bytes, root } => {
            coll::gather_binomial(b, ranks, bytes, root as usize, tag, p)
        }
        MpiOp::Scatter { bytes, root } => {
            coll::scatter_binomial(b, ranks, bytes, root as usize, tag, p)
        }
        MpiOp::Barrier => coll::barrier_dissemination(b, ranks, tag, p),
        MpiOp::Send { .. } | MpiOp::Recv { .. } | MpiOp::Sendrecv { .. } => {
            unreachable!("p2p handled by caller")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::{backends::IdealBackend, Simulation};
    use atlahs_goal::stats::check_matching;
    use atlahs_tracers::mpi::{self, HpcAppConfig, MpiRecord};

    fn convert_ok(trace: &MpiTrace) -> GoalSchedule {
        let goal = convert(trace, &MpiToGoalConfig::default()).expect("conversion");
        check_matching(&goal).expect("matching");
        let mut backend = IdealBackend::new(10.0, 500);
        let rep = Simulation::new(&goal).run(&mut backend).expect("no deadlock");
        assert_eq!(rep.completed, goal.total_tasks());
        goal
    }

    #[test]
    fn all_skeleton_apps_convert_and_run() {
        let cfg = HpcAppConfig { ranks: 8, iterations: 2, ..HpcAppConfig::default() };
        for t in [
            mpi::cloverleaf(&cfg),
            mpi::hpcg(&cfg),
            mpi::lulesh(&cfg),
            mpi::lammps(&cfg),
            mpi::icon(&cfg),
            mpi::openmx(&cfg),
        ] {
            let goal = convert_ok(&t);
            assert_eq!(goal.num_ranks(), 8);
            assert!(goal.total_tasks() > 50, "{}", t.app);
        }
    }

    #[test]
    fn compute_gaps_become_calcs() {
        // One rank computes 5000 ns between two sends.
        let trace = MpiTrace {
            app: "gap".into(),
            timelines: vec![
                vec![
                    MpiRecord {
                        op: MpiOp::Send { bytes: 8, dst: 1, tag: 0 },
                        tstart: 0,
                        tend: 100,
                    },
                    MpiRecord {
                        op: MpiOp::Send { bytes: 8, dst: 1, tag: 1 },
                        tstart: 5_100,
                        tend: 5_200,
                    },
                ],
                vec![
                    MpiRecord {
                        op: MpiOp::Recv { bytes: 8, src: 0, tag: 0 },
                        tstart: 0,
                        tend: 100,
                    },
                    MpiRecord {
                        op: MpiOp::Recv { bytes: 8, src: 0, tag: 1 },
                        tstart: 100,
                        tend: 200,
                    },
                ],
            ],
        };
        let goal = convert(&trace, &MpiToGoalConfig::default()).unwrap();
        let calcs: Vec<u64> = goal
            .rank(0)
            .tasks()
            .filter_map(|t| match t.kind {
                atlahs_goal::TaskKind::Calc { cost } => Some(cost),
                _ => None,
            })
            .collect();
        assert_eq!(calcs, vec![5_000], "gap = 5100 - 100");
    }

    #[test]
    fn auto_switches_algorithms_by_size() {
        // Small allreduce -> recdoub (log p rounds of full size);
        // large -> ring. They have different send counts.
        let mk = |bytes: u64| MpiTrace {
            app: "x".into(),
            timelines: (0..4)
                .map(|_| vec![MpiRecord { op: MpiOp::Allreduce { bytes }, tstart: 0, tend: 1 }])
                .collect(),
        };
        let small = convert(&mk(1024), &MpiToGoalConfig::default()).unwrap();
        let large = convert(&mk(1 << 20), &MpiToGoalConfig::default()).unwrap();
        let s_small = atlahs_goal::ScheduleStats::of(&small);
        let s_large = atlahs_goal::ScheduleStats::of(&large);
        // recdoub at 4 ranks: 2 rounds x 4 sends = 8; ring: 2*4*3 = 24.
        assert_eq!(s_small.sends, 8);
        assert_eq!(s_large.sends, 24);
    }

    #[test]
    fn mismatched_collectives_rejected() {
        let trace = MpiTrace {
            app: "bad".into(),
            timelines: vec![
                vec![MpiRecord { op: MpiOp::Allreduce { bytes: 8 }, tstart: 0, tend: 1 }],
                vec![MpiRecord { op: MpiOp::Barrier, tstart: 0, tend: 1 }],
            ],
        };
        assert!(convert(&trace, &MpiToGoalConfig::default()).is_err());
    }

    #[test]
    fn missing_participant_rejected() {
        let trace = MpiTrace {
            app: "bad".into(),
            timelines: vec![
                vec![MpiRecord { op: MpiOp::Allreduce { bytes: 8 }, tstart: 0, tend: 1 }],
                vec![],
            ],
        };
        assert!(convert(&trace, &MpiToGoalConfig::default()).is_err());
    }

    #[test]
    fn makespan_reflects_trace_compute() {
        // Strong-scaled trace has less compute -> faster simulated replay.
        let weak = mpi::lulesh(&HpcAppConfig {
            ranks: 8,
            iterations: 3,
            noise: 0.0,
            scaling: mpi::Scaling::Weak,
            ..HpcAppConfig::default()
        });
        let strong = mpi::lulesh(&HpcAppConfig {
            ranks: 8,
            iterations: 3,
            noise: 0.0,
            scaling: mpi::Scaling::Strong,
            ..HpcAppConfig::default()
        });
        let run = |t: &MpiTrace| {
            let goal = convert(t, &MpiToGoalConfig::default()).unwrap();
            let mut be = IdealBackend::new(10.0, 500);
            Simulation::new(&goal).run(&mut be).unwrap().makespan
        };
        assert!(run(&strong) < run(&weak));
    }

    #[test]
    fn replay_on_lgs_backend() {
        let t = mpi::hpcg(&HpcAppConfig { ranks: 8, iterations: 2, ..HpcAppConfig::default() });
        let goal = convert(&t, &MpiToGoalConfig::default()).unwrap();
        let mut be = atlahs_lgs::LgsBackend::new(atlahs_lgs::LogGopsParams::hpc_testbed());
        let rep = Simulation::new(&goal).run(&mut be).unwrap();
        assert_eq!(rep.completed, goal.total_tasks());
        assert!(rep.makespan > 0);
    }
}
