//! The four-stage NCCL-trace → GOAL pipeline (paper §3.1.2, Fig. 5).
//!
//! * **Stage 1** — profiling — is the tracer (`atlahs_tracers::nccl`): nsys
//!   reports with per-stream NCCL kernels and NVTX communicator info.
//! * **Stage 2** — per-GPU stream DAGs: kernels on one CUDA stream are
//!   linked sequentially; the timestamp gap between consecutive kernels
//!   becomes inferred computation; distinct streams get distinct GOAL
//!   compute streams so they overlap in simulation.
//! * **Stage 3** — collective decomposition: every kernel instance is
//!   replaced by its NCCL schedule (ring/tree × protocol × channels) from
//!   `atlahs_collectives::nccl`; instance correspondence uses NCCL's
//!   ordering guarantee (the k-th collective on a communicator is the same
//!   instance on every member).
//! * **Stage 4** — GPU→node grouping: GPU DAGs merge into one DAG per node
//!   (each GPU keeps a private compute-stream range); sends/recvs between
//!   GPUs of the same node are replaced by `calc` vertices costed from the
//!   intra-node (NVLink-class) bandwidth, with an explicit dependency edge
//!   preserving the data flow. Passing a different `gpus_per_node`
//!   restructures the job for "what-if" studies.

use std::collections::{BTreeMap, HashMap};

use atlahs_collectives::nccl::{self as nc, NcclConfig};
use atlahs_eventq::hash::FastBuildHasher;
use atlahs_goal::{GoalBuilder, GoalError, GoalSchedule, Rank, Task, TaskId, TaskKind};
use atlahs_tracers::nccl::{KernelRecord, NcclKernel, NsysReport};

/// Converter configuration.
#[derive(Debug, Clone)]
pub struct NcclToGoalConfig {
    /// NCCL schedule parameters (algorithm, protocol, channels, chunking).
    pub nccl: NcclConfig,
    /// Override the report's GPUs-per-node for what-if restructuring.
    pub gpus_per_node: Option<u32>,
    /// Intra-node transfer cost: base + per-byte (NVLink-class default:
    /// 150 GB/s ≈ 0.0067 ns/B).
    pub intra_base_ns: u64,
    // det-lint: allow(float) — NVLink ns/B cost parameter, one fixed-order multiply then integer cast
    pub intra_ns_per_byte: f64,
    /// Allreduces on communicators larger than this switch from Ring to
    /// Tree, mirroring NCCL's own size-based `NCCL_ALGO` heuristic
    /// (rings over very large communicators pay O(k) latency per chunk
    /// and O(k²) schedule size). `0` disables the switch.
    pub tree_threshold: usize,
}

impl Default for NcclToGoalConfig {
    fn default() -> Self {
        NcclToGoalConfig {
            nccl: NcclConfig::default(),
            gpus_per_node: None,
            intra_base_ns: 1_000,
            // det-lint: allow(float) — NVLink ns/B cost parameter, one fixed-order multiply then integer cast
            intra_ns_per_byte: 1.0 / 150.0,
            // Disabled by default: the bandwidth-regime buckets the LLM
            // tracers emit keep NCCL in its ring regime; set a threshold
            // for latency-bound workloads with very large communicators.
            tree_threshold: 0,
        }
    }
}

/// Stream-id stride separating GPUs merged onto one node (Stage 4).
const STREAM_STRIDE: u32 = 16;

/// Convert an nsys report into a node-level GOAL schedule.
pub fn convert(report: &NsysReport, cfg: &NcclToGoalConfig) -> Result<GoalSchedule, GoalError> {
    let gpu_goal = gpu_level(report, cfg)?;
    let gpn = cfg.gpus_per_node.unwrap_or(report.gpus_per_node).max(1);
    let mapping: Vec<u32> = (0..report.num_gpus() as u32).map(|g| g / gpn).collect();
    group_gpus(&gpu_goal, &mapping, cfg)
}

/// Stages 2+3: a GOAL schedule with one rank per **GPU**.
pub fn gpu_level(report: &NsysReport, cfg: &NcclToGoalConfig) -> Result<GoalSchedule, GoalError> {
    let ngpus = report.num_gpus();
    let mut b = GoalBuilder::new(ngpus);
    // (gpu, record index) -> (entry, exit) vertices of its decomposition.
    // Lookup-only (never iterated), so a seeded hash map is fine.
    let mut ports: HashMap<(u32, usize), (TaskId, TaskId), FastBuildHasher> =
        HashMap::with_hasher(FastBuildHasher::default());
    let mut next_tag: u32 = 0;

    // ---- Stage 3a: collective instances per communicator ----
    let comm_members: HashMap<u32, &[u32], FastBuildHasher> =
        report.comms.iter().map(|c| (c.id, c.gpus.as_slice())).collect();
    // comm id -> per-member ordered record indices. Iterated below, so
    // ordered: builder vertex ids must not depend on bucket layout.
    let mut instances: BTreeMap<u32, Vec<Vec<usize>>> = BTreeMap::new();
    for (gi, g) in report.gpus.iter().enumerate() {
        for (ri, rec) in g.records.iter().enumerate() {
            if matches!(rec.kernel, NcclKernel::Send { .. } | NcclKernel::Recv { .. }) {
                continue;
            }
            let members = comm_members.get(&rec.comm).ok_or_else(|| GoalError::Compose {
                msg: format!("record references unknown communicator {}", rec.comm),
            })?;
            let pos =
                members.iter().position(|&m| m == gi as u32).ok_or_else(|| GoalError::Compose {
                    msg: format!("gpu {gi} not a member of communicator {}", rec.comm),
                })?;
            let lists =
                instances.entry(rec.comm).or_insert_with(|| vec![Vec::new(); members.len()]);
            lists[pos].push(ri);
        }
    }
    for (&comm, lists) in &instances {
        let members = comm_members[&comm];
        let count = lists[0].len();
        if lists.iter().any(|l| l.len() != count) {
            return Err(GoalError::Compose {
                msg: format!("communicator {comm}: members disagree on collective count"),
            });
        }
        for i in 0..count {
            // The member records of this instance.
            let recs: Vec<&KernelRecord> = members
                .iter()
                .zip(lists.iter())
                .map(|(&g, list)| &report.gpus[g as usize].records[list[i]])
                .collect();
            let k0 = recs[0].kernel;
            if recs.iter().any(|r| std::mem::discriminant(&r.kernel) != std::mem::discriminant(&k0))
            {
                return Err(GoalError::Compose {
                    msg: format!("communicator {comm}: instance {i} kernel mismatch"),
                });
            }
            let mut ncfg = cfg.nccl;
            ncfg.stream = recs[0].stream;
            if cfg.tree_threshold > 0 && members.len() > cfg.tree_threshold {
                ncfg.algorithm = nc::NcclAlgo::Tree;
            }
            let tag = alloc_tag(&mut next_tag);
            let bytes = recs[0].bytes;
            let p = match k0 {
                NcclKernel::AllReduce => nc::allreduce(&mut b, members, bytes, tag, &ncfg),
                NcclKernel::Broadcast { root } => {
                    let root_pos = members.iter().position(|&m| m == root).unwrap_or(0);
                    nc::broadcast(&mut b, members, bytes, root_pos, tag, &ncfg)
                }
                NcclKernel::AllGather => nc::allgather(&mut b, members, bytes, tag, &ncfg),
                NcclKernel::ReduceScatter => nc::reduce_scatter(&mut b, members, bytes, tag, &ncfg),
                NcclKernel::AllToAll => {
                    nc::alltoall(&mut b, members, bytes / members.len() as u64, tag, &ncfg)
                }
                NcclKernel::Send { .. } | NcclKernel::Recv { .. } => unreachable!(),
            };
            for (m, &g) in members.iter().enumerate() {
                ports.insert((g, lists[m][i]), (p.entry[m], p.exit[m]));
            }
        }
    }

    // ---- Stage 3b: point-to-point kernel pairs ----
    // (src, dst) -> (ordered send record idxs, ordered recv record idxs),
    // ordered because the pairs are walked to mint tags and vertices.
    let mut p2p: BTreeMap<(u32, u32), (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (gi, g) in report.gpus.iter().enumerate() {
        for (ri, rec) in g.records.iter().enumerate() {
            match rec.kernel {
                NcclKernel::Send { peer } => {
                    p2p.entry((gi as u32, peer)).or_default().0.push(ri);
                }
                NcclKernel::Recv { peer } => {
                    p2p.entry((peer, gi as u32)).or_default().1.push(ri);
                }
                _ => {}
            }
        }
    }
    for (&(src, dst), (sends, recvs)) in &p2p {
        if sends.len() != recvs.len() {
            return Err(GoalError::Compose {
                msg: format!("p2p {src}->{dst}: {} sends but {} recvs", sends.len(), recvs.len()),
            });
        }
        for (&sk, &rk) in sends.iter().zip(recvs) {
            let bytes = report.gpus[src as usize].records[sk].bytes;
            let mut ncfg = cfg.nccl;
            ncfg.stream = report.gpus[src as usize].records[sk].stream;
            ncfg.launch_ns = 0; // launch charged via the stream-gap calc
            let tag = alloc_tag(&mut next_tag);
            let (se, sx, re, rx) = nc::p2p(&mut b, src, dst, bytes, tag, &ncfg);
            ports.insert((src, sk), (se, sx));
            ports.insert((dst, rk), (re, rx));
        }
    }

    // ---- Stage 2: stream chains with inferred computation ----
    for (gi, g) in report.gpus.iter().enumerate() {
        // last (exit, tend) per stream; lookup-only, never iterated
        let mut last: HashMap<u32, (TaskId, u64), FastBuildHasher> =
            HashMap::with_hasher(FastBuildHasher::default());
        for (ri, rec) in g.records.iter().enumerate() {
            let &(entry, exit) = ports.get(&(gi as u32, ri)).ok_or_else(|| GoalError::Compose {
                msg: format!("gpu {gi} record {ri} lost its ports"),
            })?;
            match last.get(&rec.stream) {
                Some(&(prev_exit, prev_end)) => {
                    let gap = rec.tstart.saturating_sub(prev_end);
                    if gap > 0 {
                        let c = b.calc_on(gi as Rank, gap, rec.stream);
                        b.requires(gi as Rank, c, prev_exit);
                        b.requires(gi as Rank, entry, c);
                    } else {
                        b.requires(gi as Rank, entry, prev_exit);
                    }
                }
                None => {
                    // Leading computation before the stream's first kernel.
                    if rec.tstart > 0 {
                        let c = b.calc_on(gi as Rank, rec.tstart, rec.stream);
                        b.requires(gi as Rank, entry, c);
                    }
                }
            }
            last.insert(rec.stream, (exit, rec.tend));
        }
    }

    b.build()
}

fn alloc_tag(next: &mut u32) -> u32 {
    let t = *next;
    *next += 64; // room for per-channel tag offsets
    t
}

/// Stage 4: merge GPU ranks into node ranks.
///
/// `mapping[g]` is the node of GPU `g`. Streams are offset per GPU so they
/// stay independent; intra-node sends/recvs become calc vertices joined by
/// an explicit dependency edge (the NVLink copy).
pub fn group_gpus(
    gpu_goal: &GoalSchedule,
    mapping: &[u32],
    cfg: &NcclToGoalConfig,
) -> Result<GoalSchedule, GoalError> {
    let ngpus = gpu_goal.num_ranks();
    assert_eq!(mapping.len(), ngpus, "mapping must cover every GPU");
    let nnodes = mapping.iter().copied().max().map_or(0, |m| m as usize + 1);
    // local index of each gpu within its node
    let mut local = vec![0u32; ngpus];
    let mut counts = vec![0u32; nnodes];
    for g in 0..ngpus {
        local[g] = counts[mapping[g] as usize];
        counts[mapping[g] as usize] += 1;
    }

    let mut b = GoalBuilder::new(nnodes);
    // (gpu, old task id) -> new task id on the node; lookup-only
    let mut remap: HashMap<(u32, u32), TaskId, FastBuildHasher> =
        HashMap::with_hasher(FastBuildHasher::default());
    // intra-node pairing: (src_gpu, dst_gpu, tag) -> fifo lists of new
    // ids. Ordered maps: the pairing loop below iterates them, and the
    // dependency-edge insertion order feeds the CSR layout.
    let mut intra_sends: BTreeMap<(u32, u32, u32), Vec<TaskId>> = BTreeMap::new();
    let mut intra_recvs: BTreeMap<(u32, u32, u32), Vec<(u32, TaskId)>> = BTreeMap::new();

    for g in 0..ngpus {
        let node = mapping[g];
        let sched = gpu_goal.rank(g as Rank);
        for (ti, t) in sched.tasks().enumerate() {
            let stream = local[g] * STREAM_STRIDE + t.stream;
            let new_id = match t.kind {
                TaskKind::Calc { cost } => b.add_task(node, Task::calc(cost).on_stream(stream)),
                TaskKind::Send { bytes, dst, tag } => {
                    if mapping[dst as usize] == node {
                        // NVLink copy: sender-side cost carries the transfer.
                        let cost =
                            // det-lint: allow(float) — NVLink ns/B cost parameter, one fixed-order multiply then integer cast
                            cfg.intra_base_ns + (bytes as f64 * cfg.intra_ns_per_byte) as u64;
                        let id = b.add_task(node, Task::calc(cost).on_stream(stream));
                        intra_sends.entry((g as u32, dst, tag)).or_default().push(id);
                        id
                    } else {
                        // Tags gain the source GPU's low bits so merged
                        // node pairs don't cross-match different GPU pairs.
                        let tag = (tag << 3) | (g as u32 & 7);
                        b.add_task(
                            node,
                            Task::send(mapping[dst as usize], bytes, tag).on_stream(stream),
                        )
                    }
                }
                TaskKind::Recv { bytes, src, tag } => {
                    if mapping[src as usize] == node {
                        let id = b.add_task(node, Task::calc(0).on_stream(stream));
                        intra_recvs.entry((src, g as u32, tag)).or_default().push((node, id));
                        id
                    } else {
                        let tag = (tag << 3) | (src & 7);
                        b.add_task(
                            node,
                            Task::recv(mapping[src as usize], bytes, tag).on_stream(stream),
                        )
                    }
                }
            };
            remap.insert((g as u32, ti as u32), new_id);
        }
    }

    // Copy intra-GPU dependency edges.
    for g in 0..ngpus {
        let node = mapping[g];
        let sched = gpu_goal.rank(g as Rank);
        for (a, dep, kind) in sched.dep_edges() {
            let na = remap[&(g as u32, a.0)];
            let nb = remap[&(g as u32, dep.0)];
            match kind {
                atlahs_goal::DepKind::Full => b.requires(node, na, nb),
                atlahs_goal::DepKind::Start => b.irequires(node, na, nb),
            }
        }
    }

    // Data-flow edges for intra-node transfers (FIFO per key).
    for (key, sends) in &intra_sends {
        let recvs = intra_recvs.get(key).ok_or_else(|| GoalError::Compose {
            msg: format!("intra-node send {key:?} has no matching recv"),
        })?;
        if sends.len() != recvs.len() {
            return Err(GoalError::Compose {
                msg: format!("intra-node pair {key:?}: send/recv count mismatch"),
            });
        }
        for (&s, &(node, r)) in sends.iter().zip(recvs) {
            b.requires(node, r, s);
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::{backends::IdealBackend, Simulation};
    use atlahs_goal::stats::check_matching;
    use atlahs_tracers::nccl::{presets, trace_llm};

    fn small_llama() -> NsysReport {
        let mut cfg = presets::llama7b_dp16(0.01);
        cfg.iterations = 1;
        cfg.batch = 16;
        trace_llm(&cfg)
    }

    fn run(goal: &GoalSchedule) -> atlahs_core::SimReport {
        let mut be = IdealBackend::new(25.0, 1000);
        Simulation::new(goal).run(&mut be).expect("no deadlock")
    }

    #[test]
    fn gpu_level_matches_and_completes() {
        let rep = small_llama();
        let goal = gpu_level(&rep, &NcclToGoalConfig::default()).unwrap();
        assert_eq!(goal.num_ranks(), 16);
        check_matching(&goal).unwrap();
        let r = run(&goal);
        assert_eq!(r.completed, goal.total_tasks());
    }

    #[test]
    fn node_level_has_node_ranks() {
        let rep = small_llama();
        let goal = convert(&rep, &NcclToGoalConfig::default()).unwrap();
        assert_eq!(goal.num_ranks(), 4, "16 GPUs / 4 per node");
        check_matching(&goal).unwrap();
        let r = run(&goal);
        assert_eq!(r.completed, goal.total_tasks());
    }

    #[test]
    fn what_if_regrouping_changes_node_count() {
        let rep = small_llama();
        let cfg = NcclToGoalConfig { gpus_per_node: Some(2), ..NcclToGoalConfig::default() };
        let goal = convert(&rep, &cfg).unwrap();
        assert_eq!(goal.num_ranks(), 8, "16 GPUs / 2 per node");
        run(&goal);
    }

    #[test]
    fn intra_node_traffic_becomes_calc() {
        // All 16 GPUs on ONE node: no sends should remain.
        let rep = small_llama();
        let cfg = NcclToGoalConfig { gpus_per_node: Some(16), ..NcclToGoalConfig::default() };
        let goal = convert(&rep, &cfg).unwrap();
        let stats = atlahs_goal::ScheduleStats::of(&goal);
        assert_eq!(stats.sends, 0, "single node: everything is NVLink");
        assert_eq!(goal.num_ranks(), 1);
        let r = run(&goal);
        assert_eq!(r.completed, goal.total_tasks());
    }

    #[test]
    fn fewer_gpus_per_node_means_more_wire_bytes() {
        let rep = small_llama();
        let bytes_at = |gpn: u32| {
            let cfg = NcclToGoalConfig { gpus_per_node: Some(gpn), ..NcclToGoalConfig::default() };
            let goal = convert(&rep, &cfg).unwrap();
            atlahs_goal::ScheduleStats::of(&goal).bytes_sent
        };
        assert!(bytes_at(1) >= bytes_at(4));
        assert!(bytes_at(4) >= bytes_at(8));
    }

    #[test]
    fn pp_traces_convert() {
        let mut c = presets::mistral8x7b(0.01);
        c.iterations = 1;
        c.batch = 8;
        let rep = trace_llm(&c);
        let goal = convert(&rep, &NcclToGoalConfig::default()).unwrap();
        check_matching(&goal).unwrap();
        let r = run(&goal);
        assert_eq!(r.completed, goal.total_tasks());
        assert_eq!(goal.num_ranks(), 16);
    }

    #[test]
    fn moe_traces_convert_with_tp_and_ep() {
        let mut c = presets::moe8x13b(0.01);
        c.iterations = 1;
        c.batch = 8;
        let rep = trace_llm(&c);
        let goal = convert(&rep, &NcclToGoalConfig::default()).unwrap();
        let r = run(&goal);
        assert_eq!(r.completed, goal.total_tasks());
    }

    #[test]
    fn stream_gaps_become_compute() {
        let rep = small_llama();
        let goal = gpu_level(&rep, &NcclToGoalConfig::default()).unwrap();
        let stats = atlahs_goal::ScheduleStats::of(&goal);
        // The backward-pass gaps recorded by the tracer must surface.
        assert!(stats.calc_ns > 1_000_000, "calc_ns = {}", stats.calc_ns);
    }

    #[test]
    fn conversion_is_byte_stable_across_runs() {
        // The converter walks several maps while minting tags, vertices
        // and dependency edges; all of them are ordered or lookup-only,
        // so two conversions of one report must encode identically.
        let rep = small_llama();
        let cfg = NcclToGoalConfig::default();
        let a = atlahs_goal::binary::encode(&convert(&rep, &cfg).unwrap());
        let b = atlahs_goal::binary::encode(&convert(&rep, &cfg).unwrap());
        assert_eq!(a, b, "node-level conversion must be byte-stable");
        let ga = atlahs_goal::binary::encode(&gpu_level(&rep, &cfg).unwrap());
        let gb = atlahs_goal::binary::encode(&gpu_level(&rep, &cfg).unwrap());
        assert_eq!(ga, gb, "gpu-level conversion must be byte-stable");
    }

    #[test]
    fn protocol_choice_alters_wire_volume() {
        use atlahs_collectives::nccl::NcclProtocol;
        let rep = small_llama();
        let vol = |proto: NcclProtocol| {
            let mut cfg = NcclToGoalConfig::default();
            cfg.nccl.protocol = proto;
            let goal = convert(&rep, &cfg).unwrap();
            atlahs_goal::ScheduleStats::of(&goal).bytes_sent
        };
        assert!(vol(NcclProtocol::Ll) > vol(NcclProtocol::Simple) * 3 / 2);
    }
}
