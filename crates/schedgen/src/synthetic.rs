//! Synthetic microbenchmarks (the workloads the paper argues are *not*
//! enough — used by Fig. 1C to contrast with application traces).

use atlahs_goal::{GoalBuilder, GoalError, GoalSchedule, Rank};

/// N-to-one incast: ranks `1..=n` each send `bytes` to rank 0, `repeat`
/// times back-to-back.
pub fn incast(n: usize, bytes: u64, repeat: u32) -> Result<GoalSchedule, GoalError> {
    let mut b = GoalBuilder::new(n + 1);
    for s in 1..=n as u32 {
        let mut prev_s = None;
        let mut prev_r = None;
        for rep in 0..repeat {
            let tag = s + rep * (n as u32 + 1);
            let snd = b.send(s, 0, bytes, tag);
            if let Some(p) = prev_s {
                b.requires(s, snd, p);
            }
            prev_s = Some(snd);
            let rcv = b.recv(0, s, bytes, tag);
            if let Some(p) = prev_r {
                b.requires(0, rcv, p);
            }
            prev_r = Some(rcv);
        }
    }
    b.build()
}

/// Shift permutation: rank `i` sends `bytes` to `(i + shift) mod n`,
/// `repeat` times.
pub fn permutation(
    n: usize,
    bytes: u64,
    shift: usize,
    repeat: u32,
) -> Result<GoalSchedule, GoalError> {
    assert!(shift % n != 0, "shift must move data");
    let mut b = GoalBuilder::new(n);
    for i in 0..n as u32 {
        let dst = (i + shift as u32) % n as u32;
        let src = (i + n as u32 - shift as u32 % n as u32) % n as u32;
        let mut prev_s = None;
        let mut prev_r = None;
        for rep in 0..repeat {
            let snd = b.send(i, dst, bytes, rep);
            if let Some(p) = prev_s {
                b.requires(i, snd, p);
            }
            prev_s = Some(snd);
            let rcv = b.recv(i, src, bytes, rep);
            if let Some(p) = prev_r {
                b.requires(i, rcv, p);
            }
            prev_r = Some(rcv);
        }
    }
    b.build()
}

/// Uniform random traffic: `msgs` messages of `bytes`, uniformly random
/// (src, dst) pairs, seeded.
pub fn uniform_random(
    n: usize,
    bytes: u64,
    msgs: usize,
    seed: u64,
) -> Result<GoalSchedule, GoalError> {
    // Simple xorshift so this module stays dependency-free.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = GoalBuilder::new(n);
    let mut chain_s: Vec<Option<atlahs_goal::TaskId>> = vec![None; n];
    let mut chain_r: Vec<Option<atlahs_goal::TaskId>> = vec![None; n];
    for m in 0..msgs {
        let src = (next() % n as u64) as u32;
        let mut dst = (next() % n as u64) as u32;
        if dst == src {
            dst = (dst + 1) % n as u32;
        }
        let tag = m as u32;
        let s = b.send(src, dst, bytes, tag);
        if let Some(p) = chain_s[src as usize] {
            b.requires(src, s, p);
        }
        chain_s[src as usize] = Some(s);
        let r = b.recv(dst, src, bytes, tag);
        if let Some(p) = chain_r[dst as usize] {
            b.requires(dst, r, p);
        }
        chain_r[dst as usize] = Some(r);
    }
    b.build()
}

/// One full ring rotation: rank i sends to i+1, `repeat` laps.
pub fn ring(n: usize, bytes: u64, repeat: u32) -> Result<GoalSchedule, GoalError> {
    let mut b = GoalBuilder::new(n);
    let mut prev: Vec<Option<atlahs_goal::TaskId>> = vec![None; n];
    for rep in 0..repeat {
        for i in 0..n as u32 {
            let dst = (i + 1) % n as u32;
            let src = (i + n as u32 - 1) % n as u32;
            let s = b.send(i, dst, bytes, rep);
            let r = b.recv(i, src, bytes, rep);
            if let Some(p) = prev[i as usize] {
                b.requires(i, s, p);
                b.requires(i, r, p);
            }
            let j = b.dummy(i as Rank);
            b.requires(i, j, s);
            b.requires(i, j, r);
            prev[i as usize] = Some(j);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::{backends::IdealBackend, Simulation};
    use atlahs_goal::stats::check_matching;

    fn runs(goal: &GoalSchedule) {
        check_matching(goal).unwrap();
        let mut be = IdealBackend::new(10.0, 100);
        let rep = Simulation::new(goal).run(&mut be).unwrap();
        assert_eq!(rep.completed, goal.total_tasks());
    }

    #[test]
    fn incast_shape() {
        let g = incast(8, 4096, 3).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 24);
        assert_eq!(stats.recvs, 24);
        // all recvs on rank 0
        assert_eq!(
            g.rank(0)
                .tasks()
                .iter()
                .filter(|t| matches!(t.kind, atlahs_goal::TaskKind::Recv { .. }))
                .count(),
            24
        );
    }

    #[test]
    fn permutation_is_balanced() {
        let g = permutation(8, 1024, 3, 2).unwrap();
        runs(&g);
        for r in 0..8 {
            let sends = g
                .rank(r)
                .tasks()
                .iter()
                .filter(|t| matches!(t.kind, atlahs_goal::TaskKind::Send { .. }))
                .count();
            assert_eq!(sends, 2);
        }
    }

    #[test]
    #[should_panic(expected = "shift must move data")]
    fn zero_shift_panics() {
        let _ = permutation(4, 10, 4, 1);
    }

    #[test]
    fn uniform_random_matches() {
        let g = uniform_random(16, 2048, 100, 99).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 100);
    }

    #[test]
    fn uniform_random_deterministic() {
        let a = uniform_random(16, 2048, 50, 1).unwrap();
        let b = uniform_random(16, 2048, 50, 1).unwrap();
        assert_eq!(a, b);
        let c = uniform_random(16, 2048, 50, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn ring_laps() {
        let g = ring(6, 512, 4).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 24);
    }
}
