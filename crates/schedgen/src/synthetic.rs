//! Synthetic microbenchmarks (the workloads the paper argues are *not*
//! enough — used by Fig. 1C to contrast with application traces), plus
//! the application-shaped synthetic generators the scenario-sweep engine
//! exposes as grid axes: MoE expert-parallel all-to-all
//! ([`moe_alltoall`]), pipeline-parallel LLM training
//! ([`pipeline_parallel`]), and fan-in storage reads ([`storage_incast`]).

use atlahs_goal::{GoalBuilder, GoalError, GoalSchedule, Rank, TaskId};

/// N-to-one incast: ranks `1..=n` each send `bytes` to rank 0, `repeat`
/// times back-to-back.
pub fn incast(n: usize, bytes: u64, repeat: u32) -> Result<GoalSchedule, GoalError> {
    let mut b = GoalBuilder::new(n + 1);
    for s in 1..=n as u32 {
        let mut prev_s = None;
        let mut prev_r = None;
        for rep in 0..repeat {
            let tag = s + rep * (n as u32 + 1);
            let snd = b.send(s, 0, bytes, tag);
            if let Some(p) = prev_s {
                b.requires(s, snd, p);
            }
            prev_s = Some(snd);
            let rcv = b.recv(0, s, bytes, tag);
            if let Some(p) = prev_r {
                b.requires(0, rcv, p);
            }
            prev_r = Some(rcv);
        }
    }
    b.build()
}

/// Shift permutation: rank `i` sends `bytes` to `(i + shift) mod n`,
/// `repeat` times.
pub fn permutation(
    n: usize,
    bytes: u64,
    shift: usize,
    repeat: u32,
) -> Result<GoalSchedule, GoalError> {
    assert!(shift % n != 0, "shift must move data");
    let mut b = GoalBuilder::new(n);
    for i in 0..n as u32 {
        let dst = (i + shift as u32) % n as u32;
        let src = (i + n as u32 - shift as u32 % n as u32) % n as u32;
        let mut prev_s = None;
        let mut prev_r = None;
        for rep in 0..repeat {
            let snd = b.send(i, dst, bytes, rep);
            if let Some(p) = prev_s {
                b.requires(i, snd, p);
            }
            prev_s = Some(snd);
            let rcv = b.recv(i, src, bytes, rep);
            if let Some(p) = prev_r {
                b.requires(i, rcv, p);
            }
            prev_r = Some(rcv);
        }
    }
    b.build()
}

/// Uniform random traffic: `msgs` messages of `bytes`, uniformly random
/// (src, dst) pairs, seeded.
pub fn uniform_random(
    n: usize,
    bytes: u64,
    msgs: usize,
    seed: u64,
) -> Result<GoalSchedule, GoalError> {
    // Simple xorshift so this module stays dependency-free.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = GoalBuilder::new(n);
    let mut chain_s: Vec<Option<atlahs_goal::TaskId>> = vec![None; n];
    let mut chain_r: Vec<Option<atlahs_goal::TaskId>> = vec![None; n];
    for m in 0..msgs {
        let src = (next() % n as u64) as u32;
        let mut dst = (next() % n as u64) as u32;
        if dst == src {
            dst = (dst + 1) % n as u32;
        }
        let tag = m as u32;
        let s = b.send(src, dst, bytes, tag);
        if let Some(p) = chain_s[src as usize] {
            b.requires(src, s, p);
        }
        chain_s[src as usize] = Some(s);
        let r = b.recv(dst, src, bytes, tag);
        if let Some(p) = chain_r[dst as usize] {
            b.requires(dst, r, p);
        }
        chain_r[dst as usize] = Some(r);
    }
    b.build()
}

/// One full ring rotation: rank i sends to i+1, `repeat` laps.
pub fn ring(n: usize, bytes: u64, repeat: u32) -> Result<GoalSchedule, GoalError> {
    let mut b = GoalBuilder::new(n);
    let mut prev: Vec<Option<atlahs_goal::TaskId>> = vec![None; n];
    for rep in 0..repeat {
        for i in 0..n as u32 {
            let dst = (i + 1) % n as u32;
            let src = (i + n as u32 - 1) % n as u32;
            let s = b.send(i, dst, bytes, rep);
            let r = b.recv(i, src, bytes, rep);
            if let Some(p) = prev[i as usize] {
                b.requires(i, s, p);
                b.requires(i, r, p);
            }
            let j = b.dummy(i as Rank);
            b.requires(i, j, s);
            b.requires(i, j, r);
            prev[i as usize] = Some(j);
        }
    }
    b.build()
}

/// Two ranks exchanging one `bytes`-sized message per round, every
/// round's tasks chained on the previous round's: the deepest
/// dependency chain a schedule of this size can have, with a single
/// event in flight at any time. Exercises a scheduler's serial dispatch
/// path (the message-level perf harnesses — `bench_lgs` and the
/// `lgs` criterion suite — replay it).
pub fn pingpong_chain(rounds: u32, bytes: u64) -> Result<GoalSchedule, GoalError> {
    let mut b = GoalBuilder::new(2);
    let mut prev0 = None;
    let mut prev1 = None;
    for round in 0..rounds {
        let s0 = b.send(0, 1, bytes, round);
        let r1 = b.recv(1, 0, bytes, round);
        let s1 = b.send(1, 0, bytes, round);
        let r0 = b.recv(0, 1, bytes, round);
        if let Some(p) = prev0 {
            b.requires(0, s0, p);
        }
        b.requires(0, r0, s0);
        b.requires(1, s1, r1);
        if let Some(p) = prev1 {
            b.requires(1, r1, p);
        }
        prev0 = Some(r0);
        prev1 = Some(s1);
    }
    b.build()
}

/// MoE expert-parallel all-to-all: the `n` ranks are partitioned into
/// expert-parallel groups of `group` consecutive ranks; every MoE layer
/// performs two all-to-alls per group (token *dispatch* to the experts,
/// then *combine* back), each moving `bytes` per peer pair, with
/// `compute_ns` of expert computation between them. Layers are chained
/// per rank through a zero-cost join vertex, matching how an MoE block's
/// all-to-alls serialize against the expert MLP.
pub fn moe_alltoall(
    n: usize,
    group: usize,
    bytes: u64,
    layers: u32,
    compute_ns: u64,
) -> Result<GoalSchedule, GoalError> {
    assert!(group >= 2, "an EP group needs at least 2 ranks");
    assert!(n % group == 0, "group size must divide the rank count");
    let mut b = GoalBuilder::new(n);
    let mut prev: Vec<Option<TaskId>> = vec![None; n];
    for layer in 0..layers {
        for phase in 0..2u32 {
            // Tags are unique per (layer, phase) so FIFO matching between a
            // pair never spans phases.
            let tag = layer * 2 + phase;
            let mut joins: Vec<TaskId> = Vec::with_capacity(n);
            for g0 in (0..n).step_by(group) {
                for i in 0..group {
                    let rank = (g0 + i) as u32;
                    let join = b.dummy(rank);
                    for j in 0..group {
                        if i == j {
                            continue;
                        }
                        let peer = (g0 + j) as u32;
                        let s = b.send(rank, peer, bytes, tag);
                        let r = b.recv(rank, peer, bytes, tag);
                        if let Some(p) = prev[rank as usize] {
                            b.requires(rank, s, p);
                            b.requires(rank, r, p);
                        }
                        b.requires(rank, join, s);
                        b.requires(rank, join, r);
                    }
                    joins.push(join);
                }
            }
            for (idx, &join) in joins.iter().enumerate() {
                let rank = idx as u32;
                if phase == 0 && compute_ns > 0 {
                    // Expert MLP between dispatch and combine.
                    let c = b.calc(rank, compute_ns);
                    b.requires(rank, c, join);
                    prev[idx] = Some(c);
                } else {
                    prev[idx] = Some(join);
                }
            }
        }
    }
    b.build()
}

/// Pipeline-parallel LLM training (GPipe-style): `stages` ranks form the
/// pipeline; each of `microbatches` microbatches flows forward through
/// every stage (activation of `bytes`, `compute_ns` per stage) and then
/// backward (gradient of `bytes`). Each stage processes its microbatches
/// serially; cross-stage dependencies ride on the matched send/recv
/// pairs, so warm-up and drain bubbles emerge naturally.
pub fn pipeline_parallel(
    stages: usize,
    microbatches: u32,
    bytes: u64,
    compute_ns: u64,
) -> Result<GoalSchedule, GoalError> {
    assert!(stages >= 2, "a pipeline needs at least 2 stages");
    assert!(microbatches >= 1, "need at least one microbatch");
    let mut b = GoalBuilder::new(stages);
    let mut prev: Vec<Option<TaskId>> = vec![None; stages];
    let seq = |b: &mut GoalBuilder, rank: u32, id: TaskId, prev: &mut Vec<Option<TaskId>>| {
        if let Some(p) = prev[rank as usize] {
            b.requires(rank, id, p);
        }
        prev[rank as usize] = Some(id);
    };
    // Forward passes.
    for mb in 0..microbatches {
        for s in 0..stages as u32 {
            if s > 0 {
                let r = b.recv(s, s - 1, bytes, mb);
                seq(&mut b, s, r, &mut prev);
            }
            let c = b.calc(s, compute_ns);
            seq(&mut b, s, c, &mut prev);
            if (s as usize) < stages - 1 {
                let snd = b.send(s, s + 1, bytes, mb);
                seq(&mut b, s, snd, &mut prev);
            }
        }
    }
    // Backward passes (tags offset past the forward namespace).
    for mb in 0..microbatches {
        let tag = microbatches + mb;
        for s in (0..stages as u32).rev() {
            if (s as usize) < stages - 1 {
                let r = b.recv(s, s + 1, bytes, tag);
                seq(&mut b, s, r, &mut prev);
            }
            let c = b.calc(s, 2 * compute_ns);
            seq(&mut b, s, c, &mut prev);
            if s > 0 {
                let snd = b.send(s, s - 1, bytes, tag);
                seq(&mut b, s, snd, &mut prev);
            }
        }
    }
    b.build()
}

/// Fan-in storage reads: `clients` client ranks each issue `reads` rounds
/// of striped reads against all `servers` storage ranks — a small request
/// out, `bytes` of data back from every server at once. The reply burst
/// converges on the client's single downlink, the classic storage-incast
/// congestion pattern. Ranks `0..clients` are clients, the rest servers.
pub fn storage_incast(
    clients: usize,
    servers: usize,
    bytes: u64,
    reads: u32,
) -> Result<GoalSchedule, GoalError> {
    assert!(clients >= 1 && servers >= 1, "need at least one client and one server");
    const REQUEST_BYTES: u64 = 64;
    let n = clients + servers;
    let mut b = GoalBuilder::new(n);
    let mut prev: Vec<Option<TaskId>> = vec![None; n];
    for round in 0..reads {
        for c in 0..clients as u32 {
            // Tag space: one tag per (round, client) keeps FIFO matching
            // between a client/server pair unambiguous across rounds.
            let tag = round * clients as u32 + c;
            let join = b.dummy(c);
            for s in 0..servers as u32 {
                let srv = clients as u32 + s;
                let req = b.send(c, srv, REQUEST_BYTES, tag);
                let data = b.recv(c, srv, bytes, tag);
                if let Some(p) = prev[c as usize] {
                    b.requires(c, req, p);
                }
                b.requires(c, join, req);
                b.requires(c, join, data);

                let srv_req = b.recv(srv, c, REQUEST_BYTES, tag);
                let reply = b.send(srv, c, bytes, tag);
                b.requires(srv, reply, srv_req);
                if let Some(p) = prev[srv as usize] {
                    b.requires(srv, srv_req, p);
                }
                prev[srv as usize] = Some(reply);
            }
            prev[c as usize] = Some(join);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::{backends::IdealBackend, Simulation};
    use atlahs_goal::stats::check_matching;

    fn runs(goal: &GoalSchedule) {
        check_matching(goal).unwrap();
        let mut be = IdealBackend::new(10.0, 100);
        let rep = Simulation::new(goal).run(&mut be).unwrap();
        assert_eq!(rep.completed, goal.total_tasks());
    }

    #[test]
    fn incast_shape() {
        let g = incast(8, 4096, 3).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 24);
        assert_eq!(stats.recvs, 24);
        // all recvs on rank 0
        assert_eq!(
            g.rank(0)
                .tasks()
                .filter(|t| matches!(t.kind, atlahs_goal::TaskKind::Recv { .. }))
                .count(),
            24
        );
    }

    #[test]
    fn permutation_is_balanced() {
        let g = permutation(8, 1024, 3, 2).unwrap();
        runs(&g);
        for r in 0..8 {
            let sends = g
                .rank(r)
                .tasks()
                .filter(|t| matches!(t.kind, atlahs_goal::TaskKind::Send { .. }))
                .count();
            assert_eq!(sends, 2);
        }
    }

    #[test]
    #[should_panic(expected = "shift must move data")]
    fn zero_shift_panics() {
        let _ = permutation(4, 10, 4, 1);
    }

    #[test]
    fn uniform_random_matches() {
        let g = uniform_random(16, 2048, 100, 99).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 100);
    }

    #[test]
    fn uniform_random_deterministic() {
        let a = uniform_random(16, 2048, 50, 1).unwrap();
        let b = uniform_random(16, 2048, 50, 1).unwrap();
        assert_eq!(a, b);
        let c = uniform_random(16, 2048, 50, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn ring_laps() {
        let g = ring(6, 512, 4).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 24);
    }

    #[test]
    fn pingpong_chain_is_fully_serial() {
        let g = pingpong_chain(50, 1024).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 100);
        assert_eq!(stats.recvs, 100);
        // One message in flight at a time: makespan is the full sum of
        // 100 sequential (tx + latency) legs on the ideal backend.
        let mut be = IdealBackend::new(1.0, 100);
        let rep = Simulation::new(&g).run(&mut be).unwrap();
        assert_eq!(rep.makespan, 100 * (1024 + 100));
    }

    #[test]
    fn moe_alltoall_shape() {
        // 8 ranks, EP groups of 4, 2 layers: per layer each rank sends to
        // its 3 group peers twice (dispatch + combine).
        let g = moe_alltoall(8, 4, 64 << 10, 2, 1000).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        assert_eq!(stats.sends, 8 * 3 * 2 * 2);
        assert_eq!(stats.recvs, stats.sends);
        // No message ever leaves its EP group.
        for r in 0..8u32 {
            let group = r / 4;
            for t in g.rank(r).tasks() {
                if let atlahs_goal::TaskKind::Send { dst, .. } = t.kind {
                    assert_eq!(dst / 4, group, "rank {r} sent outside its group");
                }
            }
        }
    }

    #[test]
    fn moe_layers_serialize() {
        // One layer vs three layers: makespan must grow ~linearly.
        let t = |layers| {
            let g = moe_alltoall(8, 4, 256 << 10, layers, 0).unwrap();
            let mut be = IdealBackend::new(10.0, 100);
            Simulation::new(&g).run(&mut be).unwrap().makespan
        };
        assert!(t(3) > 2 * t(1));
    }

    #[test]
    fn pipeline_parallel_shape() {
        let g = pipeline_parallel(4, 3, 1 << 20, 5_000).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        // Forward: 3 boundaries x 3 mbs; backward the same.
        assert_eq!(stats.sends, 2 * 3 * 3);
        assert_eq!(stats.recvs, stats.sends);
        // Every rank computes: forward + backward calcs.
        assert_eq!(stats.calcs, 4 * 3 * 2);
    }

    #[test]
    fn pipeline_bubble_grows_with_stages() {
        // More stages at fixed microbatch count = proportionally more
        // warm-up/drain bubble, so makespan grows.
        let t = |stages| {
            let g = pipeline_parallel(stages, 2, 1 << 16, 10_000).unwrap();
            let mut be = IdealBackend::new(10.0, 100);
            Simulation::new(&g).run(&mut be).unwrap().makespan
        };
        assert!(t(8) > t(2));
    }

    #[test]
    fn storage_incast_shape() {
        let g = storage_incast(2, 6, 128 << 10, 3).unwrap();
        runs(&g);
        let stats = atlahs_goal::ScheduleStats::of(&g);
        // Per round per client: 6 requests out + 6 replies in (and the
        // mirrored server sides).
        assert_eq!(stats.sends, 3 * 2 * 6 * 2);
        // Every data byte lands on a client rank.
        for s in 0..6u32 {
            let srv = 2 + s;
            for t in g.rank(srv).tasks() {
                if let atlahs_goal::TaskKind::Send { dst, bytes, .. } = t.kind {
                    assert!(dst < 2, "server {srv} must only reply to clients");
                    assert_eq!(bytes, 128 << 10);
                }
            }
        }
    }

    #[test]
    fn new_generators_are_deterministic() {
        assert_eq!(
            moe_alltoall(8, 4, 1024, 2, 500).unwrap(),
            moe_alltoall(8, 4, 1024, 2, 500).unwrap()
        );
        assert_eq!(
            pipeline_parallel(4, 2, 1024, 500).unwrap(),
            pipeline_parallel(4, 2, 1024, 500).unwrap()
        );
        assert_eq!(storage_incast(2, 4, 1024, 2).unwrap(), storage_incast(2, 4, 1024, 2).unwrap());
    }
}
