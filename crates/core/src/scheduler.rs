//! The GOAL scheduler and simulation driver.
//!
//! The scheduler walks every rank's task DAG, issuing tasks to the backend
//! as their dependencies are satisfied and their compute stream becomes
//! idle. Backend events drive progress: `CpuFree` releases the issuing
//! stream, `Done` releases dependents (`requires` edges fire on completion,
//! `irequires` edges on issue).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use atlahs_goal::{DepKind, GoalSchedule, Rank, RankSchedule, Stream, TaskId, TaskKind};

use crate::api::{Backend, Completion, EventKind, OpKind, OpRef, Time};

/// Final report of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Time of the last completion (ns).
    pub makespan: Time,
    /// Per-rank time of the rank's last completed task (0 for empty ranks).
    pub rank_finish: Vec<Time>,
    /// Total tasks completed.
    pub completed: usize,
}

impl SimReport {
    /// The finish time of a job occupying `nodes`: the latest rank finish
    /// among them (0 for an empty node list). This is the per-job metric
    /// the multi-job and dynamic cluster reports are built from.
    pub fn job_finish(&self, nodes: &[Rank]) -> Time {
        nodes.iter().map(|&n| self.rank_finish[n as usize]).max().unwrap_or(0)
    }
}

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The backend went quiescent with unfinished tasks (e.g. a recv whose
    /// send never arrives). Carries up to 8 stuck task references.
    Deadlock { completed: usize, total: usize, sample: Vec<OpRef> },
    /// The backend reported an event for a task that was not running.
    SpuriousCompletion { op: OpRef },
    /// The backend reported a time earlier than a previous event.
    TimeRegression { op: OpRef, time: Time, previous: Time },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { completed, total, sample } => write!(
                f,
                "deadlock: {completed}/{total} tasks completed; stuck tasks include {sample:?}"
            ),
            SimError::SpuriousCompletion { op } => {
                write!(f, "backend reported event for task {op:?} which was not running")
            }
            SimError::TimeRegression { op, time, previous } => {
                write!(f, "backend time went backwards at {op:?}: {time} < {previous}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Waiting,
    Ready,
    /// Issued; stream still held.
    Running,
    /// Issued; stream already released by a `CpuFree` event.
    RunningFreed,
    Done,
}

/// Per-stream queue of ready task ids, popped in ascending-id order.
///
/// GOAL generators emit each stream's tasks in issue order, so ids enter
/// this queue almost always monotonically increasing: those go into a
/// plain ring buffer and pop O(1) from the front. The rare out-of-order
/// arrival (a dependency releasing an *earlier* id after a later one is
/// already queued) spills into a small binary heap, and `pop` takes the
/// minimum of the two fronts — exactly the `BinaryHeap<Reverse<u32>>`
/// min-id semantics this queue replaced, so simulation results are
/// bit-identical, without the O(log n) sift on the dense path.
#[derive(Debug, Default, Clone)]
struct ReadyQueue {
    /// Strictly increasing task ids.
    ring: VecDeque<u32>,
    /// Out-of-order arrivals (ids smaller than the ring's back).
    spill: BinaryHeap<Reverse<u32>>,
}

impl ReadyQueue {
    #[inline]
    fn push(&mut self, id: u32) {
        match self.ring.back() {
            Some(&back) if id < back => self.spill.push(Reverse(id)),
            _ => self.ring.push_back(id),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<u32> {
        match (self.ring.front(), self.spill.peek()) {
            (Some(&r), Some(&Reverse(s))) if s < r => {
                self.spill.pop();
                Some(s)
            }
            (Some(_), _) => self.ring.pop_front(),
            (None, Some(_)) => self.spill.pop().map(|Reverse(s)| s),
            (None, None) => None,
        }
    }
}

#[derive(Debug, Clone)]
struct StreamState {
    stream: Stream,
    busy: bool,
    ready: ReadyQueue,
}

/// One subtracted from a task's packed start-edge (`irequires`) counter.
const START_ONE: u64 = 1 << 32;

#[derive(Clone)]
struct RankState {
    /// Packed per-task in-degree countdown: `start_remaining << 32 |
    /// full_remaining`. Edge firing is the scheduler's most
    /// random-access-heavy path (one decrement + readiness check per
    /// dependency edge), so keeping both counters in one word halves the
    /// cache lines it touches, and readiness is a single `== 0`.
    remaining: Vec<u64>,
    state: Vec<TaskState>,
    /// Sorted by stream id; iterated in that (deterministic) order on
    /// every dispatch, so a flat sorted vector beats a tree map — ranks
    /// have a handful of streams and this sits on the per-event path.
    streams: Vec<StreamState>,
}

impl RankState {
    #[inline]
    fn stream_idx(&self, stream: Stream) -> usize {
        // Most schedules use a single stream per rank: check it first.
        if self.streams.len() == 1 || self.streams[0].stream == stream {
            0
        } else {
            self.streams
                .binary_search_by_key(&stream, |ss| ss.stream)
                .expect("task stream registered at setup")
        }
    }

    /// Stream slot of task `ti`, touching the schedule's stream column
    /// only when the rank actually multiplexes streams.
    #[inline]
    fn stream_idx_of(&self, sched: &RankSchedule, ti: usize) -> usize {
        if self.streams.len() == 1 {
            0
        } else {
            self.stream_idx(sched.streams()[ti])
        }
    }
}

/// A single simulation of one GOAL schedule over one backend.
pub struct Simulation<'g> {
    goal: &'g GoalSchedule,
}

impl<'g> Simulation<'g> {
    pub fn new(goal: &'g GoalSchedule) -> Self {
        Simulation { goal }
    }

    /// Run the schedule to completion on `backend`.
    pub fn run<B: Backend>(&self, backend: &mut B) -> Result<SimReport, SimError> {
        SimDriver::start(self.goal, backend).finish(backend)
    }
}

/// Outcome of a bounded driver step ([`SimDriver::run_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// The time bound was reached; events remain pending. This is a
    /// checkpointable position: the last processed event's time is
    /// `>=` the bound.
    Paused,
    /// The backend went quiescent: every issued operation completed (or
    /// the run deadlocked — [`SimDriver::finish`] distinguishes).
    Quiescent,
}

/// The resumable scheduler state behind [`Simulation::run`].
///
/// A driver owns everything the event loop mutates — dependency
/// countdowns, ready rings, stream busy bits, completion tallies — and
/// is `Clone`, so `driver.clone()` plus a backend
/// [`crate::Snapshot::checkpoint`] captures a *complete* simulation
/// state. The pair restores into any number of what-if continuations,
/// each bit-identical to a straight-through run (the branch-and-continue
/// engine in `atlahs_bench` is built on exactly this pair).
///
/// The pause boundary is deterministic by construction: `run_until(t)`
/// processes events strictly in backend order and stops *after* the
/// first event at time `>= t`, so a paused-and-resumed run processes the
/// exact event sequence of an unpaused one — no peeking, no stashed
/// events, no divergence.
#[derive(Clone)]
pub struct SimDriver<'g> {
    goal: &'g GoalSchedule,
    ranks: Vec<RankState>,
    /// Reused across dispatch calls: the per-round issue batch.
    issue_buf: Vec<TaskId>,
    total: usize,
    completed: usize,
    makespan: Time,
    rank_finish: Vec<Time>,
    last_time: Time,
}

impl<'g> SimDriver<'g> {
    /// Set the backend up for `goal` and issue every initially ready
    /// task. The returned driver is positioned before the first event.
    pub fn start<B: Backend>(goal: &'g GoalSchedule, backend: &mut B) -> Self {
        backend.simulation_setup(goal.num_ranks());

        let mut ranks: Vec<RankState> = Vec::with_capacity(goal.num_ranks());
        for sched in goal.ranks() {
            let (full, start) = sched.indegrees();
            let n = sched.num_tasks();
            let stream_col = sched.streams();
            let mut stream_ids: Vec<Stream> = stream_col.to_vec();
            stream_ids.sort_unstable();
            stream_ids.dedup();
            let mut rs = RankState {
                remaining: full
                    .iter()
                    .zip(&start)
                    .map(|(&f, &s)| (s as u64) << 32 | f as u64)
                    .collect(),
                state: vec![TaskState::Waiting; n],
                streams: stream_ids
                    .into_iter()
                    .map(|stream| StreamState { stream, busy: false, ready: ReadyQueue::default() })
                    .collect(),
            };
            for (i, &stream) in stream_col.iter().enumerate() {
                if rs.remaining[i] == 0 {
                    rs.state[i] = TaskState::Ready;
                    let si = rs.stream_idx(stream);
                    rs.streams[si].ready.push(i as u32);
                }
            }
            ranks.push(rs);
        }

        let mut driver = SimDriver {
            goal,
            ranks,
            issue_buf: Vec::new(),
            total: goal.total_tasks(),
            completed: 0,
            makespan: 0,
            rank_finish: vec![0u64; goal.num_ranks()],
            last_time: 0,
        };

        // Initial dispatch on every rank.
        for r in 0..driver.ranks.len() {
            dispatch_rank(goal, &mut driver.ranks, r as Rank, backend, &mut driver.issue_buf);
        }
        driver
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Time of the most recently processed event.
    pub fn last_time(&self) -> Time {
        self.last_time
    }

    /// Process events until the first event at time `>= bound` has been
    /// processed (inclusive — that event *is* processed), or the backend
    /// goes quiescent, whichever comes first.
    pub fn run_until<B: Backend>(
        &mut self,
        backend: &mut B,
        bound: Time,
    ) -> Result<RunState, SimError> {
        while let Some(ev) = backend.next_event() {
            self.process_event(backend, ev)?;
            if ev.time >= bound {
                return Ok(RunState::Paused);
            }
        }
        Ok(RunState::Quiescent)
    }

    /// Drain the backend and build the final report (or the deadlock
    /// error if tasks remain).
    pub fn finish<B: Backend>(mut self, backend: &mut B) -> Result<SimReport, SimError> {
        while let Some(ev) = backend.next_event() {
            self.process_event(backend, ev)?;
        }

        if self.completed != self.total {
            let mut sample = Vec::new();
            'outer: for (r, rs) in self.ranks.iter().enumerate() {
                for (i, st) in rs.state.iter().enumerate() {
                    if *st != TaskState::Done {
                        sample.push(OpRef::new(r as Rank, TaskId(i as u32)));
                        if sample.len() >= 8 {
                            break 'outer;
                        }
                    }
                }
            }
            return Err(SimError::Deadlock {
                completed: self.completed,
                total: self.total,
                sample,
            });
        }

        Ok(SimReport {
            makespan: self.makespan,
            rank_finish: self.rank_finish,
            completed: self.completed,
        })
    }

    /// Handle one backend event: validate, update task/stream state, fire
    /// dependency edges, re-dispatch the rank.
    fn process_event<B: Backend>(
        &mut self,
        backend: &mut B,
        ev: Completion,
    ) -> Result<(), SimError> {
        if ev.time < self.last_time {
            return Err(SimError::TimeRegression {
                op: ev.op,
                time: ev.time,
                previous: self.last_time,
            });
        }
        self.last_time = ev.time;
        let op = ev.op;
        let r = op.rank as usize;
        let ti = op.task.index();
        if r >= self.ranks.len() || ti >= self.ranks[r].state.len() {
            return Err(SimError::SpuriousCompletion { op });
        }
        let st = self.ranks[r].state[ti];
        let sched = self.goal.rank(op.rank);

        match ev.kind {
            EventKind::CpuFree => {
                if st != TaskState::Running {
                    return Err(SimError::SpuriousCompletion { op });
                }
                self.ranks[r].state[ti] = TaskState::RunningFreed;
                let si = self.ranks[r].stream_idx_of(sched, ti);
                self.ranks[r].streams[si].busy = false;
                dispatch_rank(self.goal, &mut self.ranks, op.rank, backend, &mut self.issue_buf);
            }
            EventKind::Done => {
                if st != TaskState::Running && st != TaskState::RunningFreed {
                    return Err(SimError::SpuriousCompletion { op });
                }
                if st == TaskState::Running {
                    let si = self.ranks[r].stream_idx_of(sched, ti);
                    self.ranks[r].streams[si].busy = false;
                }
                self.ranks[r].state[ti] = TaskState::Done;
                self.completed += 1;
                self.makespan = self.makespan.max(ev.time);
                self.rank_finish[r] = self.rank_finish[r].max(ev.time);

                // Fire completion (`requires`) edges. The packed
                // counter would borrow across halves on underflow
                // instead of panicking like the old u32 arrays, so
                // keep the debug guard explicit.
                for &(succ, kind) in sched.succs(op.task) {
                    if kind == DepKind::Full {
                        let rs = &mut self.ranks[r];
                        debug_assert!(
                            rs.remaining[succ.index()] as u32 != 0,
                            "full-edge underflow on {succ:?}"
                        );
                        rs.remaining[succ.index()] -= 1;
                        maybe_ready(sched, rs, succ);
                    }
                }
                dispatch_rank(self.goal, &mut self.ranks, op.rank, backend, &mut self.issue_buf);
            }
        }
        Ok(())
    }
}

fn maybe_ready(sched: &RankSchedule, rs: &mut RankState, id: TaskId) {
    let i = id.index();
    if rs.remaining[i] == 0 && rs.state[i] == TaskState::Waiting {
        rs.state[i] = TaskState::Ready;
        let si = rs.stream_idx_of(sched, i);
        rs.streams[si].ready.push(id.0);
    }
}

/// Mark `id` running, hand it to the backend, and fire its start
/// (`irequires`) edges.
#[inline]
fn issue_task<B: Backend>(
    sched: &RankSchedule,
    ranks: &mut [RankState],
    rank: Rank,
    id: TaskId,
    backend: &mut B,
) {
    ranks[rank as usize].state[id.index()] = TaskState::Running;
    let kind = match sched.task(id).kind {
        TaskKind::Send { bytes, dst, tag } => OpKind::Send { dst, bytes, tag },
        TaskKind::Recv { bytes, src, tag } => OpKind::Recv { src, bytes, tag },
        TaskKind::Calc { cost } => OpKind::Calc { cost },
    };
    backend.issue(OpRef::new(rank, id), kind);
    for &(succ, k) in sched.succs(id) {
        if k == DepKind::Start {
            let rs = &mut ranks[rank as usize];
            debug_assert!(
                rs.remaining[succ.index()] >> 32 != 0,
                "start-edge underflow on {succ:?}"
            );
            rs.remaining[succ.index()] -= START_ONE;
            maybe_ready(sched, rs, succ);
        }
    }
}

/// Issue every ready task whose stream is idle on `rank`, to fixpoint
/// (issuing may fire `irequires` edges that ready tasks on other streams).
///
/// `issue_buf` is caller-owned scratch (cleared here) so the per-event
/// dispatch path performs no allocation.
fn dispatch_rank<B: Backend>(
    goal: &GoalSchedule,
    ranks: &mut [RankState],
    rank: Rank,
    backend: &mut B,
    issue_buf: &mut Vec<TaskId>,
) {
    let sched = goal.rank(rank);
    // Single-stream ranks (the overwhelmingly common shape, and this sits
    // on the per-event path): at most one task can issue — the stream
    // goes busy immediately, and `irequires` releases can only ready
    // tasks on that same busy stream — so skip the batch machinery.
    if ranks[rank as usize].streams.len() == 1 {
        let ss = &mut ranks[rank as usize].streams[0];
        if ss.busy {
            return;
        }
        let Some(id) = ss.ready.pop() else {
            return;
        };
        ss.busy = true;
        issue_task(sched, ranks, rank, TaskId(id), backend);
        return;
    }
    loop {
        // Collect issuable tasks stream by stream (ascending stream id:
        // deterministic).
        let rs = &mut ranks[rank as usize];
        issue_buf.clear();
        for ss in rs.streams.iter_mut() {
            if !ss.busy {
                if let Some(id) = ss.ready.pop() {
                    ss.busy = true;
                    issue_buf.push(TaskId(id));
                }
            }
        }
        if issue_buf.is_empty() {
            return;
        }
        for &id in issue_buf.iter() {
            issue_task(sched, ranks, rank, id, backend);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Completion;
    use crate::backends::IdealBackend;
    use atlahs_goal::GoalBuilder;

    fn run(goal: &GoalSchedule) -> SimReport {
        let mut b = IdealBackend::new(1.0, 100);
        Simulation::new(goal).run(&mut b).unwrap()
    }

    #[test]
    fn single_calc() {
        let mut b = GoalBuilder::new(1);
        b.calc(0, 500);
        let goal = b.build().unwrap();
        let r = run(&goal);
        assert_eq!(r.makespan, 500);
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn serial_chain_accumulates() {
        let mut b = GoalBuilder::new(1);
        let ids: Vec<_> = (0..10).map(|_| b.calc(0, 100)).collect();
        b.chain(0, &ids);
        let goal = b.build().unwrap();
        assert_eq!(run(&goal).makespan, 1000);
    }

    #[test]
    fn same_stream_serializes_without_deps() {
        let mut b = GoalBuilder::new(1);
        b.calc(0, 100);
        b.calc(0, 100);
        let goal = b.build().unwrap();
        // No dependency, same stream: still serial.
        assert_eq!(run(&goal).makespan, 200);
    }

    #[test]
    fn different_streams_overlap() {
        let mut b = GoalBuilder::new(1);
        b.calc_on(0, 100, 0);
        b.calc_on(0, 100, 1);
        let goal = b.build().unwrap();
        assert_eq!(run(&goal).makespan, 100);
    }

    #[test]
    fn ping_message_includes_latency() {
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, 1000, 0);
        b.recv(1, 0, 1000, 0);
        let goal = b.build().unwrap();
        // IdealBackend: tx = bytes/bw = 1000ns, latency 100ns.
        let r = run(&goal);
        assert_eq!(r.makespan, 1100);
        assert_eq!(r.rank_finish, vec![1000, 1100]);
    }

    #[test]
    fn late_recv_completes_at_post_time() {
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, 100, 0);
        let c = b.calc(1, 10_000);
        let r = b.recv(1, 0, 100, 0);
        b.requires(1, r, c);
        let goal = b.build().unwrap();
        // Message arrives at 200; recv posted at 10_000 -> completes then.
        assert_eq!(run(&goal).makespan, 10_000);
    }

    #[test]
    fn irequires_releases_on_issue() {
        let mut b = GoalBuilder::new(1);
        let long = b.calc_on(0, 1000, 0);
        let follower = b.calc_on(0, 10, 1);
        b.irequires(0, follower, long);
        let goal = b.build().unwrap();
        // follower starts when `long` starts, so finishes at 10, not 1010.
        let r = run(&goal);
        assert_eq!(r.makespan, 1000);
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn deadlock_detected_on_unmatched_recv() {
        let mut b = GoalBuilder::new(2);
        b.recv(1, 0, 100, 7);
        let goal = b.build().unwrap();
        let mut backend = IdealBackend::new(1.0, 100);
        let err = Simulation::new(&goal).run(&mut backend).unwrap_err();
        match err {
            SimError::Deadlock { completed, total, sample } => {
                assert_eq!(completed, 0);
                assert_eq!(total, 1);
                assert_eq!(sample, vec![OpRef::new(1, TaskId(0))]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cross_rank_pipeline() {
        // 0 -> 1 -> 2 relay: makespan = 2 * (tx + L) with tx = 100ns.
        let mut b = GoalBuilder::new(3);
        b.send(0, 1, 100, 0);
        let rv = b.recv(1, 0, 100, 0);
        let sd = b.send(1, 2, 100, 0);
        b.requires(1, sd, rv);
        b.recv(2, 1, 100, 0);
        let goal = b.build().unwrap();
        assert_eq!(run(&goal).makespan, 400);
    }

    #[test]
    fn report_counts_all_tasks() {
        let mut b = GoalBuilder::new(4);
        for r in 0..4u32 {
            let dst = (r + 1) % 4;
            let src = (r + 3) % 4;
            b.send(r, dst, 64, 0);
            b.recv(r, src, 64, 0);
            b.calc(r, 10);
        }
        let goal = b.build().unwrap();
        let rep = run(&goal);
        assert_eq!(rep.completed, 12);
    }

    /// A backend that frees the CPU immediately on sends/recvs (Done later),
    /// to exercise the two-phase protocol: two sends on one stream overlap.
    struct SplitPhase {
        now: Time,
        events: std::collections::BinaryHeap<Reverse<(Time, u64, bool, OpRef)>>,
        seq: u64,
    }
    impl SplitPhase {
        fn new() -> Self {
            SplitPhase { now: 0, events: Default::default(), seq: 0 }
        }
        fn push(&mut self, t: Time, done: bool, op: OpRef) {
            self.events.push(Reverse((t, self.seq, done, op)));
            self.seq += 1;
        }
    }
    impl Backend for SplitPhase {
        fn simulation_setup(&mut self, _: usize) {}
        fn now(&self) -> Time {
            self.now
        }
        fn send(&mut self, op: OpRef, _dst: Rank, bytes: u64, _tag: atlahs_goal::Tag) {
            // CPU free after 10ns; done after bytes ns (flow completion).
            self.push(self.now + 10, false, op);
            self.push(self.now + bytes, true, op);
        }
        fn recv(&mut self, op: OpRef, _src: Rank, bytes: u64, _tag: atlahs_goal::Tag) {
            self.push(self.now + 10, false, op);
            self.push(self.now + bytes, true, op);
        }
        fn calc(&mut self, op: OpRef, cost: u64) {
            self.push(self.now + cost, true, op);
        }
        fn next_event(&mut self) -> Option<crate::api::Completion> {
            let Reverse((t, _, done, op)) = self.events.pop()?;
            self.now = t;
            Some(if done { Completion::done(op, t) } else { Completion::cpu_free(op, t) })
        }
    }

    /// The checkpoint/branch contract at the driver level: pause a run
    /// mid-flight, snapshot the backend and clone the driver, then finish
    /// both the original and the resumed copy — every report field must
    /// be identical to a straight-through run, for several pause points.
    #[test]
    fn pause_checkpoint_resume_is_bit_identical() {
        use crate::snapshot::Snapshot;
        let mut b = GoalBuilder::new(4);
        for r in 0..4u32 {
            let dst = (r + 1) % 4;
            let src = (r + 3) % 4;
            let mut prev = None;
            for lap in 0..3u64 {
                let c = b.calc(r, 50 + 10 * lap);
                let s = b.send(r, dst, 400, lap as u32);
                let v = b.recv(r, src, 400, lap as u32);
                b.requires(r, s, c);
                if let Some(p) = prev {
                    b.requires(r, c, p);
                }
                prev = Some(v);
            }
        }
        let goal = b.build().unwrap();

        let mut straight_backend = IdealBackend::new(1.0, 100);
        let straight = Simulation::new(&goal).run(&mut straight_backend).unwrap();

        for bound in [0u64, 1, 300, 700, 1_500, u64::MAX] {
            let mut backend = IdealBackend::new(1.0, 100);
            let mut driver = SimDriver::start(&goal, &mut backend);
            let state = driver.run_until(&mut backend, bound).unwrap();
            if bound == u64::MAX {
                assert_eq!(state, RunState::Quiescent, "nothing runs past u64::MAX");
            }
            // Branch: checkpoint, finish the original, then restore the
            // checkpoint into the same backend and finish the clone.
            let snap = backend.checkpoint();
            let fork = driver.clone();
            let original = driver.finish(&mut backend).unwrap();
            backend.restore(&snap);
            let resumed = fork.finish(&mut backend).unwrap();
            assert_eq!(original, straight, "paused run diverged (bound {bound})");
            assert_eq!(resumed, straight, "restored branch diverged (bound {bound})");
        }
    }

    #[test]
    fn run_until_pauses_after_first_event_at_or_past_bound() {
        let mut b = GoalBuilder::new(1);
        let ids: Vec<_> = (0..5).map(|_| b.calc(0, 100)).collect();
        b.chain(0, &ids);
        let goal = b.build().unwrap();
        let mut backend = IdealBackend::new(1.0, 0);
        let mut driver = SimDriver::start(&goal, &mut backend);
        // Events fire at 100, 200, ...; the first event at time >= 250
        // is the one at 300, and run_until processes it before pausing.
        assert_eq!(driver.run_until(&mut backend, 250).unwrap(), RunState::Paused);
        assert_eq!(driver.last_time(), 300);
        assert_eq!(driver.completed(), 3);
        let rep = driver.finish(&mut backend).unwrap();
        assert_eq!(rep.makespan, 500);
        assert_eq!(rep.completed, 5);
    }

    #[test]
    fn cpu_free_lets_same_stream_ops_overlap() {
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, 1000, 0);
        b.send(0, 1, 1000, 1);
        let goal = b.build().unwrap();
        let mut backend = SplitPhase::new();
        // Without CpuFree the two sends would take 2000ns; with the CPU
        // released after 10ns the second overlaps: done by 1010.
        let rep = Simulation::new(&goal).run(&mut backend).unwrap();
        assert_eq!(rep.makespan, 1010);
    }
}
