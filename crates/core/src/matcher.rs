//! Two-sided FIFO message matching.
//!
//! MPI/NCCL semantics: a message from `src` to `dst` with tag `t` matches
//! the oldest posted-but-unmatched recv for `(src, t)` at the destination,
//! in posting order. Backends use [`Matcher`] to pair message arrivals with
//! posted recvs; whichever side arrives second receives the other side's
//! payload immediately.

use std::collections::{HashMap, VecDeque};

use atlahs_goal::{Rank, Tag};

/// Match key: (src, dst, tag).
pub type MatchKey = (Rank, Rank, Tag);

/// A FIFO matcher pairing send-side entries (`S`) with recv-side entries (`R`).
#[derive(Debug)]
pub struct Matcher<S, R> {
    queues: HashMap<MatchKey, (VecDeque<S>, VecDeque<R>)>,
}

impl<S, R> Default for Matcher<S, R> {
    fn default() -> Self {
        Matcher { queues: HashMap::new() }
    }
}

impl<S, R> Matcher<S, R> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a send-side entry. If a recv is already waiting for this key,
    /// it is removed and returned; otherwise the entry is queued.
    pub fn offer_send(&mut self, key: MatchKey, send: S) -> Option<R> {
        let (sends, recvs) = self.queues.entry(key).or_default();
        if let Some(r) = recvs.pop_front() {
            Some(r)
        } else {
            sends.push_back(send);
            None
        }
    }

    /// Offer a recv-side entry. If a send is already waiting for this key,
    /// it is removed and returned; otherwise the entry is queued.
    pub fn offer_recv(&mut self, key: MatchKey, recv: R) -> Option<S> {
        let (sends, recvs) = self.queues.entry(key).or_default();
        if let Some(s) = sends.pop_front() {
            Some(s)
        } else {
            recvs.push_back(recv);
            None
        }
    }

    /// Number of unmatched send-side entries across all keys.
    pub fn pending_sends(&self) -> usize {
        self.queues.values().map(|(s, _)| s.len()).sum()
    }

    /// Number of unmatched recv-side entries across all keys.
    pub fn pending_recvs(&self) -> usize {
        self.queues.values().map(|(_, r)| r.len()).sum()
    }

    /// True if no unmatched entries remain.
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(|(s, r)| s.is_empty() && r.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_first_then_recv() {
        let mut m: Matcher<u32, &str> = Matcher::new();
        assert_eq!(m.offer_send((0, 1, 0), 42), None);
        assert_eq!(m.pending_sends(), 1);
        assert_eq!(m.offer_recv((0, 1, 0), "r"), Some(42));
        assert!(m.is_empty());
    }

    #[test]
    fn recv_first_then_send() {
        let mut m: Matcher<u32, &str> = Matcher::new();
        assert_eq!(m.offer_recv((0, 1, 0), "r"), None);
        assert_eq!(m.pending_recvs(), 1);
        assert_eq!(m.offer_send((0, 1, 0), 7), Some("r"));
        assert!(m.is_empty());
    }

    #[test]
    fn fifo_order_within_key() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.offer_send((0, 1, 0), 1);
        m.offer_send((0, 1, 0), 2);
        assert_eq!(m.offer_recv((0, 1, 0), 10), Some(1));
        assert_eq!(m.offer_recv((0, 1, 0), 11), Some(2));
    }

    #[test]
    fn keys_do_not_cross_match() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.offer_send((0, 1, 0), 1);
        // different tag
        assert_eq!(m.offer_recv((0, 1, 5), 10), None);
        // different src
        assert_eq!(m.offer_recv((2, 1, 0), 11), None);
        assert_eq!(m.pending_sends(), 1);
        assert_eq!(m.pending_recvs(), 2);
    }

    #[test]
    fn interleaved_offers_preserve_per_key_fifo() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        // Two keys interleaved; each must keep its own order.
        m.offer_send((0, 1, 0), 100);
        m.offer_send((0, 1, 7), 200);
        m.offer_send((0, 1, 0), 101);
        m.offer_send((0, 1, 7), 201);
        assert_eq!(m.offer_recv((0, 1, 7), 0), Some(200));
        assert_eq!(m.offer_recv((0, 1, 0), 0), Some(100));
        assert_eq!(m.offer_recv((0, 1, 0), 0), Some(101));
        assert_eq!(m.offer_recv((0, 1, 7), 0), Some(201));
        assert!(m.is_empty());
    }

    #[test]
    fn alternating_sides_never_queue_both() {
        // Invariant: a key never holds unmatched entries on both sides.
        let mut m: Matcher<u32, u32> = Matcher::new();
        for i in 0..100u32 {
            if i % 3 == 0 {
                let _ = m.offer_recv((1, 2, 3), i);
            } else {
                let _ = m.offer_send((1, 2, 3), i);
            }
            assert!(m.pending_sends() == 0 || m.pending_recvs() == 0, "both sides queued at i={i}");
        }
    }

    #[test]
    fn large_backlog_drains_in_order() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        for i in 0..10_000u32 {
            m.offer_send((0, 1, 0), i);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.offer_recv((0, 1, 0), i), Some(i));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let m: Matcher<u8, u8> = Matcher::default();
        assert!(m.is_empty());
        assert_eq!(m.pending_sends() + m.pending_recvs(), 0);
    }
}
