//! Two-sided FIFO message matching.
//!
//! MPI/NCCL semantics: a message from `src` to `dst` with tag `t` matches
//! the oldest posted-but-unmatched recv for `(src, t)` at the destination,
//! in posting order. Backends use [`Matcher`] to pair message arrivals with
//! posted recvs; whichever side arrives second receives the other side's
//! payload immediately.
//!
//! ## Layout
//!
//! Trace-scale workloads are brutal on the obvious
//! `HashMap<MatchKey, (VecDeque<S>, VecDeque<R>)>` shape: a pipeline-
//! parallel LLM iteration uses one tag per microbatch, so a 1M-op trace
//! touches hundreds of thousands of distinct keys, each allocating (and
//! soon abandoning) its own pair of `VecDeque`s, and every offer pays a
//! SipHash of the key. This implementation instead:
//!
//! * keys the map with the deterministic multiplicative hasher shared
//!   with the simulators' other hot maps ([`atlahs_eventq::hash`]);
//! * stores unmatched entries as **pooled intrusive lists**: one shared
//!   slab of nodes with a free list, so queue storage is recycled across
//!   keys and an offer never allocates once the slab has warmed up;
//! * removes a key as soon as its queue drains, keeping the map sized by
//!   the number of *currently unmatched* keys (thousands) rather than
//!   every key ever seen (hundreds of thousands).
//!
//! A key's queue only ever holds one side at a time — an arriving
//! opposite-side entry always matches the head instead of enqueueing —
//! so one list per key suffices. Per-key FIFO order is the list order,
//! exactly as before; match results never depend on the hasher (nothing
//! iterates the map), which `order_is_independent_of_hasher_seed` pins.

use std::collections::hash_map::{Entry, OccupiedEntry};
use std::collections::HashMap;

use atlahs_eventq::hash::FastBuildHasher;
use atlahs_goal::{Rank, Tag};

/// Match key: (src, dst, tag).
pub type MatchKey = (Rank, Rank, Tag);

/// One pooled entry: an unmatched send- or recv-side value. `Vacant`
/// marks free-list membership (and lets values be moved out of the slab
/// without unsafe code).
#[derive(Debug, Clone)]
enum Slot<S, R> {
    Vacant,
    Send(S),
    Recv(R),
}

#[derive(Debug, Clone)]
struct Node<S, R> {
    slot: Slot<S, R>,
    /// Next node in this key's FIFO list, or the next free node.
    next: u32,
}

const NIL: u32 = u32::MAX;

/// Head/tail of one key's FIFO list of unmatched entries (all the same
/// side; never empty — drained keys are removed from the map).
#[derive(Debug, Clone, Copy)]
struct KeyQueue {
    head: u32,
    tail: u32,
}

/// A FIFO matcher pairing send-side entries (`S`) with recv-side entries (`R`).
///
/// `Clone` (for `S: Clone, R: Clone`) copies the queue map, node slab,
/// and free list verbatim, so a cloned matcher replays the exact same
/// match sequence as the original — the property backend `Snapshot`
/// implementations rely on. (Match results never depend on the hash-map
/// bucket layout; nothing iterates the map.)
#[derive(Debug, Clone)]
pub struct Matcher<S, R> {
    queues: HashMap<MatchKey, KeyQueue, FastBuildHasher>,
    pool: Vec<Node<S, R>>,
    free: u32,
    pending_sends: usize,
    pending_recvs: usize,
}

impl<S, R> Default for Matcher<S, R> {
    fn default() -> Self {
        Self::with_hasher_seed(0)
    }
}

impl<S, R> Matcher<S, R> {
    pub fn new() -> Self {
        Self::default()
    }

    /// A matcher whose map uses a different (still deterministic) bucket
    /// layout. Match results must not depend on the seed; tests use this
    /// to prove it.
    pub fn with_hasher_seed(seed: u64) -> Self {
        Matcher {
            queues: HashMap::with_hasher(FastBuildHasher::with_seed(seed)),
            pool: Vec::new(),
            free: NIL,
            pending_sends: 0,
            pending_recvs: 0,
        }
    }

    /// Offer a send-side entry. If a recv is already waiting for this key,
    /// it is removed and returned; otherwise the entry is queued.
    ///
    /// One map probe per offer: the entry API resolves the key once,
    /// whether the outcome is a match (head detach + possible key
    /// removal), an append, or a fresh queue.
    pub fn offer_send(&mut self, key: MatchKey, send: S) -> Option<R> {
        match self.queues.entry(key) {
            Entry::Occupied(mut o) => {
                let q = *o.get();
                if matches!(self.pool[q.head as usize].slot, Slot::Recv(_)) {
                    let slot = detach_head(&mut self.pool, &mut self.free, o);
                    self.pending_recvs -= 1;
                    let Slot::Recv(r) = slot else { unreachable!("head was Recv") };
                    return Some(r);
                }
                let idx = alloc_node(&mut self.pool, &mut self.free, Slot::Send(send));
                self.pool[q.tail as usize].next = idx;
                o.get_mut().tail = idx;
            }
            Entry::Vacant(v) => {
                let idx = alloc_node(&mut self.pool, &mut self.free, Slot::Send(send));
                v.insert(KeyQueue { head: idx, tail: idx });
            }
        }
        self.pending_sends += 1;
        None
    }

    /// Offer a recv-side entry. If a send is already waiting for this key,
    /// it is removed and returned; otherwise the entry is queued.
    pub fn offer_recv(&mut self, key: MatchKey, recv: R) -> Option<S> {
        match self.queues.entry(key) {
            Entry::Occupied(mut o) => {
                let q = *o.get();
                if matches!(self.pool[q.head as usize].slot, Slot::Send(_)) {
                    let slot = detach_head(&mut self.pool, &mut self.free, o);
                    self.pending_sends -= 1;
                    let Slot::Send(s) = slot else { unreachable!("head was Send") };
                    return Some(s);
                }
                let idx = alloc_node(&mut self.pool, &mut self.free, Slot::Recv(recv));
                self.pool[q.tail as usize].next = idx;
                o.get_mut().tail = idx;
            }
            Entry::Vacant(v) => {
                let idx = alloc_node(&mut self.pool, &mut self.free, Slot::Recv(recv));
                v.insert(KeyQueue { head: idx, tail: idx });
            }
        }
        self.pending_recvs += 1;
        None
    }

    /// Number of unmatched send-side entries across all keys.
    pub fn pending_sends(&self) -> usize {
        self.pending_sends
    }

    /// Number of unmatched recv-side entries across all keys.
    pub fn pending_recvs(&self) -> usize {
        self.pending_recvs
    }

    /// True if no unmatched entries remain.
    pub fn is_empty(&self) -> bool {
        self.pending_sends == 0 && self.pending_recvs == 0
    }
}

/// Take a node from the free list (or grow the slab) and fill it.
///
/// Free functions over the slab fields (not `&mut self` methods) so the
/// offer paths can hold a live map entry at the same time.
fn alloc_node<S, R>(pool: &mut Vec<Node<S, R>>, free: &mut u32, slot: Slot<S, R>) -> u32 {
    if *free != NIL {
        let idx = *free;
        let node = &mut pool[idx as usize];
        *free = node.next;
        node.slot = slot;
        node.next = NIL;
        idx
    } else {
        let idx = pool.len() as u32;
        assert!(idx != NIL, "matcher pool overflow");
        pool.push(Node { slot, next: NIL });
        idx
    }
}

/// Detach the head node of an occupied key queue — removing the key when
/// its list drains — recycle the node, and return its value slot.
fn detach_head<S, R>(
    pool: &mut [Node<S, R>],
    free: &mut u32,
    mut o: OccupiedEntry<'_, MatchKey, KeyQueue>,
) -> Slot<S, R> {
    let head = o.get().head as usize;
    let next = pool[head].next;
    if next == NIL {
        o.remove();
    } else {
        o.get_mut().head = next;
    }
    let slot = std::mem::replace(&mut pool[head].slot, Slot::Vacant);
    pool[head].next = *free;
    *free = head as u32;
    slot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_first_then_recv() {
        let mut m: Matcher<u32, &str> = Matcher::new();
        assert_eq!(m.offer_send((0, 1, 0), 42), None);
        assert_eq!(m.pending_sends(), 1);
        assert_eq!(m.offer_recv((0, 1, 0), "r"), Some(42));
        assert!(m.is_empty());
    }

    #[test]
    fn recv_first_then_send() {
        let mut m: Matcher<u32, &str> = Matcher::new();
        assert_eq!(m.offer_recv((0, 1, 0), "r"), None);
        assert_eq!(m.pending_recvs(), 1);
        assert_eq!(m.offer_send((0, 1, 0), 7), Some("r"));
        assert!(m.is_empty());
    }

    #[test]
    fn fifo_order_within_key() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.offer_send((0, 1, 0), 1);
        m.offer_send((0, 1, 0), 2);
        assert_eq!(m.offer_recv((0, 1, 0), 10), Some(1));
        assert_eq!(m.offer_recv((0, 1, 0), 11), Some(2));
    }

    #[test]
    fn keys_do_not_cross_match() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        m.offer_send((0, 1, 0), 1);
        // different tag
        assert_eq!(m.offer_recv((0, 1, 5), 10), None);
        // different src
        assert_eq!(m.offer_recv((2, 1, 0), 11), None);
        assert_eq!(m.pending_sends(), 1);
        assert_eq!(m.pending_recvs(), 2);
    }

    #[test]
    fn interleaved_offers_preserve_per_key_fifo() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        // Two keys interleaved; each must keep its own order.
        m.offer_send((0, 1, 0), 100);
        m.offer_send((0, 1, 7), 200);
        m.offer_send((0, 1, 0), 101);
        m.offer_send((0, 1, 7), 201);
        assert_eq!(m.offer_recv((0, 1, 7), 0), Some(200));
        assert_eq!(m.offer_recv((0, 1, 0), 0), Some(100));
        assert_eq!(m.offer_recv((0, 1, 0), 0), Some(101));
        assert_eq!(m.offer_recv((0, 1, 7), 0), Some(201));
        assert!(m.is_empty());
    }

    #[test]
    fn alternating_sides_never_queue_both() {
        // Invariant: a key never holds unmatched entries on both sides.
        let mut m: Matcher<u32, u32> = Matcher::new();
        for i in 0..100u32 {
            if i % 3 == 0 {
                let _ = m.offer_recv((1, 2, 3), i);
            } else {
                let _ = m.offer_send((1, 2, 3), i);
            }
            assert!(m.pending_sends() == 0 || m.pending_recvs() == 0, "both sides queued at i={i}");
        }
    }

    #[test]
    fn large_backlog_drains_in_order() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        for i in 0..10_000u32 {
            m.offer_send((0, 1, 0), i);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.offer_recv((0, 1, 0), i), Some(i));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let m: Matcher<u8, u8> = Matcher::default();
        assert!(m.is_empty());
        assert_eq!(m.pending_sends() + m.pending_recvs(), 0);
    }

    #[test]
    fn pool_nodes_are_recycled_across_keys() {
        let mut m: Matcher<u32, u32> = Matcher::new();
        // Many keys used once each: the slab must stay bounded by the
        // peak number of simultaneously unmatched entries, not by the
        // number of keys ever touched.
        for tag in 0..10_000u32 {
            m.offer_send((0, 1, tag), tag);
            assert_eq!(m.offer_recv((0, 1, tag), tag), Some(tag));
        }
        assert!(m.is_empty());
        assert!(m.pool.len() <= 2, "slab grew to {} nodes", m.pool.len());
        assert!(m.queues.is_empty(), "drained keys must be removed");
    }

    /// The determinism contract of the fast hasher swap: every observable
    /// matcher behavior — who matches whom, in what order, and the
    /// pending counts along the way — is identical under different
    /// hasher seeds (i.e. bucket layouts).
    #[test]
    fn order_is_independent_of_hasher_seed() {
        // A deterministic pseudo-random offer schedule over a handful of
        // keys, replayed against matchers with very different seeds.
        let script: Vec<(MatchKey, bool, u32)> = {
            let mut x = 0x1234_5678_9abc_def0u64;
            (0..4_000u32)
                .map(|i| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = ((x >> 8) as u32 % 3, (x >> 16) as u32 % 3, (x >> 24) as u32 % 7);
                    (key, x & 1 == 0, i)
                })
                .collect()
        };
        let run = |seed: u64| -> Vec<(Option<u32>, usize, usize)> {
            let mut m: Matcher<u32, u32> = Matcher::with_hasher_seed(seed);
            script
                .iter()
                .map(|&(key, is_send, v)| {
                    let matched = if is_send { m.offer_send(key, v) } else { m.offer_recv(key, v) };
                    (matched, m.pending_sends(), m.pending_recvs())
                })
                .collect()
        };
        let baseline = run(0);
        for seed in [1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(baseline, run(seed), "matcher behavior depends on hasher seed {seed}");
        }
    }
}
