//! Reference backends.
//!
//! [`IdealBackend`] is the simplest possible implementation of the ATLAHS
//! API: a contention-free network with fixed per-byte bandwidth and fixed
//! latency, and hosts that execute calcs at face value. It exists to
//! document the backend contract, to serve as a fixture for scheduler
//! tests, and as a lower bound in experiments (no congestion, no protocol
//! overheads). Real backends live in `atlahs-lgs`, `atlahs-htsim`, and
//! `atlahs-testbed`.

use atlahs_eventq::EventQueue;
use atlahs_goal::{Rank, Tag};

use crate::api::{Backend, Completion, OpRef, Time};
use crate::matcher::{MatchKey, Matcher};
use crate::snapshot::Snapshot;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// An operation finishes.
    Done(OpRef),
    /// An operation's CPU phase is over (recv posting).
    CpuFree(OpRef),
    /// A message fully arrives at its destination.
    Arrive(MatchKey),
}

/// A contention-free fixed-rate network backend.
///
/// * `send` completes once the last byte has left the sender:
///   `bytes / bandwidth` after issue;
/// * the message arrives `latency` ns after that;
/// * `recv` completes at `max(arrival, post time)`;
/// * `calc` completes after exactly `cost` ns.
#[derive(Debug)]
pub struct IdealBackend {
    /// Bytes per nanosecond.
    // det-lint: allow(float) — ideal-backend Gbps parameter; fixed-order IEEE-754 ops, bit-stable
    bandwidth: f64,
    /// One-way latency in nanoseconds.
    latency: Time,
    now: Time,
    /// Timer-wheel event core shared with the real backends; pops in the
    /// exact `(time, push order)` order of the previous global heap.
    events: EventQueue<Ev>,
    matcher: Matcher<Time, OpRef>,
}

impl IdealBackend {
    /// `bandwidth` in bytes/ns (e.g. `25.0` for 25 GB/s), `latency` in ns.
    // det-lint: allow(float) — ideal-backend Gbps parameter; fixed-order IEEE-754 ops, bit-stable
    pub fn new(bandwidth: f64, latency: Time) -> Self {
        // det-lint: allow(float) — ideal-backend Gbps parameter; fixed-order IEEE-754 ops, bit-stable
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        IdealBackend {
            bandwidth,
            latency,
            now: 0,
            events: EventQueue::new(),
            matcher: Matcher::new(),
        }
    }

    fn push(&mut self, time: Time, ev: Ev) {
        self.events.push(time, ev);
    }

    fn tx_time(&self, bytes: u64) -> Time {
        // det-lint: allow(float) — ideal-backend Gbps parameter; fixed-order IEEE-754 ops, bit-stable
        (bytes as f64 / self.bandwidth).round() as Time
    }
}

impl Backend for IdealBackend {
    fn simulation_setup(&mut self, _num_ranks: usize) {
        self.now = 0;
        self.events.clear();
        self.matcher = Matcher::new();
    }

    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, op: OpRef, dst: Rank, bytes: u64, tag: Tag) {
        let done = self.now + self.tx_time(bytes);
        self.push(done, Ev::Done(op));
        let key = (op.rank, dst, tag);
        let arrive = done + self.latency;
        // The arrival is processed as its own event so matching happens in
        // simulated-time order.
        self.push(arrive, Ev::Arrive(key));
        self.matcher_stash(key, arrive);
    }

    fn recv(&mut self, op: OpRef, src: Rank, _bytes: u64, tag: Tag) {
        let key = (src, op.rank, tag);
        // Posting a recv is non-blocking: the stream is released
        // immediately (like every real backend), otherwise schedules with
        // interleaved collectives on one stream could self-deadlock.
        self.push(self.now, Ev::CpuFree(op));
        if let Some(arrival) = self.matcher.offer_recv(key, op) {
            // Message already arrived: complete at max(now, arrival) = now,
            // since arrivals are processed in time order.
            let t = self.now.max(arrival);
            self.push(t, Ev::Done(op));
        }
    }

    fn calc(&mut self, op: OpRef, cost: u64) {
        self.push(self.now + cost, Ev::Done(op));
    }

    fn next_event(&mut self) -> Option<Completion> {
        while let Some((time, ev)) = self.events.pop() {
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            match ev {
                Ev::Done(op) => return Some(Completion::done(op, time)),
                Ev::CpuFree(op) => return Some(Completion::cpu_free(op, time)),
                Ev::Arrive(_key) => {
                    // Matching state was updated eagerly in `send`/`recv`;
                    // arrivals that matched a waiting recv were turned into
                    // Done events there. Nothing to do: this event only
                    // exists to advance time deterministically.
                }
            }
        }
        None
    }
}

impl IdealBackend {
    /// Record an in-flight message; if a recv is already posted, schedule its
    /// completion at the arrival time.
    fn matcher_stash(&mut self, key: MatchKey, arrive: Time) {
        if let Some(recv_op) = self.matcher.offer_send(key, arrive) {
            self.push(arrive, Ev::Done(recv_op));
        }
    }
}

/// The ideal backend's complete mutable state: clock, pending events,
/// and unmatched messages. Bandwidth/latency are construction-time
/// configuration and stay on the backend.
#[derive(Debug, Clone)]
pub struct IdealState {
    now: Time,
    events: EventQueue<Ev>,
    matcher: Matcher<Time, OpRef>,
}

impl Snapshot for IdealBackend {
    type State = IdealState;

    fn checkpoint(&self) -> IdealState {
        IdealState { now: self.now, events: self.events.clone(), matcher: self.matcher.clone() }
    }

    fn restore(&mut self, state: &IdealState) {
        self.now = state.now;
        self.events = state.events.clone();
        self.matcher = state.matcher.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_goal::TaskId;

    fn op(rank: Rank, task: u32) -> OpRef {
        OpRef::new(rank, TaskId(task))
    }

    #[test]
    fn calc_completes_after_cost() {
        let mut b = IdealBackend::new(1.0, 10);
        b.simulation_setup(1);
        b.calc(op(0, 0), 42);
        let c = b.next_event().unwrap();
        assert_eq!(c.time, 42);
        assert_eq!(c.op, op(0, 0));
        assert!(b.next_event().is_none());
    }

    #[test]
    fn send_then_recv_ordering() {
        let mut b = IdealBackend::new(2.0, 10);
        b.simulation_setup(2);
        b.send(op(0, 0), 1, 100, 0); // tx = 50, arrive = 60
        b.recv(op(1, 0), 0, 100, 0);
        // Posting the recv releases its stream immediately (non-blocking).
        let c0 = b.next_event().unwrap();
        assert_eq!(c0.op, op(1, 0));
        assert_eq!(c0.kind, crate::api::EventKind::CpuFree);
        assert_eq!(c0.time, 0);
        let c1 = b.next_event().unwrap();
        assert_eq!(c1.op, op(0, 0));
        assert_eq!(c1.time, 50);
        let c2 = b.next_event().unwrap();
        assert_eq!(c2.op, op(1, 0));
        assert_eq!(c2.time, 60);
    }

    #[test]
    fn events_in_time_order_with_fifo_ties() {
        let mut b = IdealBackend::new(1.0, 0);
        b.simulation_setup(1);
        b.calc(op(0, 1), 5);
        b.calc(op(0, 2), 5);
        b.calc(op(0, 3), 1);
        let order: Vec<_> = std::iter::from_fn(|| b.next_event()).map(|c| c.op.task.0).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn setup_resets_state() {
        let mut b = IdealBackend::new(1.0, 0);
        b.simulation_setup(1);
        b.calc(op(0, 0), 5);
        b.simulation_setup(1);
        assert!(b.next_event().is_none());
        assert_eq!(b.now(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = IdealBackend::new(0.0, 0);
    }
}
