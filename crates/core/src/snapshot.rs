//! Checkpoint / restore for simulation backends.
//!
//! ROADMAP item 4: cluster-scale studies re-run every cell from t=0 even
//! when cells share a long identical prefix and differ only in a late
//! decision (a CC change, an injected failure, a placement tweak at time
//! t). [`Snapshot`] makes the *pay-only-for-the-suffix* alternative
//! possible: simulate the shared prefix once, [`Snapshot::checkpoint`]
//! the backend (and the scheduler driver, which is `Clone`), then
//! [`Snapshot::restore`] per what-if continuation.
//!
//! ## The bit-identity contract
//!
//! Checkpoint-at-t followed by restore-and-continue must produce output
//! **byte-identical** to a straight-through run — not approximately
//! equal, identical: the same makespan, the same per-flow records, the
//! same RNG draws, the same event pop order. This is what lets branched
//! sweep reports be diffed against straight-through goldens
//! (`tests/goldens/branch_smoke.json`) and what
//! `tests/determinism_golden.rs` pins per backend on clean and faulted
//! cells.
//!
//! Consequently a `State` must capture *every* mutable bit of the
//! backend: the event queue including its cursor and tie-break sequence
//! counter (`atlahs_eventq::EventQueue` is `Clone` for exactly this),
//! matcher queue slabs and free lists, RNG state, per-flow/per-port
//! engine state, and statistics counters. Configuration fixed at
//! construction (topology, CC parameters, debug flags) need not be
//! captured — restoring onto the *same* backend instance is the
//! supported use; restoring onto a differently-configured backend is a
//! contract violation.
//!
//! `restore` takes `&State` (not `State`): one checkpoint fans out into
//! N what-if continuations, so states are reused, never consumed.

/// Checkpoint/restore of a backend's complete mutable simulation state.
///
/// Implemented by `IdealBackend`, `LgsBackend`, and the htsim engine.
/// See the module docs for the bit-identity contract.
pub trait Snapshot {
    /// The captured state. `Clone` so one checkpoint can seed many
    /// branches.
    type State: Clone;

    /// Capture the backend's complete mutable state at the current
    /// simulated time.
    fn checkpoint(&self) -> Self::State;

    /// Reset the backend to a previously captured state. The backend
    /// must have been constructed with the same configuration as when
    /// `state` was captured.
    fn restore(&mut self, state: &Self::State);
}
