//! Job placement strategies for multi-job and multi-tenant scenarios
//! (paper §3.2 and the Fig. 13 case study), plus the online
//! allocate → run → release node-pool lifecycle the dynamic cluster
//! engine schedules against.

use atlahs_goal::Rank;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// How jobs are mapped onto cluster nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Nodes are assigned sequentially to each job: job 0 gets nodes
    /// `0..n0`, job 1 gets `n0..n0+n1`, … — communication stays local
    /// (the paper's "Packed Allocation").
    Packed,
    /// Nodes are drawn from a seeded random permutation of the cluster —
    /// no locality (the paper's "Random Allocation").
    Random { seed: u64 },
    /// Nodes are dealt to jobs round-robin, interleaving them across the
    /// cluster (worst-case sharing of every switch).
    RoundRobin,
}

/// Allocate cluster nodes to jobs.
///
/// Returns one node list per job (`result[j][r]` = physical node of job `j`
/// rank `r`). Fails if the jobs need more nodes than the cluster has.
pub fn allocate(
    strategy: PlacementStrategy,
    cluster_size: usize,
    job_sizes: &[usize],
) -> Result<Vec<Vec<Rank>>, String> {
    let needed: usize = job_sizes.iter().sum();
    if needed > cluster_size {
        return Err(format!("jobs need {needed} nodes but the cluster has {cluster_size}"));
    }

    match strategy {
        PlacementStrategy::Packed => {
            let mut next = 0u32;
            Ok(job_sizes
                .iter()
                .map(|&n| {
                    let nodes = (next..next + n as u32).collect();
                    next += n as u32;
                    nodes
                })
                .collect())
        }
        PlacementStrategy::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pool: Vec<Rank> = (0..cluster_size as u32).collect();
            pool.shuffle(&mut rng);
            let mut next = 0usize;
            Ok(job_sizes
                .iter()
                .map(|&n| {
                    let nodes = pool[next..next + n].to_vec();
                    next += n;
                    nodes
                })
                .collect())
        }
        PlacementStrategy::RoundRobin => {
            let mut result: Vec<Vec<Rank>> = job_sizes.iter().map(|_| Vec::new()).collect();
            let mut remaining: Vec<usize> = job_sizes.to_vec();
            let mut node = 0u32;
            loop {
                let mut assigned = false;
                for (j, need) in remaining.iter_mut().enumerate() {
                    if *need > 0 {
                        result[j].push(node);
                        node += 1;
                        *need -= 1;
                        assigned = true;
                    }
                }
                if !assigned {
                    break;
                }
            }
            Ok(result)
        }
    }
}

// ----------------------------------------------------------- node pool ----

/// Fragmentation snapshot of a [`NodePool`]'s free set.
///
/// A *free extent* is a maximal run of contiguous free node indices. A
/// freshly drained cluster has one extent covering everything; as jobs of
/// different sizes come and go, the free set shatters into many small
/// extents, and jobs needing contiguous locality (packed placement) pay
/// for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragStats {
    /// Free nodes right now.
    pub free: usize,
    /// Number of maximal contiguous free extents.
    pub extents: usize,
    /// Size of the largest free extent.
    pub largest_extent: usize,
}

impl FragStats {
    /// Fragmentation index in `[0, 1]`: `1 - largest_extent / free`
    /// (0 when the free set is one contiguous run or empty).
    // det-lint: allow(float) — fragmentation diagnostic ratio, reporting only
    pub fn index(&self) -> f64 {
        if self.free == 0 {
            // det-lint: allow(float) — fragmentation diagnostic ratio, reporting only
            0.0
        } else {
            // det-lint: allow(float) — fragmentation diagnostic ratio, reporting only
            1.0 - self.largest_extent as f64 / self.free as f64
        }
    }
}

/// An online cluster-node allocator: the allocate → run → release
/// lifecycle behind dynamic job scheduling.
///
/// [`allocate`] maps a *static* batch of jobs onto an empty cluster; a
/// `NodePool` instead tracks which nodes are busy as jobs arrive and
/// leave, hands each admitted job a node set drawn according to its
/// [`PlacementStrategy`], and reclaims the nodes on release. All draws
/// are deterministic: `Random` consumes a seeded permutation stream, so
/// a pool replayed with the same strategy and the same alloc/release
/// sequence always yields the same placements.
#[derive(Debug, Clone)]
pub struct NodePool {
    strategy: PlacementStrategy,
    /// `busy[n]` — node `n` is currently allocated.
    busy: Vec<bool>,
    num_free: usize,
    /// RoundRobin rotation point: the next scan starts here.
    cursor: usize,
    /// Seeded generator backing `Random` draws.
    rng: StdRng,
}

impl NodePool {
    /// An empty (fully free) pool of `cluster_size` nodes.
    pub fn new(strategy: PlacementStrategy, cluster_size: usize) -> NodePool {
        let seed = match strategy {
            PlacementStrategy::Random { seed } => seed,
            _ => 0,
        };
        NodePool {
            strategy,
            busy: vec![false; cluster_size],
            num_free: cluster_size,
            cursor: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Total nodes in the cluster.
    pub fn cluster_size(&self) -> usize {
        self.busy.len()
    }

    /// Nodes currently free.
    pub fn num_free(&self) -> usize {
        self.num_free
    }

    /// Try to allocate `n` nodes; `None` if the pool cannot satisfy the
    /// request (the caller keeps the job queued). A refused request
    /// consumes no allocator state — not even `Random`'s RNG stream — so
    /// queue order never perturbs later placements.
    pub fn alloc(&mut self, n: usize) -> Option<Vec<Rank>> {
        if n > self.num_free {
            return None;
        }
        if n == 0 {
            return Some(Vec::new());
        }
        let nodes = match self.strategy {
            PlacementStrategy::Packed => {
                // Lowest-index free nodes: keeps allocations compact and
                // lets fragmentation accumulate at realistic boundaries.
                (0..self.busy.len() as u32).filter(|&i| !self.busy[i as usize]).take(n).collect()
            }
            PlacementStrategy::Random { .. } => {
                // A seeded partial Fisher–Yates over the free list.
                let mut pool: Vec<Rank> =
                    (0..self.busy.len() as u32).filter(|&i| !self.busy[i as usize]).collect();
                let mut picked = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = self.rng.random_range(0..pool.len());
                    picked.push(pool.swap_remove(i));
                }
                picked
            }
            PlacementStrategy::RoundRobin => {
                // Scan cyclically from the rotation point, then advance it
                // past the last node handed out, spreading successive jobs
                // around the fabric.
                let len = self.busy.len();
                let mut picked = Vec::with_capacity(n);
                let mut last = self.cursor;
                for off in 0..len {
                    let i = (self.cursor + off) % len;
                    if !self.busy[i] {
                        picked.push(i as u32);
                        last = i;
                        if picked.len() == n {
                            break;
                        }
                    }
                }
                self.cursor = (last + 1) % len;
                picked
            }
        };
        debug_assert_eq!(nodes.len(), n);
        for &node in &nodes {
            self.busy[node as usize] = true;
        }
        self.num_free -= n;
        Some(nodes)
    }

    /// Return a job's nodes to the pool. Panics on nodes that are out of
    /// range or not currently allocated (double release is a scheduler
    /// bug, not a recoverable condition).
    pub fn release(&mut self, nodes: &[Rank]) {
        for &node in nodes {
            let i = node as usize;
            assert!(i < self.busy.len(), "release: node {node} out of range");
            assert!(self.busy[i], "release: node {node} is not allocated");
            self.busy[i] = false;
        }
        self.num_free += nodes.len();
    }

    /// Fragmentation snapshot of the current free set.
    pub fn frag(&self) -> FragStats {
        let mut extents = 0;
        let mut largest = 0;
        let mut run = 0;
        for &b in &self.busy {
            if !b {
                if run == 0 {
                    extents += 1;
                }
                run += 1;
                largest = largest.max(run);
            } else {
                run = 0;
            }
        }
        FragStats { free: self.num_free, extents, largest_extent: largest }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_is_sequential() {
        let p = allocate(PlacementStrategy::Packed, 8, &[3, 2]).unwrap();
        assert_eq!(p, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn random_is_a_permutation_and_deterministic() {
        let p1 = allocate(PlacementStrategy::Random { seed: 7 }, 16, &[8, 8]).unwrap();
        let p2 = allocate(PlacementStrategy::Random { seed: 7 }, 16, &[8, 8]).unwrap();
        assert_eq!(p1, p2, "same seed, same placement");
        let mut all: Vec<Rank> = p1.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());

        let p3 = allocate(PlacementStrategy::Random { seed: 8 }, 16, &[8, 8]).unwrap();
        assert_ne!(p1, p3, "different seed should (overwhelmingly) differ");
    }

    #[test]
    fn round_robin_interleaves() {
        let p = allocate(PlacementStrategy::RoundRobin, 8, &[2, 2]).unwrap();
        assert_eq!(p, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn round_robin_uneven_jobs() {
        let p = allocate(PlacementStrategy::RoundRobin, 8, &[3, 1]).unwrap();
        assert_eq!(p, vec![vec![0, 2, 3], vec![1]]);
    }

    #[test]
    fn overcommit_rejected() {
        assert!(allocate(PlacementStrategy::Packed, 4, &[3, 2]).is_err());
    }

    #[test]
    fn exact_fit_ok() {
        let p = allocate(PlacementStrategy::Packed, 5, &[3, 2]).unwrap();
        assert_eq!(p[1], vec![3, 4]);
    }

    #[test]
    fn exact_fit_every_strategy_uses_the_whole_cluster() {
        for strategy in [
            PlacementStrategy::Packed,
            PlacementStrategy::Random { seed: 3 },
            PlacementStrategy::RoundRobin,
        ] {
            let p = allocate(strategy, 6, &[4, 2]).unwrap();
            let mut all: Vec<Rank> = p.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..6).collect::<Vec<_>>(), "{strategy:?}");
            assert_eq!(p[0].len(), 4, "{strategy:?}");
            assert_eq!(p[1].len(), 2, "{strategy:?}");
        }
    }

    #[test]
    fn empty_job_list_allocates_nothing() {
        for strategy in [
            PlacementStrategy::Packed,
            PlacementStrategy::Random { seed: 1 },
            PlacementStrategy::RoundRobin,
        ] {
            assert_eq!(allocate(strategy, 8, &[]).unwrap(), Vec::<Vec<Rank>>::new());
            // Degenerate but legal: an empty cluster with no jobs.
            assert_eq!(allocate(strategy, 0, &[]).unwrap(), Vec::<Vec<Rank>>::new());
        }
    }

    #[test]
    fn zero_size_job_gets_an_empty_placement() {
        for strategy in [
            PlacementStrategy::Packed,
            PlacementStrategy::Random { seed: 5 },
            PlacementStrategy::RoundRobin,
        ] {
            let p = allocate(strategy, 4, &[2, 0, 2]).unwrap();
            assert_eq!(p.len(), 3, "{strategy:?}");
            assert!(p[1].is_empty(), "{strategy:?}");
            // The zero-size job must not eat nodes: its neighbors still
            // get disjoint placements covering 4 nodes.
            let mut used: Vec<Rank> = p.iter().flatten().copied().collect();
            used.sort_unstable();
            assert_eq!(used, (0..4).collect::<Vec<_>>(), "{strategy:?}");
        }
    }

    #[test]
    fn pool_packed_allocates_lowest_free_and_reuses_released() {
        let mut pool = NodePool::new(PlacementStrategy::Packed, 8);
        let a = pool.alloc(3).unwrap();
        let b = pool.alloc(2).unwrap();
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(b, vec![3, 4]);
        assert_eq!(pool.num_free(), 3);
        pool.release(&a);
        // The freed low nodes are preferred over the untouched tail.
        let c = pool.alloc(4).unwrap();
        assert_eq!(c, vec![0, 1, 2, 5]);
    }

    #[test]
    fn pool_refuses_overcommit_without_consuming_state() {
        let mut pool = NodePool::new(PlacementStrategy::Random { seed: 11 }, 8);
        let mut replay = NodePool::new(PlacementStrategy::Random { seed: 11 }, 8);
        let _ = pool.alloc(6).unwrap();
        assert_eq!(pool.alloc(3), None, "only 2 nodes left");
        // The refused request must not have advanced the RNG: the next
        // successful draw matches a replay that never saw the refusal.
        let _ = replay.alloc(6).unwrap();
        assert_eq!(pool.alloc(2), replay.alloc(2));
    }

    #[test]
    fn pool_random_is_deterministic_and_disjoint() {
        let draw = |seed| {
            let mut pool = NodePool::new(PlacementStrategy::Random { seed }, 16);
            (pool.alloc(5).unwrap(), pool.alloc(5).unwrap())
        };
        let (a1, b1) = draw(7);
        let (a2, b2) = draw(7);
        assert_eq!((a1.clone(), b1.clone()), (a2, b2), "same seed, same draws");
        let mut all: Vec<Rank> = a1.iter().chain(b1.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10, "allocations never overlap");
        let (a3, _) = draw(8);
        assert_ne!(a1, a3, "different seed should (overwhelmingly) differ");
    }

    #[test]
    fn pool_round_robin_rotates_across_jobs() {
        let mut pool = NodePool::new(PlacementStrategy::RoundRobin, 8);
        assert_eq!(pool.alloc(3).unwrap(), vec![0, 1, 2]);
        // The next job starts where the previous one stopped.
        assert_eq!(pool.alloc(3).unwrap(), vec![3, 4, 5]);
        pool.release(&[0, 1, 2]);
        // Wraps past the busy tail onto the freed head.
        assert_eq!(pool.alloc(3).unwrap(), vec![6, 7, 0]);
    }

    #[test]
    fn pool_release_then_alloc_cycles_forever() {
        let mut pool = NodePool::new(PlacementStrategy::Packed, 4);
        for _ in 0..100 {
            let nodes = pool.alloc(4).unwrap();
            assert_eq!(pool.num_free(), 0);
            pool.release(&nodes);
            assert_eq!(pool.num_free(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn pool_double_release_panics() {
        let mut pool = NodePool::new(PlacementStrategy::Packed, 4);
        let nodes = pool.alloc(2).unwrap();
        pool.release(&nodes);
        pool.release(&nodes);
    }

    #[test]
    fn frag_stats_track_extent_shatter() {
        let mut pool = NodePool::new(PlacementStrategy::Packed, 10);
        assert_eq!(pool.frag(), FragStats { free: 10, extents: 1, largest_extent: 10 });
        assert_eq!(pool.frag().index(), 0.0);
        let a = pool.alloc(2).unwrap(); // 0,1
        let b = pool.alloc(2).unwrap(); // 2,3
        let c = pool.alloc(2).unwrap(); // 4,5
        pool.release(&a);
        pool.release(&c);
        // Free: {0,1} and {4..9} (the released 4,5 merge with the
        // untouched tail) — two extents, largest 6.
        assert_eq!(pool.frag(), FragStats { free: 8, extents: 2, largest_extent: 6 });
        assert!(pool.frag().index() > 0.0);
        pool.release(&b);
        assert_eq!(pool.frag(), FragStats { free: 10, extents: 1, largest_extent: 10 });
    }

    #[test]
    fn pool_zero_size_alloc_is_empty() {
        let mut pool = NodePool::new(PlacementStrategy::RoundRobin, 4);
        assert_eq!(pool.alloc(0), Some(Vec::new()));
        assert_eq!(pool.num_free(), 4);
    }

    #[test]
    fn random_is_stable_across_cluster_reuse() {
        // Same seed, same cluster, different job splits: the underlying
        // permutation is identical, so the flattened node order agrees.
        let a = allocate(PlacementStrategy::Random { seed: 42 }, 12, &[12]).unwrap();
        let b = allocate(PlacementStrategy::Random { seed: 42 }, 12, &[6, 6]).unwrap();
        let flat_a: Vec<Rank> = a.into_iter().flatten().collect();
        let flat_b: Vec<Rank> = b.into_iter().flatten().collect();
        assert_eq!(flat_a, flat_b);
    }
}
