//! Job placement strategies for multi-job and multi-tenant scenarios
//! (paper §3.2 and the Fig. 13 case study).

use atlahs_goal::Rank;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How jobs are mapped onto cluster nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Nodes are assigned sequentially to each job: job 0 gets nodes
    /// `0..n0`, job 1 gets `n0..n0+n1`, … — communication stays local
    /// (the paper's "Packed Allocation").
    Packed,
    /// Nodes are drawn from a seeded random permutation of the cluster —
    /// no locality (the paper's "Random Allocation").
    Random { seed: u64 },
    /// Nodes are dealt to jobs round-robin, interleaving them across the
    /// cluster (worst-case sharing of every switch).
    RoundRobin,
}

/// Allocate cluster nodes to jobs.
///
/// Returns one node list per job (`result[j][r]` = physical node of job `j`
/// rank `r`). Fails if the jobs need more nodes than the cluster has.
pub fn allocate(
    strategy: PlacementStrategy,
    cluster_size: usize,
    job_sizes: &[usize],
) -> Result<Vec<Vec<Rank>>, String> {
    let needed: usize = job_sizes.iter().sum();
    if needed > cluster_size {
        return Err(format!("jobs need {needed} nodes but the cluster has {cluster_size}"));
    }

    match strategy {
        PlacementStrategy::Packed => {
            let mut next = 0u32;
            Ok(job_sizes
                .iter()
                .map(|&n| {
                    let nodes = (next..next + n as u32).collect();
                    next += n as u32;
                    nodes
                })
                .collect())
        }
        PlacementStrategy::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pool: Vec<Rank> = (0..cluster_size as u32).collect();
            pool.shuffle(&mut rng);
            let mut next = 0usize;
            Ok(job_sizes
                .iter()
                .map(|&n| {
                    let nodes = pool[next..next + n].to_vec();
                    next += n;
                    nodes
                })
                .collect())
        }
        PlacementStrategy::RoundRobin => {
            let mut result: Vec<Vec<Rank>> = job_sizes.iter().map(|_| Vec::new()).collect();
            let mut remaining: Vec<usize> = job_sizes.to_vec();
            let mut node = 0u32;
            loop {
                let mut assigned = false;
                for (j, need) in remaining.iter_mut().enumerate() {
                    if *need > 0 {
                        result[j].push(node);
                        node += 1;
                        *need -= 1;
                        assigned = true;
                    }
                }
                if !assigned {
                    break;
                }
            }
            Ok(result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_is_sequential() {
        let p = allocate(PlacementStrategy::Packed, 8, &[3, 2]).unwrap();
        assert_eq!(p, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn random_is_a_permutation_and_deterministic() {
        let p1 = allocate(PlacementStrategy::Random { seed: 7 }, 16, &[8, 8]).unwrap();
        let p2 = allocate(PlacementStrategy::Random { seed: 7 }, 16, &[8, 8]).unwrap();
        assert_eq!(p1, p2, "same seed, same placement");
        let mut all: Vec<Rank> = p1.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());

        let p3 = allocate(PlacementStrategy::Random { seed: 8 }, 16, &[8, 8]).unwrap();
        assert_ne!(p1, p3, "different seed should (overwhelmingly) differ");
    }

    #[test]
    fn round_robin_interleaves() {
        let p = allocate(PlacementStrategy::RoundRobin, 8, &[2, 2]).unwrap();
        assert_eq!(p, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn round_robin_uneven_jobs() {
        let p = allocate(PlacementStrategy::RoundRobin, 8, &[3, 1]).unwrap();
        assert_eq!(p, vec![vec![0, 2, 3], vec![1]]);
    }

    #[test]
    fn overcommit_rejected() {
        assert!(allocate(PlacementStrategy::Packed, 4, &[3, 2]).is_err());
    }

    #[test]
    fn exact_fit_ok() {
        let p = allocate(PlacementStrategy::Packed, 5, &[3, 2]).unwrap();
        assert_eq!(p[1], vec![3, 4]);
    }

    #[test]
    fn exact_fit_every_strategy_uses_the_whole_cluster() {
        for strategy in [
            PlacementStrategy::Packed,
            PlacementStrategy::Random { seed: 3 },
            PlacementStrategy::RoundRobin,
        ] {
            let p = allocate(strategy, 6, &[4, 2]).unwrap();
            let mut all: Vec<Rank> = p.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..6).collect::<Vec<_>>(), "{strategy:?}");
            assert_eq!(p[0].len(), 4, "{strategy:?}");
            assert_eq!(p[1].len(), 2, "{strategy:?}");
        }
    }

    #[test]
    fn empty_job_list_allocates_nothing() {
        for strategy in [
            PlacementStrategy::Packed,
            PlacementStrategy::Random { seed: 1 },
            PlacementStrategy::RoundRobin,
        ] {
            assert_eq!(allocate(strategy, 8, &[]).unwrap(), Vec::<Vec<Rank>>::new());
            // Degenerate but legal: an empty cluster with no jobs.
            assert_eq!(allocate(strategy, 0, &[]).unwrap(), Vec::<Vec<Rank>>::new());
        }
    }

    #[test]
    fn zero_size_job_gets_an_empty_placement() {
        for strategy in [
            PlacementStrategy::Packed,
            PlacementStrategy::Random { seed: 5 },
            PlacementStrategy::RoundRobin,
        ] {
            let p = allocate(strategy, 4, &[2, 0, 2]).unwrap();
            assert_eq!(p.len(), 3, "{strategy:?}");
            assert!(p[1].is_empty(), "{strategy:?}");
            // The zero-size job must not eat nodes: its neighbors still
            // get disjoint placements covering 4 nodes.
            let mut used: Vec<Rank> = p.iter().flatten().copied().collect();
            used.sort_unstable();
            assert_eq!(used, (0..4).collect::<Vec<_>>(), "{strategy:?}");
        }
    }

    #[test]
    fn random_is_stable_across_cluster_reuse() {
        // Same seed, same cluster, different job splits: the underlying
        // permutation is identical, so the flattened node order agrees.
        let a = allocate(PlacementStrategy::Random { seed: 42 }, 12, &[12]).unwrap();
        let b = allocate(PlacementStrategy::Random { seed: 42 }, 12, &[6, 6]).unwrap();
        let flat_a: Vec<Rank> = a.into_iter().flatten().collect();
        let flat_b: Vec<Rank> = b.into_iter().flatten().collect();
        assert_eq!(flat_a, flat_b);
    }
}
