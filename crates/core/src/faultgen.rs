//! Seeded fault-scenario generation: integer-parameterized distributions
//! that *compile down* to the primitive fault events the execution layers
//! already understand (timed port windows, straggler factors, job-failure
//! draws) instead of replacing them.
//!
//! Everything here is a pure function of integer inputs:
//!
//! * Randomness is an FNV-1a fold ([`fnv_draw`]) over `(seed, stream,
//!   index)` — no RNG stream is consumed, so a fault axis can never
//!   perturb any other seeded draw, and the same spec reproduces
//!   bit-identically across threads and reruns.
//! * Inverse-CDF sampling is **fixed-point** (Q32) integer arithmetic:
//!   `-ln u` is computed by a bit-by-bit repeated-squaring `log2`
//!   ([`LN2_Q32`] converts), and Weibull's `k`-th root by binary search.
//!   No floats means no platform/libm drift in the goldens, and
//!   distribution specs stay `Eq`/hashable like the integer-percent
//!   fault params they generate.
//!
//! Built on top of the samplers:
//!
//! * [`unroll_two_state`] — a Gilbert–Elliott two-state up/down process
//!   unrolled deterministically over a horizon into non-overlapping
//!   `(start, end)` down-windows (Markov-modulated link flapping).
//! * [`ChurnEvent`] + [`parse_churn_trace`] / [`parse_churn_inline`] —
//!   a small `t, domain, down|up` trace format replayed into per-domain
//!   down-windows ([`churn_windows`]).
//!
//! The grid layer maps windows onto topology failure domains (whole
//! racks, whole switches) and ports; the cluster engine draws MTBF-style
//! times-to-failure from [`exp_sample`] directly.

/// `round(ln 2 · 2^32)` — the Q32 fixed-point natural log of 2, the
/// only non-trivial constant in the sampler. Pinned (together with
/// sample values) in `tests/sweep_smoke_pin.rs`: moving it re-seeds
/// every distributional fault golden.
pub const LN2_Q32: u64 = 2_977_044_472;

/// FNV-1a draw over `(seed, stream, n)` — the same fold (offset basis,
/// golden-ratio seed mix, 64-bit FNV prime) as the grid layer's
/// `cell_seed` and the straggler/job-failure decisions, so all fault
/// randomness in the tree is one hash family.
pub fn fnv_draw(seed: u64, stream: &str, n: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in stream.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    for b in n.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a draw over `(seed, stream, a, b)` — the two-index variant of
/// [`fnv_draw`] (same offset basis, seed mix, and prime, folding `a`
/// then `b` little-endian). The per-packet stochastic link layer uses it
/// as `fnv_draw2(seed, "loss"/"jitter", port, draw_counter)`: the
/// counter pair addresses one draw per packet per port, so the stream is
/// position-independent — re-runs, thread counts, and snapshot/restore
/// all replay the identical sequence as long as the counters are
/// carried in the checkpoint.
pub fn fnv_draw2(seed: u64, stream: &str, a: u64, b: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in stream.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    for b in a.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    for b in b.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `log2(m)` in Q32 for a Q32 mantissa `m` in `[1, 2)`, by 32 rounds of
/// repeated squaring: squaring doubles the exponent, so whether the
/// square reaches 2 is exactly the next fraction bit.
fn log2_q32(mut m: u128) -> u64 {
    debug_assert!((1u128 << 32..2u128 << 32).contains(&m));
    let mut out = 0u64;
    for i in 0..32u32 {
        m = (m * m) >> 32;
        if m >= 2u128 << 32 {
            m >>= 1;
            out |= 1 << (31 - i);
        }
    }
    out
}

/// `-ln(u / 2^32)` in Q32 for `u` in `[1, 2^32)`. Strictly positive and
/// monotone non-increasing in `u` — the inverse-CDF property the
/// samplers (and their property tests) rely on.
fn neg_ln_q32(u: u32) -> u64 {
    debug_assert!(u >= 1);
    let u = u as u64;
    let bits = 64 - u.leading_zeros() as u64; // 1..=32
    let e = 33 - bits; // u/2^32 = m · 2^-e with m in [1, 2)
    let m = (u as u128) << (33 - bits); // Q32 mantissa
    let ln_m = ((log2_q32(m) as u128 * LN2_Q32 as u128) >> 32) as u64;
    e * LN2_Q32 - ln_m
}

/// The largest Q32 `x` with `(x/2^32)^k ≤ y/2^32`, by binary search.
/// `k` must be in `[1, 16]` (callers clamp).
fn kth_root_q32(y: u64, k: u32) -> u64 {
    debug_assert!((1..=16).contains(&k));
    if k == 1 || y == 0 {
        return y;
    }
    let pow = |x: u64| -> u128 {
        let mut acc: u128 = 1 << 32;
        for _ in 0..k {
            acc = (acc * x as u128) >> 32;
        }
        acc
    };
    // y ≥ 1.0 ⇒ root ≤ y; y < 1.0 ⇒ root < 1.0.
    let (mut lo, mut hi) = (0u64, y.max(1 << 32) + 1);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if pow(mid) <= y as u128 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Exponential inverse-CDF sample: `mean_ns · (-ln u)` with `u` the top
/// 32 bits of `draw` (forced non-zero). Can return 0 for a draw very
/// close to 1 — callers needing progress apply `.max(1)`.
pub fn exp_sample(mean_ns: u64, draw: u64) -> u64 {
    let u = ((draw >> 32) as u32) | 1;
    (((mean_ns as u128) * neg_ln_q32(u) as u128) >> 32) as u64
}

/// Weibull inverse-CDF sample: `scale_ns · (-ln u)^(1/shape)`. Shape 1
/// degenerates to the exponential; shape > 1 concentrates around the
/// scale (wear-out-like repair times), shape is clamped to `[1, 16]`.
pub fn weibull_sample(scale_ns: u64, shape: u32, draw: u64) -> u64 {
    let u = ((draw >> 32) as u32) | 1;
    let root = kth_root_q32(neg_ln_q32(u), shape.clamp(1, 16));
    (((scale_ns as u128) * root as u128) >> 32) as u64
}

/// Uniform sample in `[0, max_ns)`: the draw's top 32 bits scale
/// `max_ns` as a Q32 fraction. Pure integer, exactly `max_ns` distinct
/// outcomes when `max_ns ≤ 2^32` — no modulo bias.
pub fn uniform_sample(max_ns: u64, draw: u64) -> u64 {
    ((max_ns as u128 * ((draw >> 32) as u128)) >> 32) as u64
}

/// An integer-parameterized sojourn/inter-arrival distribution. `Eq` and
/// hashable by construction, so specs embedding one keep exact labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Exponential with the given mean.
    Exp { mean_ns: u64 },
    /// Weibull with the given scale and integer shape (clamped to
    /// `[1, 16]` at sample time).
    Weibull { scale_ns: u64, shape: u32 },
    /// Uniform in `[0, max_ns)`.
    Uniform { max_ns: u64 },
}

impl Distribution {
    /// Inverse-CDF sample from one FNV draw. Exp/Weibull are monotone
    /// non-increasing in the draw's top 32 bits; Uniform is monotone
    /// non-decreasing.
    pub fn sample(&self, draw: u64) -> u64 {
        match *self {
            Distribution::Exp { mean_ns } => exp_sample(mean_ns, draw),
            Distribution::Weibull { scale_ns, shape } => weibull_sample(scale_ns, shape, draw),
            Distribution::Uniform { max_ns } => uniform_sample(max_ns, draw),
        }
    }
}

/// Unroll a Gilbert–Elliott two-state (up/down) process over
/// `[0, horizon_ns)` into down-windows.
///
/// The process starts up at t = 0; sojourn `i` in each state is an
/// independent inverse-CDF sample from `fnv_draw(seed, "up"/"down", i)`,
/// clamped to ≥ 1 ns so the unroll always advances. Windows are
/// non-overlapping and ascending **by construction** (each down-window
/// is preceded by ≥ 1 ns of up time and clipped to the horizon);
/// `max_windows` bounds the schedule for pathological parameter choices.
pub fn unroll_two_state(
    seed: u64,
    up: &Distribution,
    down: &Distribution,
    horizon_ns: u64,
    max_windows: usize,
) -> Vec<(u64, u64)> {
    let mut windows = Vec::new();
    let mut t = 0u64;
    let mut i = 0u64;
    while windows.len() < max_windows {
        t = t.saturating_add(up.sample(fnv_draw(seed, "up", i)).max(1));
        if t >= horizon_ns {
            break;
        }
        let end = t.saturating_add(down.sample(fnv_draw(seed, "down", i)).max(1)).min(horizon_ns);
        windows.push((t, end));
        t = end;
        i += 1;
    }
    windows
}

/// One churn-trace event: failure domain `domain` goes down or comes
/// back up at `t_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChurnEvent {
    pub t_ns: u64,
    pub domain: u32,
    pub down: bool,
}

/// Validate a churn trace: per domain, events must be in strictly
/// increasing time order, strictly alternate down/up starting with
/// `down`, and every `down` must be closed by an `up` (finite windows
/// are what guarantee recovery).
pub fn validate_churn(events: &[ChurnEvent]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut open: BTreeMap<u32, u64> = BTreeMap::new();
    let mut last: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        if let Some(&t) = last.get(&e.domain) {
            if e.t_ns <= t {
                return Err(format!(
                    "churn trace: domain {} events must be strictly increasing in time \
                     ({} after {})",
                    e.domain, e.t_ns, t
                ));
            }
        }
        last.insert(e.domain, e.t_ns);
        match (e.down, open.contains_key(&e.domain)) {
            (true, true) => {
                return Err(format!(
                    "churn trace: domain {} goes down while already down",
                    e.domain
                ))
            }
            (false, false) => {
                return Err(format!("churn trace: domain {} comes up while already up", e.domain))
            }
            (true, false) => {
                open.insert(e.domain, e.t_ns);
            }
            (false, true) => {
                open.remove(&e.domain);
            }
        }
    }
    // BTreeMap iterates in key order, so the lowest offending domain is
    // reported without an explicit min scan.
    if let Some((&d, _)) = open.iter().next() {
        return Err(format!(
            "churn trace: domain {d} is left down at end of trace (every down needs an up)"
        ));
    }
    Ok(())
}

/// The down-windows of one domain in a **validated** churn trace.
pub fn churn_windows(events: &[ChurnEvent], domain: u32) -> Vec<(u64, u64)> {
    let mut windows = Vec::new();
    let mut open: Option<u64> = None;
    for e in events.iter().filter(|e| e.domain == domain) {
        match (e.down, open) {
            (true, None) => open = Some(e.t_ns),
            (false, Some(start)) => {
                windows.push((start, e.t_ns));
                open = None;
            }
            _ => {} // unreachable on validated traces
        }
    }
    windows
}

/// Parse the churn trace *file* format: one `<t_ns> <domain> <down|up>`
/// event per line, `#` comments and blank lines ignored. Validated.
pub fn parse_churn_trace(text: &str) -> Result<Vec<ChurnEvent>, String> {
    let mut events = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let err = |what: &str| format!("churn trace line {}: {what} in `{line}`", no + 1);
        let [t, domain, state] = fields.as_slice() else {
            return Err(err("expected `<t_ns> <domain> <down|up>`"));
        };
        events.push(ChurnEvent {
            t_ns: t.parse().map_err(|_| err("bad time"))?,
            domain: domain.parse().map_err(|_| err("bad domain"))?,
            down: match *state {
                "down" => true,
                "up" => false,
                _ => return Err(err("state must be `down` or `up`")),
            },
        });
    }
    validate_churn(&events)?;
    Ok(events)
}

/// Parse the *inline* churn grammar used in fault labels and CLI
/// tokens: events `t;domain;d|u` joined by `,`. Validated.
pub fn parse_churn_inline(s: &str) -> Result<Vec<ChurnEvent>, String> {
    let mut events = Vec::new();
    for ev in s.split(',') {
        let fields: Vec<&str> = ev.split(';').collect();
        let err = |what: &str| format!("churn event `{ev}`: {what}");
        let [t, domain, state] = fields.as_slice() else {
            return Err(err("expected `t;domain;d|u`"));
        };
        events.push(ChurnEvent {
            t_ns: t.parse().map_err(|_| err("bad time"))?,
            domain: domain.parse().map_err(|_| err("bad domain"))?,
            down: match *state {
                "d" => true,
                "u" => false,
                _ => return Err(err("state must be `d` or `u`")),
            },
        });
    }
    validate_churn(&events)?;
    Ok(events)
}

/// The canonical inline label of a churn trace (inverse of
/// [`parse_churn_inline`]).
pub fn churn_inline_label(events: &[ChurnEvent]) -> String {
    events
        .iter()
        .map(|e| format!("{};{};{}", e.t_ns, e.domain, if e.down { "d" } else { "u" }))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- satellite: sampler property tests --------------------------

    /// The tolerance (percent) the empirical-mean property allows; the
    /// meta-test below proves a biased sampler lands far outside it.
    const MEAN_TOL_PCT: u64 = 5;

    fn empirical_mean(dist: &Distribution, seed: u64, n: u64) -> u64 {
        let sum: u128 = (0..n).map(|i| dist.sample(fnv_draw(seed, "mean", i)) as u128).sum();
        (sum / n as u128) as u64
    }

    #[test]
    fn inverse_cdf_is_monotone_in_the_draw() {
        // -ln u is non-increasing in u, so samples are non-increasing in
        // the draw's top 32 bits — for both distributions and across the
        // full range including the extremes.
        let us: Vec<u32> = (0..=20).map(|i| 1u32 << i).chain([u32::MAX - 1, u32::MAX]).collect();
        for dist in [
            Distribution::Exp { mean_ns: 1_000_000 },
            Distribution::Weibull { scale_ns: 1_000_000, shape: 3 },
        ] {
            let samples: Vec<u64> = us.iter().map(|&u| dist.sample((u as u64) << 32)).collect();
            for w in samples.windows(2) {
                assert!(w[0] >= w[1], "{dist:?}: sample must not increase with the draw");
            }
            assert!(samples[0] > samples[samples.len() - 1], "the samplers are not constant");
        }
    }

    #[test]
    fn empirical_mean_tracks_the_integer_parameter() {
        let mean = 100_000u64;
        for seed in [1, 7, 0xdead_beef] {
            let got = empirical_mean(&Distribution::Exp { mean_ns: mean }, seed, 20_000);
            let dev = got.abs_diff(mean);
            assert!(
                dev * 100 <= mean * MEAN_TOL_PCT,
                "seed {seed}: empirical mean {got} deviates from {mean} by more than \
                 {MEAN_TOL_PCT}%"
            );
        }
        // Weibull with shape 1 *is* the exponential: identical samples.
        for i in 0..256 {
            let d = fnv_draw(3, "w1", i);
            assert_eq!(
                Distribution::Weibull { scale_ns: 5_000, shape: 1 }.sample(d),
                Distribution::Exp { mean_ns: 5_000 }.sample(d),
            );
        }
        // Weibull mean is scale · Γ(1 + 1/k); for k = 2 that is
        // scale · √π/2 ≈ 0.8862 · scale.
        let got = empirical_mean(&Distribution::Weibull { scale_ns: mean, shape: 2 }, 1, 20_000);
        let expect = 88_623u64;
        assert!(
            got.abs_diff(expect) * 100 <= expect * MEAN_TOL_PCT,
            "Weibull(k=2) empirical mean {got} vs Γ-expected {expect}"
        );
    }

    #[test]
    fn same_seed_reproduces_identically() {
        let dist = Distribution::Exp { mean_ns: 77_000 };
        let a: Vec<u64> = (0..512).map(|i| dist.sample(fnv_draw(9, "s", i))).collect();
        let b: Vec<u64> = (0..512).map(|i| dist.sample(fnv_draw(9, "s", i))).collect();
        assert_eq!(a, b, "same (seed, stream, index) ⇒ same sample");
        let c: Vec<u64> = (0..512).map(|i| dist.sample(fnv_draw(10, "s", i))).collect();
        assert_ne!(a, c, "a different seed moves the draws");
        let d: Vec<u64> = (0..512).map(|i| dist.sample(fnv_draw(9, "t", i))).collect();
        assert_ne!(a, d, "a different stream moves the draws");
    }

    #[test]
    fn meta_biased_sampler_is_caught_by_the_mean_property() {
        // A plausible-looking but broken sampler: it loses the draw's
        // top bit (an off-by-one in a mask or shift would look exactly
        // like this after a refactor), so u never reaches [0.5, 1) and
        // the mean inflates to (1 + ln 2) ≈ 1.69× the parameter. It must
        // land far outside the tolerance the real property allows —
        // proving the mean check has teeth.
        let mean = 100_000u64;
        let biased = |draw: u64| exp_sample(mean, draw & !(1 << 63));
        let n = 20_000u64;
        let sum: u128 = (0..n).map(|i| biased(fnv_draw(1, "mean", i)) as u128).sum();
        let got = (sum / n as u128) as u64;
        assert!(
            got.abs_diff(mean) * 100 > mean * MEAN_TOL_PCT,
            "the biased sampler's mean {got} slipped inside the tolerance — \
             the empirical-mean property would not catch it"
        );
    }

    #[test]
    fn uniform_sample_is_bounded_monotone_and_mean_centered() {
        let max = 100_000u64;
        for i in 0..4096u64 {
            let s = uniform_sample(max, fnv_draw(5, "u", i));
            assert!(s < max, "uniform samples stay strictly below max_ns");
        }
        assert_eq!(uniform_sample(max, 0), 0);
        assert_eq!(uniform_sample(max, u64::MAX), max - 1);
        assert_eq!(uniform_sample(0, u64::MAX), 0, "max_ns 0 is the degenerate no-jitter case");
        let mut prev = 0;
        for u in (0..=u32::MAX as u64).step_by(1 << 24) {
            let s = uniform_sample(max, u << 32);
            assert!(s >= prev, "uniform is monotone in the draw's top bits");
            prev = s;
        }
        let n = 20_000u64;
        let sum: u128 = (0..n)
            .map(|i| Distribution::Uniform { max_ns: max }.sample(fnv_draw(1, "mean", i)) as u128)
            .sum();
        let got = (sum / n as u128) as u64;
        assert!(
            got.abs_diff(max / 2) * 100 <= (max / 2) * MEAN_TOL_PCT,
            "uniform empirical mean {got} deviates from {}",
            max / 2
        );
    }

    #[test]
    fn fnv_draw2_separates_streams_and_indices() {
        // Distinct (stream, a, b) triples draw independently; same
        // inputs reproduce — the contract the per-port packet draw
        // streams rely on.
        assert_eq!(fnv_draw2(9, "loss", 3, 17), fnv_draw2(9, "loss", 3, 17));
        assert_ne!(fnv_draw2(9, "loss", 3, 17), fnv_draw2(9, "jitter", 3, 17));
        assert_ne!(fnv_draw2(9, "loss", 3, 17), fnv_draw2(9, "loss", 4, 17));
        assert_ne!(fnv_draw2(9, "loss", 3, 17), fnv_draw2(9, "loss", 3, 18));
        assert_ne!(fnv_draw2(9, "loss", 3, 17), fnv_draw2(10, "loss", 3, 17));
        // The fold extends fnv_draw: folding `a` as part of the stream
        // text would alias port/counter boundaries; the le-bytes fold
        // keeps (a, b) unambiguous.
        assert_ne!(fnv_draw2(9, "s", 0x0101, 0), fnv_draw2(9, "s", 1, 0x0100_0000_0000_0001));
    }

    // ---- fixed-point internals --------------------------------------

    #[test]
    fn fixed_point_log_hits_known_values() {
        // -ln(1/2) = ln 2 exactly.
        assert_eq!(neg_ln_q32(1 << 31), LN2_Q32);
        // -ln(2^-32) = 32 ln 2 exactly (mantissa 1.0 contributes nothing).
        assert_eq!(neg_ln_q32(1), 32 * LN2_Q32);
        // -ln(1/e) = 1.0: within a few ulps of 2^32.
        let e_inv = (4_294_967_296.0f64 / std::f64::consts::E) as u32;
        let got = neg_ln_q32(e_inv);
        assert!(got.abs_diff(1 << 32) < 16, "-ln(1/e) ≈ 1.0, got Q32 {got}");
    }

    #[test]
    fn kth_root_is_exact_on_perfect_powers_and_monotone() {
        let q = |x: f64| (x * 4_294_967_296.0) as u64;
        assert_eq!(kth_root_q32(q(4.0), 2), q(2.0));
        assert_eq!(kth_root_q32(q(8.0), 3), q(2.0));
        assert_eq!(kth_root_q32(1 << 32, 5), 1 << 32);
        let mut prev = 0;
        for y in (0..=(10u64 << 32)).step_by(1 << 30) {
            let r = kth_root_q32(y, 3);
            assert!(r >= prev, "k-th root must be monotone in y");
            prev = r;
        }
    }

    // ---- Gilbert–Elliott unroll -------------------------------------

    #[test]
    fn two_state_unroll_is_sorted_disjoint_and_clipped() {
        let up = Distribution::Exp { mean_ns: 40_000 };
        let down = Distribution::Exp { mean_ns: 8_000 };
        let w = unroll_two_state(42, &up, &down, 1_000_000, 4096);
        assert!(!w.is_empty(), "a 1 ms horizon at 40 µs MTBF must flap");
        let mut prev_end = 0;
        for &(s, e) in &w {
            assert!(s >= prev_end, "windows must not overlap: {w:?}");
            assert!(e > s, "windows are non-empty");
            assert!(e <= 1_000_000, "windows are clipped to the horizon");
            prev_end = e;
        }
        assert_eq!(w, unroll_two_state(42, &up, &down, 1_000_000, 4096), "seeded ⇒ reproducible");
        assert_ne!(w, unroll_two_state(43, &up, &down, 1_000_000, 4096));
        // The cap bounds pathological parameter choices.
        assert_eq!(unroll_two_state(42, &up, &down, u64::MAX, 3).len(), 3);
    }

    // ---- churn traces -----------------------------------------------

    #[test]
    fn churn_trace_roundtrips_and_pairs_windows() {
        let text = "
            # rack 1 blips twice, rack 0 once
            1000  1 down
            5000  1 up
            2000  0 down   # interleaved with rack 1
            9000  0 up
            7000  1 down
            8000  1 up
        ";
        let events = parse_churn_trace(text).unwrap();
        assert_eq!(events.len(), 6);
        assert_eq!(churn_windows(&events, 1), vec![(1000, 5000), (7000, 8000)]);
        assert_eq!(churn_windows(&events, 0), vec![(2000, 9000)]);
        assert_eq!(churn_windows(&events, 2), vec![]);
        let label = churn_inline_label(&events);
        assert_eq!(parse_churn_inline(&label).unwrap(), events, "inline grammar roundtrips");
    }

    #[test]
    fn churn_validation_rejects_malformed_traces() {
        assert!(parse_churn_trace("100 0 down").unwrap_err().contains("left down"));
        assert!(parse_churn_trace("100 0 up").unwrap_err().contains("already up"));
        assert!(parse_churn_trace("100 0 down\n100 0 up")
            .unwrap_err()
            .contains("strictly increasing"));
        assert!(parse_churn_trace("100 0 down\n200 0 down").unwrap_err().contains("already down"));
        assert!(parse_churn_trace("100 0 sideways").unwrap_err().contains("down"));
        assert!(parse_churn_inline("5;0;d").unwrap_err().contains("left down"));
        assert!(parse_churn_inline("banana").unwrap_err().contains("expected"));
    }

    #[test]
    fn churn_validation_error_names_lowest_open_domain() {
        // With several domains left down, the error must always name the
        // lowest-numbered one — error text is part of the deterministic
        // surface (the map behind it iterates in key order).
        let trace = "100 7 down\n200 3 down\n300 5 down\n";
        for _ in 0..4 {
            let err = parse_churn_trace(trace).unwrap_err();
            assert!(err.contains("domain 3 is left down"), "{err}");
        }
    }

    /// Trace files arrive from other tooling: Windows CRLF endings,
    /// trailing blank lines, and comment-only lines must all parse to
    /// the same events as the canonical LF form.
    #[test]
    fn churn_trace_tolerates_crlf_blank_and_comment_lines() {
        let canonical = parse_churn_trace("1000 0 down\n5000 0 up\n").unwrap();
        let crlf = "1000 0 down\r\n5000 0 up\r\n";
        assert_eq!(parse_churn_trace(crlf).unwrap(), canonical, "CRLF endings");
        let padded = "# header comment\r\n\r\n1000 0 down\r\n   \r\n5000 0 up # inline\r\n\r\n\r\n";
        assert_eq!(
            parse_churn_trace(padded).unwrap(),
            canonical,
            "comment-only, blank, and trailing-blank lines"
        );
        assert_eq!(parse_churn_trace("# only comments\n\n   \n").unwrap(), vec![]);
    }

    /// Parse errors name the offending line by its **1-based** file line
    /// number, counting comment and blank lines, so the message points
    /// at the line an editor shows.
    #[test]
    fn churn_trace_errors_report_one_based_line_numbers() {
        let err = parse_churn_trace("garbage").unwrap_err();
        assert!(err.contains("line 1:"), "{err}");
        // Line 1 is a comment, 2 is blank, 3 is valid; the malformed
        // line is the file's 4th.
        let err = parse_churn_trace("# setup\n\n1000 0 down\n5000 0 sideways\n").unwrap_err();
        assert!(err.contains("line 4:"), "{err}");
        assert!(err.contains("sideways"), "quotes the offending text: {err}");
        // CRLF does not shift the count.
        let err = parse_churn_trace("# c\r\n1000 0 down\r\nnot-a-time 0 up\r\n").unwrap_err();
        assert!(err.contains("line 3:"), "{err}");
    }
}
