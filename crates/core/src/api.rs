//! The ATLAHS backend API (paper Fig. 7).
//!
//! ```text
//! class ATLAHS_API {
//!     virtual void simulationSetup();
//!     virtual void eventOver(Event);
//!     virtual void send(SendEvent);
//!     virtual void recv(RecvEvent);
//!     virtual void calc(CalcEvent);
//! };
//! ```
//!
//! The Rust rendering inverts `eventOver` into a poll: the scheduler calls
//! [`Backend::next_event`], which advances the backend's internal clock to
//! the next event and returns it. As long as a simulator can report *which*
//! operation finished and *when*, it can sit behind this trait — the
//! property the paper identifies as the key integration requirement.
//!
//! ## Two-phase completions
//!
//! Each issued operation produces up to two events:
//!
//! * [`EventKind::CpuFree`] — the op's *CPU phase* is over and its compute
//!   stream may issue the next task (LogGOPS: the `o` overhead elapsed; a
//!   posted recv frees its stream immediately). Optional: if a backend never
//!   emits it, the stream stays busy until `Done` (fully blocking ops).
//! * [`EventKind::Done`] — the op *semantically completed*: dependents may
//!   start (a send's buffer is reusable / a recv's message fully arrived).
//!
//! Splitting the two is what lets send/recv pairs issued on one stream
//! overlap in flight (non-blocking semantics) while calcs still occupy
//! their stream exclusively.

use atlahs_goal::{Rank, Tag, TaskId};

/// Simulated time in nanoseconds.
pub type Time = u64;

/// A reference to one GOAL task instance owned by the scheduler.
///
/// Backends treat this as an opaque token and hand it back in completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpRef {
    pub rank: Rank,
    pub task: TaskId,
}

impl OpRef {
    #[inline]
    pub fn new(rank: Rank, task: TaskId) -> Self {
        OpRef { rank, task }
    }
}

/// The operation kinds a backend receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Send { dst: Rank, bytes: u64, tag: Tag },
    Recv { src: Rank, bytes: u64, tag: Tag },
    Calc { cost: u64 },
}

/// What a backend event signifies for the referenced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// CPU phase over: the op's compute stream may issue its next task.
    /// The op itself is still outstanding.
    CpuFree,
    /// The op semantically completed; dependents may fire. Implies
    /// `CpuFree` if none was reported earlier.
    Done,
}

/// A backend event (the paper's `eventOver`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub op: OpRef,
    pub time: Time,
    pub kind: EventKind,
}

impl Completion {
    pub fn done(op: OpRef, time: Time) -> Self {
        Completion { op, time, kind: EventKind::Done }
    }

    pub fn cpu_free(op: OpRef, time: Time) -> Self {
        Completion { op, time, kind: EventKind::CpuFree }
    }
}

/// A network simulation backend.
///
/// Lifecycle: the driver calls [`Backend::simulation_setup`] once, then
/// interleaves `send`/`recv`/`calc` issues with [`Backend::next_event`]
/// polls until the schedule drains. Backends must:
///
/// * report events in non-decreasing time order,
/// * report exactly one `Done` per issued op (and at most one `CpuFree`,
///   at or before the `Done`),
/// * complete a `send` when the sender may consider the operation done
///   under the backend's protocol model,
/// * complete a `recv` when the matched message has fully arrived and any
///   receiver-side overhead has been charged,
/// * match messages between the same `(src, dst)` pair and `tag` in FIFO
///   order ([`crate::Matcher`] implements this discipline).
pub trait Backend {
    /// Configure for a run over `num_ranks` ranks. Called exactly once,
    /// before any issue. (Paper: `simulationSetup` — topology, CC, and
    /// routing configuration happen in the backend's own constructor.)
    fn simulation_setup(&mut self, num_ranks: usize);

    /// Current simulated time (ns).
    fn now(&self) -> Time;

    /// Issue a send of `bytes` from `op.rank` to `dst`.
    fn send(&mut self, op: OpRef, dst: Rank, bytes: u64, tag: Tag);

    /// Issue (post) a recv on `op.rank` matching `(src, tag)`.
    fn recv(&mut self, op: OpRef, src: Rank, bytes: u64, tag: Tag);

    /// Issue a local computation of `cost` nanoseconds on `op.rank`.
    fn calc(&mut self, op: OpRef, cost: u64);

    /// Advance simulated time to the next event and return it, or `None`
    /// if the backend is quiescent (no pending work).
    fn next_event(&mut self) -> Option<Completion>;

    /// Dispatch an [`OpKind`] (convenience used by the scheduler).
    fn issue(&mut self, op: OpRef, kind: OpKind) {
        match kind {
            OpKind::Send { dst, bytes, tag } => self.send(op, dst, bytes, tag),
            OpKind::Recv { src, bytes, tag } => self.recv(op, src, bytes, tag),
            OpKind::Calc { cost } => self.calc(op, cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opref_ordering_is_rank_major() {
        let a = OpRef::new(0, TaskId(5));
        let b = OpRef::new(1, TaskId(0));
        assert!(a < b);
    }

    #[test]
    fn completion_constructors() {
        let op = OpRef::new(0, TaskId(0));
        assert_eq!(Completion::done(op, 5).kind, EventKind::Done);
        assert_eq!(Completion::cpu_free(op, 5).kind, EventKind::CpuFree);
    }

    #[test]
    fn issue_dispatches_by_kind() {
        #[derive(Default)]
        struct Probe {
            log: Vec<&'static str>,
        }
        impl Backend for Probe {
            fn simulation_setup(&mut self, _: usize) {}
            fn now(&self) -> Time {
                0
            }
            fn send(&mut self, _: OpRef, _: Rank, _: u64, _: Tag) {
                self.log.push("send");
            }
            fn recv(&mut self, _: OpRef, _: Rank, _: u64, _: Tag) {
                self.log.push("recv");
            }
            fn calc(&mut self, _: OpRef, _: u64) {
                self.log.push("calc");
            }
            fn next_event(&mut self) -> Option<Completion> {
                None
            }
        }
        let mut p = Probe::default();
        let op = OpRef::new(0, TaskId(0));
        p.issue(op, OpKind::Calc { cost: 1 });
        p.issue(op, OpKind::Send { dst: 1, bytes: 2, tag: 3 });
        p.issue(op, OpKind::Recv { src: 1, bytes: 2, tag: 3 });
        assert_eq!(p.log, vec!["calc", "send", "recv"]);
    }
}
