//! # atlahs-core
//!
//! The ATLAHS toolchain core: the backend API of Fig. 7 of the paper, the
//! GOAL scheduler that drives network backends, job placement strategies for
//! multi-job / multi-tenant scenarios, and the simulation driver.
//!
//! ## Architecture
//!
//! The paper's integration contract (§3.3) is a minimal set of operations —
//! `send`, `recv`, `calc`, plus `simulationSetup` and `eventOver` — behind
//! which any network simulator can sit. This crate expresses that contract as
//! the [`Backend`] trait: the scheduler *issues* GOAL tasks whose dependencies
//! are satisfied, and the backend *advances simulated time* and reports each
//! finished operation ([`Completion`], the paper's `eventOver`).
//!
//! Compute-stream semantics: tasks on the same `(rank, stream)` pair execute
//! one at a time in dependency order; distinct streams overlap freely. This
//! is how GOAL models CUDA streams and multi-threaded hosts.
//!
//! ```
//! use atlahs_core::{Simulation, backends::IdealBackend};
//! use atlahs_goal::GoalBuilder;
//!
//! let mut b = GoalBuilder::new(2);
//! let c = b.calc(0, 1_000);
//! let s = b.send(0, 1, 4096, 0);
//! b.requires(0, s, c);
//! b.recv(1, 0, 4096, 0);
//! let goal = b.build().unwrap();
//!
//! let mut backend = IdealBackend::new(1_000.0, 500); // 1000 B/ns, 500 ns latency
//! let report = Simulation::new(&goal).run(&mut backend).unwrap();
//! assert!(report.makespan > 1_000);
//! ```

#![forbid(unsafe_code)]

pub mod api;
pub mod backends;
pub mod faultgen;
pub mod matcher;
pub mod placement;
pub mod scheduler;
pub mod snapshot;

pub use api::{Backend, Completion, OpKind, OpRef, Time};
pub use matcher::Matcher;
pub use placement::{allocate, FragStats, NodePool, PlacementStrategy};
pub use scheduler::{RunState, SimDriver, SimError, SimReport, Simulation};
pub use snapshot::Snapshot;
