//! # atlahs-lgs
//!
//! The LogGOPSim message-level backend: a discrete-event implementation of
//! the **LogGOPS** model (LogGP extended with per-byte CPU overhead `O` and
//! an eager/rendezvous switch `S`), the model behind the original
//! LogGOPSim and the "ATLAHS LGS" configuration of the paper.
//!
//! Parameters (all times ns, rates ns/byte):
//!
//! | param | meaning |
//! |-------|---------|
//! | `L`   | wire latency between any two ranks |
//! | `o`   | per-message CPU overhead (send and recv side) |
//! | `g`   | inter-message gap at the NIC |
//! | `G`   | per-byte gap (inverse bandwidth) at the NIC |
//! | `O`   | per-byte CPU overhead |
//! | `S`   | rendezvous threshold: messages larger than `S` handshake first (`0` disables) |
//!
//! ## Operation timing
//!
//! * `calc cost` — occupies its compute stream for `cost` ns.
//! * eager send — CPU busy `o + O·b`; the message then occupies the sender
//!   NIC for `g + G·b` (serialized per rank) and arrives `L` later; the send
//!   is *done* (dependents fire) at CPU completion, like a buffered send.
//! * rendezvous send (`b > S > 0`) — CPU busy `o + O·b`, then an RTS travels
//!   `L`; when the matching recv is posted, a CTS returns (`o + L`); only
//!   then does the payload occupy the NIC; the send is done when the last
//!   byte leaves (buffer reusable).
//! * recv — posting is free (stream released immediately); the recv is done
//!   `o + O·b` after the matched payload has fully arrived (and the
//!   receiving NIC charged its `g`).
//!
//! The paper's parameters: AI (Alps): `L=3700, o=200, g=5, G=0.04, O=0, S=0`;
//! HPC test-bed: `L=3000, o=6000, g=0, G=0.18, O=0, S=256000`.

#![forbid(unsafe_code)]

use atlahs_core::matcher::MatchKey;
use atlahs_core::{Backend, Completion, Matcher, OpRef, Snapshot, Time};
use atlahs_eventq::EventQueue;
use atlahs_goal::{Rank, Tag};

/// LogGOPS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGopsParams {
    /// Wire latency (ns).
    pub l: u64,
    /// Per-message CPU overhead (ns).
    pub o: u64,
    /// Inter-message NIC gap (ns).
    pub g: u64,
    /// Per-byte NIC gap (ns/byte) — `G`.
    // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
    pub big_g: f64,
    /// Per-byte CPU overhead (ns/byte) — `O`.
    // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
    pub big_o: f64,
    /// Rendezvous threshold (bytes) — `S`; 0 disables rendezvous.
    pub s: u64,
}

impl LogGopsParams {
    /// The paper's AI validation parameters (Alps, §5.2).
    pub fn ai_alps() -> Self {
        // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
        LogGopsParams { l: 3700, o: 200, g: 5, big_g: 0.04, big_o: 0.0, s: 0 }
    }

    /// The paper's HPC validation parameters (§5.3).
    pub fn hpc_testbed() -> Self {
        // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
        LogGopsParams { l: 3000, o: 6000, g: 0, big_g: 0.18, big_o: 0.0, s: 256_000 }
    }

    #[inline]
    fn cpu_cost(&self, bytes: u64) -> u64 {
        // `O = 0` in both of the paper's calibrations: skip the f64
        // round-trip on that hot path (identical result — 0.0 rounds to 0).
        // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
        if self.big_o == 0.0 {
            self.o
        } else {
            // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
            self.o + (bytes as f64 * self.big_o).round() as u64
        }
    }

    #[inline]
    fn nic_cost(&self, bytes: u64) -> u64 {
        // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
        if self.big_g == 0.0 {
            self.g
        } else {
            // det-lint: allow(float) — LogGOPS paper parameter; fixed-order IEEE-754 ops, bit-stable
            self.g + (bytes as f64 * self.big_g).round() as u64
        }
    }

    #[inline]
    fn is_rendezvous(&self, bytes: u64) -> bool {
        self.s > 0 && bytes > self.s
    }
}

/// Counters exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LgsStats {
    pub messages: u64,
    pub bytes: u64,
    pub rendezvous_messages: u64,
}

/// Seeded per-rank straggler model (fault injection).
///
/// At `simulation_setup` each rank independently becomes a straggler with
/// probability `prob_pct`% (an FNV draw over `(seed, rank)` — no RNG
/// stream, so the decision is a pure function of the spec and composes
/// with any grid seeding). A straggler's every `calc` cost is scaled to
/// `factor_pct`% of nominal at dispatch; communication timing (`L`, `o`,
/// `g`, `G`) is untouched, so a rank's issue *order* can never change —
/// only its timestamps stretch.
///
/// With `spread_pct > 0` the factor is **distribution-drawn** instead of
/// uniform: each straggler adds an independent Weibull sample (scale
/// `spread_pct` percentage points, integer `shape`) on top of
/// `factor_pct`, so a population of stragglers has the heavy-tailed
/// slowdown spread measured on real clusters rather than one shared
/// knob. The draw is the fixed-point inverse CDF of
/// [`atlahs_core::faultgen`] over `(seed, "spread", rank)` — still a
/// pure integer function of the spec.
///
/// The default (and any spec with `prob_pct == 0`, or `factor_pct ==
/// 100` with no spread) is a no-op: the dispatch path degenerates to one
/// branch on an empty table and timings are bit-identical to a
/// straggler-free build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StragglerSpec {
    /// Percent chance (0–100) that a rank straggles.
    pub prob_pct: u32,
    /// Base calc-cost scale for stragglers, percent (150 = 1.5× slower).
    pub factor_pct: u32,
    /// Weibull scale, in percentage points added on top of `factor_pct`
    /// per straggler (0 = every straggler shares `factor_pct` exactly).
    pub spread_pct: u32,
    /// Weibull shape for the spread draw (clamped to ≥ 1 when used).
    pub shape: u32,
    /// Seed for the per-rank draws.
    pub seed: u64,
}

impl StragglerSpec {
    /// True when the spec cannot change any timing.
    pub fn is_noop(&self) -> bool {
        self.prob_pct == 0 || (self.factor_pct == 100 && self.spread_pct == 0)
    }

    /// The straggler decision for one rank: FNV-1a over `(seed, rank)`.
    pub fn is_straggler(&self, rank: usize) -> bool {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in (rank as u64).to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h % 100 < self.prob_pct as u64
    }

    /// The realized calc-cost scale (percent) for one rank: 100 for
    /// non-stragglers, `factor_pct` plus the rank's Weibull spread draw
    /// for stragglers. Pure in `(spec, rank)`.
    pub fn factor_pct_for(&self, rank: usize) -> u64 {
        if !self.is_straggler(rank) {
            return 100;
        }
        let mut factor = self.factor_pct as u64;
        if self.spread_pct > 0 {
            factor += atlahs_core::faultgen::weibull_sample(
                self.spread_pct as u64,
                self.shape.max(1),
                atlahs_core::faultgen::fnv_draw(self.seed, "spread", rank as u64),
            );
        }
        factor
    }
}

/// A scheduled backend event.
///
/// The [`EventQueue`] orders solely by `(time, push order)`, so the
/// `PartialOrd`/`Ord` derives below no longer influence simulation
/// results — but the derived variant order *was* the tie-break of the
/// previous `BinaryHeap<Reverse<(Time, seq, Ev)>>` implementation and
/// remains a pinned contract (see `ev_variant_order_is_pinned`): any
/// fallback or external consumer sorting on `Ev` must observe the same
/// order, and reordering variants is a results-affecting change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Emit a `Done` completion for the op.
    Done(OpRef),
    /// Emit a `CpuFree` completion for the op.
    CpuFree(OpRef),
    /// Eager payload arrives at the destination NIC.
    Arrive { key: MatchKey, bytes: u64 },
    /// Rendezvous RTS arrives at the destination.
    RtsArrive { key: MatchKey, send_op: OpRef, bytes: u64 },
    /// Rendezvous CTS arrives back at the sender.
    CtsArrive { send_op: OpRef, recv_op: OpRef, bytes: u64 },
    /// Rendezvous payload arrives at the destination.
    DataArrive { recv_op: OpRef, bytes: u64 },
}

/// The LogGOPSim backend.
#[derive(Debug)]
pub struct LgsBackend {
    params: LogGopsParams,
    now: Time,
    /// Timer-wheel event core shared with the packet engine; yields
    /// events in exactly the `(time, push order)` order the previous
    /// global `BinaryHeap<Reverse<(Time, seq, Ev)>>` produced.
    events: EventQueue<Ev>,
    nic_tx_free: Vec<Time>,
    nic_rx_free: Vec<Time>,
    /// Eager: in-flight arrivals (value: time data is available) vs posted recvs.
    eager: Matcher<Time, (OpRef, Time)>,
    /// Rendezvous: RTS arrivals vs posted recvs.
    rdv: Matcher<(OpRef, u64), (OpRef, Time)>,
    stats: LgsStats,
    straggler: StragglerSpec,
    /// Per-rank calc-cost scale in percent, materialized at
    /// `simulation_setup`. Empty when the straggler spec is a no-op — the
    /// `calc` fast path stays a single `is_empty` branch.
    calc_scale: Vec<u64>,
}

impl LgsBackend {
    pub fn new(params: LogGopsParams) -> Self {
        LgsBackend {
            params,
            now: 0,
            events: EventQueue::new(),
            nic_tx_free: Vec::new(),
            nic_rx_free: Vec::new(),
            eager: Matcher::new(),
            rdv: Matcher::new(),
            stats: LgsStats::default(),
            straggler: StragglerSpec::default(),
            calc_scale: Vec::new(),
        }
    }

    /// A backend with a straggler fault model attached.
    pub fn with_straggler(params: LogGopsParams, straggler: StragglerSpec) -> Self {
        let mut b = LgsBackend::new(params);
        b.straggler = straggler;
        b
    }

    /// Attach (or clear, with the default spec) the straggler model.
    /// Takes effect at the next `simulation_setup`.
    pub fn set_straggler(&mut self, straggler: StragglerSpec) {
        self.straggler = straggler;
    }

    /// Apply a straggler model to a *running* simulation (what-if branch
    /// override): the per-rank calc-cost table is re-materialized
    /// immediately, so calcs dispatched after the call are scaled by the
    /// new spec while everything already scheduled keeps its timing. The
    /// table is part of the snapshot state, so a later
    /// [`Snapshot::restore`] undoes the override.
    pub fn apply_straggler_now(&mut self, straggler: StragglerSpec) {
        self.straggler = straggler;
        let num_ranks = self.nic_tx_free.len();
        self.calc_scale = if straggler.is_noop() {
            Vec::new()
        } else {
            (0..num_ranks).map(|r| straggler.factor_pct_for(r)).collect()
        };
    }

    pub fn params(&self) -> &LogGopsParams {
        &self.params
    }

    pub fn stats(&self) -> LgsStats {
        self.stats
    }

    fn push(&mut self, time: Time, ev: Ev) {
        self.events.push(time, ev);
    }

    /// Occupy the sender NIC starting no earlier than `earliest`; returns
    /// the time the last byte has left.
    fn tx(&mut self, rank: Rank, earliest: Time, bytes: u64) -> Time {
        let start = earliest.max(self.nic_tx_free[rank as usize]);
        let end = start + self.params.nic_cost(bytes);
        self.nic_tx_free[rank as usize] = end;
        end
    }

    /// Charge the receive-side NIC gap; returns the time the data is
    /// available to the host.
    fn rx(&mut self, rank: Rank, arrival: Time) -> Time {
        let avail = arrival.max(self.nic_rx_free[rank as usize]);
        self.nic_rx_free[rank as usize] = avail + self.params.g;
        avail
    }
}

/// The LGS backend's complete mutable state: clock, pending events, NIC
/// occupancy rails, both match queues, counters, and the materialized
/// straggler table. `params` and the straggler *spec* are configuration
/// and stay on the backend.
#[derive(Debug, Clone)]
pub struct LgsState {
    now: Time,
    events: EventQueue<Ev>,
    nic_tx_free: Vec<Time>,
    nic_rx_free: Vec<Time>,
    eager: Matcher<Time, (OpRef, Time)>,
    rdv: Matcher<(OpRef, u64), (OpRef, Time)>,
    stats: LgsStats,
    calc_scale: Vec<u64>,
}

impl Snapshot for LgsBackend {
    type State = LgsState;

    fn checkpoint(&self) -> LgsState {
        LgsState {
            now: self.now,
            events: self.events.clone(),
            nic_tx_free: self.nic_tx_free.clone(),
            nic_rx_free: self.nic_rx_free.clone(),
            eager: self.eager.clone(),
            rdv: self.rdv.clone(),
            stats: self.stats,
            calc_scale: self.calc_scale.clone(),
        }
    }

    fn restore(&mut self, state: &LgsState) {
        self.now = state.now;
        self.events = state.events.clone();
        self.nic_tx_free = state.nic_tx_free.clone();
        self.nic_rx_free = state.nic_rx_free.clone();
        self.eager = state.eager.clone();
        self.rdv = state.rdv.clone();
        self.stats = state.stats;
        self.calc_scale = state.calc_scale.clone();
    }
}

impl Backend for LgsBackend {
    fn simulation_setup(&mut self, num_ranks: usize) {
        self.now = 0;
        self.events.clear();
        self.nic_tx_free = vec![0; num_ranks];
        self.nic_rx_free = vec![0; num_ranks];
        self.eager = Matcher::new();
        self.rdv = Matcher::new();
        self.stats = LgsStats::default();
        self.calc_scale = if self.straggler.is_noop() {
            Vec::new()
        } else {
            (0..num_ranks).map(|r| self.straggler.factor_pct_for(r)).collect()
        };
    }

    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, op: OpRef, dst: Rank, bytes: u64, tag: Tag) {
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        let key: MatchKey = (op.rank, dst, tag);
        let cpu_done = self.now + self.params.cpu_cost(bytes);
        if self.params.is_rendezvous(bytes) {
            self.stats.rendezvous_messages += 1;
            self.push(cpu_done, Ev::CpuFree(op));
            let rts_at = cpu_done + self.params.l;
            self.push(rts_at, Ev::RtsArrive { key, send_op: op, bytes });
        } else {
            // Eager: done at CPU completion; payload overlaps with progress.
            self.push(cpu_done, Ev::Done(op));
            let tx_end = self.tx(op.rank, cpu_done, bytes);
            let arrive = tx_end + self.params.l;
            self.push(arrive, Ev::Arrive { key, bytes });
        }
    }

    fn recv(&mut self, op: OpRef, src: Rank, bytes: u64, tag: Tag) {
        let key: MatchKey = (src, op.rank, tag);
        // Posting is cheap: release the stream immediately.
        self.push(self.now, Ev::CpuFree(op));
        if self.params.is_rendezvous(bytes) {
            if let Some((send_op, b)) = self.rdv.offer_recv(key, (op, self.now)) {
                // RTS already here: CTS leaves after receiver overhead.
                let cts_at = self.now + self.params.o + self.params.l;
                self.push(cts_at, Ev::CtsArrive { send_op, recv_op: op, bytes: b });
            }
        } else if let Some(avail) = self.eager.offer_recv(key, (op, self.now)) {
            // Payload already arrived.
            let done = avail.max(self.now) + self.params.cpu_cost(bytes);
            self.push(done, Ev::Done(op));
        }
    }

    fn calc(&mut self, op: OpRef, cost: u64) {
        let cost = if self.calc_scale.is_empty() {
            cost
        } else {
            cost.saturating_mul(self.calc_scale[op.rank as usize]) / 100
        };
        self.push(self.now + cost, Ev::Done(op));
    }

    fn next_event(&mut self) -> Option<Completion> {
        while let Some((time, ev)) = self.events.pop() {
            debug_assert!(time >= self.now);
            self.now = time;
            match ev {
                Ev::Done(op) => return Some(Completion::done(op, time)),
                Ev::CpuFree(op) => return Some(Completion::cpu_free(op, time)),
                Ev::Arrive { key, bytes } => {
                    let avail = self.rx(key.1, time);
                    if let Some((recv_op, post)) = self.eager.offer_send(key, avail) {
                        let done = avail.max(post) + self.params.cpu_cost(bytes);
                        self.push(done, Ev::Done(recv_op));
                    }
                }
                Ev::RtsArrive { key, send_op, bytes } => {
                    if let Some((recv_op, _post)) = self.rdv.offer_send(key, (send_op, bytes)) {
                        let cts_at = time + self.params.o + self.params.l;
                        self.push(cts_at, Ev::CtsArrive { send_op, recv_op, bytes });
                    }
                }
                Ev::CtsArrive { send_op, recv_op, bytes } => {
                    let tx_end = self.tx(send_op.rank, time, bytes);
                    // Buffer reusable once the last byte left the NIC.
                    self.push(tx_end, Ev::Done(send_op));
                    self.push(tx_end + self.params.l, Ev::DataArrive { recv_op, bytes });
                }
                Ev::DataArrive { recv_op, bytes } => {
                    let avail = self.rx(recv_op.rank, time);
                    let done = avail + self.params.cpu_cost(bytes);
                    self.push(done, Ev::Done(recv_op));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::Simulation;
    use atlahs_goal::{GoalBuilder, GoalSchedule};

    fn run(goal: &GoalSchedule, params: LogGopsParams) -> atlahs_core::SimReport {
        let mut b = LgsBackend::new(params);
        Simulation::new(goal).run(&mut b).expect("no deadlock")
    }

    fn ping(bytes: u64) -> GoalSchedule {
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, bytes, 0);
        b.recv(1, 0, bytes, 0);
        b.build().unwrap()
    }

    /// The `Ev` tie-break contract. Event ordering at equal timestamps is
    /// `(time, push order)` via the shared [`EventQueue`]; the *variant*
    /// order of `Ev` was the previous heap's final tie-break and is still
    /// a pinned, documented contract — `#[derive(PartialOrd, Ord)]` makes
    /// it an artifact of source order, so a well-meaning reorder of the
    /// enum would silently change any consumer that sorts events. This
    /// test turns that into a loud failure.
    #[test]
    fn ev_variant_order_is_pinned() {
        let op = OpRef::new(0, atlahs_goal::TaskId(0));
        let key: MatchKey = (0, 0, 0);
        let pinned = [
            Ev::Done(op),
            Ev::CpuFree(op),
            Ev::Arrive { key, bytes: 0 },
            Ev::RtsArrive { key, send_op: op, bytes: 0 },
            Ev::CtsArrive { send_op: op, recv_op: op, bytes: 0 },
            Ev::DataArrive { recv_op: op, bytes: 0 },
        ];
        // With identical payloads, `<` holds strictly between consecutive
        // variants iff the declaration order matches this list.
        for w in pinned.windows(2) {
            assert!(w[0] < w[1], "Ev variant order drifted: {:?} !< {:?}", w[0], w[1]);
        }
        // Within a variant, the payload is the lexicographic fallback.
        let later = OpRef::new(1, atlahs_goal::TaskId(0));
        assert!(Ev::Done(op) < Ev::Done(later));
    }

    #[test]
    fn eager_ping_timing_exact() {
        // o=200, g=5, G=0.04, L=3700, O=0:
        // send done at o=200; wire: 200 + 5 + 40 = 245; arrive 3945;
        // recv done at 3945 + 200 = 4145.
        let p = LogGopsParams::ai_alps();
        let rep = run(&ping(1000), p);
        assert_eq!(rep.rank_finish[0], 200);
        assert_eq!(rep.rank_finish[1], 4145);
    }

    #[test]
    fn rendezvous_ping_timing_exact() {
        // s=100 so 1000B is rendezvous. o=100, g=0, G=1, L=500, O=0.
        let p = LogGopsParams { l: 500, o: 100, g: 0, big_g: 1.0, big_o: 0.0, s: 100 };
        let rep = run(&ping(1000), p);
        // send cpu done 100; RTS at 600; recv posted at 0 -> CTS at 600+100+500=1200;
        // data tx 1200..2200 (G=1ns/B); send done 2200; arrive 2700;
        // recv done 2700 + o = 2800.
        assert_eq!(rep.rank_finish[0], 2200);
        assert_eq!(rep.rank_finish[1], 2800);
    }

    #[test]
    fn rendezvous_waits_for_late_recv() {
        let p = LogGopsParams { l: 500, o: 100, g: 0, big_g: 1.0, big_o: 0.0, s: 100 };
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, 1000, 0);
        let c = b.calc(1, 50_000);
        let r = b.recv(1, 0, 1000, 0);
        b.requires(1, r, c);
        let goal = b.build().unwrap();
        let rep = run(&goal, p);
        // recv posts at 50_000; CTS at 50_600; data 50_600..51_600;
        // arrive 52_100; done 52_200.
        assert_eq!(rep.rank_finish[1], 52_200);
        assert_eq!(rep.rank_finish[0], 51_600);
    }

    #[test]
    fn nic_gap_serializes_back_to_back_sends() {
        // Two eager sends from rank 0: NIC occupancy serializes the wire.
        let p = LogGopsParams { l: 0, o: 10, g: 100, big_g: 0.0, big_o: 0.0, s: 0 };
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, 8, 0);
        b.send(0, 1, 8, 1);
        b.recv(1, 0, 8, 0);
        b.recv(1, 0, 8, 1);
        let goal = b.build().unwrap();
        let rep = run(&goal, p);
        // send1 cpu done 10, tx 10..110; send2 issues at 10, cpu done 20,
        // tx 110..210; arrivals at 110 and 210 (rx gap pushes availability);
        // recv2 done 210 + 10 = 220.
        assert_eq!(rep.makespan, 220);
    }

    #[test]
    fn per_byte_cpu_overhead_counts() {
        let p = LogGopsParams { l: 0, o: 0, g: 0, big_g: 0.0, big_o: 2.0, s: 0 };
        let rep = run(&ping(100), p);
        // send done at 200 (O*b), arrive 200, recv done 200 + 200.
        assert_eq!(rep.rank_finish[0], 200);
        assert_eq!(rep.rank_finish[1], 400);
    }

    #[test]
    fn exchange_pattern_no_deadlock_under_rendezvous() {
        // Both ranks send then recv (same stream). Rendezvous requires the
        // peer's recv to be posted; CpuFree after o lets the recv post.
        let p = LogGopsParams { l: 100, o: 10, g: 0, big_g: 0.1, big_o: 0.0, s: 10 };
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, 1000, 0);
        b.recv(0, 1, 1000, 0);
        b.send(1, 0, 1000, 0);
        b.recv(1, 0, 1000, 0);
        let goal = b.build().unwrap();
        let rep = run(&goal, p);
        assert_eq!(rep.completed, 4);
    }

    #[test]
    fn collective_on_lgs_completes() {
        use atlahs_collectives::{mpi, CollParams};
        let ranks: Vec<u32> = (0..8).collect();
        let mut b = GoalBuilder::new(8);
        mpi::allreduce_ring(&mut b, &ranks, 1 << 20, 0, &CollParams::default());
        let goal = b.build().unwrap();
        let rep = run(&goal, LogGopsParams::hpc_testbed());
        assert_eq!(rep.completed, goal.total_tasks());
        assert!(rep.makespan > 0);
    }

    #[test]
    fn stats_track_messages() {
        let p = LogGopsParams::ai_alps();
        let mut backend = LgsBackend::new(p);
        let goal = ping(4096);
        Simulation::new(&goal).run(&mut backend).unwrap();
        let st = backend.stats();
        assert_eq!(st.messages, 1);
        assert_eq!(st.bytes, 4096);
        assert_eq!(st.rendezvous_messages, 0);
    }

    #[test]
    fn bandwidth_bound_scales_with_g() {
        let slow = LogGopsParams { big_g: 1.0, ..LogGopsParams::ai_alps() };
        let fast = LogGopsParams { big_g: 0.01, ..LogGopsParams::ai_alps() };
        let t_slow = run(&ping(1 << 20), slow).makespan;
        let t_fast = run(&ping(1 << 20), fast).makespan;
        assert!(t_slow > 50 * t_fast, "slow {t_slow} vs fast {t_fast}");
    }

    #[test]
    fn larger_clusters_take_longer_rings() {
        use atlahs_collectives::{mpi, CollParams};
        let time_for = |k: usize| {
            let ranks: Vec<u32> = (0..k as u32).collect();
            let mut b = GoalBuilder::new(k);
            mpi::allreduce_ring(&mut b, &ranks, 1 << 16, 0, &CollParams::default());
            run(&b.build().unwrap(), LogGopsParams::hpc_testbed()).makespan
        };
        assert!(time_for(16) > time_for(4));
    }

    // ---- straggler injection ----------------------------------------

    fn compute_ping(cost: u64) -> GoalSchedule {
        let mut b = GoalBuilder::new(2);
        let c = b.calc(0, cost);
        let s = b.send(0, 1, 1000, 0);
        b.requires(0, s, c);
        b.recv(1, 0, 1000, 0);
        b.build().unwrap()
    }

    #[test]
    fn straggler_inflates_calc_exactly() {
        // prob 100% makes every rank a straggler; factor 300% triples the
        // 10_000 ns calc. Eager ping timing after it is unchanged: with
        // ai_alps the fault-free run finishes at 10_000 + 4145.
        let goal = compute_ping(10_000);
        let clean = run(&goal, LogGopsParams::ai_alps());
        let spec = StragglerSpec { prob_pct: 100, factor_pct: 300, seed: 9, ..Default::default() };
        let mut b = LgsBackend::with_straggler(LogGopsParams::ai_alps(), spec);
        let faulty = Simulation::new(&goal).run(&mut b).unwrap();
        assert_eq!(clean.makespan, 14_145);
        assert_eq!(faulty.makespan, 34_145, "30_000 ns calc + the same wire time");
    }

    #[test]
    fn noop_straggler_specs_change_nothing() {
        let goal = compute_ping(5_000);
        let clean = run(&goal, LogGopsParams::ai_alps());
        for spec in [
            StragglerSpec::default(),
            StragglerSpec { prob_pct: 0, factor_pct: 500, seed: 3, ..Default::default() },
            StragglerSpec { prob_pct: 100, factor_pct: 100, seed: 3, ..Default::default() },
        ] {
            let mut b = LgsBackend::with_straggler(LogGopsParams::ai_alps(), spec);
            let rep = Simulation::new(&goal).run(&mut b).unwrap();
            assert_eq!(rep.makespan, clean.makespan, "{spec:?}");
            assert_eq!(rep.rank_finish, clean.rank_finish, "{spec:?}");
        }
    }

    #[test]
    fn straggler_draw_is_per_rank_and_seeded() {
        // With a 50% probability over many ranks, some — but not all —
        // ranks straggle, and the same seed reproduces the same set.
        let spec = StragglerSpec { prob_pct: 50, factor_pct: 200, seed: 42, ..Default::default() };
        let set: Vec<bool> = (0..64).map(|r| spec.is_straggler(r)).collect();
        let again: Vec<bool> = (0..64).map(|r| spec.is_straggler(r)).collect();
        assert_eq!(set, again);
        let hit = set.iter().filter(|&&s| s).count();
        assert!(hit > 8 && hit < 56, "50% over 64 ranks: got {hit}");
        let other = StragglerSpec { seed: 43, ..spec };
        let shifted: Vec<bool> = (0..64).map(|r| other.is_straggler(r)).collect();
        assert_ne!(set, shifted, "a different seed picks a different set");
    }

    #[test]
    fn spread_draws_distinct_factors_per_straggler() {
        // Distribution-drawn factors: every straggler's scale is at least
        // the base factor, non-stragglers stay at 100, and the Weibull
        // spread separates stragglers from each other (uniform factors
        // cannot). Pure in the spec: the same spec re-derives the same
        // table, and a different seed moves it.
        let spec =
            StragglerSpec { prob_pct: 100, factor_pct: 200, spread_pct: 150, shape: 2, seed: 7 };
        let factors: Vec<u64> = (0..64).map(|r| spec.factor_pct_for(r)).collect();
        assert!(factors.iter().all(|&f| f >= 200), "spread only adds on top of the base");
        let distinct: std::collections::HashSet<u64> = factors.iter().copied().collect();
        assert!(distinct.len() > 16, "the spread must differentiate stragglers: {factors:?}");
        assert_eq!(factors, (0..64).map(|r| spec.factor_pct_for(r)).collect::<Vec<_>>());
        let reseeded = StragglerSpec { seed: 8, ..spec };
        assert_ne!(factors, (0..64).map(|r| reseeded.factor_pct_for(r)).collect::<Vec<_>>());
        // Half-probability: non-stragglers are untouched by the spread.
        let half = StragglerSpec { prob_pct: 50, ..spec };
        for r in 0..64 {
            if !half.is_straggler(r) {
                assert_eq!(half.factor_pct_for(r), 100);
            }
        }
        // A pure-spread spec (base factor 100) is *not* a no-op…
        assert!(!StragglerSpec {
            prob_pct: 50,
            factor_pct: 100,
            spread_pct: 80,
            shape: 1,
            seed: 1
        }
        .is_noop());
        // …and it slows a compute-heavy run down.
        let goal = compute_ping(10_000);
        let clean = run(&goal, LogGopsParams::ai_alps());
        let mut b = LgsBackend::with_straggler(LogGopsParams::ai_alps(), spec);
        let spread_run = Simulation::new(&goal).run(&mut b).unwrap();
        assert!(spread_run.makespan > clean.makespan);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        use atlahs_collectives::{mpi, CollParams};
        use atlahs_core::{RunState, SimDriver, Snapshot};
        let ranks: Vec<u32> = (0..8).collect();
        let mut gb = GoalBuilder::new(8);
        mpi::allreduce_ring(&mut gb, &ranks, 1 << 20, 0, &CollParams::default());
        let goal = gb.build().unwrap();
        let params = LogGopsParams::hpc_testbed();
        let straight = run(&goal, params);

        // Pause at several points (including rendezvous handshakes in
        // flight), fork, and both the original and the fork must agree
        // with the straight-through run exactly.
        for bound in [1, 10_000, straight.makespan / 2, straight.makespan - 1] {
            let mut b = LgsBackend::new(params);
            let mut driver = SimDriver::start(&goal, &mut b);
            assert_eq!(driver.run_until(&mut b, bound).unwrap(), RunState::Paused);
            let snap = b.checkpoint();
            let fork_driver = driver.clone();
            let original = driver.finish(&mut b).unwrap();
            assert_eq!(original.makespan, straight.makespan, "bound {bound}");
            assert_eq!(original.rank_finish, straight.rank_finish, "bound {bound}");
            let stats = b.stats();

            b.restore(&snap);
            let fork = fork_driver.finish(&mut b).unwrap();
            assert_eq!(fork.makespan, straight.makespan, "fork at {bound}");
            assert_eq!(fork.rank_finish, straight.rank_finish, "fork at {bound}");
            assert_eq!(b.stats(), stats, "fork at {bound}");
        }
    }

    #[test]
    fn nccl_collective_on_lgs() {
        use atlahs_collectives::nccl::{self, NcclConfig};
        let ranks: Vec<u32> = (0..16).collect();
        let mut b = GoalBuilder::new(16);
        nccl::allreduce(&mut b, &ranks, 8 << 20, 0, &NcclConfig::default());
        let goal = b.build().unwrap();
        let rep = run(&goal, LogGopsParams::ai_alps());
        assert_eq!(rep.completed, goal.total_tasks());
    }
}
