//! # atlahs-testbed
//!
//! A fluid-flow cluster emulator that stands in for the *measured* systems
//! of the paper's validation (the Alps supercomputer and the CSCS HPC
//! test-bed — hardware we do not have; see DESIGN.md §1).
//!
//! The model is deliberately *different* from both ATLAHS backends so that
//! validation errors are honest:
//!
//! * messages are fluid flows sharing links by **max-min fairness**
//!   (recomputed on every arrival/departure), not LogGOPS gaps and not
//!   per-packet queues;
//! * links run at a configurable `efficiency` of nominal rate (protocol and
//!   scheduling overheads real fabrics exhibit);
//! * computation is perturbed by seeded multiplicative noise (OS jitter,
//!   DVFS, cache effects) so no backend can match it exactly.
//!
//! It implements the same [`Backend`] trait, so the same GOAL schedule can
//! be "run on the cluster" (this crate) and *predicted* by `atlahs-lgs` /
//! `atlahs-htsim`, mirroring the paper's methodology.

#![forbid(unsafe_code)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use atlahs_core::matcher::MatchKey;
use atlahs_core::{Backend, Completion, Matcher, OpRef, Time};
use atlahs_goal::{Rank, Tag};
use atlahs_htsim::topology::{Topology, TopologyConfig};

/// Emulator configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    pub topology: TopologyConfig,
    /// Host per-operation overhead (ns).
    pub host_o: u64,
    /// Fraction of nominal link rate actually achievable (0..=1].
    pub efficiency: f64,
    /// Amplitude of multiplicative computation noise (e.g. 0.02 = ±2%).
    pub noise_frac: f64,
    pub seed: u64,
}

impl TestbedConfig {
    pub fn new(topology: TopologyConfig) -> Self {
        TestbedConfig { topology, host_o: 250, efficiency: 0.92, noise_frac: 0.015, seed: 42 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Emit { op: OpRef, done: bool },
}

#[derive(Debug)]
struct Flow {
    op: OpRef,
    #[allow(dead_code)]
    dst: Rank,
    #[allow(dead_code)]
    key: MatchKey,
    remaining: f64,
    rate: f64,
    /// Latency to add between drain and delivery.
    latency: u64,
    path: Vec<u32>,
    recv_op: Option<OpRef>,
    complete_time: Option<Time>,
}

/// The fluid-flow "measured cluster".
pub struct TestbedBackend {
    cfg: TestbedConfig,
    topo: Topology,
    now: Time,
    last_advance: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<(Time, u64, Ev)>>,
    flows: Vec<Flow>,
    active: Vec<usize>,
    matcher: Matcher<usize, (OpRef, Time)>,
    rng: StdRng,
    port_rates: Vec<f64>,
}

impl TestbedBackend {
    pub fn new(cfg: TestbedConfig) -> Self {
        let topo = Topology::build(cfg.topology.clone());
        let port_rates =
            topo.ports().iter().map(|p| p.link.bytes_per_ns() * cfg.efficiency).collect();
        TestbedBackend {
            rng: StdRng::seed_from_u64(cfg.seed),
            topo,
            now: 0,
            last_advance: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            flows: Vec::new(),
            active: Vec::new(),
            matcher: Matcher::new(),
            port_rates,
            cfg,
        }
    }

    fn push(&mut self, t: Time, ev: Ev) {
        self.heap.push(Reverse((t, self.seq, ev)));
        self.seq += 1;
    }

    /// Drain all active flows up to time `t`.
    fn advance(&mut self, t: Time) {
        let dt = (t - self.last_advance) as f64;
        if dt > 0.0 {
            for &fi in &self.active {
                let f = &mut self.flows[fi];
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_advance = t;
    }

    /// Max-min fair rate allocation over ports (progressive filling).
    fn recompute_rates(&mut self) {
        let n = self.active.len();
        if n == 0 {
            return;
        }
        let mut assigned: Vec<Option<f64>> = vec![None; n];
        // Per-port: remaining capacity and unfrozen flow count.
        let mut cap: Vec<f64> = self.port_rates.clone();
        let mut count: Vec<u32> = vec![0; cap.len()];
        for (ai, &fi) in self.active.iter().enumerate() {
            let _ = ai;
            for &p in &self.flows[fi].path {
                count[p as usize] += 1;
            }
        }
        let mut remaining = n;
        while remaining > 0 {
            // Find the tightest port among those carrying unfrozen flows.
            let mut best: Option<(f64, usize)> = None;
            for (p, &c) in count.iter().enumerate() {
                if c > 0 {
                    let share = cap[p] / c as f64;
                    if best.map_or(true, |(s, _)| share < s) {
                        best = Some((share, p));
                    }
                }
            }
            let Some((share, port)) = best else { break };
            // Freeze every unfrozen flow crossing that port.
            for (ai, &fi) in self.active.iter().enumerate() {
                if assigned[ai].is_none() && self.flows[fi].path.contains(&(port as u32)) {
                    assigned[ai] = Some(share);
                    remaining -= 1;
                    for &p in &self.flows[fi].path {
                        count[p as usize] -= 1;
                        cap[p as usize] = (cap[p as usize] - share).max(0.0);
                    }
                }
            }
        }
        for (ai, &fi) in self.active.iter().enumerate() {
            self.flows[fi].rate = assigned[ai].unwrap_or(f64::INFINITY).max(1e-9);
        }
    }

    /// Earliest (time, active-index) a flow drains, if any.
    fn next_flow_completion(&self) -> Option<(Time, usize)> {
        let mut best: Option<(Time, usize)> = None;
        for (ai, &fi) in self.active.iter().enumerate() {
            let f = &self.flows[fi];
            let t = self.last_advance + (f.remaining / f.rate).ceil() as Time;
            if best.map_or(true, |(bt, _)| t < bt) {
                best = Some((t, ai));
            }
        }
        best
    }

    fn complete_flow(&mut self, ai: usize, t: Time) {
        let fi = self.active.swap_remove(ai);
        let deliver = t + self.flows[fi].latency;
        let (op, recv_op) = {
            let f = &mut self.flows[fi];
            f.complete_time = Some(deliver);
            (f.op, f.recv_op)
        };
        self.push(deliver, Ev::Emit { op, done: true });
        if let Some(r) = recv_op {
            self.push(deliver + self.cfg.host_o, Ev::Emit { op: r, done: true });
        }
        self.recompute_rates();
    }

    fn noise(&mut self) -> f64 {
        if self.cfg.noise_frac == 0.0 {
            1.0
        } else {
            1.0 + self.cfg.noise_frac * (2.0 * self.rng.random::<f64>() - 1.0)
        }
    }
}

impl Backend for TestbedBackend {
    fn simulation_setup(&mut self, num_ranks: usize) {
        assert!(
            num_ranks <= self.topo.num_hosts(),
            "schedule needs {num_ranks} ranks but topology has {} hosts",
            self.topo.num_hosts()
        );
        self.now = 0;
        self.last_advance = 0;
        self.seq = 0;
        self.heap.clear();
        self.flows.clear();
        self.active.clear();
        self.matcher = Matcher::new();
        self.rng = StdRng::seed_from_u64(self.cfg.seed);
    }

    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, op: OpRef, dst: Rank, bytes: u64, tag: Tag) {
        let key: MatchKey = (op.rank, dst, tag);
        self.push(self.now + self.cfg.host_o, Ev::Emit { op, done: false });
        let fi = self.flows.len();

        if op.rank == dst {
            // Intra-node copy: effectively instant at this fidelity.
            let deliver = self.now + self.cfg.host_o;
            let mut f = Flow {
                op,
                dst,
                key,
                remaining: 0.0,
                rate: f64::INFINITY,
                latency: 0,
                path: Vec::new(),
                recv_op: None,
                complete_time: Some(deliver),
            };
            if let Some((recv_op, _)) = self.matcher.offer_send(key, fi) {
                f.recv_op = Some(recv_op);
            }
            self.push(deliver, Ev::Emit { op, done: true });
            if let Some(r) = f.recv_op {
                self.push(deliver + self.cfg.host_o, Ev::Emit { op: r, done: true });
            }
            self.flows.push(f);
            return;
        }

        self.advance(self.now);
        let salt = self.rng.random::<u64>();
        let path = self.topo.route(op.rank, dst, salt);
        let latency: u64 =
            path.iter().map(|&p| self.topo.ports()[p as usize].link.latency_ns).sum();
        let mut f = Flow {
            op,
            dst,
            key,
            remaining: bytes.max(1) as f64,
            rate: 0.0,
            latency: latency + self.cfg.host_o,
            path,
            recv_op: None,
            complete_time: None,
        };
        if let Some((recv_op, _)) = self.matcher.offer_send(key, fi) {
            f.recv_op = Some(recv_op);
        }
        self.flows.push(f);
        self.active.push(fi);
        self.recompute_rates();
    }

    fn recv(&mut self, op: OpRef, src: Rank, _bytes: u64, tag: Tag) {
        let key: MatchKey = (src, op.rank, tag);
        self.push(self.now, Ev::Emit { op, done: false });
        if let Some(fi) = self.matcher.offer_recv(key, (op, self.now)) {
            match self.flows[fi].complete_time {
                Some(t) => {
                    let done = t.max(self.now) + self.cfg.host_o;
                    self.push(done, Ev::Emit { op, done: true });
                }
                None => self.flows[fi].recv_op = Some(op),
            }
        }
    }

    fn calc(&mut self, op: OpRef, cost: u64) {
        let noised = (cost as f64 * self.noise()).round() as u64;
        self.push(self.now + noised, Ev::Emit { op, done: true });
    }

    fn next_event(&mut self) -> Option<Completion> {
        loop {
            let fixed = self.heap.peek().map(|Reverse((t, _, _))| *t);
            let flow = self.next_flow_completion();
            match (fixed, flow) {
                (None, None) => return None,
                (Some(ft), Some((wt, ai))) if wt < ft => {
                    self.advance(wt);
                    self.now = wt;
                    self.complete_flow(ai, wt);
                }
                (None, Some((wt, ai))) => {
                    self.advance(wt);
                    self.now = wt;
                    self.complete_flow(ai, wt);
                }
                (Some(ft), _) => {
                    self.advance(ft);
                    self.now = ft;
                    let Reverse((t, _, Ev::Emit { op, done })) = self.heap.pop().unwrap();
                    return Some(if done {
                        Completion::done(op, t)
                    } else {
                        Completion::cpu_free(op, t)
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::Simulation;
    use atlahs_goal::{GoalBuilder, GoalSchedule};
    use atlahs_htsim::LinkParams;

    fn cfg() -> TestbedConfig {
        let mut c = TestbedConfig::new(TopologyConfig::SingleSwitch {
            hosts: 16,
            link: LinkParams { gbps: 100.0, latency_ns: 500 },
        });
        c.noise_frac = 0.0;
        c.efficiency = 1.0;
        c
    }

    fn run(goal: &GoalSchedule, c: TestbedConfig) -> atlahs_core::SimReport {
        let mut b = TestbedBackend::new(c);
        Simulation::new(goal).run(&mut b).expect("no deadlock")
    }

    fn ping(bytes: u64) -> GoalSchedule {
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, bytes, 0);
        b.recv(1, 0, bytes, 0);
        b.build().unwrap()
    }

    #[test]
    fn ping_matches_fluid_model() {
        // 1 MiB at 12.5 B/ns = 83886 ns drain + 1000 ns path latency
        // + host_o (latency term) + host_o (recv side).
        let rep = run(&ping(1 << 20), cfg());
        let drain = ((1u64 << 20) as f64 / 12.5).ceil() as u64;
        let expect = drain + 1000 + 250 + 250;
        assert!(rep.makespan.abs_diff(expect) <= 2, "{} vs {expect}", rep.makespan);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        // Two flows into the same destination: each gets half rate.
        let mut b = GoalBuilder::new(3);
        b.send(0, 2, 1 << 20, 0);
        b.recv(2, 0, 1 << 20, 0);
        b.send(1, 2, 1 << 20, 0);
        b.recv(2, 1, 1 << 20, 0);
        let goal = b.build().unwrap();
        let one = run(&ping(1 << 20), cfg()).makespan;
        let two = run(&goal, cfg()).makespan;
        let ratio = two as f64 / one as f64;
        assert!((1.8..2.2).contains(&ratio), "sharing should double completion: {ratio}");
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let mut b = GoalBuilder::new(4);
        b.send(0, 1, 1 << 20, 0);
        b.recv(1, 0, 1 << 20, 0);
        b.send(2, 3, 1 << 20, 0);
        b.recv(3, 2, 1 << 20, 0);
        let goal = b.build().unwrap();
        let one = run(&ping(1 << 20), cfg()).makespan;
        let both = run(&goal, cfg()).makespan;
        assert!(both.abs_diff(one) <= 2, "{both} vs {one}");
    }

    #[test]
    fn noise_is_reproducible_and_bounded() {
        let mut c = cfg();
        c.noise_frac = 0.05;
        let mut b = GoalBuilder::new(1);
        b.calc(0, 1_000_000);
        let goal = b.build().unwrap();
        let r1 = run(&goal, c.clone()).makespan;
        let r2 = run(&goal, c.clone()).makespan;
        assert_eq!(r1, r2, "same seed, same noise");
        assert!((950_000..=1_050_000).contains(&r1), "{r1}");
        c.seed = 7;
        let r3 = run(&goal, c).makespan;
        assert_ne!(r1, r3, "different seed should perturb");
    }

    #[test]
    fn efficiency_slows_transfers() {
        let mut slow = cfg();
        slow.efficiency = 0.5;
        let fast = run(&ping(1 << 20), cfg()).makespan;
        let halved = run(&ping(1 << 20), slow).makespan;
        assert!(halved as f64 > fast as f64 * 1.7, "{halved} vs {fast}");
    }

    #[test]
    fn collective_completes_on_testbed() {
        use atlahs_collectives::{mpi, CollParams};
        let ranks: Vec<u32> = (0..8).collect();
        let mut b = GoalBuilder::new(8);
        mpi::allreduce_ring(&mut b, &ranks, 1 << 18, 0, &CollParams::default());
        let goal = b.build().unwrap();
        let rep = run(&goal, cfg());
        assert_eq!(rep.completed, goal.total_tasks());
    }

    #[test]
    fn oversubscribed_core_congests_fluid_flows() {
        let mk = |ratio: usize| {
            let mut c = cfg();
            c.topology = if ratio == 1 {
                TopologyConfig::fat_tree(16, 4)
            } else {
                TopologyConfig::fat_tree_oversubscribed(16, 4, ratio)
            };
            // permutation across ToRs
            let mut b = GoalBuilder::new(16);
            for h in 0..16u32 {
                let dst = (h + 8) % 16;
                b.send(h, dst, 1 << 20, h);
                b.recv(dst, h, 1 << 20, h);
            }
            run(&b.build().unwrap(), c).makespan
        };
        let full = mk(1);
        let over = mk(4);
        // ECMP collisions already slow the fully provisioned case, so
        // compare against the contention-free wire time: 4 flows through
        // one uplink cannot beat 3x line rate, and must be strictly worse
        // than full provisioning.
        let wire = ((1u64 << 20) as f64 / 12.5) as u64;
        assert!(over as f64 > 3.0 * wire as f64, "{over} vs wire {wire}");
        assert!(over > full, "{over} vs {full}");
    }

    #[test]
    fn intra_node_send_is_local() {
        let mut b = GoalBuilder::new(2);
        b.send(0, 0, 1 << 30, 0);
        b.recv(0, 0, 1 << 30, 0);
        let goal = b.build().unwrap();
        let rep = run(&goal, cfg());
        assert!(rep.makespan < 1_000, "local copy should skip the fabric");
    }
}
