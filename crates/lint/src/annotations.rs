//! The `det-lint` annotation grammar.
//!
//! A legitimate violation of a determinism rule is exempted *in place*,
//! with a recorded justification, by a line comment:
//!
//! ```text
//! // det-lint: allow(float) — IEEE-754 mul with fixed operand order
//! let ns = (bytes as f64 * self.gap_per_byte) as u64;
//! ```
//!
//! Forms:
//! * **Standalone** — the comment is alone on its line and covers the
//!   next line that contains code.
//! * **Trailing** — the comment follows code and covers its own line.
//!
//! `allow(...)` takes one or more comma-separated rule names (see
//! [`crate::policy::Rule`]). The reason after the `—` (a plain `-` or
//! `--` is also accepted) is mandatory: an allow without a recorded
//! justification is itself a finding. An allow that no longer
//! suppresses anything is a **stale annotation** finding, so exemptions
//! cannot outlive the code they excused.

use crate::lexer::CommentLine;
use crate::policy::Rule;

/// A parsed `det-lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Line the comment sits on (1-indexed).
    pub line: u32,
    /// Line of code the annotation covers.
    pub target_line: u32,
    pub rules: Vec<Rule>,
    pub reason: String,
}

/// Outcome of parsing one captured comment.
pub enum Parsed {
    /// A well-formed annotation (target line not yet resolved for
    /// standalone comments — the caller fixes it up against the token
    /// stream).
    Ok(Annotation),
    /// Mentions `det-lint` but is malformed; the string explains why.
    Malformed(String),
}

/// Parse a captured comment. The caller guarantees `c.text` contains
/// `det-lint`.
pub fn parse(c: &CommentLine) -> Parsed {
    let text = c.text.trim();
    let Some(rest) = text.strip_prefix("det-lint:") else {
        return Parsed::Malformed(
            "det-lint comment must start with `det-lint: allow(<rule>) — <reason>`".into(),
        );
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Parsed::Malformed("det-lint directive must be `allow(<rule>[, <rule>])`".into());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Parsed::Malformed("missing `(` after `allow`".into());
    };
    let Some(close) = rest.find(')') else {
        return Parsed::Malformed("missing `)` in `allow(...)`".into());
    };
    let (rule_list, tail) = rest.split_at(close);
    let mut rules = Vec::new();
    for name in rule_list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Parsed::Malformed("empty rule name in `allow(...)`".into());
        }
        match Rule::parse(name) {
            Some(r) => rules.push(r),
            None => return Parsed::Malformed(format!("unknown rule `{name}` in `allow(...)`")),
        }
    }
    if rules.is_empty() {
        return Parsed::Malformed("`allow(...)` lists no rules".into());
    }
    // Reason: everything after the separator (— , -, or --).
    let tail = tail[1..].trim_start(); // past ')'
    let reason = tail
        .strip_prefix('\u{2014}')
        .or_else(|| tail.strip_prefix("--"))
        .or_else(|| tail.strip_prefix('-'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Parsed::Malformed(
            "annotation needs a justification: `allow(<rule>) — <reason>`".into(),
        );
    }
    Parsed::Ok(Annotation {
        line: c.line,
        target_line: c.line, // standalone targets fixed up by the caller
        rules,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> CommentLine {
        CommentLine { line: 7, text: text.to_string(), trailing: false }
    }

    #[test]
    fn parses_the_canonical_form() {
        let Parsed::Ok(a) = parse(&comment(" det-lint: allow(float) — fixed operand order"))
        else {
            panic!("should parse");
        };
        assert_eq!(a.rules, vec![Rule::Float]);
        assert_eq!(a.reason, "fixed operand order");
    }

    #[test]
    fn parses_multiple_rules_and_ascii_dashes() {
        let Parsed::Ok(a) = parse(&comment("det-lint: allow(float, hash-iter) -- both fine"))
        else {
            panic!("should parse");
        };
        assert_eq!(a.rules, vec![Rule::Float, Rule::HashIter]);
        let Parsed::Ok(b) = parse(&comment("det-lint: allow(unsafe) - short dash")) else {
            panic!("should parse");
        };
        assert_eq!(b.rules, vec![Rule::UnsafeBlock]);
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(matches!(parse(&comment("det-lint: allow(float)")), Parsed::Malformed(_)));
        assert!(matches!(parse(&comment("det-lint: allow(float) — ")), Parsed::Malformed(_)));
    }

    #[test]
    fn rejects_unknown_rule_and_bad_shape() {
        assert!(matches!(
            parse(&comment("det-lint: allow(floaty) — reason")),
            Parsed::Malformed(_)
        ));
        assert!(matches!(parse(&comment("det-lint: deny(float) — r")), Parsed::Malformed(_)));
        assert!(matches!(parse(&comment("see det-lint docs")), Parsed::Malformed(_)));
    }
}
