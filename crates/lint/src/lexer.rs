//! A lightweight Rust lexer for the determinism audit.
//!
//! Full parsing is deliberately out of scope (the workspace builds
//! offline, so `syn` is not available, and the audit rules are lexical
//! anyway). The lexer's one job is to produce a token stream with
//! accurate line numbers in which **comments, string literals, char
//! literals, and lifetimes can never masquerade as code**: a `HashMap`
//! inside a doc comment or a `"f64"` inside a string must not trigger a
//! rule. Line comments are captured separately so the annotation layer
//! (`annotations.rs`) can find `det-lint:` directives.

/// Token classification. Only the distinctions the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `f64`, …).
    Ident,
    /// Integer literal (including its suffix, e.g. `42u64`).
    Int,
    /// Float literal (`1.0`, `2e9`, `3f64`, `1.`).
    Float,
    /// Punctuation. Multi-char operators that matter for bracket
    /// matching (`->`, `=>`, `::`) are emitted as one token.
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub text: String,
    pub line: u32,
    pub kind: TokKind,
}

/// A captured `//` comment (only those mentioning `det-lint` are kept).
#[derive(Debug, Clone)]
pub struct CommentLine {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// Comment body after the `//` (or `///` / `//!`) marker.
    pub text: String,
    /// True when code tokens precede the comment on the same line.
    pub trailing: bool,
}

/// Lexer output: the code token stream plus `det-lint` comments.
#[derive(Debug, Default)]
pub struct LexOut {
    pub tokens: Vec<Token>,
    pub comments: Vec<CommentLine>,
}

/// Lex `src`, stripping comments and all literal forms.
pub fn lex(src: &str) -> LexOut {
    Lexer { b: src.as_bytes(), i: 0, line: 1, line_of_last_tok: 0, out: LexOut::default() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    /// Line number of the most recently emitted token (0 = none yet).
    line_of_last_tok: u32,
    out: LexOut,
}

impl Lexer<'_> {
    fn run(mut self) -> LexOut {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, k: usize) -> Option<u8> {
        self.b.get(self.i + k).copied()
    }

    fn emit(&mut self, text: String, kind: TokKind) {
        self.line_of_last_tok = self.line;
        self.out.tokens.push(Token { text, line: self.line, kind });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let trailing = self.line_of_last_tok == self.line;
        let from = self.i + 2;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let body = String::from_utf8_lossy(&self.b[from..self.i]).into_owned();
        if body.contains("det-lint") {
            self.out.comments.push(CommentLine { line: start_line, text: body, trailing });
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match (self.b[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    fn string_literal(&mut self) {
        // Plain (possibly multi-line) string with escapes.
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    fn raw_string(&mut self) {
        // At `r` (or after `b`); consume `r#*"..."#*`.
        self.i += 1; // past 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // past opening quote
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.i += 1 + hashes;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self) {
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: consume to the closing quote.
            self.i += 2; // past `'\`
            self.i += 1; // past the escape head (n, u, x, ', \, …)
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.i += 1;
            }
            self.i += 1;
        } else if self.peek(2) == Some(b'\'') && self.peek(1) != Some(b'\'') {
            self.i += 3; // simple char literal 'x'
        } else {
            // Lifetime: consume the tick and the identifier.
            self.i += 1;
            while self.i < self.b.len()
                && (self.b[self.i] == b'_' || self.b[self.i].is_ascii_alphanumeric())
            {
                self.i += 1;
            }
        }
    }

    fn number(&mut self) {
        let from = self.i;
        let mut is_float = false;
        if self.b[self.i] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            // Radix literal: digits (hex e/E included) + suffix; never float.
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i] == b'_' || self.b[self.i].is_ascii_alphanumeric())
            {
                self.i += 1;
            }
        } else {
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
            // Fractional part: `1.5`, or trailing-dot float `1.` — but not
            // `1..2` (range) and not `1.max()` (method on an integer).
            if self.peek(0) == Some(b'.') {
                let after = self.peek(1);
                let is_frac = match after {
                    Some(d) if d.is_ascii_digit() => true,
                    Some(b'.') => false,
                    Some(c) if c == b'_' || c.is_ascii_alphabetic() => false,
                    _ => true, // `1.` followed by `)`, `;`, space, EOF…
                };
                if is_frac {
                    is_float = true;
                    self.i += 1;
                    while self.i < self.b.len()
                        && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                    {
                        self.i += 1;
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let (sign, digit) = (self.peek(1), self.peek(2));
                let exp = match sign {
                    Some(d) if d.is_ascii_digit() => true,
                    Some(b'+' | b'-') => matches!(digit, Some(d) if d.is_ascii_digit()),
                    _ => false,
                };
                if exp {
                    is_float = true;
                    self.i += 2;
                    while self.i < self.b.len()
                        && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
                    {
                        self.i += 1;
                    }
                }
            }
            // Suffix (`u64`, `f32`, …). A float suffix forces Float.
            let sfrom = self.i;
            while self.i < self.b.len()
                && (self.b[self.i] == b'_' || self.b[self.i].is_ascii_alphanumeric())
            {
                self.i += 1;
            }
            let suffix = &self.b[sfrom..self.i];
            if suffix == b"f32" || suffix == b"f64" {
                is_float = true;
            }
        }
        let text = String::from_utf8_lossy(&self.b[from..self.i]).into_owned();
        self.emit(text, if is_float { TokKind::Float } else { TokKind::Int });
    }

    fn ident(&mut self) {
        let from = self.i;
        while self.i < self.b.len()
            && (self.b[self.i] == b'_' || self.b[self.i].is_ascii_alphanumeric())
        {
            self.i += 1;
        }
        let text = &self.b[from..self.i];
        // String-literal prefixes and raw identifiers.
        match text {
            b"r" | b"br" | b"b" | b"rb" => {
                if self.peek(0) == Some(b'"') || (text != b"b" && self.peek(0) == Some(b'#')) {
                    if text == b"b" {
                        self.string_literal();
                        return;
                    }
                    // Raw identifier `r#name` (not a raw string).
                    if self.peek(0) == Some(b'#')
                        && matches!(self.peek(1), Some(c) if c == b'_' || c.is_ascii_alphabetic())
                    {
                        self.i += 1; // past '#'
                        let f2 = self.i;
                        while self.i < self.b.len()
                            && (self.b[self.i] == b'_' || self.b[self.i].is_ascii_alphanumeric())
                        {
                            self.i += 1;
                        }
                        let t = String::from_utf8_lossy(&self.b[f2..self.i]).into_owned();
                        self.emit(t, TokKind::Ident);
                        return;
                    }
                    self.raw_string();
                    return;
                }
                if text == b"b" && self.peek(0) == Some(b'\'') {
                    self.quote();
                    return;
                }
            }
            _ => {}
        }
        let t = String::from_utf8_lossy(text).into_owned();
        self.emit(t, TokKind::Ident);
    }

    fn punct(&mut self) {
        let c = self.b[self.i] as char;
        let two = match (self.b[self.i], self.peek(1)) {
            (b'-', Some(b'>')) => Some("->"),
            (b'=', Some(b'>')) => Some("=>"),
            (b':', Some(b':')) => Some("::"),
            _ => None,
        };
        if let Some(t) = two {
            self.i += 2;
            self.emit(t.to_string(), TokKind::Punct);
        } else {
            self.i += 1;
            self.emit(c.to_string(), TokKind::Punct);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let out = lex("let x = \"HashMap f64\"; // HashMap here too\n/* f64 */ let y = 1;");
        let ts = out.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>();
        assert!(!ts.contains(&"HashMap"));
        assert!(!ts.contains(&"f64"));
        assert!(ts.contains(&"y"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let out = lex("a(1.0, 2, 0..10, 3e9, 0xE0, 1f64, 7u64, x.0, 4.)");
        let floats: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, vec!["1.0", "3e9", "1f64", "4."]);
    }

    #[test]
    fn integer_method_call_is_not_float() {
        let out = lex("1.max(2)");
        assert_eq!(out.tokens[0].kind, TokKind::Int);
    }

    #[test]
    fn lifetimes_and_char_literals() {
        let ts = texts("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(!ts.contains(&"x'".to_string()));
        assert!(ts.contains(&"str".to_string()));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let ts = texts("let a = r\"f64\"; let b = r#\"HashMap \"quoted\" f32\"#; let r#type = 1;");
        assert!(!ts.contains(&"f64".to_string()));
        assert!(!ts.contains(&"HashMap".to_string()));
        assert!(ts.contains(&"type".to_string()));
    }

    #[test]
    fn line_numbers_cross_multiline_constructs() {
        let out = lex("let s = \"a\nb\"; /* c\nd */\nlet z = 9;");
        let z = out.tokens.iter().find(|t| t.text == "z").unwrap();
        assert_eq!(z.line, 4);
    }

    #[test]
    fn det_lint_comments_captured_with_trailing_flag() {
        let out = lex("let x = 1; // det-lint: allow(float) — reason\n// det-lint: allow(unsafe) — r\nlet y = 2;");
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].trailing);
        assert!(!out.comments[1].trailing);
    }

    #[test]
    fn arrow_and_pathsep_are_single_tokens() {
        let ts = texts("fn f() -> u64 { a::b => 1 }");
        assert!(ts.contains(&"->".to_string()));
        assert!(ts.contains(&"::".to_string()));
        assert!(ts.contains(&"=>".to_string()));
    }
}
