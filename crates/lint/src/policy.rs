//! Crate tiers and rule identities — the policy half of the audit.
//!
//! The bit-identity contract (docs/DETERMINISM.md) splits the workspace
//! into three tiers. **Result-affecting** crates produce or transform
//! simulation state: any nondeterminism there changes report bytes.
//! **Reporting/infra** crates aggregate, time, and print — they may use
//! wall clocks and default-hashed maps because the deterministic report
//! writers never observe their iteration order. **Exempt** crates are
//! the offline dependency shims, which mirror external APIs verbatim.

/// Determinism tier of a crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Simulation output depends on this code: all rules apply.
    ResultAffecting,
    /// Tooling around the simulators: only `unsafe-attr` applies.
    Reporting,
    /// Offline shims mirroring external crates: not scanned.
    Exempt,
}

/// Classify a crate by its directory name under `crates/` (the umbrella
/// root crate is passed as `"atlahs"`).
pub fn crate_tier(dir_name: &str) -> Tier {
    match dir_name {
        // The engines, the schedule representation, the schedule
        // generators, and the shared queue/hash substrate.
        "core" | "eventq" | "htsim" | "lgs" | "goal" | "collectives" | "schedgen"
        | "directdrive" => Tier::ResultAffecting,
        // Harnesses, tracers, reports, baselines, the audit itself, and
        // the umbrella re-export crate.
        "bench" | "baselines" | "tracers" | "testbed" | "lint" | "atlahs" => Tier::Reporting,
        "shims" => Tier::Exempt,
        // Unknown crates default to the strict tier so a new crate must
        // opt *out* of the contract explicitly (in this table), never
        // silently fall outside it.
        _ => Tier::ResultAffecting,
    }
}

/// Rule identifiers, as written inside `det-lint: allow(<rule>)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `f32`/`f64` types, float literals, float casts.
    Float,
    /// `HashMap`/`HashSet` with the default `RandomState` hasher.
    DefaultHash,
    /// Iteration over a hash-layout-dependent map or set.
    HashIter,
    /// `Instant` / `SystemTime` wall-clock reads.
    WallClock,
    /// `thread_rng` and other ambient (OS-seeded) randomness.
    AmbientRand,
    /// `unsafe` blocks, functions, impls, or traits.
    UnsafeBlock,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    UnsafeAttr,
}

/// Every annotatable rule, in report order.
pub const ALL_RULES: [Rule; 7] = [
    Rule::Float,
    Rule::DefaultHash,
    Rule::HashIter,
    Rule::WallClock,
    Rule::AmbientRand,
    Rule::UnsafeBlock,
    Rule::UnsafeAttr,
];

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::Float => "float",
            Rule::DefaultHash => "default-hash",
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRand => "ambient-rand",
            Rule::UnsafeBlock => "unsafe",
            Rule::UnsafeAttr => "unsafe-attr",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_cover_the_workspace() {
        assert_eq!(crate_tier("htsim"), Tier::ResultAffecting);
        assert_eq!(crate_tier("eventq"), Tier::ResultAffecting);
        assert_eq!(crate_tier("bench"), Tier::Reporting);
        assert_eq!(crate_tier("shims"), Tier::Exempt);
        // Unknown crates land in the strict tier.
        assert_eq!(crate_tier("brand_new_crate"), Tier::ResultAffecting);
    }

    #[test]
    fn rule_names_round_trip() {
        for r in ALL_RULES {
            assert_eq!(Rule::parse(r.name()), Some(r));
        }
        assert_eq!(Rule::parse("not-a-rule"), None);
    }
}
