//! Repo-hygiene pass over the golden corpus.
//!
//! The determinism contract is only as strong as the goldens that pin
//! it, so the audit checks the corpus itself:
//!
//! * every file under `tests/goldens/` must parse as JSON (a truncated
//!   or hand-mangled golden must fail before a smoke diff reads it);
//! * every golden must be referenced by at least one test source or
//!   `ci.sh` stage — an orphan golden is a contract nobody enforces;
//! * every `tests/goldens/...` path named in `ci.sh` must exist.

use std::fs;
use std::path::Path;

use crate::json;
use crate::Finding;

/// Run the hygiene pass rooted at the workspace directory.
pub fn run(root: &Path, rust_sources: &[(String, String)]) -> Vec<Finding> {
    let mut out = Vec::new();
    let goldens_dir = root.join("tests/goldens");
    let ci_path = root.join("ci.sh");
    let ci = fs::read_to_string(&ci_path).unwrap_or_default();

    // ---- parse + orphan checks over the corpus ----
    let mut goldens: Vec<std::path::PathBuf> = match fs::read_dir(&goldens_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.is_file()).collect(),
        Err(_) => {
            out.push(Finding {
                file: "tests/goldens".into(),
                line: 0,
                rule: "golden-missing".into(),
                message: "golden directory tests/goldens/ not found".into(),
            });
            return out;
        }
    };
    goldens.sort();
    for path in &goldens {
        let name = path.file_name().unwrap_or_default().to_string_lossy().into_owned();
        let rel = format!("tests/goldens/{name}");
        match fs::read_to_string(path) {
            Ok(body) => {
                if let Err(e) = json::validate(&body) {
                    out.push(Finding {
                        file: rel.clone(),
                        line: 0,
                        rule: "golden-parse".into(),
                        message: format!("golden is not valid JSON: {e}"),
                    });
                }
            }
            Err(e) => out.push(Finding {
                file: rel.clone(),
                line: 0,
                rule: "golden-parse".into(),
                message: format!("golden unreadable: {e}"),
            }),
        }
        let referenced =
            ci.contains(&name) || rust_sources.iter().any(|(_, src)| src.contains(&name));
        if !referenced {
            out.push(Finding {
                file: rel,
                line: 0,
                rule: "golden-orphan".into(),
                message: format!(
                    "orphan golden: `{name}` is referenced by no test source and no ci.sh stage"
                ),
            });
        }
    }

    // ---- every golden path ci.sh names must exist ----
    for (lineno, line) in ci.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("tests/goldens/") {
            let tail = &rest[pos..];
            let end = tail
                .find(|c: char| c.is_whitespace() || c == '"' || c == '\'' || c == ')' || c == '`')
                .unwrap_or(tail.len());
            let rel = &tail[..end];
            if rel.len() > "tests/goldens/".len() && !root.join(rel).is_file() {
                out.push(Finding {
                    file: "ci.sh".into(),
                    line: (lineno + 1) as u32,
                    rule: "golden-missing".into(),
                    message: format!("ci.sh references `{rel}`, which does not exist"),
                });
            }
            rest = &tail[end..];
        }
    }
    out
}
