//! The determinism rules, evaluated over the lexed token stream.
//!
//! Rules are lexical by design (see `lexer.rs`): each one targets a
//! construct whose *presence* is the hazard, so token-level matching is
//! sufficient and keeps the audit dependency-free. `#[cfg(test)]` items
//! and `#[test]` functions are exempt — test code is covered by the
//! dynamic goldens, and the contract governs shipped result paths.

use crate::lexer::{TokKind, Token};
use crate::policy::{Rule, Tier};

/// A rule hit before annotation filtering.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

/// Iterator-producing methods whose order reflects hash-bucket layout.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Ambient (OS- or thread-seeded) randomness sources.
const AMBIENT_RAND: [&str; 5] = ["thread_rng", "ThreadRng", "OsRng", "getrandom", "from_entropy"];

/// Scan one file's tokens. `is_crate_root` enables the `unsafe-attr`
/// check (crate roots are `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`).
/// Returns the findings plus the exempt (test-code) line ranges, which
/// the annotation layer uses to ignore `det-lint` comments inside tests.
pub fn scan(toks: &[Token], tier: Tier, is_crate_root: bool) -> (Vec<RawFinding>, Vec<(u32, u32)>) {
    let exempt = test_code_mask(toks);
    let mut out = Vec::new();

    if is_crate_root && tier != Tier::Exempt {
        unsafe_attr_rule(toks, &mut out);
    }
    if tier == Tier::ResultAffecting {
        let in_use = use_statement_mask(toks);
        float_rule(toks, &exempt, &mut out);
        default_hash_rule(toks, &exempt, &in_use, &mut out);
        hash_iter_rule(toks, &exempt, &mut out);
        ident_rules(toks, &exempt, &mut out);
    }

    // One finding per (line, rule): a line with three float literals
    // needs one annotation, not three.
    out.sort_by_key(|a| (a.line, a.rule));
    out.dedup_by(|a, b| (a.line, a.rule) == (b.line, b.rule));
    (out, ranges_of(toks, &exempt))
}

/// Per-token exemption mask for `#[cfg(test)]` / `#[test]` items.
fn test_code_mask(toks: &[Token]) -> Vec<bool> {
    let mut exempt = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // Parse the attribute group; decide whether it gates on test.
            let (end, is_test) = attr_group(toks, i + 1);
            if is_test {
                // Cover this attribute, any further attributes, and the
                // item they decorate (to its `;` or matching brace).
                let mut j = end + 1;
                while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
                    let (e, _) = attr_group(toks, j + 1);
                    j = e + 1;
                }
                let item_end = item_extent(toks, j);
                for e in exempt.iter_mut().take(item_end.min(toks.len())).skip(i) {
                    *e = true;
                }
                i = item_end;
                continue;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    exempt
}

/// Given the index of the `[` of an attribute, return (index of the
/// matching `]`, whether the attribute is test-gating).
fn attr_group(toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut saw_test = false;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "cfg" => is_cfg = true,
            "test" => {
                // `#[cfg(not(test))]` gates *shipped* code; only a bare
                // `test` (or `all(test, ..)` etc.) marks test code.
                let negated = j >= 2 && toks[j - 1].text == "(" && toks[j - 2].text == "not";
                if !negated {
                    saw_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // `#[test]` (bare) or `#[cfg(...test...)]`.
    let bare_test = j == open + 2 && saw_test;
    (j.min(toks.len().saturating_sub(1)), bare_test || (is_cfg && saw_test))
}

/// End index (exclusive) of the item starting at `start`: past the
/// first `;` at depth 0, or past the matching `}` of the first brace.
fn item_extent(toks: &[Token], start: usize) -> usize {
    let mut j = start;
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Collapse a token exemption mask into line ranges.
fn ranges_of(toks: &[Token], exempt: &[bool]) -> Vec<(u32, u32)> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut prev_exempt = false;
    for (t, &e) in toks.iter().zip(exempt) {
        if e {
            match ranges.last_mut() {
                // Consecutive exempt tokens span one region even across
                // blank or comment-only lines inside the item.
                Some((_, hi)) if prev_exempt => *hi = (*hi).max(t.line),
                _ => ranges.push((t.line, t.line)),
            }
        }
        prev_exempt = e;
    }
    ranges
}

/// Mask of tokens inside `use ...;` statements (a `use` of `HashMap` is
/// not by itself a violation — the construction sites are).
fn use_statement_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut in_use = false;
    for (k, t) in toks.iter().enumerate() {
        if t.text == "use" && t.kind == TokKind::Ident {
            in_use = true;
        }
        mask[k] = in_use;
        if t.text == ";" {
            in_use = false;
        }
    }
    mask
}

fn float_rule(toks: &[Token], exempt: &[bool], out: &mut Vec<RawFinding>) {
    for (k, t) in toks.iter().enumerate() {
        if exempt[k] {
            continue;
        }
        let hit = match t.kind {
            TokKind::Float => Some("float literal"),
            TokKind::Ident if t.text == "f32" || t.text == "f64" => Some("float type"),
            _ => None,
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                line: t.line,
                rule: Rule::Float,
                message: format!("{what} `{}` (Q32 fixed-point is the house arithmetic)", t.text),
            });
        }
    }
}

fn default_hash_rule(toks: &[Token], exempt: &[bool], in_use: &[bool], out: &mut Vec<RawFinding>) {
    for (k, t) in toks.iter().enumerate() {
        if exempt[k] || in_use[k] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "RandomState" {
            out.push(RawFinding {
                line: t.line,
                rule: Rule::DefaultHash,
                message: "explicit `RandomState` (per-process random hash seeds)".into(),
            });
            continue;
        }
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        if !has_explicit_hasher(toks, k) {
            out.push(RawFinding {
                line: t.line,
                rule: Rule::DefaultHash,
                message: format!(
                    "`{}` with default `RandomState` (use `eventq::hash::FastBuildHasher` \
                     or a `BTreeMap`/`BTreeSet`)",
                    t.text
                ),
            });
        }
    }
}

/// Does the `HashMap`/`HashSet` at token `k` name its hasher?
fn has_explicit_hasher(toks: &[Token], k: usize) -> bool {
    let needed_commas = if toks[k].text == "HashMap" { 2 } else { 1 };
    let mut j = k + 1;
    // Turbofish: `HashMap::<K, V, H>::new`.
    if j + 1 < toks.len() && toks[j].text == "::" && toks[j + 1].text == "<" {
        j += 1;
    }
    if j < toks.len() && toks[j].text == "<" {
        // Count commas at angle depth 1, outside (), [] groups.
        let (mut angle, mut other, mut commas) = (0i32, 0i32, 0usize);
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                "(" | "[" => other += 1,
                ")" | "]" => other -= 1,
                "," if angle == 1 && other == 0 => commas += 1,
                _ => {}
            }
            j += 1;
        }
        return commas >= needed_commas;
    }
    if j + 1 < toks.len() && toks[j].text == "::" {
        // `HashMap::with_hasher(..)` / `with_capacity_and_hasher(..)`
        // carry the hasher in the value; `new`/`default`/
        // `with_capacity` pin `RandomState`.
        return matches!(toks[j + 1].text.as_str(), "with_hasher" | "with_capacity_and_hasher");
    }
    // Bare mention in type position without generics: treat as default.
    false
}

fn hash_iter_rule(toks: &[Token], exempt: &[bool], out: &mut Vec<RawFinding>) {
    // Identifiers declared (or assigned) in this file with a hash-map
    // type or constructor. Lexical and file-local by design: cross-file
    // aliases are caught where the map is declared.
    let mut maps: Vec<&str> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if (t.text == "HashMap" || t.text == "HashSet") && k >= 2 && t.kind == TokKind::Ident {
            // Walk back over a `std :: collections ::`-style path.
            let mut p = k - 1;
            while p >= 2 && toks[p].text == "::" && toks[p - 1].kind == TokKind::Ident {
                p -= 2;
            }
            if p >= 1 && (toks[p].text == ":" || toks[p].text == "=") {
                let cand = &toks[p - 1];
                if cand.kind == TokKind::Ident && !maps.contains(&cand.text.as_str()) {
                    maps.push(cand.text.as_str());
                }
            }
        }
    }
    if maps.is_empty() {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if exempt[k] || t.kind != TokKind::Ident || !maps.contains(&t.text.as_str()) {
            continue;
        }
        // `map.iter()` and friends.
        if k + 2 < toks.len() && toks[k + 1].text == "." {
            let m = toks[k + 2].text.as_str();
            if ITER_METHODS.contains(&m) && k + 3 < toks.len() && toks[k + 3].text == "(" {
                out.push(RawFinding {
                    line: t.line,
                    rule: Rule::HashIter,
                    message: format!(
                        "iteration over hash map `{}` via `.{m}()` (order reflects bucket \
                         layout; sort first or use a BTreeMap)",
                        t.text
                    ),
                });
                continue;
            }
        }
        // `for x in &map` / `for x in map`.
        let mut p = k;
        while p > 0 && (toks[p - 1].text == "&" || toks[p - 1].text == "mut") {
            p -= 1;
        }
        if p > 0 && toks[p - 1].text == "in" {
            out.push(RawFinding {
                line: t.line,
                rule: Rule::HashIter,
                message: format!(
                    "`for` iteration over hash map `{}` (order reflects bucket layout)",
                    t.text
                ),
            });
        }
    }
}

/// Wall-clock, ambient-randomness, and `unsafe` keyword hits.
fn ident_rules(toks: &[Token], exempt: &[bool], out: &mut Vec<RawFinding>) {
    for (k, t) in toks.iter().enumerate() {
        if exempt[k] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" => out.push(RawFinding {
                line: t.line,
                rule: Rule::WallClock,
                message: format!("wall-clock `{}` in a result-affecting crate", t.text),
            }),
            "unsafe" => out.push(RawFinding {
                line: t.line,
                rule: Rule::UnsafeBlock,
                message: "`unsafe` in a result-affecting crate".into(),
            }),
            s if AMBIENT_RAND.contains(&s) => out.push(RawFinding {
                line: t.line,
                rule: Rule::AmbientRand,
                message: format!("ambient randomness `{s}` (seeded draws only)"),
            }),
            _ => {}
        }
    }
}

/// The crate root must carry `#![forbid(unsafe_code)]`.
fn unsafe_attr_rule(toks: &[Token], out: &mut Vec<RawFinding>) {
    let mut deny_line = None;
    for w in 0..toks.len().saturating_sub(6) {
        if toks[w].text == "#"
            && toks[w + 1].text == "!"
            && toks[w + 2].text == "["
            && toks[w + 4].text == "("
            && toks[w + 5].text == "unsafe_code"
            && toks[w + 6].text == ")"
        {
            match toks[w + 3].text.as_str() {
                "forbid" => return,
                "deny" => deny_line = Some(toks[w].line),
                _ => {}
            }
        }
    }
    match deny_line {
        Some(line) => out.push(RawFinding {
            line,
            rule: Rule::UnsafeAttr,
            message: "`#![deny(unsafe_code)]`: prefer `forbid`, or annotate why deny".into(),
        }),
        None => out.push(RawFinding {
            line: 1,
            rule: Rule::UnsafeAttr,
            message: "crate root missing `#![forbid(unsafe_code)]`".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str, tier: Tier) -> Vec<RawFinding> {
        scan(&lex(src).tokens, tier, false).0
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n  fn t() { let x: f64 = 1.0; }\n}\n";
        assert!(findings(src, Tier::ResultAffecting).is_empty());
    }

    #[test]
    fn test_fns_are_exempt_but_surrounding_code_is_not() {
        let src = "#[test]\nfn t() { let x = 1.0; }\nfn hot() { let y = 2.0; }\n";
        let f = findings(src, Tier::ResultAffecting);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn reporting_tier_skips_determinism_rules() {
        let src = "fn f() { let x = 1.0; let m = std::collections::HashMap::new(); }";
        assert!(findings(src, Tier::Reporting).is_empty());
    }

    #[test]
    fn explicit_hasher_passes_default_hash() {
        let src = "struct S { q: HashMap<K, V, FastBuildHasher> }\n\
                   fn f() { let m: HashMap<(u32, u32), V, FastBuildHasher> = \
                   HashMap::with_hasher(h); }";
        assert!(findings(src, Tier::ResultAffecting).is_empty());
    }

    #[test]
    fn default_hasher_flagged_once_per_line() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let f = findings(src, Tier::ResultAffecting);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::DefaultHash);
    }

    #[test]
    fn use_statements_are_not_flagged() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<K, V, H>) {}";
        assert!(findings(src, Tier::ResultAffecting).is_empty());
    }

    #[test]
    fn hash_iter_flags_iteration_not_lookup() {
        let src = "fn f() { let m: HashMap<u32, u32, H> = HashMap::with_hasher(h);\n\
                   m.get(&1);\nfor (k, v) in &m { use_it(k, v); }\nm.keys();\n}";
        let f = findings(src, Tier::ResultAffecting);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::HashIter));
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn wall_clock_rand_and_unsafe_flagged() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); unsafe { x() } }";
        let mut rules: Vec<Rule> =
            findings(src, Tier::ResultAffecting).into_iter().map(|f| f.rule).collect();
        rules.sort();
        assert_eq!(rules, vec![Rule::WallClock, Rule::AmbientRand, Rule::UnsafeBlock]);
    }

    #[test]
    fn unsafe_attr_checked_on_crate_roots_only() {
        let src = "//! docs\nfn f() {}";
        let (f, _) = scan(&lex(src).tokens, Tier::Reporting, true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnsafeAttr);
        let (f2, _) = scan(&lex(src).tokens, Tier::Reporting, false);
        assert!(f2.is_empty());
        let good = "#![forbid(unsafe_code)]\nfn f() {}";
        let (f3, _) = scan(&lex(good).tokens, Tier::Reporting, true);
        assert!(f3.is_empty());
    }

    #[test]
    fn deny_unsafe_code_is_flagged_but_annotatable() {
        let src = "#![deny(unsafe_code)]\nfn f() {}";
        let (f, _) = scan(&lex(src).tokens, Tier::Reporting, true);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("deny"));
    }
}
