//! A minimal JSON syntax validator for the golden-hygiene pass.
//!
//! The goldens are produced by the workspace's own deterministic report
//! writers, so this is a structural check — a truncated file, a merge
//! artifact, or a hand-edit that broke the syntax must fail CI before a
//! smoke diff ever reads it. Validation only; no value tree is built.

/// Validate that `src` is one well-formed JSON document.
pub fn validate(src: &str) -> Result<(), String> {
    let mut p = Parser { b: src.as_bytes(), i: 0, line: 1 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("line {}: trailing data after the JSON document", p.line));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("line {}: {msg}", self.line)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                _ => break,
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.i += 1,
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape in string")),
                    }
                }
                b'\n' => return Err(self.err("raw newline in string")),
                _ => self.i += 1,
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("malformed number fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("malformed number exponent"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_real_report_shapes() {
        validate(r#"{"v": 1, "cells": [{"key": "a,b", "ns": 123}], "ok": true}"#).unwrap();
        validate("[1, -2.5, 3e9, null, \"s\\n\", []]").unwrap();
        validate("  {}\n").unwrap();
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        assert!(validate(r#"{"a": [1, 2"#).is_err());
        assert!(validate(r#"{"a": 1} trailing"#).is_err());
        assert!(validate("").is_err());
    }

    #[test]
    fn rejects_structural_breakage_with_line_numbers() {
        let err = validate("{\n \"a\": 1,\n \"b\" 2\n}").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(validate("{'a': 1}").is_err());
        assert!(
            validate("{\"a\": 01}").is_ok(),
            "leading zeros accepted (writers never emit them)"
        );
    }
}
