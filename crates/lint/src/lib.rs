//! `atlahs_lint` — the workspace determinism audit.
//!
//! Every result path in this workspace is contractually a pure function
//! of the simulation spec: byte-identical across re-runs, `--threads N`,
//! snapshot/restore, and branch-and-continue. That contract is pinned
//! *dynamically* by the determinism goldens; this crate enforces it
//! *statically*, so a default-hashed map or a stray float cannot ship
//! and then break bit-identity on the next rustc or platform bump.
//!
//! The audit is three passes (see docs/DETERMINISM.md):
//!
//! 1. **Rules** — a lightweight Rust lexer (`lexer`) feeds a per-crate
//!    policy engine (`policy`, `rules`): result-affecting crates may not
//!    use floats, default-hashed maps, hash-order iteration, wall
//!    clocks, ambient randomness, or `unsafe`; every non-shim crate
//!    root must carry `#![forbid(unsafe_code)]`.
//! 2. **Annotations** — legitimate sites are exempted in place via
//!    `// det-lint: allow(<rule>) — <reason>` (`annotations`), and an
//!    annotation that no longer suppresses anything is itself an error.
//! 3. **Hygiene** — every golden under `tests/goldens/` must parse as
//!    JSON and be referenced by a test or ci.sh stage, and every golden
//!    path ci.sh names must exist (`hygiene`).
//!
//! Run it as `atlahs lint` (a ci.sh stage) or via [`run`].

#![forbid(unsafe_code)]

pub mod annotations;
pub mod hygiene;
pub mod json;
pub mod lexer;
pub mod policy;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use annotations::Parsed;
use policy::Tier;

/// One audit finding. `rule` is a stable machine-readable identifier:
/// an annotatable rule name (`float`, `default-hash`, …) or one of the
/// audit's own checks (`bad-annotation`, `stale-annotation`,
/// `golden-parse`, `golden-orphan`, `golden-missing`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line; 0 for whole-file findings.
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
        } else {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        }
    }
}

/// Result of a full workspace audit.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub crates_scanned: usize,
    pub files_scanned: usize,
    /// `det-lint: allow` annotations that suppressed at least one hit.
    pub annotations_used: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Audit a single source file. Exposed so the fixture tests (and any
/// future editor integration) can lint sources without a workspace.
/// Returns the findings and the number of annotations that suppressed
/// at least one raw hit.
pub fn scan_source(
    file: &str,
    src: &str,
    tier: Tier,
    is_crate_root: bool,
) -> (Vec<Finding>, usize) {
    let lexed = lexer::lex(src);
    let (raw, exempt_ranges) = rules::scan(&lexed.tokens, tier, is_crate_root);

    let in_exempt = |line: u32| exempt_ranges.iter().any(|&(lo, hi)| line >= lo && line <= hi);

    let mut findings = Vec::new();
    let mut anns = Vec::new();
    for c in &lexed.comments {
        if in_exempt(c.line) {
            continue; // test code: rules don't run, so neither do allows
        }
        if !c.text.trim_start().starts_with("det-lint") {
            continue; // prose *mentioning* det-lint, not a directive
        }
        match annotations::parse(c) {
            Parsed::Ok(mut a) => {
                if !c.trailing {
                    // Standalone: covers the next line holding code.
                    match lexed.tokens.iter().find(|t| t.line > c.line) {
                        Some(t) => a.target_line = t.line,
                        None => a.target_line = u32::MAX, // nothing follows: stale
                    }
                }
                anns.push(a);
            }
            Parsed::Malformed(msg) => findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "bad-annotation".into(),
                message: msg,
            }),
        }
    }

    let mut used = vec![false; anns.len()];
    for f in &raw {
        let covered = anns
            .iter()
            .enumerate()
            .find(|(_, a)| a.target_line == f.line && a.rules.contains(&f.rule));
        if let Some((i, _)) = covered {
            used[i] = true;
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: f.line,
            rule: f.rule.name().into(),
            message: f.message.clone(),
        });
    }
    let mut used_count = 0usize;
    for (a, u) in anns.iter().zip(&used) {
        if *u {
            used_count += 1;
        } else {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line,
                rule: "stale-annotation".into(),
                message: format!(
                    "stale annotation: line {} no longer triggers {} — remove the allow",
                    if a.target_line == u32::MAX { a.line } else { a.target_line },
                    a.rules.iter().map(|r| r.name()).collect::<Vec<_>>().join(", "),
                ),
            });
        }
    }
    findings.sort_by_key(|x| (x.line, x.rule.clone()));
    (findings, used_count)
}

/// Audit the workspace rooted at `root` (the directory holding
/// `Cargo.toml`, `crates/`, `tests/goldens/`, and `ci.sh`).
pub fn run(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    // (workspace-relative path, source) for every scanned file, reused
    // as the reference haystack by the hygiene pass.
    let mut sources: Vec<(String, String)> = Vec::new();

    // ---- the eleven-plus crates under crates/ ----
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().unwrap_or_default().to_string_lossy().into_owned();
        let tier = policy::crate_tier(&name);
        if tier == Tier::Exempt {
            continue; // shims mirror external crates verbatim
        }
        report.crates_scanned += 1;
        scan_tree(root, &dir.join("src"), tier, &mut report, &mut sources)?;
        // Crate test dirs join the haystack (tests reference goldens)
        // but are not rule-scanned: test code is exempt by policy.
        collect_sources(root, &dir.join("tests"), &mut sources)?;
        collect_sources(root, &dir.join("benches"), &mut sources)?;
    }

    // ---- the umbrella crate at the workspace root ----
    report.crates_scanned += 1;
    scan_tree(root, &root.join("src"), policy::crate_tier("atlahs"), &mut report, &mut sources)?;
    collect_sources(root, &root.join("tests"), &mut sources)?;
    collect_sources(root, &root.join("examples"), &mut sources)?;

    // ---- golden hygiene ----
    report.findings.extend(hygiene::run(root, &sources));

    report.findings.sort_by(|a, b| {
        (a.file.clone(), a.line, a.rule.clone()).cmp(&(b.file.clone(), b.line, b.rule.clone()))
    });
    Ok(report)
}

/// Is this path a crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)?
fn is_crate_root(path: &Path) -> bool {
    let name = path.file_name().unwrap_or_default().to_string_lossy();
    let parent = path.parent().and_then(|p| p.file_name()).unwrap_or_default().to_string_lossy();
    (parent == "src" && (name == "lib.rs" || name == "main.rs")) || parent == "bin"
}

fn scan_tree(
    root: &Path,
    dir: &Path,
    tier: Tier,
    report: &mut Report,
    sources: &mut Vec<(String, String)>,
) -> io::Result<()> {
    for path in walk_rs(dir)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().into_owned();
        let src = fs::read_to_string(&path)?;
        let (mut findings, used) = scan_source(&rel, &src, tier, is_crate_root(&path));
        report.findings.append(&mut findings);
        report.annotations_used += used;
        report.files_scanned += 1;
        sources.push((rel, src));
    }
    Ok(())
}

/// Add `.rs` files under `dir` to the hygiene haystack without scanning.
fn collect_sources(root: &Path, dir: &Path, sources: &mut Vec<(String, String)>) -> io::Result<()> {
    for path in walk_rs(dir)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().into_owned();
        sources.push((rel, fs::read_to_string(&path)?));
    }
    Ok(())
}

/// All `.rs` files under `dir`, recursively, in sorted order (the audit
/// report must itself be deterministic). A missing dir is empty.
fn walk_rs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&d)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_annotation_suppresses_and_counts() {
        let src = "fn f() { let x = 1.0; // det-lint: allow(float) — pinned\n}";
        let (f, used) = scan_source("x.rs", src, Tier::ResultAffecting, false);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn standalone_annotation_covers_next_code_line() {
        let src = "fn f() {\n  // det-lint: allow(float) — pinned\n  let x = 1.0;\n}";
        let (f, used) = scan_source("x.rs", src, Tier::ResultAffecting, false);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn stale_annotation_is_a_finding() {
        let src = "fn f() {\n  // det-lint: allow(float) — nothing here\n  let x = 1;\n}";
        let (f, used) = scan_source("x.rs", src, Tier::ResultAffecting, false);
        assert_eq!(used, 0);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "stale-annotation");
    }

    #[test]
    fn annotation_covers_only_its_named_rule() {
        let src = "fn f() { let t = Instant::now(); // det-lint: allow(float) — wrong rule\n}";
        let (f, _) = scan_source("x.rs", src, Tier::ResultAffecting, false);
        let rules: Vec<&str> = f.iter().map(|x| x.rule.as_str()).collect();
        assert!(rules.contains(&"wall-clock"));
        assert!(rules.contains(&"stale-annotation"));
    }

    #[test]
    fn malformed_annotation_is_a_finding() {
        let src = "fn f() { let x = 1.0; // det-lint: allow(float)\n}";
        let (f, _) = scan_source("x.rs", src, Tier::ResultAffecting, false);
        assert!(f.iter().any(|x| x.rule == "bad-annotation"));
        // The unsuppressed float hit remains.
        assert!(f.iter().any(|x| x.rule == "float"));
    }

    #[test]
    fn annotations_inside_test_code_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n  // det-lint: allow(float) — unused\n  fn t() { let x = 1.0; }\n}";
        let (f, used) = scan_source("x.rs", src, Tier::ResultAffecting, false);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, 0);
    }
}
