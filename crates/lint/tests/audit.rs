//! End-to-end tests for the determinism audit: per-rule fixture files
//! (a trigger and a pass for every rule), annotation behaviour, the two
//! fake fixture workspaces (one clean, one with a seeded violation and
//! broken goldens), and finally the audit of this repository itself —
//! `cargo test` fails the moment a determinism hazard lands in a
//! result-affecting crate.

use std::path::{Path, PathBuf};

use atlahs_lint::policy::Tier;
use atlahs_lint::{run, scan_source};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Rules hit by a per-rule fixture under `fixtures/rules/`, scanned at
/// the result-affecting tier (where every rule is live).
fn rules_hit(name: &str) -> Vec<String> {
    let path = fixture_dir().join("rules").join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let (findings, _) = scan_source(name, &src, Tier::ResultAffecting, false);
    findings.into_iter().map(|f| f.rule).collect()
}

fn assert_pair(rule: &str, trigger: &str, pass: &str) {
    let hit = rules_hit(trigger);
    assert!(hit.iter().any(|r| r == rule), "{trigger}: expected a `{rule}` finding, got {hit:?}");
    let clean = rules_hit(pass);
    assert!(clean.is_empty(), "{pass}: expected no findings, got {clean:?}");
}

#[test]
fn float_trigger_and_pass() {
    assert_pair("float", "float_trigger.rs", "float_pass.rs");
}

#[test]
fn default_hash_trigger_and_pass() {
    assert_pair("default-hash", "default_hash_trigger.rs", "default_hash_pass.rs");
}

#[test]
fn hash_iter_trigger_and_pass() {
    assert_pair("hash-iter", "hash_iter_trigger.rs", "hash_iter_pass.rs");
}

#[test]
fn wall_clock_trigger_and_pass() {
    assert_pair("wall-clock", "wall_clock_trigger.rs", "wall_clock_pass.rs");
}

#[test]
fn ambient_rand_trigger_and_pass() {
    assert_pair("ambient-rand", "ambient_rand_trigger.rs", "ambient_rand_pass.rs");
}

#[test]
fn unsafe_trigger_and_pass() {
    assert_pair("unsafe", "unsafe_trigger.rs", "unsafe_pass.rs");
}

#[test]
fn annotated_float_is_clean_and_counted() {
    let src = std::fs::read_to_string(fixture_dir().join("rules/annotated_pass.rs")).unwrap();
    let (findings, used) = scan_source("annotated_pass.rs", &src, Tier::ResultAffecting, false);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(used, 1, "the allow must be reported as honoured");
}

#[test]
fn stale_annotation_fixture_is_flagged() {
    let hit = rules_hit("stale_annotation.rs");
    assert_eq!(hit, vec!["stale-annotation"]);
}

#[test]
fn reporting_tier_only_enforces_unsafe_hygiene() {
    // A float that would fail core is fine in a reporting crate.
    let src = std::fs::read_to_string(fixture_dir().join("rules/float_trigger.rs")).unwrap();
    let (findings, _) = scan_source("float_trigger.rs", &src, Tier::Reporting, false);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn clean_fixture_workspace_audits_clean() {
    let report = run(&fixture_dir().join("clean_ws")).expect("audit runs");
    assert!(report.is_clean(), "unexpected findings: {:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn seeded_violation_fails_the_audit() {
    // The meta-test: plant a float in a result-affecting crate plus a
    // full set of golden-hygiene defects, and the audit must catch all
    // of them. If this test fails, the gate itself has rotted.
    let report = run(&fixture_dir().join("violating_ws")).expect("audit runs");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules.contains(&"float"), "seeded float not caught: {rules:?}");
    assert!(rules.contains(&"golden-orphan"), "orphan golden not caught: {rules:?}");
    assert!(rules.contains(&"golden-parse"), "broken golden not caught: {rules:?}");
    assert!(rules.contains(&"golden-missing"), "missing golden not caught: {rules:?}");
    assert_eq!(report.findings.len(), 4, "exactly the seeded defects: {:?}", report.findings);
}

#[test]
fn audit_report_is_deterministic() {
    let root = fixture_dir().join("violating_ws");
    let a = run(&root).expect("audit runs");
    let b = run(&root).expect("audit runs");
    assert_eq!(a.findings, b.findings, "the audit must report in a stable order");
}

#[test]
fn this_workspace_is_clean() {
    // The audit of the real repository: every violation is either fixed
    // or carries a `det-lint: allow` with a recorded justification.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root).expect("audit runs");
    assert!(
        report.is_clean(),
        "determinism audit failures:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 50, "audit saw {} files — walk broken?", report.files_scanned);
}
