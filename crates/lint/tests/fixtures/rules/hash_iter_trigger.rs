// Trigger: iteration order over a hash map reflects bucket layout even
// with a deterministic hasher (layout can move across std versions).
pub fn sum(h: FastBuildHasher) -> u64 {
    let m: HashMap<u32, u64, FastBuildHasher> = HashMap::with_hasher(h);
    let mut total = 0;
    for (_k, v) in &m {
        total += v;
    }
    total
}
