// Pass: the hasher is named, so bucket layout is a pure function of it.
use std::collections::HashMap;
pub fn build(h: FastBuildHasher) -> HashMap<u32, u32, FastBuildHasher> {
    HashMap::with_hasher(h)
}
