// Pass: every draw comes from an explicitly seeded stream.
pub fn draw(rng: &mut SmallRng) -> u64 {
    rng.gen()
}
