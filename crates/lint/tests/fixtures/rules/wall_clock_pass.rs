// Pass: simulated time is threaded through explicitly.
pub fn stamp(now_ns: u64) -> u64 {
    now_ns
}
