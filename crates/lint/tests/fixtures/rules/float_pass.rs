// Pass: Q32 fixed-point, the house arithmetic.
pub fn serialization_ns(bytes: u64, gap_q32: u64) -> u64 {
    (bytes * gap_q32) >> 32
}
