// Trigger: wall-clock reads make results a function of the host.
pub fn stamp() -> std::time::Instant {
    Instant::now()
}
