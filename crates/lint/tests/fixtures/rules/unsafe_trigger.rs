// Trigger: unsafe is banned outright in result-affecting crates.
pub fn read(p: *const u64) -> u64 {
    unsafe { *p }
}
