// Pass: lookups on a hash map are fine; iteration happens on the BTreeMap.
pub fn sum(h: FastBuildHasher) -> u64 {
    let m: HashMap<u32, u64, FastBuildHasher> = HashMap::with_hasher(h);
    let ordered: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total = *m.get(&1).unwrap_or(&0);
    for (_k, v) in &ordered {
        total += v;
    }
    total
}
