// Trigger: the allow below suppresses nothing and must be reported.
pub fn add(a: u64, b: u64) -> u64 {
    // det-lint: allow(float) — left behind after a Q32 conversion
    a + b
}
