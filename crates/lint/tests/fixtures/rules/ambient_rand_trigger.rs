// Trigger: thread-local OS-seeded randomness.
pub fn draw() -> u64 {
    thread_rng().gen()
}
