// Pass: safe indexing.
pub fn read(v: &[u64], i: usize) -> u64 {
    v[i]
}
