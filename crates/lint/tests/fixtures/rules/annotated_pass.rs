// Pass: an intentional float carrying a recorded justification.
pub fn gbps_to_bytes_per_ns(gbps: u64) -> u64 {
    // det-lint: allow(float) — config-time unit fold, fixed operand order
    ((gbps as f64 / 8.0) * 4294967296.0) as u64
}
