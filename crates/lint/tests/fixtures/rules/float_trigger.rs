// Trigger: float type and literal in a result-affecting crate.
pub fn serialization_ns(bytes: u64) -> u64 {
    (bytes as f64 * 0.04) as u64
}
