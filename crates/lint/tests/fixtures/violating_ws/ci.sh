#!/usr/bin/env bash
# Gate referencing one valid golden, one broken one, and one that is gone.
set -euo pipefail
diff out.json tests/goldens/pin.json
diff broken.json tests/goldens/broken.json
diff gone.json tests/goldens/missing.json
