//! A result-affecting crate with a seeded determinism violation.

#![forbid(unsafe_code)]

/// The float below must fail the audit.
pub fn makespan(a: u64) -> u64 {
    (a as f64 * 1.5) as u64
}
