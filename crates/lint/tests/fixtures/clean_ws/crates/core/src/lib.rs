//! A result-affecting crate that honours the determinism contract.

#![forbid(unsafe_code)]

/// Pure integer arithmetic; nothing for the audit to flag.
pub fn makespan(a: u64, b: u64) -> u64 {
    a.max(b)
}
