#!/usr/bin/env bash
# Minimal gate for the clean fixture workspace.
set -euo pipefail
diff out.json tests/goldens/pin.json
