//! Seeded, deterministic link-fault injection for the packet engine.
//!
//! A fault is a *timed window* on one port: either the link is **down**
//! (every packet entering the port's queue is discarded — an ingress
//! blackhole, recovered by the retransmission machinery exactly as a
//! congestion loss would be) or **degraded** (bandwidth and latency are
//! scaled for the duration of the window, so congestion control reacts to
//! the slower link naturally).
//!
//! Windows are delivered through the engine's timer wheel as ordinary
//! events, pushed at [`reset`](crate::engine::HtsimBackend) time *before*
//! any simulation traffic. A configuration with an empty fault list
//! schedules nothing, touches no RNG stream, and is bit-identical to a
//! fault-free engine.
//!
//! Integer percentages (not floats) keep fault specs `Eq`/hashable and
//! their labels exact, which the grid layer's seeded cell keys rely on.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::topology::Topology;

/// What happens to the port inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Link down: every packet entering the port is discarded.
    Down,
    /// Degraded link: bandwidth scaled to `bw_pct`% of nominal and
    /// propagation latency to `lat_pct`% (so `lat_pct > 100` slows the
    /// wire down).
    Degrade { bw_pct: u32, lat_pct: u32 },
}

/// One timed fault window on one port.
///
/// Windows on the same port must not overlap: the end of a window
/// restores the port to its *nominal* parameters, not to any previous
/// window's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortFault {
    /// Port id in the topology's port table.
    pub port: u32,
    /// Window start (simulation ns).
    pub start_ns: u64,
    /// Window end (simulation ns); must be `> start_ns` for the fault to
    /// have any effect, and finite windows are what guarantee recovery.
    pub end_ns: u64,
    pub kind: FaultKind,
}

/// Deterministically pick up to `count` fault-candidate ports.
///
/// Core (inter-switch) ports are preferred — they are the shared tier
/// whose failures reroute or stall many flows at once; topologies without
/// a core tier (`SingleSwitch`) fall back to the switch→host delivery
/// ports. Selection is a seeded shuffle, so the same `(topology, seed)`
/// always yields the same ports regardless of grid position or thread
/// count; the result is sorted so downstream event scheduling is
/// order-independent of the shuffle.
/// Validate and normalize a fault schedule, **enforcing** the
/// windows-on-one-port-must-not-overlap contract [`PortFault`] documents.
///
/// * Windows with `end_ns <= start_ns` are dropped (they could never
///   fire; the engine already skips them).
/// * Windows are sorted by `(port, start, end)` so event scheduling is
///   independent of generation order.
/// * Overlapping or abutting windows **of the same kind** on one port
///   are merged into their union — a Markov window train or several
///   failure domains sharing a port collapse to an equivalent schedule.
/// * Overlapping windows of *different* kinds on one port are rejected:
///   the end of a window restores the port to nominal, so there is no
///   meaningful serialization of, say, a `Down` inside a `Degrade`.
pub fn normalize_windows(faults: Vec<PortFault>) -> Result<Vec<PortFault>, String> {
    let mut faults: Vec<PortFault> = faults.into_iter().filter(|f| f.end_ns > f.start_ns).collect();
    faults.sort_unstable_by_key(|f| (f.port, f.start_ns, f.end_ns));
    let mut out: Vec<PortFault> = Vec::with_capacity(faults.len());
    for f in faults {
        match out.last_mut() {
            Some(prev) if prev.port == f.port && f.start_ns <= prev.end_ns => {
                if prev.kind != f.kind {
                    return Err(format!(
                        "port {}: window [{}, {}) ({:?}) overlaps [{}, {}) ({:?}) \
                         of a different kind",
                        f.port, f.start_ns, f.end_ns, f.kind, prev.start_ns, prev.end_ns, prev.kind
                    ));
                }
                prev.end_ns = prev.end_ns.max(f.end_ns);
            }
            _ => out.push(f),
        }
    }
    Ok(out)
}

/// Deterministically pick up to `count` failure domains of the chosen
/// tier (see [`Topology::failure_domains`]): a seeded shuffle of the
/// domain indices, truncated and re-sorted — the domain-level analogue
/// of [`select_fault_ports`]. Downing every port of a returned set
/// models that switch (and for the edge tier, its rack) failing whole.
pub fn select_fault_domains(
    topo: &Topology,
    count: usize,
    core_tier: bool,
    seed: u64,
) -> Vec<Vec<u32>> {
    let domains = topo.failure_domains(core_tier);
    let mut idx: Vec<usize> = (0..domains.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(count.min(domains.len()));
    idx.sort_unstable();
    idx.into_iter().map(|i| domains[i].clone()).collect()
}

pub fn select_fault_ports(topo: &Topology, count: usize, seed: u64) -> Vec<u32> {
    let core: Vec<u32> =
        topo.ports().iter().enumerate().filter(|(_, p)| p.is_core).map(|(i, _)| i as u32).collect();
    let mut candidates = if core.is_empty() {
        topo.ports()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.to_host.is_some())
            .map(|(i, _)| i as u32)
            .collect()
    } else {
        core
    };
    let mut rng = StdRng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(count.min(candidates.len()));
    candidates.sort_unstable();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkParams, TopologyConfig};

    #[test]
    fn selection_is_deterministic_and_prefers_core() {
        let topo = Topology::build(TopologyConfig::fat_tree_oversubscribed(16, 4, 4));
        let a = select_fault_ports(&topo, 2, 7);
        let b = select_fault_ports(&topo, 2, 7);
        assert_eq!(a, b, "same seed, same ports");
        assert_eq!(a.len(), 2);
        for &p in &a {
            assert!(topo.ports()[p as usize].is_core, "fat tree faults hit the core tier");
        }
        let c = select_fault_ports(&topo, 2, 8);
        assert!(a != c || a.len() < 2, "a different seed may pick different ports");
    }

    #[test]
    fn single_switch_falls_back_to_delivery_ports() {
        let topo =
            Topology::build(TopologyConfig::SingleSwitch { hosts: 8, link: LinkParams::default() });
        let picked = select_fault_ports(&topo, 3, 1);
        assert_eq!(picked.len(), 3);
        for &p in &picked {
            assert!(topo.ports()[p as usize].to_host.is_some());
        }
    }

    fn down(port: u32, start_ns: u64, end_ns: u64) -> PortFault {
        PortFault { port, start_ns, end_ns, kind: FaultKind::Down }
    }

    #[test]
    fn normalize_sorts_merges_and_drops_empty_windows() {
        let messy = vec![
            down(3, 500, 900),
            down(1, 0, 100),
            down(3, 100, 600), // overlaps the first window on port 3
            down(3, 900, 950), // abuts the merged window
            down(1, 400, 400), // empty: dropped
            down(2, 50, 60),
        ];
        let clean = normalize_windows(messy).unwrap();
        assert_eq!(clean, vec![down(1, 0, 100), down(2, 50, 60), down(3, 100, 950)]);
        // Already-normal schedules pass through untouched.
        assert_eq!(normalize_windows(clean.clone()).unwrap(), clean);
        assert_eq!(normalize_windows(Vec::new()).unwrap(), Vec::new());
    }

    #[test]
    fn normalize_keeps_disjoint_windows_and_other_ports_apart() {
        // Same instants on different ports never merge; disjoint windows
        // on one port stay distinct.
        let faults = vec![down(1, 0, 100), down(2, 0, 100), down(1, 200, 300)];
        let clean = normalize_windows(faults).unwrap();
        assert_eq!(clean, vec![down(1, 0, 100), down(1, 200, 300), down(2, 0, 100)]);
    }

    #[test]
    fn normalize_rejects_cross_kind_overlap() {
        let degrade = PortFault {
            port: 1,
            start_ns: 50,
            end_ns: 150,
            kind: FaultKind::Degrade { bw_pct: 50, lat_pct: 200 },
        };
        let err = normalize_windows(vec![down(1, 0, 100), degrade]).unwrap_err();
        assert!(err.contains("different kind"), "{err}");
        // The same pair on different ports is fine.
        let mut ok = degrade;
        ok.port = 2;
        assert_eq!(normalize_windows(vec![down(1, 0, 100), ok]).unwrap().len(), 2);
    }

    #[test]
    fn domain_selection_is_seeded_and_clamped() {
        let topo = Topology::build(TopologyConfig::fat_tree_oversubscribed(16, 4, 4));
        let a = select_fault_domains(&topo, 1, false, 7);
        assert_eq!(a, select_fault_domains(&topo, 1, false, 7), "same seed, same domains");
        assert_eq!(a.len(), 1);
        assert!(!a[0].is_empty());
        // More domains than the tier has collapses to all of them.
        let all = select_fault_domains(&topo, 100, false, 7);
        assert_eq!(all.len(), topo.failure_domains(false).len());
    }

    #[test]
    fn count_is_clamped_to_candidates() {
        let topo =
            Topology::build(TopologyConfig::SingleSwitch { hosts: 4, link: LinkParams::default() });
        let picked = select_fault_ports(&topo, 100, 1);
        assert_eq!(picked.len(), 4, "only 4 delivery ports exist");
    }
}
