//! Seeded, deterministic link-fault injection for the packet engine.
//!
//! A fault is a *timed window* on one port: either the link is **down**
//! (every packet entering the port's queue is discarded — an ingress
//! blackhole, recovered by the retransmission machinery exactly as a
//! congestion loss would be) or **degraded** (bandwidth and latency are
//! scaled for the duration of the window, so congestion control reacts to
//! the slower link naturally).
//!
//! Windows are delivered through the engine's timer wheel as ordinary
//! events, pushed at [`reset`](crate::engine::HtsimBackend) time *before*
//! any simulation traffic. A configuration with an empty fault list
//! schedules nothing, touches no RNG stream, and is bit-identical to a
//! fault-free engine.
//!
//! Integer percentages (not floats) keep fault specs `Eq`/hashable and
//! their labels exact, which the grid layer's seeded cell keys rely on.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::topology::Topology;

/// What happens to the port inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Link down: every packet entering the port is discarded.
    Down,
    /// Degraded link: bandwidth scaled to `bw_pct`% of nominal and
    /// propagation latency to `lat_pct`% (so `lat_pct > 100` slows the
    /// wire down).
    Degrade { bw_pct: u32, lat_pct: u32 },
}

/// One timed fault window on one port.
///
/// Windows on the same port must not overlap: the end of a window
/// restores the port to its *nominal* parameters, not to any previous
/// window's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortFault {
    /// Port id in the topology's port table.
    pub port: u32,
    /// Window start (simulation ns).
    pub start_ns: u64,
    /// Window end (simulation ns); must be `> start_ns` for the fault to
    /// have any effect, and finite windows are what guarantee recovery.
    pub end_ns: u64,
    pub kind: FaultKind,
}

/// Deterministically pick up to `count` fault-candidate ports.
///
/// Core (inter-switch) ports are preferred — they are the shared tier
/// whose failures reroute or stall many flows at once; topologies without
/// a core tier (`SingleSwitch`) fall back to the switch→host delivery
/// ports. Selection is a seeded shuffle, so the same `(topology, seed)`
/// always yields the same ports regardless of grid position or thread
/// count; the result is sorted so downstream event scheduling is
/// order-independent of the shuffle.
pub fn select_fault_ports(topo: &Topology, count: usize, seed: u64) -> Vec<u32> {
    let core: Vec<u32> =
        topo.ports().iter().enumerate().filter(|(_, p)| p.is_core).map(|(i, _)| i as u32).collect();
    let mut candidates = if core.is_empty() {
        topo.ports()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.to_host.is_some())
            .map(|(i, _)| i as u32)
            .collect()
    } else {
        core
    };
    let mut rng = StdRng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(count.min(candidates.len()));
    candidates.sort_unstable();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkParams, TopologyConfig};

    #[test]
    fn selection_is_deterministic_and_prefers_core() {
        let topo = Topology::build(TopologyConfig::fat_tree_oversubscribed(16, 4, 4));
        let a = select_fault_ports(&topo, 2, 7);
        let b = select_fault_ports(&topo, 2, 7);
        assert_eq!(a, b, "same seed, same ports");
        assert_eq!(a.len(), 2);
        for &p in &a {
            assert!(topo.ports()[p as usize].is_core, "fat tree faults hit the core tier");
        }
        let c = select_fault_ports(&topo, 2, 8);
        assert!(a != c || a.len() < 2, "a different seed may pick different ports");
    }

    #[test]
    fn single_switch_falls_back_to_delivery_ports() {
        let topo =
            Topology::build(TopologyConfig::SingleSwitch { hosts: 8, link: LinkParams::default() });
        let picked = select_fault_ports(&topo, 3, 1);
        assert_eq!(picked.len(), 3);
        for &p in &picked {
            assert!(topo.ports()[p as usize].to_host.is_some());
        }
    }

    #[test]
    fn count_is_clamped_to_candidates() {
        let topo =
            Topology::build(TopologyConfig::SingleSwitch { hosts: 4, link: LinkParams::default() });
        let picked = select_fault_ports(&topo, 100, 1);
        assert_eq!(picked.len(), 4, "only 4 delivery ports exist");
    }
}
