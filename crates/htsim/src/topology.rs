//! Network topologies: port layout and routing.
//!
//! The packet engine sees a flat array of unidirectional **ports** (output
//! queues). A topology assigns ports to host NICs and switch interfaces and
//! computes per-flow paths (lists of port ids) with ECMP hashing across
//! equal-cost core links.
//!
//! Routes are **interned**: [`Topology::route_ref`] memoizes each distinct
//! `(src, dst, ECMP bucket)` path into one shared flat arena and hands out
//! a [`PathRef`] (offset + length). The engine stores `PathRef`s in flows
//! and resolves per-hop next ports with pure index arithmetic — no
//! per-packet or per-hop allocation, which is what makes per-packet
//! spraying (a route decision on *every hop of every packet*) affordable.

use std::collections::HashMap;

use atlahs_eventq::hash::FastBuildHasher;

/// Physical parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Line rate in Gbit/s.
    // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
    pub gbps: f64,
    /// Propagation latency in ns.
    pub latency_ns: u64,
}

impl LinkParams {
    /// Rate in bytes per nanosecond.
    // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
    pub fn bytes_per_ns(&self) -> f64 {
        // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
        self.gbps / 8.0
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        // 100 Gb/s, 500 ns per hop.
        // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
        LinkParams { gbps: 100.0, latency_ns: 500 }
    }
}

/// Topology selection.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyConfig {
    /// All hosts behind one output-queued crossbar switch.
    SingleSwitch { hosts: usize, link: LinkParams },
    /// Two-level fat tree: ToR switches with `hosts_per_tor` downlinks and
    /// `uplinks_per_tor` core uplinks. The oversubscription ratio is
    /// `hosts_per_tor / uplinks_per_tor` (1 = fully provisioned).
    FatTree2L {
        hosts: usize,
        hosts_per_tor: usize,
        uplinks_per_tor: usize,
        edge: LinkParams,
        core: LinkParams,
    },
    /// Single-level Dragonfly (the Alps/Slingshot class): `groups` groups
    /// of `routers_per_group` routers, `hosts_per_router` hosts each.
    /// Routers within a group are all-to-all connected; each router owns
    /// `global_per_router` global links, distributed round-robin over the
    /// other groups. Minimal routing is `host → router [→ local] [→
    /// global] [→ local] → host`.
    Dragonfly {
        groups: usize,
        routers_per_group: usize,
        hosts_per_router: usize,
        /// Global links per router (≥1; the canonical balanced dragonfly
        /// has `groups - 1` globals spread over a group's routers).
        global_per_router: usize,
        edge: LinkParams,
        local: LinkParams,
        global: LinkParams,
    },
}

impl TopologyConfig {
    /// A fully provisioned fat tree for `hosts` hosts.
    pub fn fat_tree(hosts: usize, hosts_per_tor: usize) -> Self {
        TopologyConfig::FatTree2L {
            hosts,
            hosts_per_tor,
            uplinks_per_tor: hosts_per_tor,
            edge: LinkParams::default(),
            core: LinkParams::default(),
        }
    }

    /// A fat tree with `ratio:1` oversubscription between ToR and core.
    pub fn fat_tree_oversubscribed(hosts: usize, hosts_per_tor: usize, ratio: usize) -> Self {
        assert!(ratio >= 1 && hosts_per_tor % ratio == 0, "ratio must divide hosts_per_tor");
        TopologyConfig::FatTree2L {
            hosts,
            hosts_per_tor,
            uplinks_per_tor: hosts_per_tor / ratio,
            edge: LinkParams::default(),
            core: LinkParams::default(),
        }
    }

    /// A balanced dragonfly: every router carries enough global links for
    /// each group to reach every other group directly.
    pub fn dragonfly(groups: usize, routers_per_group: usize, hosts_per_router: usize) -> Self {
        let global_per_router = (groups - 1).div_ceil(routers_per_group).max(1);
        TopologyConfig::Dragonfly {
            groups,
            routers_per_group,
            hosts_per_router,
            global_per_router,
            edge: LinkParams::default(),
            local: LinkParams::default(),
            // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
            global: LinkParams { gbps: 100.0, latency_ns: 1_500 }, // long fibres
        }
    }

    pub fn num_hosts(&self) -> usize {
        match *self {
            TopologyConfig::SingleSwitch { hosts, .. } => hosts,
            TopologyConfig::FatTree2L { hosts, .. } => hosts,
            TopologyConfig::Dragonfly { groups, routers_per_group, hosts_per_router, .. } => {
                groups * routers_per_group * hosts_per_router
            }
        }
    }
}

/// Description of one port for the engine.
#[derive(Debug, Clone, Copy)]
pub struct PortSpec {
    pub link: LinkParams,
    /// Host id this port delivers to, if it is the last hop of a path.
    pub to_host: Option<u32>,
    /// True for ToR→core and core→ToR ports (used in statistics).
    pub is_core: bool,
}

/// A route interned in the topology's path arena: `len` port ids starting
/// at `off` in one shared backing vector. Resolve with [`Topology::path`].
///
/// The empty reference (`len == 0`) stands for "no fabric traversal"
/// (intra-node flows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathRef {
    off: u32,
    len: u16,
}

impl PathRef {
    /// The empty path (local, non-fabric flows).
    pub const EMPTY: PathRef = PathRef { off: 0, len: 0 };

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Route-cache map for the packed `(src, dst, bucket)` key: the key is a
/// single well-mixed `u64`, so SipHash's per-lookup cost (this sits on
/// the per-hop spray path) buys nothing. Uses the deterministic
/// multiplicative hasher shared with the message-level matcher
/// (`atlahs_eventq::hash`); the bucket layout never influences routing —
/// path selection is `ecmp % degree`, the map is lookup-only.
type RouteCache = HashMap<u64, PathRef, FastBuildHasher>;

/// Dragonfly bookkeeping: geometry plus the global-link wiring map.
#[derive(Debug, Clone)]
struct DragonflyMap {
    routers_per_group: usize,
    hosts_per_router: usize,
    local_base: usize,
    /// `links[g][tg]` = global links from group `g` to group `tg`, each as
    /// `(source router, port id, landing router)`.
    links: Vec<Vec<Vec<(u32, u32, u32)>>>,
}

/// A built topology: port table plus routing.
#[derive(Debug, Clone)]
pub struct Topology {
    config: TopologyConfig,
    ports: Vec<PortSpec>,
    hosts: usize,
    // FatTree2L bookkeeping
    hosts_per_tor: usize,
    uplinks: usize,
    tors: usize,
    // Dragonfly bookkeeping
    df: Option<DragonflyMap>,
    /// Flat storage for every interned route (see [`PathRef`]).
    arena: Vec<u32>,
    /// `(src, dst, ECMP bucket)` → interned route.
    cache: RouteCache,
}

impl Topology {
    pub fn build(config: TopologyConfig) -> Self {
        match config {
            TopologyConfig::SingleSwitch { hosts, link } => {
                let mut ports = Vec::with_capacity(2 * hosts);
                // 0..hosts: host h -> switch
                for _ in 0..hosts {
                    ports.push(PortSpec { link, to_host: None, is_core: false });
                }
                // hosts..2*hosts: switch -> host h
                for h in 0..hosts {
                    ports.push(PortSpec { link, to_host: Some(h as u32), is_core: false });
                }
                Topology {
                    config: TopologyConfig::SingleSwitch { hosts, link },
                    ports,
                    hosts,
                    hosts_per_tor: hosts,
                    uplinks: 0,
                    tors: 1,
                    df: None,
                    arena: Vec::new(),
                    cache: RouteCache::default(),
                }
            }
            TopologyConfig::FatTree2L { hosts, hosts_per_tor, uplinks_per_tor, edge, core } => {
                assert!(hosts_per_tor > 0 && uplinks_per_tor > 0);
                let tors = hosts.div_ceil(hosts_per_tor);
                let mut ports = Vec::new();
                // 0..H: host h -> its ToR
                for _ in 0..hosts {
                    ports.push(PortSpec { link: edge, to_host: None, is_core: false });
                }
                // H..2H: ToR -> host h
                for h in 0..hosts {
                    ports.push(PortSpec { link: edge, to_host: Some(h as u32), is_core: false });
                }
                // 2H..2H+T*U: tor t uplink u -> core u
                for _ in 0..tors * uplinks_per_tor {
                    ports.push(PortSpec { link: core, to_host: None, is_core: true });
                }
                // 2H+T*U..2H+2*T*U: core u downlink -> tor t
                for _ in 0..tors * uplinks_per_tor {
                    ports.push(PortSpec { link: core, to_host: None, is_core: true });
                }
                Topology {
                    config: TopologyConfig::FatTree2L {
                        hosts,
                        hosts_per_tor,
                        uplinks_per_tor,
                        edge,
                        core,
                    },
                    ports,
                    hosts,
                    hosts_per_tor,
                    uplinks: uplinks_per_tor,
                    tors,
                    df: None,
                    arena: Vec::new(),
                    cache: RouteCache::default(),
                }
            }
            TopologyConfig::Dragonfly {
                groups,
                routers_per_group: r,
                hosts_per_router: h,
                global_per_router: gl,
                edge,
                local,
                global,
            } => {
                assert!(groups >= 2 && r > 0 && h > 0 && gl > 0);
                assert!(
                    r * gl >= groups - 1,
                    "each group needs ≥ groups-1 global links to reach every peer \
                     (have {} = {r} routers x {gl} globals, need {})",
                    r * gl,
                    groups - 1
                );
                let hosts = groups * r * h;
                let mut ports = Vec::new();
                // [0, N): host -> its router.
                for _ in 0..hosts {
                    ports.push(PortSpec { link: edge, to_host: None, is_core: false });
                }
                // [N, 2N): router -> host.
                for hh in 0..hosts {
                    ports.push(PortSpec { link: edge, to_host: Some(hh as u32), is_core: false });
                }
                // Local all-to-all within each group: (g, a, b) with a != b.
                let local_base = ports.len();
                for _ in 0..groups * r * (r - 1) {
                    ports.push(PortSpec { link: local, to_host: None, is_core: false });
                }
                // Global links: router (g, rr) owns `gl` of them.
                let global_base = ports.len();
                for _ in 0..groups * r * gl {
                    ports.push(PortSpec { link: global, to_host: None, is_core: true });
                }
                // Wire globals: link j of group g targets the j-th other
                // group in cyclic order, landing on a spread-out router.
                let mut links = vec![vec![Vec::new(); groups]; groups];
                for (g, from_g) in links.iter_mut().enumerate() {
                    for j in 0..r * gl {
                        let src_router = (j / gl) as u32;
                        let k = j % gl;
                        let tg = (g + 1 + (j % (groups - 1))) % groups;
                        let dst_router = ((g + j / (groups - 1)) % r) as u32;
                        let port = (global_base + (g * r + src_router as usize) * gl + k) as u32;
                        from_g[tg].push((src_router, port, dst_router));
                    }
                }
                Topology {
                    config: TopologyConfig::Dragonfly {
                        groups,
                        routers_per_group: r,
                        hosts_per_router: h,
                        global_per_router: gl,
                        edge,
                        local,
                        global,
                    },
                    ports,
                    hosts,
                    hosts_per_tor: r * h, // hosts per group (for stats naming)
                    uplinks: gl,
                    tors: groups,
                    df: Some(DragonflyMap {
                        routers_per_group: r,
                        hosts_per_router: h,
                        local_base,
                        links,
                    }),
                    arena: Vec::new(),
                    cache: RouteCache::default(),
                }
            }
        }
    }

    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    pub fn num_hosts(&self) -> usize {
        self.hosts
    }

    pub fn ports(&self) -> &[PortSpec] {
        &self.ports
    }

    /// Correlated failure domains: for each switch of the chosen tier,
    /// the set of ports that stop moving packets when that switch dies —
    /// the ports the switch owns (it can no longer forward) plus every
    /// port whose egress feeds *into* it (traffic heading to a dead
    /// switch is blackholed on entry). Downing a whole domain in one
    /// window is how the fault layer models rack- and switch-level
    /// failures.
    ///
    /// `core_tier == false` enumerates edge switches (fat-tree ToRs with
    /// their host links — "whole rack"; dragonfly routers; the single
    /// switch). `core_tier == true` enumerates the core tier (fat-tree
    /// core switches); topologies without a distinct core tier
    /// (`SingleSwitch`, dragonfly's single router level) fall back to
    /// the edge domains, mirroring [`crate::fault::select_fault_ports`]'s
    /// fallback. Every domain is a sorted, non-empty port set; domain
    /// order is the tier's switch order, so it is stable under any seed.
    pub fn failure_domains(&self, core_tier: bool) -> Vec<Vec<u32>> {
        let mut domains: Vec<Vec<u32>> = match &self.config {
            TopologyConfig::SingleSwitch { hosts, .. } => {
                vec![(0..2 * *hosts as u32).collect()]
            }
            TopologyConfig::FatTree2L { hosts, .. } => {
                let (h, t, u) = (*hosts, self.tors, self.uplinks);
                if core_tier {
                    // Core switch c: every ToR's uplink `c` feeds it; it
                    // owns downlink `c*T + t` to each ToR.
                    (0..u)
                        .map(|c| {
                            let mut d: Vec<u32> = (0..t)
                                .map(|tor| (2 * h + tor * u + c) as u32)
                                .chain((0..t).map(|tor| (2 * h + t * u + c * t + tor) as u32))
                                .collect();
                            d.sort_unstable();
                            d
                        })
                        .collect()
                } else {
                    // Rack tor: both edge directions of its hosts, its
                    // uplinks, and every core downlink landing on it.
                    (0..t)
                        .map(|tor| {
                            let mut d: Vec<u32> = (0..h)
                                .filter(|&host| self.tor_of(host as u32) == tor)
                                .flat_map(|host| [host as u32, (h + host) as u32])
                                .collect();
                            d.extend((0..u).map(|up| (2 * h + tor * u + up) as u32));
                            d.extend((0..u).map(|c| (2 * h + t * u + c * t + tor) as u32));
                            d.sort_unstable();
                            d
                        })
                        .collect()
                }
            }
            TopologyConfig::Dragonfly { groups, .. } => {
                // One router level: rack and core tiers coincide. Domain
                // for router (g, rr): its hosts' edge ports (both
                // directions), locals it owns and locals into it, globals
                // it owns and globals landing on it.
                let df = self.df.as_ref().expect("built dragonfly");
                let (r, hpr) = (df.routers_per_group, df.hosts_per_router);
                let local_port = |g: usize, a: usize, b: usize| -> u32 {
                    let slot = if b < a { b } else { b - 1 };
                    (df.local_base + (g * r + a) * (r - 1) + slot) as u32
                };
                (0..*groups)
                    .flat_map(|g| (0..r).map(move |rr| (g, rr)))
                    .map(|(g, rr)| {
                        let router = g * r + rr;
                        let mut d: Vec<u32> = (router * hpr..(router + 1) * hpr)
                            .flat_map(|host| [host as u32, (self.hosts + host) as u32])
                            .collect();
                        for b in (0..r).filter(|&b| b != rr) {
                            d.push(local_port(g, rr, b));
                            d.push(local_port(g, b, rr));
                        }
                        // Globals the router owns.
                        let global_base = df.local_base + *groups * r * (r - 1);
                        d.extend(
                            (0..self.uplinks)
                                .map(|k| (global_base + router * self.uplinks + k) as u32),
                        );
                        // Globals landing on it: scan the wiring map.
                        for (g2, from) in df.links.iter().enumerate() {
                            if g2 == g {
                                continue;
                            }
                            for &(_, port, dst_router) in &from[g] {
                                if dst_router as usize == rr {
                                    d.push(port);
                                }
                            }
                        }
                        d.sort_unstable();
                        d.dedup();
                        d
                    })
                    .collect()
            }
        };
        domains.retain(|d| !d.is_empty());
        domains
    }

    fn tor_of(&self, host: u32) -> usize {
        host as usize / self.hosts_per_tor
    }

    /// Number of equal-cost routes between `src` and `dst`: every ECMP
    /// selector collapses to a *bucket* `ecmp % degree`, and all selectors
    /// in one bucket share one path.
    fn ecmp_degree(&self, src: u32, dst: u32) -> u64 {
        match self.config {
            TopologyConfig::SingleSwitch { .. } => 1,
            TopologyConfig::FatTree2L { .. } => {
                if self.tor_of(src) == self.tor_of(dst) {
                    1
                } else {
                    self.uplinks as u64
                }
            }
            TopologyConfig::Dragonfly { .. } => {
                let df = self.df.as_ref().expect("built dragonfly");
                let gh = df.routers_per_group * df.hosts_per_router;
                let (gs, gd) = (src as usize / gh, dst as usize / gh);
                if gs == gd {
                    1
                } else {
                    df.links[gs][gd].len() as u64
                }
            }
        }
    }

    /// Append the path for `src → dst` under selector `ecmp` onto `out`.
    fn compute_route_into(&self, src: u32, dst: u32, ecmp: u64, out: &mut Vec<u32>) {
        assert_ne!(src, dst, "no self-routing: intra-node traffic is a calc");
        match self.config {
            TopologyConfig::SingleSwitch { hosts, .. } => {
                out.extend([src, (hosts + dst as usize) as u32]);
            }
            TopologyConfig::FatTree2L { hosts, .. } => {
                let h = hosts;
                let ts = self.tor_of(src);
                let td = self.tor_of(dst);
                if ts == td {
                    out.extend([src, (h + dst as usize) as u32]);
                } else {
                    // ECMP over the uplinks (one per core switch).
                    let u = (ecmp % self.uplinks as u64) as usize;
                    let tor_up = 2 * h + ts * self.uplinks + u;
                    let core_down = 2 * h + self.tors * self.uplinks + u * self.tors + td;
                    out.extend([src, tor_up as u32, core_down as u32, (h + dst as usize) as u32]);
                }
            }
            TopologyConfig::Dragonfly { .. } => {
                let df = self.df.as_ref().expect("built dragonfly");
                let r = df.routers_per_group;
                let h = df.hosts_per_router;
                let router_of = |host: u32| host as usize / h;
                let group_of = |host: u32| host as usize / (r * h);
                // Port id of the local link router a -> router b in group g.
                let local_port = |g: usize, a: usize, b: usize| -> u32 {
                    debug_assert_ne!(a, b);
                    let slot = if b < a { b } else { b - 1 };
                    (df.local_base + (g * r + a) * (r - 1) + slot) as u32
                };
                let down = (self.hosts + dst as usize) as u32;
                let gs = group_of(src);
                let gd = group_of(dst);
                let rs = router_of(src) % r;
                let rd = router_of(dst) % r;
                out.push(src);
                if gs == gd {
                    if rs != rd {
                        out.push(local_port(gs, rs, rd));
                    }
                } else {
                    // Minimal routing, ECMP over the direct global links.
                    let options = &df.links[gs][gd];
                    let (ra, gport, rb) = options[(ecmp % options.len() as u64) as usize];
                    if rs != ra as usize {
                        out.push(local_port(gs, rs, ra as usize));
                    }
                    out.push(gport);
                    if rb as usize != rd {
                        out.push(local_port(gd, rb as usize, rd));
                    }
                }
                out.push(down);
            }
        }
    }

    /// The path (list of port ids) for a flow from `src` to `dst`, using
    /// `ecmp` to pick among equal-cost core links.
    ///
    /// Allocates a fresh vector per call; the engine's hot paths use the
    /// interning [`Topology::route_ref`] instead.
    pub fn route(&self, src: u32, dst: u32, ecmp: u64) -> Vec<u32> {
        let mut out = Vec::with_capacity(5);
        self.compute_route_into(src, dst, ecmp, &mut out);
        out
    }

    /// The interned path for `src → dst` under selector `ecmp`: computed
    /// at most once per `(src, dst, ECMP bucket)`, then served from the
    /// arena as a [`PathRef`] — no allocation on cache hits.
    pub fn route_ref(&mut self, src: u32, dst: u32, ecmp: u64) -> PathRef {
        let bucket = ecmp % self.ecmp_degree(src, dst);
        debug_assert!(self.hosts <= 1 << 24 && bucket < 1 << 16, "route key packing");
        let key = (src as u64) << 40 | (dst as u64) << 16 | bucket;
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let mut arena = std::mem::take(&mut self.arena);
        let off = arena.len();
        self.compute_route_into(src, dst, bucket, &mut arena);
        let r = PathRef { off: off as u32, len: (arena.len() - off) as u16 };
        self.arena = arena;
        self.cache.insert(key, r);
        r
    }

    /// Resolve an interned route to its port ids.
    #[inline]
    pub fn path(&self, r: PathRef) -> &[u32] {
        &self.arena[r.off as usize..r.off as usize + r.len as usize]
    }

    /// Base round-trip estimate for a path and its reverse: propagation plus
    /// one MTU serialization per forward hop and one header per reverse hop.
    pub fn base_rtt(&self, path: &[u32], rpath: &[u32], mtu: u32) -> u64 {
        // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
        let fwd: f64 = path
            .iter()
            .map(|&p| {
                let l = self.ports[p as usize].link;
                // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
                l.latency_ns as f64 + mtu as f64 / l.bytes_per_ns()
            })
            .sum();
        // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
        let rev: f64 = rpath
            .iter()
            .map(|&p| {
                let l = self.ports[p as usize].link;
                // det-lint: allow(float) — link-rate Gbps parameter, folded to integer ns once at build time
                l.latency_ns as f64 + 64.0 / l.bytes_per_ns()
            })
            .sum();
        (fwd + rev).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_failure_domains_cover_both_tiers() {
        // 16 hosts, 4 per ToR, 4:1 oversubscribed ⇒ 4 ToRs × 1 uplink.
        let t = Topology::build(TopologyConfig::fat_tree_oversubscribed(16, 4, 4));
        let racks = t.failure_domains(false);
        assert_eq!(racks.len(), 4, "one rack domain per ToR");
        for (tor, d) in racks.iter().enumerate() {
            // 4 hosts × 2 edge directions + 1 uplink + 1 core downlink.
            assert_eq!(d.len(), 10, "rack {tor}: {d:?}");
            assert!(d.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            for h in 4 * tor..4 * tor + 4 {
                assert!(d.contains(&(h as u32)), "host→ToR port of host {h}");
                assert!(d.contains(&((16 + h) as u32)), "ToR→host port of host {h}");
            }
        }
        // Rack domains partition the port table: every port forwards
        // through exactly one edge switch.
        let mut all: Vec<u32> = racks.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..t.ports().len() as u32).collect::<Vec<_>>());

        let cores = t.failure_domains(true);
        assert_eq!(cores.len(), 1, "4:1 oversubscription leaves one core switch");
        assert_eq!(cores[0].len(), 8, "4 uplinks + 4 downlinks");
        assert!(cores[0].iter().all(|&p| t.ports()[p as usize].is_core));
    }

    #[test]
    fn single_switch_and_dragonfly_domains_fall_back_to_one_tier() {
        let t =
            Topology::build(TopologyConfig::SingleSwitch { hosts: 4, link: LinkParams::default() });
        for tier in [false, true] {
            let d = t.failure_domains(tier);
            assert_eq!(d.len(), 1, "one switch, one domain");
            assert_eq!(d[0], (0..8).collect::<Vec<u32>>());
        }

        let t = Topology::build(TopologyConfig::dragonfly(3, 2, 2));
        let d = t.failure_domains(false);
        assert_eq!(d.len(), 6, "one domain per router");
        assert_eq!(d, t.failure_domains(true), "a single router level has no separate core tier");
        // Every port is in some domain (owned by or feeding a router),
        // and each domain holds its router's host edge ports.
        let covered: std::collections::HashSet<u32> = d.iter().flatten().copied().collect();
        assert_eq!(covered.len(), t.ports().len());
        for (router, dom) in d.iter().enumerate() {
            for h in 2 * router..2 * router + 2 {
                assert!(dom.contains(&(h as u32)) && dom.contains(&((12 + h) as u32)));
            }
            assert!(dom.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        }
    }

    #[test]
    fn single_switch_routes() {
        let t =
            Topology::build(TopologyConfig::SingleSwitch { hosts: 4, link: LinkParams::default() });
        assert_eq!(t.route(0, 3, 0), vec![0, 4 + 3]);
        assert_eq!(t.ports().len(), 8);
        assert_eq!(t.ports()[7].to_host, Some(3));
    }

    #[test]
    fn fat_tree_intra_tor_short_path() {
        let t = Topology::build(TopologyConfig::fat_tree(16, 4));
        // hosts 0 and 3 share ToR 0: two hops.
        assert_eq!(t.route(0, 3, 0).len(), 2);
        // hosts 0 and 5 are on different ToRs: four hops.
        assert_eq!(t.route(0, 5, 0).len(), 4);
    }

    #[test]
    fn fat_tree_ecmp_spreads_over_uplinks() {
        let t = Topology::build(TopologyConfig::fat_tree(16, 4));
        let paths: std::collections::HashSet<Vec<u32>> =
            (0..16).map(|e| t.route(0, 5, e)).collect();
        assert_eq!(paths.len(), 4, "4 uplinks -> 4 distinct paths");
    }

    #[test]
    fn oversubscription_reduces_uplinks() {
        let t = Topology::build(TopologyConfig::fat_tree_oversubscribed(16, 8, 8));
        let paths: std::collections::HashSet<Vec<u32>> =
            (0..16).map(|e| t.route(0, 9, e)).collect();
        assert_eq!(paths.len(), 1, "8:1 oversubscription leaves one uplink");
        // Core ports flagged for statistics.
        let cores = t.ports().iter().filter(|p| p.is_core).count();
        assert_eq!(cores, 2 * 2); // 2 tors x 1 uplink, both directions
    }

    #[test]
    fn last_hop_delivers_to_destination() {
        let t = Topology::build(TopologyConfig::fat_tree(16, 4));
        for (src, dst) in [(0u32, 5u32), (7, 2), (15, 0)] {
            let path = t.route(src, dst, 3);
            let last = *path.last().unwrap();
            assert_eq!(t.ports()[last as usize].to_host, Some(dst));
        }
    }

    #[test]
    fn base_rtt_scales_with_hops() {
        let t = Topology::build(TopologyConfig::fat_tree(16, 4));
        let near = t.route(0, 1, 0);
        let far = t.route(0, 5, 0);
        let rtt_near = t.base_rtt(&near, &near, 4096);
        let rtt_far = t.base_rtt(&far, &far, 4096);
        assert!(rtt_far > rtt_near);
    }

    #[test]
    #[should_panic(expected = "no self-routing")]
    fn self_route_rejected() {
        let t = Topology::build(TopologyConfig::fat_tree(16, 4));
        t.route(3, 3, 0);
    }

    // ---- Route interning --------------------------------------------

    #[test]
    fn route_ref_agrees_with_route_everywhere() {
        // Every (src, dst, ecmp) must resolve to the identical path via
        // the interned arena and the allocating compatibility API, across
        // all three topology families.
        let topos = [
            Topology::build(TopologyConfig::SingleSwitch { hosts: 6, link: LinkParams::default() }),
            Topology::build(TopologyConfig::fat_tree(16, 4)),
            Topology::build(TopologyConfig::fat_tree_oversubscribed(16, 4, 2)),
            Topology::build(TopologyConfig::dragonfly(3, 4, 2)),
        ];
        for mut t in topos {
            let n = t.num_hosts() as u32;
            for src in 0..n {
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    for ecmp in [0u64, 1, 7, 0xDEAD_BEEF] {
                        let owned = t.route(src, dst, ecmp);
                        let r = t.route_ref(src, dst, ecmp);
                        assert_eq!(t.path(r), &owned[..], "{src}->{dst} ecmp={ecmp}");
                    }
                }
            }
        }
    }

    #[test]
    fn route_ref_hits_cache_within_a_bucket() {
        let mut t = Topology::build(TopologyConfig::fat_tree(16, 4));
        // 4 uplinks: selectors congruent mod 4 share a bucket and must
        // return the same interned reference without growing the arena.
        let a = t.route_ref(0, 5, 3);
        let arena_len = t.path(a).as_ptr();
        let b = t.route_ref(0, 5, 7);
        assert_eq!(a, b, "same ECMP bucket must intern once");
        assert_eq!(t.path(b).as_ptr(), arena_len);
        let c = t.route_ref(0, 5, 4);
        assert_ne!(t.path(a), t.path(c), "different bucket, different uplink");
    }

    #[test]
    fn empty_pathref_is_empty() {
        let t = Topology::build(TopologyConfig::fat_tree(16, 4));
        assert!(PathRef::EMPTY.is_empty());
        assert_eq!(PathRef::EMPTY.len(), 0);
        assert_eq!(t.path(PathRef::EMPTY), &[] as &[u32]);
    }

    // ---- Dragonfly --------------------------------------------------

    fn df() -> Topology {
        // 4 groups x 3 routers x 2 hosts = 24 hosts; gl = ceil(3/3)=1.
        Topology::build(TopologyConfig::dragonfly(4, 3, 2))
    }

    #[test]
    fn dragonfly_geometry() {
        let t = df();
        assert_eq!(t.num_hosts(), 24);
        // ports: 2*24 edge + 4*3*2 local + 4*3*1 global.
        assert_eq!(t.ports().len(), 48 + 24 + 12);
        let globals = t.ports().iter().filter(|p| p.is_core).count();
        assert_eq!(globals, 12);
    }

    #[test]
    fn dragonfly_paths_terminate_at_destination() {
        let t = df();
        for (s, d) in [(0u32, 1u32), (0, 2), (0, 5), (0, 7), (0, 23), (13, 2), (22, 6)] {
            let path = t.route(s, d, 3);
            let last = *path.last().unwrap();
            assert_eq!(t.ports()[last as usize].to_host, Some(d), "{s}->{d}: {path:?}");
            assert!(path.len() <= 5, "minimal route is ≤5 hops: {path:?}");
        }
    }

    #[test]
    fn dragonfly_same_router_is_two_hops() {
        let t = df();
        // hosts 0 and 1 share router 0 of group 0.
        assert_eq!(t.route(0, 1, 0).len(), 2);
        // hosts 0 and 2 are different routers, same group: 3 hops.
        assert_eq!(t.route(0, 2, 0).len(), 3);
        // cross-group: at least one global hop.
        let cross = t.route(0, 23, 0);
        assert!(cross.len() >= 3);
        assert!(
            cross.iter().any(|&p| t.ports()[p as usize].is_core),
            "cross-group path must take a global link: {cross:?}"
        );
    }

    #[test]
    fn dragonfly_intra_group_avoids_globals() {
        let t = df();
        for d in 1..6u32 {
            let path = t.route(0, d, 7);
            assert!(
                path.iter().all(|&p| !t.ports()[p as usize].is_core),
                "intra-group traffic must stay local: 0->{d} {path:?}"
            );
        }
    }

    #[test]
    fn dragonfly_every_group_pair_is_connected() {
        let t = df();
        // Sample a host per group; every pair must route.
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    let s = a * 6;
                    let d = b * 6 + 1;
                    let path = t.route(s, d, a as u64 * 7 + b as u64);
                    assert_eq!(t.ports()[*path.last().unwrap() as usize].to_host, Some(d));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "global links")]
    fn dragonfly_underprovisioned_globals_rejected() {
        Topology::build(TopologyConfig::Dragonfly {
            groups: 8,
            routers_per_group: 2,
            hosts_per_router: 1,
            global_per_router: 1, // 2 < 7 required
            edge: LinkParams::default(),
            local: LinkParams::default(),
            global: LinkParams::default(),
        });
    }

    #[test]
    fn dragonfly_runs_traffic_end_to_end() {
        use atlahs_core::Simulation;
        use atlahs_goal::GoalBuilder;
        let mut b = GoalBuilder::new(24);
        for s in 0..24u32 {
            let d = (s + 7) % 24;
            b.send(s, d, 64 << 10, s);
            b.recv(d, s, 64 << 10, s);
        }
        let goal = b.build().unwrap();
        let cfg =
            crate::HtsimConfig::new(TopologyConfig::dragonfly(4, 3, 2), crate::CcAlgo::Mprdma);
        let mut be = crate::HtsimBackend::new(cfg);
        let rep = Simulation::new(&goal).run(&mut be).unwrap();
        assert_eq!(rep.completed, goal.total_tasks());
    }
}
