//! Congestion control algorithms.
//!
//! Three algorithms from the paper's experiments, plus DCTCP as a classic
//! reference:
//!
//! * **MPRDMA** — sender-based, ECN-driven, reacting per packet (akin to
//!   DCTCP but without per-window averaging): additive increase of one MTU
//!   per RTT, and a half-MTU decrease for every ECN-marked ACK.
//! * **Swift** — sender-based, delay-driven: a single end-to-end RTT
//!   measurement against a target delay; multiplicative decrease
//!   proportional to the excess delay, at most once per RTT. Its weakness —
//!   one e2e signal cannot localize multi-hop congestion — is what Fig. 1C
//!   of the paper exposes.
//! * **NDP** — receiver-driven: the sender blasts one initial window; every
//!   subsequent packet is released by a receiver PULL paced at the
//!   receiver's line rate; overflowing queues *trim* packets to headers
//!   instead of dropping. Strong under incast at the last hop, weak when
//!   congestion sits in the oversubscribed core (Fig. 11).
//! * **DCTCP** — per-RTT ECN fraction with EWMA gain, for reference.
//!
//! The window logic lives here; trimming and PULL pacing live in the engine.

/// Algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    Mprdma,
    Swift,
    Ndp,
    Dctcp,
}

impl std::fmt::Display for CcAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CcAlgo::Mprdma => "MPRDMA",
            CcAlgo::Swift => "Swift",
            CcAlgo::Ndp => "NDP",
            CcAlgo::Dctcp => "DCTCP",
        };
        f.write_str(s)
    }
}

/// Per-flow congestion-control state. `cwnd` is in bytes.
#[derive(Debug, Clone)]
pub struct CcState {
    pub algo: CcAlgo,
    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
    pub cwnd: f64,
    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
    mtu: f64,
    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
    base_rtt: f64,
    /// Swift: earliest time the next multiplicative decrease may happen.
    next_decrease_at: u64,
    /// DCTCP: EWMA of the marked fraction and per-window counters.
    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
    alpha: f64,
    window_acks: u32,
    window_marks: u32,
    window_end_seq: u64,
    acks_seen: u64,
}

/// Swift target-delay multiplier over the base RTT.
// det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
const SWIFT_TARGET_FACTOR: f64 = 1.5;
/// Swift multiplicative-decrease aggressiveness.
// det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
const SWIFT_BETA: f64 = 0.8;
/// Swift maximum decrease per event.
// det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
const SWIFT_MAX_MDF: f64 = 0.5;
/// DCTCP EWMA gain.
// det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
const DCTCP_G: f64 = 1.0 / 16.0;

impl CcState {
    /// Create flow CC state. `init_cwnd` is typically one BDP.
    pub fn new(algo: CcAlgo, mtu: u32, base_rtt: u64, init_cwnd: u64) -> Self {
        CcState {
            algo,
            // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
            cwnd: (init_cwnd.max(mtu as u64)) as f64,
            // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
            mtu: mtu as f64,
            // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
            base_rtt: base_rtt as f64,
            next_decrease_at: 0,
            // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
            alpha: 0.0,
            window_acks: 0,
            window_marks: 0,
            window_end_seq: 0,
            acks_seen: 0,
        }
    }

    /// Current window in bytes (never below one MTU).
    pub fn window(&self) -> u64 {
        self.cwnd.max(self.mtu) as u64
    }

    /// Process one ACK. `now`/`rtt` in ns, `marked` = ECN echo.
    pub fn on_ack(&mut self, now: u64, rtt: u64, marked: bool) {
        self.acks_seen += 1;
        match self.algo {
            CcAlgo::Mprdma => {
                if marked {
                    // Per-packet reaction: half an MTU per marked ACK.
                    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
                    self.cwnd -= self.mtu / 2.0;
                } else {
                    // One MTU per RTT: mtu^2/cwnd per ACK.
                    self.cwnd += self.mtu * self.mtu / self.cwnd;
                }
            }
            CcAlgo::Swift => {
                let target = self.base_rtt * SWIFT_TARGET_FACTOR;
                // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
                let delay = rtt as f64;
                if delay <= target {
                    self.cwnd += self.mtu * self.mtu / self.cwnd;
                } else if now >= self.next_decrease_at {
                    let excess = ((delay - target) / delay * SWIFT_BETA).min(SWIFT_MAX_MDF);
                    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
                    self.cwnd *= 1.0 - excess;
                    self.next_decrease_at = now + rtt;
                }
            }
            CcAlgo::Ndp => {
                // Receiver-clocked: the window only gates the initial burst.
            }
            CcAlgo::Dctcp => {
                self.window_acks += 1;
                if marked {
                    self.window_marks += 1;
                }
                // Close the observation window roughly once per cwnd of ACKs.
                // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
                let per_window = (self.cwnd / self.mtu).max(1.0) as u64;
                if self.acks_seen >= self.window_end_seq + per_window {
                    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
                    let f = self.window_marks as f64 / self.window_acks.max(1) as f64;
                    // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
                    self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * f;
                    if self.window_marks > 0 {
                        // det-lint: allow(float) — fixed-order IEEE-754 cwnd/rate state, bit-stable; pinned by determinism goldens
                        self.cwnd *= 1.0 - self.alpha / 2.0;
                    }
                    self.window_acks = 0;
                    self.window_marks = 0;
                    self.window_end_seq = self.acks_seen;
                }
                if !marked {
                    self.cwnd += self.mtu * self.mtu / self.cwnd;
                }
            }
        }
        self.cwnd = self.cwnd.max(self.mtu);
    }

    /// React to a retransmission timeout: collapse the window.
    pub fn on_timeout(&mut self) {
        if self.algo != CcAlgo::Ndp {
            self.cwnd = self.mtu;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MTU: u32 = 4096;

    #[test]
    fn mprdma_grows_one_mtu_per_rtt() {
        let mut cc = CcState::new(CcAlgo::Mprdma, MTU, 10_000, 10 * MTU as u64);
        let start = cc.window();
        // One cwnd worth of unmarked ACKs ~ +1 MTU.
        for _ in 0..10 {
            cc.on_ack(0, 10_000, false);
        }
        let grown = cc.window() - start;
        assert!(
            (grown as i64 - MTU as i64).abs() < (MTU / 8) as i64,
            "grew {grown}, expected ~{MTU}"
        );
    }

    #[test]
    fn mprdma_shrinks_on_marks() {
        let mut cc = CcState::new(CcAlgo::Mprdma, MTU, 10_000, 10 * MTU as u64);
        let start = cc.window();
        for _ in 0..4 {
            cc.on_ack(0, 10_000, true);
        }
        assert_eq!(start - cc.window(), 2 * MTU as u64);
    }

    #[test]
    fn swift_holds_at_low_delay_grows() {
        let mut cc = CcState::new(CcAlgo::Swift, MTU, 10_000, 10 * MTU as u64);
        let start = cc.window();
        cc.on_ack(0, 10_000, false); // rtt == base < target
        assert!(cc.window() > start);
    }

    #[test]
    fn swift_decreases_once_per_rtt() {
        let mut cc = CcState::new(CcAlgo::Swift, MTU, 10_000, 100 * MTU as u64);
        let w0 = cc.window();
        cc.on_ack(1000, 40_000, false); // heavy delay -> decrease
        let w1 = cc.window();
        assert!(w1 < w0);
        // Immediately after, another high-delay ACK must not decrease again.
        cc.on_ack(1001, 40_000, false);
        assert_eq!(cc.window(), w1);
        // After an RTT has passed, it may decrease again.
        cc.on_ack(1001 + 40_000, 40_000, false);
        assert!(cc.window() < w1);
    }

    #[test]
    fn swift_decrease_bounded_by_mdf() {
        let mut cc = CcState::new(CcAlgo::Swift, MTU, 10_000, 100 * MTU as u64);
        let w0 = cc.window() as f64;
        cc.on_ack(0, 10_000_000, false); // absurd delay
        assert!(cc.window() as f64 >= w0 * (1.0 - SWIFT_MAX_MDF) - 1.0);
    }

    #[test]
    fn ndp_window_is_static() {
        let mut cc = CcState::new(CcAlgo::Ndp, MTU, 10_000, 8 * MTU as u64);
        let w = cc.window();
        cc.on_ack(0, 50_000, true);
        cc.on_ack(1, 50_000, true);
        assert_eq!(cc.window(), w);
    }

    #[test]
    fn dctcp_converges_down_under_persistent_marking() {
        let mut cc = CcState::new(CcAlgo::Dctcp, MTU, 10_000, 64 * MTU as u64);
        let start = cc.window();
        for i in 0..1000 {
            cc.on_ack(i, 10_000, true);
        }
        assert!(cc.window() < start / 2);
    }

    #[test]
    fn window_floor_is_one_mtu() {
        let mut cc = CcState::new(CcAlgo::Mprdma, MTU, 10_000, MTU as u64);
        for _ in 0..100 {
            cc.on_ack(0, 10_000, true);
        }
        assert_eq!(cc.window(), MTU as u64);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = CcState::new(CcAlgo::Swift, MTU, 10_000, 64 * MTU as u64);
        cc.on_timeout();
        assert_eq!(cc.window(), MTU as u64);
        // NDP ignores timeouts for windowing.
        let mut ndp = CcState::new(CcAlgo::Ndp, MTU, 10_000, 64 * MTU as u64);
        ndp.on_timeout();
        assert_eq!(ndp.window(), 64 * MTU as u64);
    }
}
