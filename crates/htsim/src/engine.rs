//! The packet-level discrete-event engine and ATLAHS backend.
//!
//! Every GOAL send becomes a *flow*: the message is segmented into MTU-sized
//! packets that traverse output-queued switch ports with finite buffers,
//! ECN marking between `K_min` and `K_max`, tail drop (or NDP trimming), and
//! per-flow congestion control ([`crate::cc`]). ACKs travel the reverse
//! path and are themselves queued. A retransmission timer recovers losses.
//!
//! Operation semantics (paper §3.3): a send's compute stream is released
//! after the host overhead `host_o`; the send is *done* when the receiver
//! holds every byte of the message. A recv is done when its FIFO-matched
//! flow (by `(src, dst, tag)`, in issue order) has fully arrived.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use atlahs_core::matcher::MatchKey;
use atlahs_core::{Backend, Completion, Matcher, OpRef, Snapshot, Time};
use atlahs_goal::{Rank, Tag};

use crate::cc::{CcAlgo, CcState};
use crate::eventq::{EventQueue, QueueStats};
use crate::fault::{FaultKind, PortFault};
use crate::stochastic::LinkModel;
use crate::topology::{PathRef, Topology, TopologyConfig};

/// Wire overhead per packet (headers), bytes.
const HDR_BYTES: u32 = 64;

/// Backend configuration.
#[derive(Debug, Clone)]
pub struct HtsimConfig {
    pub topology: TopologyConfig,
    pub cc: CcAlgo,
    /// Payload bytes per packet.
    pub mtu: u32,
    /// Per-port buffering capacity (paper: 1 MiB).
    pub queue_bytes: u64,
    /// ECN marking thresholds as fractions of `queue_bytes` (paper: 20%/80%).
    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
    pub kmin_frac: f64,
    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
    pub kmax_frac: f64,
    /// Host-side per-operation overhead (ns).
    pub host_o: u64,
    /// RNG seed (ECN probabilistic marking, ECMP salt).
    pub seed: u64,
    /// Record per-flow completion times (Fig. 11 MCT statistics).
    pub collect_flows: bool,
    /// Retransmission timeout; 0 = auto (3×base RTT + 10 MTU).
    pub rto_ns: u64,
    /// Per-packet path spraying (UEC/REPS-style adaptive load balancing)
    /// instead of per-flow ECMP hashing. Spraying removes hash-collision
    /// hotspots on fully provisioned fabrics at the cost of out-of-order
    /// arrival (harmless here: receivers track per-packet bitmaps).
    pub spray: bool,
    /// Timed link-fault windows ([`crate::fault`]). Empty (the default)
    /// schedules nothing and leaves the run bit-identical to a fault-free
    /// engine.
    pub faults: Vec<PortFault>,
    /// Per-packet stochastic link model ([`crate::stochastic`]): seeded
    /// random loss and latency jitter evaluated in the forwarding hot
    /// path via counter-based draw streams. The inactive default
    /// consumes zero draws and is bit-identical to an engine without
    /// the layer.
    pub link_model: LinkModel,
}

impl HtsimConfig {
    pub fn new(topology: TopologyConfig, cc: CcAlgo) -> Self {
        HtsimConfig {
            topology,
            cc,
            mtu: 4096,
            queue_bytes: 1 << 20,
            // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
            kmin_frac: 0.2,
            // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
            kmax_frac: 0.8,
            host_o: 200,
            seed: 1,
            collect_flows: false,
            rto_ns: 0,
            spray: false,
            faults: Vec::new(),
            link_model: LinkModel::default(),
        }
    }
}

/// Aggregate network statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    pub packets_sent: u64,
    pub drops: u64,
    pub trims: u64,
    pub ecn_marks: u64,
    pub max_queue_bytes: u64,
    /// Drops/trims on ToR↔core links only (the oversubscribed tier).
    pub core_drops: u64,
    pub flows: u64,
    pub retransmissions: u64,
    /// Internal engine events processed (cost diagnostic).
    pub internal_events: u64,
    /// Timeout events processed (retransmission-storm diagnostic).
    pub timeouts: u64,
    /// Packets discarded by a down link (fault injection), all kinds.
    /// Counted separately from `drops` so congestion loss and injected
    /// loss stay distinguishable in reports.
    pub fault_drops: u64,
    /// Stochastic draws consumed (one per packet leaving a port while a
    /// [`LinkModel`] is active). 0 ⇔ the run was model-free, which is
    /// what gates the stochastic telemetry out of legacy reports.
    pub stochastic_draws: u64,
    /// Packets lost to the per-packet stochastic model, all kinds.
    pub stochastic_drops: u64,
    /// Packets whose wire latency was inflated by a nonzero jitter
    /// sample.
    pub jittered: u64,
    /// Retransmissions whose previous copy is known lost to an injected
    /// fault (down-link blackhole or stochastic loss).
    pub rtx_fault_drop: u64,
    /// Retransmissions recovering congestion loss or trimmed packets
    /// (everything not attributable to an injected fault).
    pub rtx_timeout: u64,
    /// Payload bytes handed to the fabric, retransmitted copies
    /// included.
    pub payload_bytes: u64,
    /// Payload bytes of retransmitted copies only; `payload_bytes -
    /// retransmitted_bytes` is the unique goodput, invariant between a
    /// clean and a lossy run of the same workload.
    pub retransmitted_bytes: u64,
}

impl NetStats {
    /// Goodput as parts-per-million of offered payload: the share of
    /// sent payload bytes that was not a retransmitted copy. 1_000_000
    /// on a loss-free run.
    pub fn goodput_ppm(&self) -> u64 {
        if self.payload_bytes == 0 {
            return 1_000_000;
        }
        (self.payload_bytes - self.retransmitted_bytes) * 1_000_000 / self.payload_bytes
    }

    /// Retransmission-storm diagnostic: timeout *firings* per thousand
    /// flows. A handful is normal recovery; hundreds per flow means the
    /// RTO policy is re-injecting faster than the fabric drains.
    pub fn rtx_storm_per_kflow(&self) -> u64 {
        self.timeouts * 1_000 / self.flows.max(1)
    }
}

/// Completion record of one flow (message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    pub start: Time,
    pub end: Time,
}

impl FlowRecord {
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PktKind {
    Data,
    /// Data packet trimmed to a header by an overflowing queue (NDP).
    Trimmed,
    Ack,
    /// Receiver-side loss notification (NDP): re-queue `idx` at the sender.
    Nack,
    /// Receiver-paced credit releasing one packet at the sender (NDP).
    Pull,
}

#[derive(Debug, Clone, Copy)]
struct Packet {
    flow: u32,
    idx: u32,
    hop: u8,
    kind: PktKind,
    wire: u32,
    ecn: bool,
    /// ECMP selector: the flow's salt, or a per-packet value when
    /// spraying.
    ecmp: u64,
    /// The packet's full route, resolved once at origination. Forwarding
    /// hops are then pure arena index arithmetic — no flow-record load,
    /// no route lookup, even when spraying.
    path: PathRef,
}

#[derive(Debug, Clone)]
enum Ev {
    TxDone(u32),
    Arrive {
        port: u32,
        pkt: Packet,
    },
    /// Retransmission timer for `flow`. `gen` identifies the timer chain:
    /// events whose generation no longer matches the flow's are stale
    /// (the chain was re-armed early on backoff recovery) and are dropped.
    Timeout {
        flow: u32,
        gen: u32,
    },
    PullTick {
        host: u32,
    },
    Emit {
        op: OpRef,
        done: bool,
    },
    LocalDone {
        flow: u32,
    },
    /// Fault-window boundary: `idx` into `cfg.faults`, `start` marks the
    /// opening edge. Scheduled at reset, before any simulation traffic.
    Fault {
        idx: u32,
        start: bool,
    },
}

#[derive(Clone)]
struct Port {
    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
    rate: f64,
    latency: u64,
    to_host: Option<u32>,
    is_core: bool,
    busy: bool,
    queue: VecDeque<Packet>,
    qbytes: u64,
    in_service: Option<Packet>,
    cap: u64,
    kmin: u64,
    kmax: u64,
    /// Serialization times for the two wire sizes that dominate traffic
    /// (full MTU frames and bare headers), precomputed with the exact
    /// same float formula the general path uses — the per-packet f64
    /// divide is off the hot path without changing a single timestamp.
    wire_mtu: u32,
    tx_mtu: u64,
    tx_hdr: u64,
    /// Inside a [`FaultKind::Down`] window: the port discards everything
    /// offered to its queue (packets already queued or in service drain).
    down: bool,
    /// Stochastic draw counter: packet `n` leaving this port draws
    /// `fnv_draw2(seed, stream, port, n)`. Monotone, never reset
    /// mid-run, and carried by [`HtsimState`] (via the port clone) so a
    /// restored run resumes the exact draw sequence. Stays 0 while the
    /// link model is inactive.
    draws: u64,
}

/// Dense bitmaps for per-packet sender/receiver state.
///
/// Flows of ≤64 packets — the overwhelming majority in storage- and
/// collective-style workloads — keep their bits inline in the flow record
/// itself: no heap allocation at flow setup and no pointer chase on the
/// per-packet ACK/receive path.
#[derive(Debug, Clone)]
enum Bitmap {
    Small(u64),
    Large(Box<[u64]>),
}

impl Bitmap {
    fn new(n: u32) -> Self {
        if n <= 64 {
            Bitmap::Small(0)
        } else {
            Bitmap::Large(vec![0u64; (n as usize).div_ceil(64)].into_boxed_slice())
        }
    }
    #[inline]
    fn get(&self, i: u32) -> bool {
        match self {
            Bitmap::Small(w) => w >> i & 1 == 1,
            Bitmap::Large(ws) => ws[i as usize / 64] >> (i % 64) & 1 == 1,
        }
    }
    #[inline]
    fn set(&mut self, i: u32) {
        match self {
            Bitmap::Small(w) => *w |= 1 << i,
            Bitmap::Large(ws) => ws[i as usize / 64] |= 1 << (i % 64),
        }
    }
    #[inline]
    fn clear(&mut self, i: u32) {
        match self {
            Bitmap::Small(w) => *w &= !(1 << i),
            Bitmap::Large(ws) => ws[i as usize / 64] &= !(1 << (i % 64)),
        }
    }
}

#[derive(Clone)]
struct Flow {
    op: OpRef,
    src: u32,
    dst: u32,
    bytes: u64,
    npkts: u32,
    /// Interned forward/reverse routes (resolved via [`Topology::path`]).
    path: PathRef,
    rpath: PathRef,
    /// ECMP salt; per-packet spray values derive from it.
    salt: u64,
    /// Current retransmission timeout (backs off exponentially while the
    /// flow makes no progress; see [`HtsimBackend::on_timeout`]).
    rto: u64,
    /// The RTO the flow started with; restored on ACK progress.
    rto_base: u64,
    /// Current timer-chain generation (see [`Ev::Timeout`]).
    timeout_gen: u32,
    cc: CcState,
    // sender state
    next_idx: u32,
    acked: Bitmap,
    inflight: u64,
    rtx: VecDeque<u32>,
    in_rtx: Bitmap,
    /// Indices whose most recent copy died to an *injected* fault (down
    /// link or stochastic loss), set at the discard site and cleared on
    /// resend — attributing each retransmission to its cause exactly
    /// ([`NetStats::rtx_fault_drop`] vs [`NetStats::rtx_timeout`]).
    fault_lost: Bitmap,
    send_ts: Box<[Time]>,
    last_activity: Time,
    // receiver state
    rcvd: Bitmap,
    rcvd_count: u32,
    complete: bool,
    complete_time: Option<Time>,
    recv_op: Option<OpRef>,
    start: Time,
}

impl Flow {
    fn payload(&self, idx: u32, mtu: u32) -> u32 {
        if idx + 1 == self.npkts {
            let rem = self.bytes - (self.npkts as u64 - 1) * mtu as u64;
            rem as u32
        } else {
            mtu
        }
    }
}

#[derive(Clone)]
struct PullPacer {
    credits: VecDeque<u32>,
    busy: bool,
}

/// The packet-level backend.
pub struct HtsimBackend {
    cfg: HtsimConfig,
    topo: Topology,
    ports: Vec<Port>,
    flows: Vec<Flow>,
    queue: EventQueue<Ev>,
    now: Time,
    /// `ATLAHS_HTSIM_DEBUG` presence, sampled once at construction — the
    /// env lookup must not sit in the event loop.
    debug: bool,
    rng: StdRng,
    matcher: Matcher<u32, (OpRef, Time)>,
    pacers: Vec<PullPacer>,
    stats: NetStats,
    records: Vec<FlowRecord>,
    // per-port drop/trim/mark counters folded into stats live
}

impl HtsimBackend {
    pub fn new(cfg: HtsimConfig) -> Self {
        let topo = Topology::build(cfg.topology.clone());
        let mut b = HtsimBackend {
            rng: StdRng::seed_from_u64(cfg.seed),
            topo,
            ports: Vec::new(),
            flows: Vec::new(),
            queue: EventQueue::new(),
            now: 0,
            debug: std::env::var_os("ATLAHS_HTSIM_DEBUG").is_some(),
            matcher: Matcher::new(),
            pacers: Vec::new(),
            stats: NetStats::default(),
            records: Vec::new(),
            cfg,
        };
        b.reset();
        b
    }

    fn reset(&mut self) {
        let wire_mtu = self.cfg.mtu + HDR_BYTES;
        self.ports = self
            .topo
            .ports()
            .iter()
            .map(|s| {
                let rate = s.link.bytes_per_ns();
                Port {
                    rate,
                    latency: s.link.latency_ns,
                    to_host: s.to_host,
                    is_core: s.is_core,
                    busy: false,
                    queue: VecDeque::new(),
                    qbytes: 0,
                    in_service: None,
                    cap: self.cfg.queue_bytes,
                    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                    kmin: (self.cfg.queue_bytes as f64 * self.cfg.kmin_frac) as u64,
                    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                    kmax: (self.cfg.queue_bytes as f64 * self.cfg.kmax_frac) as u64,
                    wire_mtu,
                    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                    tx_mtu: (wire_mtu as f64 / rate).ceil() as u64,
                    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                    tx_hdr: (HDR_BYTES as f64 / rate).ceil() as u64,
                    down: false,
                    draws: 0,
                }
            })
            .collect();
        self.flows.clear();
        self.queue.clear();
        self.now = 0;
        self.rng = StdRng::seed_from_u64(self.cfg.seed);
        self.matcher = Matcher::new();
        self.pacers = (0..self.topo.num_hosts())
            .map(|_| PullPacer { credits: VecDeque::new(), busy: false })
            .collect();
        self.stats = NetStats::default();
        self.records.clear();
        // Fault windows enter the queue before any simulation traffic, so
        // their push order (and hence tie-breaking at equal timestamps) is
        // a pure function of the config — independent of the workload.
        for i in 0..self.cfg.faults.len() {
            let f = self.cfg.faults[i];
            assert!(
                (f.port as usize) < self.ports.len(),
                "fault targets port {} but topology has {} ports",
                f.port,
                self.ports.len()
            );
            if f.end_ns > f.start_ns {
                self.queue.push(f.start_ns, Ev::Fault { idx: i as u32, start: true });
                self.queue.push(f.end_ns, Ev::Fault { idx: i as u32, start: false });
            }
        }
    }

    /// Network statistics accumulated so far.
    pub fn net_stats(&self) -> NetStats {
        self.stats
    }

    /// Flow completion records (only when `collect_flows` is set).
    pub fn flow_records(&self) -> &[FlowRecord] {
        &self.records
    }

    pub fn config(&self) -> &HtsimConfig {
        &self.cfg
    }

    /// Event-queue diagnostics: how pushes split across the O(1) lane,
    /// the timer wheel, and the overflow heap (perf tooling and tests).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    fn push(&mut self, t: Time, ev: Ev) {
        self.queue.push(t, ev);
    }

    // ---- port machinery ------------------------------------------------

    fn enqueue(&mut self, port_id: u32, mut pkt: Packet) {
        if self.ports[port_id as usize].down {
            // Ingress blackhole: data, acks, and credits all die on the
            // down link; the retransmission timer recovers once the
            // window closes. No RNG draw — the ECN stream stays aligned
            // with a run where this packet was never offered.
            self.stats.fault_drops += 1;
            if pkt.kind == PktKind::Data {
                self.flows[pkt.flow as usize].fault_lost.set(pkt.idx);
            }
            return;
        }
        // One borrow of the port for the whole admission path (`rng`,
        // `stats`, and `cfg` are disjoint fields).
        let port = &mut self.ports[port_id as usize];
        if pkt.kind == PktKind::Data {
            let q = port.qbytes;
            // ECN marking on instantaneous occupancy.
            if q >= port.kmax {
                pkt.ecn = true;
            } else if q > port.kmin {
                // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                let p = (q - port.kmin) as f64 / (port.kmax - port.kmin).max(1) as f64;
                // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                if self.rng.random::<f64>() < p {
                    pkt.ecn = true;
                }
            }
            if pkt.ecn {
                self.stats.ecn_marks += 1;
            }
            // Admission: trim (NDP) or drop on overflow.
            if q + pkt.wire as u64 > port.cap {
                if self.cfg.cc == CcAlgo::Ndp {
                    pkt.kind = PktKind::Trimmed;
                    pkt.wire = HDR_BYTES;
                    self.stats.trims += 1;
                    if port.is_core {
                        self.stats.core_drops += 1;
                    }
                } else {
                    self.stats.drops += 1;
                    if port.is_core {
                        self.stats.core_drops += 1;
                    }
                    return;
                }
            }
        }
        port.qbytes += pkt.wire as u64;
        self.stats.max_queue_bytes = self.stats.max_queue_bytes.max(port.qbytes);
        port.queue.push_back(pkt);
        if !port.busy {
            self.start_tx(port_id);
        }
    }

    fn start_tx(&mut self, port_id: u32) {
        let (tx_ns, ok) = {
            let port = &mut self.ports[port_id as usize];
            if let Some(pkt) = port.queue.pop_front() {
                port.qbytes -= pkt.wire as u64;
                port.busy = true;
                let tx = if pkt.wire == port.wire_mtu {
                    port.tx_mtu
                } else if pkt.wire == HDR_BYTES {
                    port.tx_hdr
                } else {
                    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                    (pkt.wire as f64 / port.rate).ceil() as u64
                };
                port.in_service = Some(pkt);
                (tx, true)
            } else {
                port.busy = false;
                (0, false)
            }
        };
        if ok {
            self.push(self.now + tx_ns, Ev::TxDone(port_id));
        }
    }

    fn on_tx_done(&mut self, port_id: u32) {
        let (pkt, mut latency, stoch) = {
            let port = &mut self.ports[port_id as usize];
            let pkt = port.in_service.take().expect("TxDone without packet");
            // Per-packet stochastic link model: every packet leaving a
            // port consumes exactly one draw-counter value, loss or not,
            // jitter or not — the stream position is a pure function of
            // (port, packets transmitted), so it survives snapshot and
            // restore via the port clone, and an inactive model consumes
            // nothing at all.
            let stoch = if self.cfg.link_model.active() {
                let n = port.draws;
                port.draws += 1;
                Some((n, port.is_core))
            } else {
                None
            };
            (pkt, port.latency, stoch)
        };
        if let Some((n, is_core)) = stoch {
            let model = self.cfg.link_model;
            self.stats.stochastic_draws += 1;
            if model.drops(port_id, n, is_core) {
                // The packet vanishes on the wire: for data the RTO
                // path recovers it (and the loss is attributed to the
                // fault for the retransmission split); lost acks and
                // credits are re-elicited the same way.
                self.stats.stochastic_drops += 1;
                if pkt.kind == PktKind::Data {
                    self.flows[pkt.flow as usize].fault_lost.set(pkt.idx);
                }
                self.start_tx(port_id);
                return;
            }
            let extra = model.jitter_ns(port_id, n);
            if extra > 0 {
                self.stats.jittered += 1;
                latency += extra;
            }
        }
        self.push(self.now + latency, Ev::Arrive { port: port_id, pkt });
        self.start_tx(port_id);
    }

    fn on_arrive(&mut self, port_id: u32, mut pkt: Packet) {
        if let Some(host) = self.ports[port_id as usize].to_host {
            self.host_receive(host, pkt);
            return;
        }
        // Forward through the switch: the packet carries its interned
        // route, so this is a single arena load — no flow access.
        pkt.hop += 1;
        let next = self.topo.path(pkt.path)[pkt.hop as usize];
        self.enqueue(next, pkt);
    }

    // ---- sender --------------------------------------------------------

    fn try_send(&mut self, fid: u32) {
        loop {
            let (idx, window_ok) = {
                let f = &mut self.flows[fid as usize];
                if f.complete {
                    return;
                }
                let window = f.cc.window();
                if f.inflight >= window {
                    return;
                }
                let idx = if let Some(i) = f.rtx.pop_front() {
                    if f.acked.get(i) {
                        continue; // stale rtx entry
                    }
                    Some(i)
                } else if f.next_idx < f.npkts {
                    let i = f.next_idx;
                    f.next_idx += 1;
                    Some(i)
                } else {
                    None
                };
                (idx, true)
            };
            debug_assert!(window_ok);
            match idx {
                Some(i) => self.send_packet(fid, i),
                None => return,
            }
        }
    }

    fn send_packet(&mut self, fid: u32, idx: u32) {
        let (pkt, was_rtx, was_fault_lost) = {
            let mtu = self.cfg.mtu;
            let f = &mut self.flows[fid as usize];
            let payload = f.payload(idx, mtu);
            f.send_ts[idx as usize] = self.now;
            f.inflight += payload as u64;
            f.last_activity = self.now;
            // Clear the retransmission marker: if this copy is lost too,
            // the next timeout must be able to requeue the packet.
            let was_rtx = f.in_rtx.get(idx);
            if was_rtx {
                f.in_rtx.clear(idx);
            }
            // Attribute the retransmission: was the previous copy killed
            // by an injected fault, or by congestion/timeout noise?
            let was_fault_lost = f.fault_lost.get(idx);
            if was_fault_lost {
                f.fault_lost.clear(idx);
            }
            let (ecmp, path) = if self.cfg.spray {
                let ecmp = f.salt ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                // Resolve the sprayed route once; hops index into it.
                (ecmp, self.topo.route_ref(f.src, f.dst, ecmp))
            } else {
                (f.salt, f.path)
            };
            let pkt = Packet {
                flow: fid,
                idx,
                hop: 0,
                kind: PktKind::Data,
                wire: payload + HDR_BYTES,
                ecn: false,
                ecmp,
                path,
            };
            (pkt, was_rtx, was_fault_lost)
        };
        let payload = (pkt.wire - HDR_BYTES) as u64;
        self.stats.packets_sent += 1;
        self.stats.payload_bytes += payload;
        if was_rtx {
            self.stats.retransmissions += 1;
            self.stats.retransmitted_bytes += payload;
            // `retransmissions == rtx_fault_drop + rtx_timeout` holds by
            // construction: every retransmission lands in exactly one
            // bucket here.
            if was_fault_lost {
                self.stats.rtx_fault_drop += 1;
            } else {
                self.stats.rtx_timeout += 1;
            }
        }
        let port0 = self.topo.path(pkt.path)[0];
        self.enqueue(port0, pkt);
    }

    /// Control packets (ACK/NACK/PULL) travel the reverse path, reusing
    /// the triggering packet's ECMP selector (symmetric spraying).
    fn control_packet(&mut self, fid: u32, idx: u32, kind: PktKind, ecn: bool, ecmp: u64) {
        let f = &self.flows[fid as usize];
        let path = if self.cfg.spray { self.topo.route_ref(f.dst, f.src, ecmp) } else { f.rpath };
        let pkt = Packet { flow: fid, idx, hop: 0, kind, wire: HDR_BYTES, ecn, ecmp, path };
        let port0 = self.topo.path(path)[0];
        self.enqueue(port0, pkt);
    }

    // ---- receiver ------------------------------------------------------

    fn host_receive(&mut self, host: u32, pkt: Packet) {
        match pkt.kind {
            PktKind::Data => {
                let fresh = {
                    let f = &mut self.flows[pkt.flow as usize];
                    if f.complete || f.rcvd.get(pkt.idx) {
                        false
                    } else {
                        f.rcvd.set(pkt.idx);
                        f.rcvd_count += 1;
                        true
                    }
                };
                self.control_packet(pkt.flow, pkt.idx, PktKind::Ack, pkt.ecn, pkt.ecmp);
                if self.cfg.cc == CcAlgo::Ndp {
                    self.add_pull_credit(host, pkt.flow);
                }
                if fresh
                    && self.flows[pkt.flow as usize].rcvd_count
                        == self.flows[pkt.flow as usize].npkts
                {
                    self.complete_flow(pkt.flow);
                }
            }
            PktKind::Trimmed => {
                self.control_packet(pkt.flow, pkt.idx, PktKind::Nack, false, pkt.ecmp);
                self.add_pull_credit(host, pkt.flow);
            }
            PktKind::Ack => {
                let rtt_and_more = {
                    let f = &mut self.flows[pkt.flow as usize];
                    if f.complete || f.acked.get(pkt.idx) {
                        None
                    } else {
                        f.acked.set(pkt.idx);
                        Some(f.send_ts[pkt.idx as usize])
                    }
                };
                if let Some(ts) = rtt_and_more {
                    let mtu = self.cfg.mtu;
                    let f = &mut self.flows[pkt.flow as usize];
                    let payload = f.payload(pkt.idx, mtu) as u64;
                    f.inflight = f.inflight.saturating_sub(payload);
                    let rtt = self.now.saturating_sub(ts).max(1);
                    f.cc.on_ack(self.now, rtt, pkt.ecn);
                    f.last_activity = self.now;
                    if f.rto != f.rto_base {
                        // Backoff recovery: restore the base RTO and re-arm
                        // the timer promptly — the pending timeout event sits
                        // up to 64x base in the future and would delay
                        // detection of a new stall by that much. Bumping the
                        // generation invalidates the old chain.
                        f.rto = f.rto_base;
                        f.timeout_gen = f.timeout_gen.wrapping_add(1);
                        let (t, ev) = (
                            self.now + f.rto_base,
                            Ev::Timeout { flow: pkt.flow, gen: f.timeout_gen },
                        );
                        self.push(t, ev);
                    }
                    self.try_send(pkt.flow);
                }
            }
            PktKind::Nack => {
                let f = &mut self.flows[pkt.flow as usize];
                if !f.complete && !f.acked.get(pkt.idx) && !f.in_rtx.get(pkt.idx) {
                    f.in_rtx.set(pkt.idx);
                    f.rtx.push_back(pkt.idx);
                    // The trimmed payload is no longer in flight.
                    let mtu = self.cfg.mtu;
                    let payload = f.payload(pkt.idx, mtu) as u64;
                    f.inflight = f.inflight.saturating_sub(payload);
                }
            }
            PktKind::Pull => {
                // Release exactly one packet, bypassing the window.
                let idx = {
                    let f = &mut self.flows[pkt.flow as usize];
                    if f.complete {
                        None
                    } else if let Some(i) = f.rtx.pop_front() {
                        if f.acked.get(i) {
                            None
                        } else {
                            Some(i)
                        }
                    } else if f.next_idx < f.npkts {
                        let i = f.next_idx;
                        f.next_idx += 1;
                        Some(i)
                    } else {
                        None
                    }
                };
                if let Some(i) = idx {
                    self.send_packet(pkt.flow, i);
                }
            }
        }
    }

    fn add_pull_credit(&mut self, host: u32, fid: u32) {
        if self.flows[fid as usize].complete {
            return;
        }
        self.pacers[host as usize].credits.push_back(fid);
        if !self.pacers[host as usize].busy {
            self.pacers[host as usize].busy = true;
            self.push(self.now, Ev::PullTick { host });
        }
    }

    fn on_pull_tick(&mut self, host: u32) {
        let fid = self.pacers[host as usize].credits.pop_front();
        match fid {
            None => {
                self.pacers[host as usize].busy = false;
            }
            Some(fid) => {
                if !self.flows[fid as usize].complete {
                    let salt = self.flows[fid as usize].salt;
                    self.control_packet(fid, 0, PktKind::Pull, false, salt);
                }
                // Pace at the receiver's edge-link rate.
                let rate = self.ports[host as usize].rate;
                // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                let interval = ((self.cfg.mtu + HDR_BYTES) as f64 / rate).ceil() as u64;
                self.push(self.now + interval, Ev::PullTick { host });
            }
        }
    }

    fn complete_flow(&mut self, fid: u32) {
        let (op, recv_op, src, dst, bytes, start) = {
            let f = &mut self.flows[fid as usize];
            f.complete = true;
            f.complete_time = Some(self.now);
            // Cancel the retransmission-timer chain: bumping the
            // generation lazily invalidates every pending `Timeout` for
            // this flow, so short-flow-heavy workloads don't drag dead
            // timers through the event queue.
            f.timeout_gen = f.timeout_gen.wrapping_add(1);
            (f.op, f.recv_op, f.src, f.dst, f.bytes, f.start)
        };
        self.push(self.now, Ev::Emit { op, done: true });
        if let Some(r) = recv_op {
            self.push(self.now + self.cfg.host_o, Ev::Emit { op: r, done: true });
        }
        if self.cfg.collect_flows {
            self.records.push(FlowRecord { src, dst, bytes, start, end: self.now });
        }
    }

    /// Apply or lift one fault window ([`Ev::Fault`]).
    ///
    /// Degradation rescales the port's rate and latency and recomputes the
    /// precomputed serialization times with the exact float formulas
    /// `reset` uses; the closing edge restores the *nominal* link
    /// parameters from the topology's port table.
    fn on_fault(&mut self, idx: u32, start: bool) {
        let f = self.cfg.faults[idx as usize];
        let link = self.topo.ports()[f.port as usize].link;
        let port = &mut self.ports[f.port as usize];
        match f.kind {
            FaultKind::Down => port.down = start,
            FaultKind::Degrade { bw_pct, lat_pct } => {
                if start {
                    // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                    port.rate = link.bytes_per_ns() * bw_pct.max(1) as f64 / 100.0;
                    port.latency = link.latency_ns * lat_pct as u64 / 100;
                } else {
                    port.rate = link.bytes_per_ns();
                    port.latency = link.latency_ns;
                }
                // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                port.tx_mtu = (port.wire_mtu as f64 / port.rate).ceil() as u64;
                // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                port.tx_hdr = (HDR_BYTES as f64 / port.rate).ceil() as u64;
            }
        }
    }

    fn on_timeout(&mut self, fid: u32, gen: u32) {
        let reschedule = {
            let f = &mut self.flows[fid as usize];
            // Staleness (completed flow / superseded chain) is filtered by
            // the Ev::Timeout dispatch arm; only live timers arrive here.
            debug_assert!(!f.complete && gen == f.timeout_gen);
            if self.now.saturating_sub(f.last_activity) < f.rto {
                Some(f.last_activity + f.rto)
            } else {
                // Timeout fires: requeue every sent-but-unacked packet.
                f.cc.on_timeout();
                for i in 0..f.next_idx {
                    if !f.acked.get(i) && !f.in_rtx.get(i) {
                        f.in_rtx.set(i);
                        f.rtx.push_back(i);
                    }
                }
                f.inflight = 0;
                f.last_activity = self.now;
                // Exponential backoff (capped at 64x base): a static RTO
                // sized from the *base* RTT livelocks once queueing delay
                // exceeds it — every flow times out each RTO, re-injects
                // its whole window, and the storm sustains the very
                // congestion that caused it.
                f.rto = f.rto.saturating_mul(2).min(f.rto_base.saturating_mul(64));
                Some(self.now + f.rto)
            }
        };
        if let Some(t) = reschedule {
            // Count retransmissions triggered by the timeout path.
            self.try_send(fid);
            self.push(t, Ev::Timeout { flow: fid, gen });
        }
    }
}

impl Backend for HtsimBackend {
    fn simulation_setup(&mut self, num_ranks: usize) {
        assert!(
            num_ranks <= self.topo.num_hosts(),
            "schedule needs {num_ranks} ranks but topology has {} hosts",
            self.topo.num_hosts()
        );
        self.reset();
    }

    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, op: OpRef, dst: Rank, bytes: u64, tag: Tag) {
        self.send_inner(op, dst, bytes, tag);
    }

    fn recv(&mut self, op: OpRef, src: Rank, bytes: u64, tag: Tag) {
        self.recv_inner(op, src, bytes, tag);
    }

    fn calc(&mut self, op: OpRef, cost: u64) {
        self.push(self.now + cost, Ev::Emit { op, done: true });
    }

    fn next_event(&mut self) -> Option<Completion> {
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now);
            self.now = t;
            self.stats.internal_events += 1;
            if self.debug && self.stats.internal_events % 200_000_000 == 0 {
                eprintln!(
                    "[htsim] internal={}M now={}ms queued={} pkts={} drops={} rtx={} timeouts={} flows={}",
                    self.stats.internal_events / 1_000_000,
                    self.now / 1_000_000,
                    self.queue.len(),
                    self.stats.packets_sent,
                    self.stats.drops,
                    self.stats.retransmissions,
                    self.stats.timeouts,
                    self.stats.flows,
                );
            }
            match ev {
                Ev::Emit { op, done } => {
                    return Some(if done {
                        Completion::done(op, t)
                    } else {
                        Completion::cpu_free(op, t)
                    });
                }
                Ev::TxDone(p) => self.on_tx_done(p),
                Ev::Arrive { port, pkt } => self.on_arrive(port, pkt),
                Ev::Timeout { flow, gen } => {
                    // Lazily cancelled timers (completed flows, superseded
                    // chains) die here without touching flow state.
                    let f = &self.flows[flow as usize];
                    if !f.complete && gen == f.timeout_gen {
                        self.stats.timeouts += 1;
                        self.on_timeout(flow, gen);
                    }
                }
                Ev::PullTick { host } => self.on_pull_tick(host),
                Ev::Fault { idx, start } => self.on_fault(idx, start),
                Ev::LocalDone { flow } => {
                    let (op, recv_op) = {
                        let f = &mut self.flows[flow as usize];
                        f.complete_time = Some(self.now);
                        (f.op, f.recv_op)
                    };
                    self.push(self.now, Ev::Emit { op, done: true });
                    if let Some(r) = recv_op {
                        self.push(self.now + self.cfg.host_o, Ev::Emit { op: r, done: true });
                    }
                }
            }
        }
        None
    }
}

impl HtsimBackend {
    fn send_inner(&mut self, op: OpRef, dst: Rank, bytes: u64, tag: Tag) {
        let key: MatchKey = (op.rank, dst, tag);
        self.push(self.now + self.cfg.host_o, Ev::Emit { op, done: false });
        let fid = self.flows.len() as u32;
        self.stats.flows += 1;

        if op.rank == dst {
            // Intra-node message: no fabric traversal (Stage 4 normally
            // replaces these with calcs; handle gracefully if present).
            let mut f = self.make_flow(fid, op, dst, bytes, true);
            f.complete = true;
            self.flows.push(f);
            if let Some((recv_op, _)) = self.matcher.offer_send(key, fid) {
                self.flows[fid as usize].recv_op = Some(recv_op);
            }
            self.push(self.now + self.cfg.host_o, Ev::LocalDone { flow: fid });
            return;
        }

        let f = self.make_flow(fid, op, dst, bytes, false);
        let rto = f.rto;
        self.flows.push(f);
        if let Some((recv_op, _)) = self.matcher.offer_send(key, fid) {
            self.flows[fid as usize].recv_op = Some(recv_op);
        }
        self.try_send(fid);
        self.push(self.now + rto, Ev::Timeout { flow: fid, gen: 0 });
    }

    fn recv_inner(&mut self, op: OpRef, src: Rank, _bytes: u64, tag: Tag) {
        let key: MatchKey = (src, op.rank, tag);
        self.push(self.now, Ev::Emit { op, done: false });
        if let Some(fid) = self.matcher.offer_recv(key, (op, self.now)) {
            let complete = self.flows[fid as usize].complete_time;
            match complete {
                Some(_t) => {
                    self.push(self.now + self.cfg.host_o, Ev::Emit { op, done: true });
                }
                None => {
                    self.flows[fid as usize].recv_op = Some(op);
                }
            }
        }
    }

    fn make_flow(&mut self, _fid: u32, op: OpRef, dst: Rank, bytes: u64, local: bool) -> Flow {
        let bytes = bytes.max(1);
        let mtu = self.cfg.mtu as u64;
        let npkts = bytes.div_ceil(mtu) as u32;
        let (path, rpath, salt, rto, cc) = if local {
            (PathRef::EMPTY, PathRef::EMPTY, 0, 0, CcState::new(self.cfg.cc, self.cfg.mtu, 1, 1))
        } else {
            let salt = self.rng.random::<u64>();
            let path = self.topo.route_ref(op.rank, dst, salt);
            let rpath = self.topo.route_ref(dst, op.rank, salt);
            let base_rtt =
                self.topo.base_rtt(self.topo.path(path), self.topo.path(rpath), self.cfg.mtu);
            let host_rate = self.ports[op.rank as usize].rate;
            // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
            let bdp = (base_rtt as f64 * host_rate) as u64;
            let rto = if self.cfg.rto_ns > 0 {
                self.cfg.rto_ns
            } else {
                // det-lint: allow(float) — fixed-order IEEE-754 rate/window math, bit-stable; pinned by determinism goldens
                3 * base_rtt + (10.0 * mtu as f64 / host_rate) as u64
            };
            let cc = CcState::new(self.cfg.cc, self.cfg.mtu, base_rtt, bdp);
            (path, rpath, salt, rto, cc)
        };
        Flow {
            op,
            src: op.rank,
            dst,
            bytes,
            npkts,
            path,
            rpath,
            salt,
            rto,
            rto_base: rto.max(1),
            timeout_gen: 0,
            cc,
            next_idx: 0,
            acked: Bitmap::new(npkts),
            inflight: 0,
            rtx: VecDeque::new(),
            in_rtx: Bitmap::new(npkts),
            fault_lost: Bitmap::new(npkts),
            send_ts: vec![0; npkts as usize].into_boxed_slice(),
            last_activity: self.now,
            rcvd: Bitmap::new(npkts),
            rcvd_count: 0,
            complete: false,
            complete_time: None,
            recv_op: None,
            start: self.now,
        }
    }

    // ---- branch overrides ----------------------------------------------

    /// Switch the congestion-control algorithm mid-run (what-if branch
    /// override). Flows created after the call use the new algorithm;
    /// flows already in flight keep their window state but inherit the
    /// new trim-vs-drop admission behavior. The active algorithm is part
    /// of the snapshot state, so a later [`Snapshot::restore`] undoes the
    /// switch.
    pub fn set_cc(&mut self, cc: CcAlgo) {
        self.cfg.cc = cc;
    }

    /// Switch the per-packet stochastic link model mid-run (what-if
    /// branch override, `--branch loss:...` / `--branch jitter:...`).
    /// Packets already on the wire are unaffected; the next packet to
    /// finish transmitting on each port draws from the new model at the
    /// port's current counter position. The active model is part of the
    /// snapshot state, so a later [`Snapshot::restore`] undoes the
    /// switch.
    pub fn set_link_model(&mut self, model: LinkModel) {
        self.cfg.link_model = model;
    }

    /// Advance a port's stochastic draw counter by `n` without
    /// transmitting anything — deliberately desynchronizing the draw
    /// stream. This exists purely as a verification hook: the
    /// snapshot-identity meta-tests use it to emulate an engine that
    /// *fails* to carry draw counters across restore, proving those
    /// tests detect stream misalignment. Never called by the engine.
    #[doc(hidden)]
    pub fn skip_stochastic_draws(&mut self, port: u32, n: u64) {
        self.ports[port as usize].draws += n;
    }

    /// Inject a fault window into a *running* simulation (what-if branch
    /// override). The window is clamped to open no earlier than `now`;
    /// windows that would close at or before that are ignored. Unlike the
    /// windows in [`HtsimConfig::faults`] (scheduled at reset, before any
    /// traffic), injected windows enter the queue at call time — their
    /// tie-break order against same-timestamp traffic reflects the
    /// injection point, which is exactly the straight-through-equivalent
    /// semantics the branch executor verifies.
    pub fn inject_fault(&mut self, mut f: PortFault) {
        assert!(
            (f.port as usize) < self.ports.len(),
            "fault targets port {} but topology has {} ports",
            f.port,
            self.ports.len()
        );
        f.start_ns = f.start_ns.max(self.now);
        if f.end_ns <= f.start_ns {
            return;
        }
        let idx = self.cfg.faults.len() as u32;
        self.cfg.faults.push(f);
        self.queue.push(f.start_ns, Ev::Fault { idx, start: true });
        self.queue.push(f.end_ns, Ev::Fault { idx, start: false });
    }
}

/// The packet engine's complete mutable state: every port's queue and
/// link parameters (fault windows mutate them), every flow, the event
/// queue (cursor and tie-break sequence included), the clock, the RNG,
/// the message matcher, NDP pull pacers, counters, and flow records.
///
/// The fault table, active CC algorithm, and stochastic link model are
/// captured too — although they live in [`HtsimConfig`], branch
/// overrides ([`set_cc`], [`inject_fault`], [`set_link_model`]) mutate
/// them mid-run, and in-queue fault events index into the fault table,
/// so restore must bring the table back in sync with the captured
/// queue. The per-port stochastic draw counters ride in `ports`, which
/// is what makes a run restored mid-loss resume the exact per-packet
/// draw sequence.
///
/// [`set_cc`]: HtsimBackend::set_cc
/// [`inject_fault`]: HtsimBackend::inject_fault
/// [`set_link_model`]: HtsimBackend::set_link_model
#[derive(Clone)]
pub struct HtsimState {
    ports: Vec<Port>,
    flows: Vec<Flow>,
    queue: EventQueue<Ev>,
    now: Time,
    rng: StdRng,
    matcher: Matcher<u32, (OpRef, Time)>,
    pacers: Vec<PullPacer>,
    stats: NetStats,
    records: Vec<FlowRecord>,
    faults: Vec<PortFault>,
    cc: CcAlgo,
    link_model: LinkModel,
}

impl Snapshot for HtsimBackend {
    type State = HtsimState;

    fn checkpoint(&self) -> HtsimState {
        HtsimState {
            ports: self.ports.clone(),
            flows: self.flows.clone(),
            queue: self.queue.clone(),
            now: self.now,
            rng: self.rng.clone(),
            matcher: self.matcher.clone(),
            pacers: self.pacers.clone(),
            stats: self.stats,
            records: self.records.clone(),
            faults: self.cfg.faults.clone(),
            cc: self.cfg.cc,
            link_model: self.cfg.link_model,
        }
    }

    fn restore(&mut self, state: &HtsimState) {
        self.ports = state.ports.clone();
        self.flows = state.flows.clone();
        self.queue = state.queue.clone();
        self.now = state.now;
        self.rng = state.rng.clone();
        self.matcher = state.matcher.clone();
        self.pacers = state.pacers.clone();
        self.stats = state.stats;
        self.records = state.records.clone();
        self.cfg.faults = state.faults.clone();
        self.cfg.cc = state.cc;
        self.cfg.link_model = state.link_model;
    }
}
