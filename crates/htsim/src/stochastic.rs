//! Per-packet stochastic link models: seeded random loss and latency
//! jitter evaluated in the forwarding hot path.
//!
//! Where `fault.rs` precompiles *timed windows* (a port is down or
//! degraded between two instants, scheduled as events before traffic
//! starts), a [`LinkModel`] makes a fresh decision for **every packet**
//! that finishes transmitting on a port: drop it with a per-tier
//! probability in parts-per-million, and/or delay its arrival by a
//! sample from one of the `atlahs_core::faultgen` Q32 fixed-point
//! distributions (exponential, Weibull, uniform).
//!
//! # Counter-based draw streams
//!
//! The engine must stay bit-identical across re-runs, thread counts,
//! and — critically — snapshot/restore (the branch-and-continue
//! contract). A shared RNG stream would break all three: the ECN
//! marker already owns the engine's `StdRng`, and any draw order that
//! depends on scheduling would not survive a checkpoint. Instead every
//! port keeps a monotone **draw counter**; packet `n` leaving port `p`
//! draws `fnv_draw2(seed, "loss", p, n)` and, independently,
//! `fnv_draw2(seed, "jitter", p, n)`. The counters travel in
//! `HtsimState`, so a run restored mid-loss resumes the exact draw
//! sequence, and an inactive model consumes **zero** draws — the empty
//! spec is byte-identical to an engine without the layer.
//!
//! The spec half of this module ([`LinkModelSpec`]) is the `loss:` /
//! `jitter:` token family both grids parse; it is seedless and
//! label-stable so cell keys and fault sub-seed derivation
//! (`cell_seed(cell_seed, label)`) work exactly like the timed fault
//! axis.

use atlahs_core::faultgen::{fnv_draw2, Distribution};

/// Which link tier a loss probability applies to. "Core" is any port
/// the topology marks as core-facing (`Port::is_core`); "edge" is
/// everything else, including host NICs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LossTier {
    /// Every port drops with the same probability.
    #[default]
    All,
    /// Only core-facing ports drop.
    Core,
    /// Only edge/host-facing ports drop.
    Edge,
}

/// The engine-facing per-packet stochastic model. [`Default`] is the
/// inactive model: no loss, no jitter, zero draws consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkModel {
    /// Loss probability on core-facing ports, in parts per million.
    pub core_loss_ppm: u32,
    /// Loss probability on edge/host-facing ports, in parts per million.
    pub edge_loss_ppm: u32,
    /// Extra per-packet wire latency, sampled per packet; `None`
    /// disables jitter.
    pub jitter: Option<Distribution>,
    /// Seed of the draw streams. Independent from the engine's
    /// `StdRng` seed: the grid layer derives it from the cell seed and
    /// the fault label, so a lossy cell never perturbs the ECN stream.
    pub seed: u64,
}

impl LinkModel {
    /// Whether the model can affect any packet. The hot path consults
    /// this before touching a draw counter, so an inactive model is
    /// free *and* draw-free.
    pub fn active(&self) -> bool {
        self.core_loss_ppm > 0 || self.edge_loss_ppm > 0 || self.jitter.is_some()
    }

    /// The loss probability (ppm) for a port of the given tier.
    pub fn loss_ppm(&self, is_core: bool) -> u32 {
        if is_core {
            self.core_loss_ppm
        } else {
            self.edge_loss_ppm
        }
    }

    /// Per-packet loss decision for draw `n` of port `port`: map the
    /// draw's top 32 bits to `[0, 1_000_000)` and compare against the
    /// tier's ppm. Pure, so re-evaluating after a restore with the
    /// same counter reproduces the decision bit for bit.
    pub fn drops(&self, port: u32, n: u64, is_core: bool) -> bool {
        let ppm = self.loss_ppm(is_core);
        if ppm == 0 {
            return false;
        }
        let draw = fnv_draw2(self.seed, "loss", port as u64, n);
        ((draw >> 32) * 1_000_000) >> 32 < ppm as u64
    }

    /// Per-packet jitter sample (ns) for draw `n` of port `port`; 0
    /// when jitter is disabled (or the sample lands on 0).
    pub fn jitter_ns(&self, port: u32, n: u64) -> u64 {
        match self.jitter {
            None => 0,
            Some(dist) => dist.sample(fnv_draw2(self.seed, "jitter", port as u64, n)),
        }
    }
}

/// A seedless `loss:` / `jitter:` grid token — the spec form of a
/// [`LinkModel`], analogous to the grid layer's timed `FaultSpec`s:
/// label-stable (labels suffix cell keys and seed the draw streams via
/// `cell_seed(cell_seed, label)`), validated at parse time, and lowered
/// to the engine model with [`LinkModelSpec::model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkModelSpec {
    /// Random per-packet loss at `ppm` parts per million on the given
    /// tier. Labels: `loss:<ppm>`, `loss:<ppm>:core`, `loss:<ppm>:edge`.
    Loss {
        /// Drop probability in parts per million, in `[1, 999_999]`.
        ppm: u32,
        /// Which ports drop.
        tier: LossTier,
    },
    /// Per-packet latency jitter. Labels: `jitter:exp:<mean_ns>`,
    /// `jitter:weibull:<scale_ns>:<shape>`, `jitter:uniform:<max_ns>`.
    Jitter {
        /// The jitter distribution (always one of the faultgen Q32
        /// samplers).
        dist: Distribution,
    },
}

impl LinkModelSpec {
    /// The canonical token, used verbatim as the cell-key suffix and as
    /// the draw-seed derivation label. `parse(label())` roundtrips.
    pub fn label(&self) -> String {
        match *self {
            LinkModelSpec::Loss { ppm, tier } => match tier {
                LossTier::All => format!("loss:{ppm}"),
                LossTier::Core => format!("loss:{ppm}:core"),
                LossTier::Edge => format!("loss:{ppm}:edge"),
            },
            LinkModelSpec::Jitter { dist } => match dist {
                Distribution::Exp { mean_ns } => format!("jitter:exp:{mean_ns}"),
                Distribution::Weibull { scale_ns, shape } => {
                    format!("jitter:weibull:{scale_ns}:{shape}")
                }
                Distribution::Uniform { max_ns } => format!("jitter:uniform:{max_ns}"),
            },
        }
    }

    /// Parse a `loss:` / `jitter:` token. Returns `None` when the token
    /// is not from this family (so callers can fall through to the
    /// timed-fault grammar), `Some(Err(..))` when it is but is
    /// malformed or degenerate.
    pub fn parse(tok: &str) -> Option<Result<Self, String>> {
        let parts: Vec<&str> = tok.split(':').collect();
        match parts.as_slice() {
            ["loss", rest @ ..] => Some(Self::parse_loss(tok, rest)),
            ["jitter", rest @ ..] => Some(Self::parse_jitter(tok, rest)),
            _ => None,
        }
    }

    fn parse_loss(tok: &str, rest: &[&str]) -> Result<Self, String> {
        let (ppm_s, tier) = match rest {
            [ppm] => (ppm, LossTier::All),
            [ppm, "core"] => (ppm, LossTier::Core),
            [ppm, "edge"] => (ppm, LossTier::Edge),
            [_, t] => {
                return Err(format!(
                    "fault `{tok}`: unknown loss tier `{t}` — use `core`, `edge`, or omit \
                     the tier for all links"
                ))
            }
            _ => return Err(format!("fault `{tok}`: expected loss:<ppm>[:core|:edge]")),
        };
        let ppm: u32 = ppm_s.parse().map_err(|_| format!("fault `{tok}`: bad ppm `{ppm_s}`"))?;
        if ppm == 0 {
            return Err(format!(
                "fault `{tok}`: loss is in parts per million and must be >= 1 — a 0 ppm \
                 model is the clean fabric; drop the token instead"
            ));
        }
        if ppm >= 1_000_000 {
            return Err(format!(
                "fault `{tok}`: loss must be < 1_000_000 ppm — a link that drops every \
                 packet is an outage, not noise; model it with linkflap/markov/rackfail"
            ));
        }
        Ok(LinkModelSpec::Loss { ppm, tier })
    }

    fn parse_jitter(tok: &str, rest: &[&str]) -> Result<Self, String> {
        let zero_scale = |what: &str| {
            format!(
                "fault `{tok}`: jitter {what} must be >= 1 ns — a zero-scale distribution \
                 never perturbs a timestamp; drop the token instead"
            )
        };
        let dist = match rest {
            ["exp", mean] => {
                let mean_ns: u64 =
                    mean.parse().map_err(|_| format!("fault `{tok}`: bad mean `{mean}`"))?;
                if mean_ns == 0 {
                    return Err(zero_scale("mean"));
                }
                Distribution::Exp { mean_ns }
            }
            ["weibull", scale, shape] => {
                let scale_ns: u64 =
                    scale.parse().map_err(|_| format!("fault `{tok}`: bad scale `{scale}`"))?;
                let shape: u32 =
                    shape.parse().map_err(|_| format!("fault `{tok}`: bad shape `{shape}`"))?;
                if scale_ns == 0 {
                    return Err(zero_scale("scale"));
                }
                if !(1..=16).contains(&shape) {
                    return Err(format!(
                        "fault `{tok}`: weibull shape must be in [1, 16] (shape 1 is the \
                         exponential)"
                    ));
                }
                Distribution::Weibull { scale_ns, shape }
            }
            ["uniform", max] => {
                let max_ns: u64 =
                    max.parse().map_err(|_| format!("fault `{tok}`: bad max `{max}`"))?;
                if max_ns == 0 {
                    return Err(zero_scale("max"));
                }
                Distribution::Uniform { max_ns }
            }
            _ => {
                return Err(format!(
                    "fault `{tok}`: expected jitter:exp:<mean_ns>, \
                     jitter:weibull:<scale_ns>:<shape>, or jitter:uniform:<max_ns>"
                ))
            }
        };
        Ok(LinkModelSpec::Jitter { dist })
    }

    /// Lower the spec to the engine model with the given draw seed
    /// (the grid layer passes the fault sub-seed,
    /// `cell_seed(cell.seed, label)`).
    pub fn model(&self, seed: u64) -> LinkModel {
        match *self {
            LinkModelSpec::Loss { ppm, tier } => {
                let (core, edge) = match tier {
                    LossTier::All => (ppm, ppm),
                    LossTier::Core => (ppm, 0),
                    LossTier::Edge => (0, ppm),
                };
                LinkModel { core_loss_ppm: core, edge_loss_ppm: edge, jitter: None, seed }
            }
            LinkModelSpec::Jitter { dist } => {
                LinkModel { core_loss_ppm: 0, edge_loss_ppm: 0, jitter: Some(dist), seed }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_model_is_free_and_draw_free() {
        let m = LinkModel::default();
        assert!(!m.active());
        assert!(!m.drops(0, 0, true) && !m.drops(0, 0, false));
        assert_eq!(m.jitter_ns(0, 0), 0);
    }

    #[test]
    fn loss_rate_tracks_ppm_per_tier() {
        let m = LinkModel { core_loss_ppm: 200_000, edge_loss_ppm: 0, jitter: None, seed: 7 };
        assert!(m.active());
        let n = 50_000u64;
        let core_drops = (0..n).filter(|&i| m.drops(3, i, true)).count() as u64;
        let edge_drops = (0..n).filter(|&i| m.drops(3, i, false)).count() as u64;
        assert_eq!(edge_drops, 0, "edge tier at 0 ppm never drops");
        // 20% ± 1.5% over 50k draws.
        let expect = n / 5;
        assert!(
            core_drops.abs_diff(expect) * 100 <= n * 3 / 2,
            "core drop count {core_drops} far from {expect}"
        );
        // Different ports and seeds draw independently but reproducibly.
        let again = (0..n).filter(|&i| m.drops(3, i, true)).count() as u64;
        assert_eq!(core_drops, again);
        let other_port = (0..n).filter(|&i| m.drops(4, i, true)).count() as u64;
        assert_ne!(
            (0..64).map(|i| m.drops(3, i, true)).collect::<Vec<_>>(),
            (0..64).map(|i| m.drops(4, i, true)).collect::<Vec<_>>(),
        );
        assert!(other_port.abs_diff(expect) * 100 <= n * 3 / 2);
    }

    #[test]
    fn jitter_samples_are_seeded_and_distribution_shaped() {
        let m = LinkModel {
            core_loss_ppm: 0,
            edge_loss_ppm: 0,
            jitter: Some(Distribution::Uniform { max_ns: 1_000 }),
            seed: 9,
        };
        assert!(m.active());
        let a: Vec<u64> = (0..512).map(|i| m.jitter_ns(1, i)).collect();
        assert!(a.iter().all(|&j| j < 1_000));
        assert!(a.iter().any(|&j| j > 0), "a 1 µs uniform cap must produce nonzero jitter");
        assert_eq!(a, (0..512).map(|i| m.jitter_ns(1, i)).collect::<Vec<_>>());
        assert_ne!(a, (0..512).map(|i| m.jitter_ns(2, i)).collect::<Vec<_>>());
    }

    #[test]
    fn spec_labels_roundtrip() {
        for spec in [
            LinkModelSpec::Loss { ppm: 20_000, tier: LossTier::All },
            LinkModelSpec::Loss { ppm: 80_000, tier: LossTier::Core },
            LinkModelSpec::Loss { ppm: 5, tier: LossTier::Edge },
            LinkModelSpec::Jitter { dist: Distribution::Exp { mean_ns: 2_000 } },
            LinkModelSpec::Jitter { dist: Distribution::Weibull { scale_ns: 3_000, shape: 2 } },
            LinkModelSpec::Jitter { dist: Distribution::Uniform { max_ns: 1_500 } },
        ] {
            let label = spec.label();
            assert_eq!(
                LinkModelSpec::parse(&label),
                Some(Ok(spec)),
                "label `{label}` must roundtrip"
            );
        }
        assert_eq!(LinkModelSpec::parse("linkflap:2:5000:60000"), None, "not our family");
        assert_eq!(LinkModelSpec::parse("none"), None);
    }

    #[test]
    fn spec_rejects_degenerate_tokens() {
        let err = |tok: &str| LinkModelSpec::parse(tok).expect("our family").unwrap_err();
        assert!(err("loss:0").contains("must be >= 1"));
        assert!(err("loss:0").contains("clean fabric"));
        assert!(err("loss:1000000").contains("< 1_000_000 ppm"));
        assert!(err("loss:2000000").contains("outage"));
        assert!(err("loss:5:middle").contains("unknown loss tier"));
        assert!(err("loss:banana").contains("bad ppm"));
        assert!(err("jitter:exp:0").contains("zero-scale"));
        assert!(err("jitter:weibull:0:2").contains("zero-scale"));
        assert!(err("jitter:uniform:0").contains("zero-scale"));
        assert!(err("jitter:weibull:100:0").contains("[1, 16]"));
        assert!(err("jitter:weibull:100:17").contains("[1, 16]"));
        assert!(err("jitter:gauss:100").contains("expected jitter:exp"));
    }

    #[test]
    fn model_lowering_maps_tiers_and_seeds() {
        let m = LinkModelSpec::Loss { ppm: 9, tier: LossTier::Core }.model(0xabc);
        assert_eq!((m.core_loss_ppm, m.edge_loss_ppm, m.seed), (9, 0, 0xabc));
        let m = LinkModelSpec::Loss { ppm: 9, tier: LossTier::Edge }.model(1);
        assert_eq!((m.core_loss_ppm, m.edge_loss_ppm), (0, 9));
        let m = LinkModelSpec::Loss { ppm: 9, tier: LossTier::All }.model(1);
        assert_eq!((m.core_loss_ppm, m.edge_loss_ppm), (9, 9));
        let m = LinkModelSpec::Jitter { dist: Distribution::Exp { mean_ns: 5 } }.model(1);
        assert_eq!(m.jitter, Some(Distribution::Exp { mean_ns: 5 }));
        assert!(m.active());
    }
}
