//! # atlahs-htsim
//!
//! The packet-level network backend of the toolchain (the paper's "ATLAHS
//! htsim" configuration): an output-queued, ECN-capable packet simulator
//! with fat-tree topologies, ECMP routing, and the congestion-control
//! algorithms the paper's case studies compare — **MPRDMA**, **Swift**, and
//! **NDP** (plus DCTCP as a reference).
//!
//! Packet-level simulation is what enables the statistics message-level
//! models cannot see: packet drops, trims, queue occupancy, per-message
//! completion times (Fig. 11 and Fig. 12 of the paper are regenerated from
//! [`HtsimBackend::net_stats`] / [`HtsimBackend::flow_records`]).
//!
//! ```
//! use atlahs_core::Simulation;
//! use atlahs_goal::GoalBuilder;
//! use atlahs_htsim::{CcAlgo, HtsimBackend, HtsimConfig, TopologyConfig};
//!
//! let mut b = GoalBuilder::new(2);
//! b.send(0, 1, 64 * 1024, 0);
//! b.recv(1, 0, 64 * 1024, 0);
//! let goal = b.build().unwrap();
//!
//! let cfg = HtsimConfig::new(TopologyConfig::fat_tree(16, 4), CcAlgo::Mprdma);
//! let mut backend = HtsimBackend::new(cfg);
//! let report = Simulation::new(&goal).run(&mut backend).unwrap();
//! assert!(report.makespan > 0);
//! ```

#![forbid(unsafe_code)]

pub mod cc;
pub mod engine;
pub mod fault;
pub mod stochastic;
pub mod topology;

/// The event core now lives in the shared `atlahs_eventq` crate (both
/// the packet-level and the message-level backends schedule through it);
/// re-exported here so `atlahs_htsim::eventq::EventQueue` keeps working.
pub use atlahs_eventq as eventq;

pub use cc::{CcAlgo, CcState};
pub use engine::{FlowRecord, HtsimBackend, HtsimConfig, NetStats};
pub use eventq::EventQueue;
pub use fault::{select_fault_ports, FaultKind, PortFault};
pub use stochastic::{LinkModel, LinkModelSpec, LossTier};
pub use topology::{LinkParams, PathRef, Topology, TopologyConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use atlahs_core::{SimReport, Simulation};
    use atlahs_goal::{GoalBuilder, GoalSchedule};

    fn run_with(goal: &GoalSchedule, cfg: HtsimConfig) -> (SimReport, HtsimBackend) {
        let mut backend = HtsimBackend::new(cfg);
        let report = Simulation::new(goal).run(&mut backend).expect("no deadlock");
        (report, backend)
    }

    fn ping(bytes: u64) -> GoalSchedule {
        let mut b = GoalBuilder::new(2);
        b.send(0, 1, bytes, 0);
        b.recv(1, 0, bytes, 0);
        b.build().unwrap()
    }

    fn small_switch(cc: CcAlgo) -> HtsimConfig {
        HtsimConfig::new(
            TopologyConfig::SingleSwitch { hosts: 16, link: LinkParams::default() },
            cc,
        )
    }

    #[test]
    fn single_packet_ping_latency_is_sane() {
        // 100 Gb/s = 12.5 B/ns; packet = 4096+64 B -> ~333 ns per hop;
        // 2 hops + 2x500 ns propagation + host overheads.
        let (rep, _) = run_with(&ping(4096), small_switch(CcAlgo::Mprdma));
        assert!(rep.makespan > 1_600, "{}", rep.makespan);
        assert!(rep.makespan < 4_000, "{}", rep.makespan);
    }

    #[test]
    fn large_transfer_approaches_line_rate() {
        let bytes = 8 << 20; // 8 MiB
        let (rep, _) = run_with(&ping(bytes as u64), small_switch(CcAlgo::Mprdma));
        // Ideal: 8 MiB / 12.5 B/ns ≈ 671 µs + header overhead (64/4096 ≈ 1.6%).
        let ideal = (bytes as f64 / 12.5) as u64;
        assert!(rep.makespan > ideal, "can't beat line rate: {}", rep.makespan);
        assert!(
            rep.makespan < ideal * 13 / 10,
            "within 30% of line rate: {} vs {ideal}",
            rep.makespan
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let goal = ping(1 << 20);
        let (r1, _) = run_with(&goal, small_switch(CcAlgo::Swift));
        let (r2, _) = run_with(&goal, small_switch(CcAlgo::Swift));
        assert_eq!(r1.makespan, r2.makespan);
    }

    fn incast(n: u32, bytes: u64) -> GoalSchedule {
        // ranks 1..=n all send to rank 0.
        let mut b = GoalBuilder::new(n as usize + 1);
        for s in 1..=n {
            b.send(s, 0, bytes, s);
            b.recv(0, s, bytes, s);
        }
        b.build().unwrap()
    }

    #[test]
    fn incast_completes_under_all_cc() {
        for cc in [CcAlgo::Mprdma, CcAlgo::Swift, CcAlgo::Ndp, CcAlgo::Dctcp] {
            let goal = incast(8, 256 * 1024);
            let (rep, backend) = run_with(&goal, small_switch(cc));
            assert_eq!(rep.completed, goal.total_tasks(), "{cc}");
            // 8 x 256 KiB into one 100 Gb/s link: >= 2 MiB / 12.5 B/ns.
            assert!(rep.makespan > 150_000, "{cc}: {}", rep.makespan);
            let st = backend.net_stats();
            assert!(st.packets_sent >= 8 * 64, "{cc}");
        }
    }

    #[test]
    fn ndp_trims_instead_of_dropping() {
        let mut cfg = small_switch(CcAlgo::Ndp);
        cfg.queue_bytes = 64 * 1024; // tiny buffers force overflow
        let goal = incast(8, 512 * 1024);
        let (_, backend) = run_with(&goal, cfg);
        let st = backend.net_stats();
        assert!(st.trims > 0, "incast with tiny buffers must trim: {st:?}");
        assert_eq!(st.drops, 0, "NDP never drops data packets");
    }

    #[test]
    fn ecn_marks_appear_under_congestion() {
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.queue_bytes = 256 * 1024;
        let goal = incast(8, 512 * 1024);
        let (_, backend) = run_with(&goal, cfg);
        assert!(backend.net_stats().ecn_marks > 0);
    }

    fn permutation(hosts: u32, bytes: u64) -> GoalSchedule {
        let mut b = GoalBuilder::new(hosts as usize);
        for h in 0..hosts {
            let dst = (h + hosts / 2) % hosts;
            b.send(h, dst, bytes, h);
            b.recv(dst, h, bytes, h);
        }
        b.build().unwrap()
    }

    #[test]
    fn oversubscription_slows_permutation() {
        // ECMP collisions already degrade the fully provisioned case, so
        // the oversubscribed run is compared against the contention-free
        // wire time: 4 flows forced through one uplink cannot beat 4x the
        // line-rate transfer, and must be strictly slower than full
        // provisioning.
        let goal = permutation(16, 1 << 20);
        let full = HtsimConfig::new(TopologyConfig::fat_tree(16, 4), CcAlgo::Mprdma);
        let over =
            HtsimConfig::new(TopologyConfig::fat_tree_oversubscribed(16, 4, 4), CcAlgo::Mprdma);
        let (r_full, _) = run_with(&goal, full);
        let (r_over, _) = run_with(&goal, over);
        let wire_ns = ((1u64 << 20) as f64 / 12.5) as u64;
        assert!(
            r_over.makespan > 4 * wire_ns,
            "4 flows through one uplink: {} vs 4x wire {}",
            r_over.makespan,
            4 * wire_ns
        );
        assert!(r_over.makespan > r_full.makespan);
    }

    #[test]
    fn intra_tor_traffic_unaffected_by_oversubscription() {
        // hosts 0 and 1 share a ToR: no core crossing.
        let goal = ping(1 << 20);
        let full = HtsimConfig::new(TopologyConfig::fat_tree(16, 4), CcAlgo::Mprdma);
        let over =
            HtsimConfig::new(TopologyConfig::fat_tree_oversubscribed(16, 4, 4), CcAlgo::Mprdma);
        let (r_full, _) = run_with(&goal, full);
        let (r_over, _) = run_with(&goal, over);
        assert_eq!(r_full.makespan, r_over.makespan);
    }

    #[test]
    fn flow_records_collected_when_enabled() {
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.collect_flows = true;
        let goal = incast(4, 64 * 1024);
        let (_, backend) = run_with(&goal, cfg);
        let recs = backend.flow_records();
        assert_eq!(recs.len(), 4);
        for r in recs {
            assert_eq!(r.bytes, 64 * 1024);
            assert!(r.duration() > 0);
            assert_eq!(r.dst, 0);
        }
    }

    #[test]
    fn collective_runs_on_packet_backend() {
        use atlahs_collectives::{mpi, CollParams};
        let ranks: Vec<u32> = (0..8).collect();
        let mut b = GoalBuilder::new(8);
        mpi::allreduce_ring(&mut b, &ranks, 1 << 18, 0, &CollParams::default());
        let goal = b.build().unwrap();
        let cfg = HtsimConfig::new(TopologyConfig::fat_tree(8, 4), CcAlgo::Mprdma);
        let (rep, backend) = run_with(&goal, cfg);
        assert_eq!(rep.completed, goal.total_tasks());
        assert!(backend.net_stats().drops == 0, "no drops expected at this load");
    }

    #[test]
    fn drops_recovered_by_timeout() {
        // Non-NDP with tiny buffers: drops happen, RTO must recover them.
        let mut cfg = small_switch(CcAlgo::Dctcp);
        cfg.queue_bytes = 32 * 1024;
        let goal = incast(8, 256 * 1024);
        let (rep, backend) = run_with(&goal, cfg);
        assert_eq!(rep.completed, goal.total_tasks());
        assert!(backend.net_stats().drops > 0, "expected drops with 32 KiB buffers");
    }

    #[test]
    fn local_send_completes_without_network() {
        let mut b = GoalBuilder::new(2);
        b.send(0, 0, 4096, 0);
        b.recv(0, 0, 4096, 0);
        let goal = b.build().unwrap();
        let (rep, backend) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        assert_eq!(rep.completed, 2);
        assert_eq!(backend.net_stats().packets_sent, 0);
    }

    #[test]
    fn swift_and_mprdma_similar_on_uncongested_path() {
        let goal = ping(1 << 20);
        let (a, _) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let (b, _) = run_with(&goal, small_switch(CcAlgo::Swift));
        let ratio = a.makespan as f64 / b.makespan as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "uncongested: CC choice should not matter much ({} vs {})",
            a.makespan,
            b.makespan
        );
    }

    /// Regression: a retransmitted packet that is dropped *again* must be
    /// requeued by the next timeout. (The `in_rtx` marker used to stay
    /// set after the retransmission was sent, so a twice-dropped packet
    /// could never be retried and its flow's timeout respawned forever.)
    #[test]
    fn repeatedly_dropped_packets_eventually_deliver() {
        // Brutal incast into 16 KiB buffers: many packets drop several
        // times. The run must still complete, with retransmissions
        // counted and simulated time bounded (no timeout livelock).
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.queue_bytes = 16 * 1024;
        let goal = incast(12, 256 * 1024);
        let (rep, backend) = run_with(&goal, cfg);
        assert_eq!(rep.completed, goal.total_tasks());
        let st = backend.net_stats();
        assert!(st.drops > 100, "this scenario must drop heavily: {st:?}");
        assert!(st.retransmissions > 0, "drops imply retransmissions: {st:?}");
        assert!(
            rep.makespan < 1_000_000_000,
            "timeout livelock: sim time exploded to {} ns",
            rep.makespan
        );
    }

    #[test]
    fn retransmissions_only_under_loss() {
        let (_, clean) = run_with(&ping(1 << 20), small_switch(CcAlgo::Mprdma));
        assert_eq!(clean.net_stats().retransmissions, 0);
        assert_eq!(clean.net_stats().drops, 0);
    }

    #[test]
    fn timeouts_stop_after_completion() {
        // Timeout events stop respawning once flows complete: the total
        // count stays within a small multiple of the flow count.
        let goal = incast(8, 64 * 1024);
        let (_, backend) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let st = backend.net_stats();
        assert!(st.timeouts <= 20 * st.flows, "timer events must be bounded per flow: {st:?}");
    }

    #[test]
    fn ndp_recovers_trims_via_nack_and_pull() {
        let mut cfg = small_switch(CcAlgo::Ndp);
        cfg.queue_bytes = 32 * 1024;
        let goal = incast(12, 256 * 1024);
        let (rep, backend) = run_with(&goal, cfg);
        assert_eq!(rep.completed, goal.total_tasks());
        let st = backend.net_stats();
        assert!(st.trims > 0);
        assert!(st.retransmissions > 0, "trimmed payloads are resent: {st:?}");
    }

    #[test]
    fn max_queue_stat_respects_capacity() {
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.queue_bytes = 128 * 1024;
        let goal = incast(8, 512 * 1024);
        let (_, backend) = run_with(&goal, cfg);
        let st = backend.net_stats();
        assert!(st.max_queue_bytes > 0);
        assert!(
            st.max_queue_bytes <= 128 * 1024 + 4160,
            "occupancy may exceed cap by at most one packet: {st:?}"
        );
    }

    #[test]
    fn spraying_removes_ecmp_collision_hotspots() {
        // Cross-ToR permutation on a fully provisioned fat tree: per-flow
        // ECMP suffers hash collisions (some uplink carries 2+ flows);
        // per-packet spraying spreads every flow over all uplinks and
        // approaches the contention-free wire time.
        let goal = permutation(16, 4 << 20);
        let wire_ns = ((4u64 << 20) as f64 / 12.5) as u64;
        let mk = |spray: bool| {
            let mut cfg = HtsimConfig::new(TopologyConfig::fat_tree(16, 4), CcAlgo::Mprdma);
            cfg.spray = spray;
            cfg
        };
        let (hashed, _) = run_with(&goal, mk(false));
        let (sprayed, _) = run_with(&goal, mk(true));
        assert!(
            sprayed.makespan < hashed.makespan,
            "spraying must not be slower: {} vs {}",
            sprayed.makespan,
            hashed.makespan
        );
        assert!(
            (sprayed.makespan as f64) < wire_ns as f64 * 1.4,
            "sprayed permutation should run near line rate: {} vs wire {wire_ns}",
            sprayed.makespan
        );
    }

    #[test]
    fn spraying_is_deterministic_and_complete() {
        let goal = permutation(16, 1 << 20);
        let mut cfg = HtsimConfig::new(TopologyConfig::fat_tree(16, 4), CcAlgo::Mprdma);
        cfg.spray = true;
        let (r1, b1) = run_with(&goal, cfg.clone());
        let (r2, _) = run_with(&goal, cfg);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.completed, goal.total_tasks());
        assert_eq!(b1.net_stats().drops, 0, "no drops expected when spread evenly");
    }

    #[test]
    fn event_core_stays_on_the_fast_tiers() {
        // The zero-allocation contract in steady state: packet events
        // (serialization, propagation, acks) live in the O(1) lane and
        // the wheel; only far-future timers and compute releases may
        // overflow into the heap tier.
        let goal = permutation(16, 4 << 20);
        let (_, backend) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let qs = backend.queue_stats();
        let total = qs.lane_pushes + qs.wheel_pushes + qs.heap_pushes;
        assert!(total > 10_000, "expected a packet-heavy run: {qs:?}");
        assert!(qs.heap_pushes * 100 <= total, "heap tier must stay <1% of pushes: {qs:?}");
    }

    // ---- fault injection --------------------------------------------

    /// A transient link-down window blackholes traffic mid-transfer; the
    /// retransmission machinery must deliver every byte once the window
    /// closes, and the run must end no earlier than the fault-free one.
    #[test]
    fn link_flap_recovers_and_slows_the_run() {
        let goal = ping(2 << 20);
        let (clean, _) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let mut cfg = small_switch(CcAlgo::Mprdma);
        // Port 0 is host 0's uplink: flap it squarely inside the transfer.
        cfg.faults.push(PortFault {
            port: 0,
            start_ns: 20_000,
            end_ns: 80_000,
            kind: FaultKind::Down,
        });
        let (faulty, backend) = run_with(&goal, cfg);
        assert_eq!(faulty.completed, goal.total_tasks(), "flap must be recovered");
        let st = backend.net_stats();
        assert!(st.fault_drops > 0, "the window must actually bite: {st:?}");
        assert!(st.retransmissions > 0, "blackholed packets are resent: {st:?}");
        assert!(
            faulty.makespan > clean.makespan,
            "a 60 µs outage cannot speed the run up: {} vs {}",
            faulty.makespan,
            clean.makespan
        );
    }

    #[test]
    fn degraded_link_slows_the_run_without_loss() {
        let goal = ping(2 << 20);
        let (clean, _) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let mut cfg = small_switch(CcAlgo::Mprdma);
        // Quarter bandwidth, 4x latency for most of the transfer.
        cfg.faults.push(PortFault {
            port: 0,
            start_ns: 0,
            end_ns: 1_000_000,
            kind: FaultKind::Degrade { bw_pct: 25, lat_pct: 400 },
        });
        let (faulty, backend) = run_with(&goal, cfg);
        assert_eq!(faulty.completed, goal.total_tasks());
        assert_eq!(backend.net_stats().fault_drops, 0, "degradation never discards");
        assert!(
            faulty.makespan > clean.makespan * 2,
            "quarter rate must at least double the transfer: {} vs {}",
            faulty.makespan,
            clean.makespan
        );
    }

    #[test]
    fn degrade_window_end_restores_nominal_rate() {
        // A degrade window that closes before the transfer starts must
        // leave the port at nominal parameters: same makespan as clean.
        let goal = ping(1 << 20);
        let (clean, _) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.faults.push(PortFault {
            port: 0,
            start_ns: 0,
            end_ns: 1,
            kind: FaultKind::Degrade { bw_pct: 10, lat_pct: 1000 },
        });
        let (faulty, _) = run_with(&goal, cfg);
        assert_eq!(faulty.makespan, clean.makespan);
    }

    #[test]
    fn empty_fault_list_is_bit_identical_to_no_faults() {
        let goal = incast(8, 256 * 1024);
        let (a, ba) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let cfg = small_switch(CcAlgo::Mprdma); // faults: Vec::new()
        let (b, bb) = run_with(&goal, cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(ba.net_stats(), bb.net_stats());
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let goal = incast(6, 512 * 1024);
        let mk = || {
            let mut cfg = small_switch(CcAlgo::Ndp);
            cfg.faults.push(PortFault {
                port: 6, // sender 6's uplink into the switch
                start_ns: 50_000,
                end_ns: 120_000,
                kind: FaultKind::Down,
            });
            cfg
        };
        let (r1, b1) = run_with(&goal, mk());
        let (r2, b2) = run_with(&goal, mk());
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(b1.net_stats(), b2.net_stats());
        assert!(b1.net_stats().fault_drops > 0);
    }

    // ---- checkpoint / restore ---------------------------------------

    /// Pause → checkpoint → resume must be byte-identical to running
    /// straight through, including the RNG-driven parts (ECN marking,
    /// ECMP salts) and per-flow records — on a congested, lossy run.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        use atlahs_core::{RunState, SimDriver, Snapshot};
        let goal = incast(8, 256 * 1024);
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.queue_bytes = 64 * 1024; // force drops + ECN draws
        cfg.collect_flows = true;
        let (straight, sb) = run_with(&goal, cfg.clone());
        let straight_stats = sb.net_stats();

        for bound in [1, 50_000, straight.makespan / 2] {
            let mut b = HtsimBackend::new(cfg.clone());
            let mut driver = SimDriver::start(&goal, &mut b);
            assert_eq!(driver.run_until(&mut b, bound).unwrap(), RunState::Paused);
            let snap = b.checkpoint();
            let fork_driver = driver.clone();
            let original = driver.finish(&mut b).unwrap();
            assert_eq!(original.makespan, straight.makespan, "bound {bound}");
            assert_eq!(b.net_stats(), straight_stats, "bound {bound}");
            assert_eq!(b.flow_records(), sb.flow_records(), "bound {bound}");

            b.restore(&snap);
            let fork = fork_driver.finish(&mut b).unwrap();
            assert_eq!(fork.makespan, straight.makespan, "fork at {bound}");
            assert_eq!(b.net_stats(), straight_stats, "fork at {bound}");
            assert_eq!(b.flow_records(), sb.flow_records(), "fork at {bound}");
        }
    }

    /// Checkpoint/resume composes with fault windows already in flight:
    /// pausing *inside* a down window and restoring must replay the
    /// recovery byte-for-byte.
    #[test]
    fn checkpoint_resume_inside_a_fault_window() {
        use atlahs_core::{RunState, SimDriver, Snapshot};
        let goal = ping(2 << 20);
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.faults.push(PortFault {
            port: 0,
            start_ns: 20_000,
            end_ns: 80_000,
            kind: FaultKind::Down,
        });
        let (straight, sb) = run_with(&goal, cfg.clone());
        assert!(sb.net_stats().fault_drops > 0);

        let mut b = HtsimBackend::new(cfg);
        let mut driver = SimDriver::start(&goal, &mut b);
        assert_eq!(driver.run_until(&mut b, 50_000).unwrap(), RunState::Paused);
        let snap = b.checkpoint();
        let fork_driver = driver.clone();
        assert!(driver.finish(&mut b).is_ok());

        b.restore(&snap);
        let fork = fork_driver.finish(&mut b).unwrap();
        assert_eq!(fork.makespan, straight.makespan);
        assert_eq!(b.net_stats(), sb.net_stats());
    }

    /// Branch override: restoring one checkpoint twice — once clean, once
    /// with an injected fault — yields a clean continuation identical to
    /// the straight-through run and a faulted continuation identical to a
    /// fresh run that injects the same window at the same pause point.
    #[test]
    fn injected_fault_branch_matches_straight_through_injection() {
        use atlahs_core::{RunState, SimDriver, Snapshot};
        // The driver can only pause at completion events, and a bare ping
        // emits none between the host overhead and the flow finish — so
        // rank 2 runs a chain of 5 µs calcs as a pause-point clock.
        let goal = {
            let mut b = GoalBuilder::new(3);
            b.send(0, 1, 2 << 20, 0);
            b.recv(1, 0, 2 << 20, 0);
            let mut prev = None;
            for _ in 0..6 {
                let c = b.calc(2, 5_000);
                if let Some(p) = prev {
                    b.requires(2, c, p);
                }
                prev = Some(c);
            }
            b.build().unwrap()
        };
        let cfg = small_switch(CcAlgo::Mprdma);
        let (clean, _) = run_with(&goal, cfg.clone());
        let window = PortFault { port: 0, start_ns: 30_000, end_ns: 90_000, kind: FaultKind::Down };

        // Reference: fresh run, pause at 25 µs, inject, run to completion.
        let mut rb = HtsimBackend::new(cfg.clone());
        let mut rd = SimDriver::start(&goal, &mut rb);
        assert_eq!(rd.run_until(&mut rb, 25_000).unwrap(), RunState::Paused);
        rb.inject_fault(window);
        let reference = rd.finish(&mut rb).unwrap();
        assert!(rb.net_stats().fault_drops > 0, "the injected window must bite");
        assert!(reference.makespan > clean.makespan);

        // Branched: one prefix, one checkpoint, two continuations.
        let mut b = HtsimBackend::new(cfg);
        let mut driver = SimDriver::start(&goal, &mut b);
        assert_eq!(driver.run_until(&mut b, 25_000).unwrap(), RunState::Paused);
        let snap = b.checkpoint();

        let faulted_driver = driver.clone();
        let clean_branch = driver.finish(&mut b).unwrap();
        assert_eq!(clean_branch.makespan, clean.makespan);

        b.restore(&snap);
        b.inject_fault(window);
        let faulted_branch = faulted_driver.finish(&mut b).unwrap();
        assert_eq!(faulted_branch.makespan, reference.makespan);
        assert_eq!(b.net_stats(), rb.net_stats());
    }

    // ---- per-packet stochastic link models ---------------------------

    fn loss_model(ppm: u32, seed: u64) -> LinkModel {
        LinkModel { core_loss_ppm: ppm, edge_loss_ppm: ppm, jitter: None, seed }
    }

    #[test]
    fn inactive_link_model_is_bit_identical_and_draw_free() {
        let goal = incast(8, 256 * 1024);
        let (a, ba) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.link_model = LinkModel::default(); // explicit inactive model
        let (b, bb) = run_with(&goal, cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(ba.net_stats(), bb.net_stats());
        assert_eq!(ba.net_stats().stochastic_draws, 0, "no model ⇒ no draws consumed");
        assert_eq!(ba.net_stats().stochastic_drops, 0);
    }

    #[test]
    fn stochastic_loss_bites_recovers_and_reruns_identically() {
        let goal = ping(2 << 20);
        let (clean, cb) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let mk = || {
            let mut cfg = small_switch(CcAlgo::Mprdma);
            cfg.link_model = loss_model(50_000, 0xbeef); // 5% everywhere
            cfg
        };
        let (faulty, b1) = run_with(&goal, mk());
        assert_eq!(faulty.completed, goal.total_tasks(), "all bytes delivered under 5% loss");
        let st = b1.net_stats();
        assert!(st.stochastic_draws > 0);
        assert!(st.stochastic_drops > 0, "5% of a 500+ packet transfer must drop: {st:?}");
        assert!(st.rtx_fault_drop > 0, "stochastic losses are attributed to the fault: {st:?}");
        assert!(faulty.makespan > clean.makespan, "recovery takes time");
        // Same seed ⇒ bit-identical; different model seed ⇒ different run.
        let (again, b2) = run_with(&goal, mk());
        assert_eq!(faulty.makespan, again.makespan);
        assert_eq!(b1.net_stats(), b2.net_stats());
        let mut other = small_switch(CcAlgo::Mprdma);
        other.link_model = loss_model(50_000, 0xbef0);
        let (_, b3) = run_with(&goal, other);
        assert_ne!(b1.net_stats(), b3.net_stats(), "the model seed drives the draws");
        // The clean run is untouched by the layer existing.
        assert_eq!(cb.net_stats().stochastic_draws, 0);
    }

    /// RTO liveness: the window never shrinks below one MTU and the
    /// timer chain always re-arms, so every flow finishes under *any*
    /// loss rate < 100% — exercised here at a brutal 20% on every link
    /// (data, acks, and credits all dropping), on both a timeout-driven
    /// and the receiver-driven (NDP) recovery path.
    #[test]
    fn heavy_stochastic_loss_never_livelocks() {
        for cc in [CcAlgo::Mprdma, CcAlgo::Ndp] {
            let goal = incast(6, 128 * 1024);
            let mut cfg = small_switch(cc);
            cfg.link_model = loss_model(200_000, 7);
            let (rep, backend) = run_with(&goal, cfg);
            assert_eq!(rep.completed, goal.total_tasks(), "{cc}: flows must complete");
            let st = backend.net_stats();
            assert!(st.stochastic_drops > 0, "{cc}: the model must bite: {st:?}");
            assert!(
                rep.makespan < 1_000_000_000,
                "{cc}: RTO livelock — sim time exploded to {} ns",
                rep.makespan
            );
            assert_eq!(
                st.retransmissions,
                st.rtx_timeout + st.rtx_fault_drop,
                "{cc}: every retransmission lands in exactly one bucket: {st:?}"
            );
            assert!(st.goodput_ppm() < 1_000_000, "{cc}: lossy runs burn overhead bytes");
        }
    }

    #[test]
    fn jitter_delays_but_never_drops() {
        use atlahs_core::faultgen::Distribution;
        let goal = ping(1 << 20);
        let (clean, _) = run_with(&goal, small_switch(CcAlgo::Mprdma));
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.link_model = LinkModel {
            core_loss_ppm: 0,
            edge_loss_ppm: 0,
            jitter: Some(Distribution::Exp { mean_ns: 2_000 }),
            seed: 3,
        };
        let (jit, backend) = run_with(&goal, cfg);
        assert_eq!(jit.completed, goal.total_tasks());
        let st = backend.net_stats();
        assert!(st.jittered > 0, "exp(2 µs) jitter must perturb timestamps: {st:?}");
        assert_eq!(st.stochastic_drops, 0, "pure jitter never drops");
        assert_eq!(st.retransmissions, 0, "jitter alone must not trigger spurious RTOs: {st:?}");
        assert!(
            jit.makespan > clean.makespan,
            "per-packet delays accumulate: {} vs {}",
            jit.makespan,
            clean.makespan
        );
    }

    /// The acceptance criterion of the stochastic layer: a lossy run
    /// checkpointed mid-loss, restored, and finished is byte-identical
    /// to the straight-through run — the per-port draw counters travel
    /// in the snapshot.
    #[test]
    fn checkpoint_resume_mid_loss_is_bit_identical() {
        use atlahs_core::faultgen::Distribution;
        use atlahs_core::{RunState, SimDriver, Snapshot};
        let goal = incast(8, 256 * 1024);
        let mut cfg = small_switch(CcAlgo::Mprdma);
        cfg.collect_flows = true;
        cfg.link_model = LinkModel {
            core_loss_ppm: 30_000,
            edge_loss_ppm: 30_000,
            jitter: Some(Distribution::Uniform { max_ns: 1_500 }),
            seed: 0xf00d,
        };
        let (straight, sb) = run_with(&goal, cfg.clone());
        assert!(sb.net_stats().stochastic_drops > 0, "the scenario must be lossy");

        for bound in [1, 50_000, straight.makespan / 2] {
            let mut b = HtsimBackend::new(cfg.clone());
            let mut driver = SimDriver::start(&goal, &mut b);
            assert_eq!(driver.run_until(&mut b, bound).unwrap(), RunState::Paused);
            let snap = b.checkpoint();
            let fork_driver = driver.clone();
            let original = driver.finish(&mut b).unwrap();
            assert_eq!(original.makespan, straight.makespan, "bound {bound}");
            assert_eq!(b.net_stats(), sb.net_stats(), "bound {bound}");

            b.restore(&snap);
            let fork = fork_driver.finish(&mut b).unwrap();
            assert_eq!(fork.makespan, straight.makespan, "fork at {bound}");
            assert_eq!(b.net_stats(), sb.net_stats(), "fork at {bound}");
            assert_eq!(b.flow_records(), sb.flow_records(), "fork at {bound}");
        }
    }

    /// Branch override: restoring one checkpoint twice — once clean,
    /// once with a stochastic model switched on mid-run — yields a
    /// clean continuation identical to the straight-through run and a
    /// lossy continuation identical to a fresh run applying the same
    /// override at the same pause point.
    #[test]
    fn set_link_model_branch_matches_straight_through_override() {
        use atlahs_core::{RunState, SimDriver, Snapshot};
        // Rank 2 runs a calc chain as a pause-point clock (the driver
        // only pauses at completion events).
        let goal = {
            let mut b = GoalBuilder::new(3);
            b.send(0, 1, 2 << 20, 0);
            b.recv(1, 0, 2 << 20, 0);
            let mut prev = None;
            for _ in 0..6 {
                let c = b.calc(2, 5_000);
                if let Some(p) = prev {
                    b.requires(2, c, p);
                }
                prev = Some(c);
            }
            b.build().unwrap()
        };
        let cfg = small_switch(CcAlgo::Mprdma);
        let (clean, _) = run_with(&goal, cfg.clone());
        let model = loss_model(100_000, 0x10ad);

        // Reference: fresh run, pause at 25 µs, switch the model on.
        let mut rb = HtsimBackend::new(cfg.clone());
        let mut rd = SimDriver::start(&goal, &mut rb);
        assert_eq!(rd.run_until(&mut rb, 25_000).unwrap(), RunState::Paused);
        rb.set_link_model(model);
        let reference = rd.finish(&mut rb).unwrap();
        assert!(rb.net_stats().stochastic_drops > 0, "the override must bite");
        assert!(reference.makespan > clean.makespan);

        // Branched: one prefix, one checkpoint, two continuations.
        let mut b = HtsimBackend::new(cfg);
        let mut driver = SimDriver::start(&goal, &mut b);
        assert_eq!(driver.run_until(&mut b, 25_000).unwrap(), RunState::Paused);
        let snap = b.checkpoint();

        let lossy_driver = driver.clone();
        let clean_branch = driver.finish(&mut b).unwrap();
        assert_eq!(clean_branch.makespan, clean.makespan);
        assert_eq!(b.net_stats().stochastic_draws, 0, "clean branch consumed no draws");

        b.restore(&snap);
        b.set_link_model(model);
        let lossy_branch = lossy_driver.finish(&mut b).unwrap();
        assert_eq!(lossy_branch.makespan, reference.makespan);
        assert_eq!(b.net_stats(), rb.net_stats());
    }

    #[test]
    fn kmin_kmax_thresholds_gate_marking() {
        // With the marking window pushed to the very top of the queue,
        // the same workload produces fewer marks than with a low window.
        let mk = |kmin: f64, kmax: f64| {
            let mut cfg = small_switch(CcAlgo::Mprdma);
            cfg.kmin_frac = kmin;
            cfg.kmax_frac = kmax;
            let goal = incast(8, 512 * 1024);
            let (_, backend) = run_with(&goal, cfg);
            backend.net_stats().ecn_marks
        };
        let low = mk(0.05, 0.2);
        let high = mk(0.9, 0.99);
        assert!(low > 2 * high, "early marking must produce more marks: low={low} high={high}");
    }
}
